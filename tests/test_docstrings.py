"""Quality gate: every public item in the library carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


MODULES = list(walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(name)
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if not inspect.isfunction(meth) and not isinstance(
                    meth, property
                ):
                    continue
                target = meth.fget if isinstance(meth, property) else meth
                if target is None:
                    continue
                if target.__doc__ and target.__doc__.strip():
                    continue
                # Overrides inherit their contract from a documented base.
                inherited = any(
                    (
                        base_member := getattr(base, meth_name, None)
                    ) is not None
                    and (getattr(base_member, "__doc__", None) or "").strip()
                    for base in obj.__mro__[1:]
                )
                if not inherited:
                    missing.append(f"{name}.{meth_name}")
    assert not missing, f"{module.__name__}: undocumented public items {missing}"
