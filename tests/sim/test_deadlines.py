"""Tests for per-query deadline enforcement in the simulated RDBMS.

Semantics under test: a deadline is *absolute* once set (submit time plus
the job's relative deadline), belongs to the query rather than the
attempt (resubmission does not reset it), expiry aborts the query exactly
at the deadline (an intentional workload-management action, never
retried), and a query finishing exactly at its deadline counts as
finished.
"""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, QueryCrash
from repro.faults.retry import RetryController, RetryPolicy
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS


class TestJobDeadlines:
    def test_deadline_must_be_positive(self):
        for bad in (0.0, -5.0):
            with pytest.raises(ValueError):
                SyntheticJob("q", 100, deadline=bad)

    def test_submit_sets_absolute_deadline(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.run_until(3.0)
        rdbms.submit(SyntheticJob("q", 100, deadline=20.0))
        assert rdbms.record("q").deadline_at == pytest.approx(23.0)

    def test_no_deadline_by_default(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("q", 100))
        assert rdbms.record("q").deadline_at is None


class TestEnforcement:
    def test_expired_deadline_aborts_at_exactly_that_time(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        # 900 U at 10 U/s needs 90 s; the 10 s deadline must fire first.
        rdbms.submit(SyntheticJob("slow", 900, deadline=10.0))
        rdbms.run_to_completion(max_time=200.0)
        record = rdbms.record("slow")
        assert record.status == "aborted"
        assert record.trace.aborted_at == pytest.approx(10.0)
        kinds = [f.kind for f in record.trace.fault_events]
        assert "deadline" in kinds

    def test_finishing_exactly_at_deadline_counts_as_finished(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        # 100 U at 10 U/s finishes at t=10.0, the deadline itself.
        rdbms.submit(SyntheticJob("q", 100, deadline=10.0))
        rdbms.run_to_completion(max_time=100.0)
        record = rdbms.record("q")
        assert record.status == "finished"
        assert record.trace.finished_at == pytest.approx(10.0)

    def test_comfortable_deadline_is_invisible(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("q", 100, deadline=1000.0))
        rdbms.run_to_completion(max_time=2000.0)
        record = rdbms.record("q")
        assert record.status == "finished"
        assert record.trace.finished_at == pytest.approx(10.0)

    def test_timeshared_queries_each_respect_their_deadline(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("a", 100, deadline=15.0))
        rdbms.submit(SyntheticJob("b", 100, deadline=100.0))
        rdbms.run_to_completion(max_time=500.0)
        # Timeshared 50/50: "a" would finish at 20 s > its 15 s deadline;
        # "b" inherits the whole machine afterwards and finishes fine.
        assert rdbms.record("a").status == "aborted"
        assert rdbms.record("a").trace.aborted_at == pytest.approx(15.0)
        assert rdbms.record("b").status == "finished"

    def test_deadline_abort_is_not_retried(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("slow", 900, deadline=10.0))
        controller = RetryController(
            rdbms, RetryPolicy(max_attempts=3, base_delay=1.0)
        )
        rdbms.run_to_completion(max_time=200.0)
        assert rdbms.record("slow").status == "aborted"
        assert rdbms.record("slow").attempts == 1
        assert controller.retried("slow") == 0


class TestDeadlineSurvivesRetry:
    def test_resubmission_does_not_reset_the_deadline(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        # Needs 30 s of work; crashes at t=5; deadline at t=20 holds even
        # though the retry starts a fresh attempt at t=6.
        rdbms.submit(SyntheticJob("q", 300, deadline=20.0))
        FaultInjector(rdbms, FaultPlan.of(QueryCrash("q", at_time=5.0))).arm()
        RetryController(rdbms, RetryPolicy(max_attempts=3, base_delay=1.0))
        rdbms.run_to_completion(max_time=200.0)
        record = rdbms.record("q")
        assert record.attempts == 2
        assert record.deadline_at == pytest.approx(20.0)
        assert record.status == "aborted"
        assert record.trace.aborted_at == pytest.approx(20.0)

    def test_checkpointed_retry_can_beat_the_deadline(self):
        # Same crash, but work-preserving recovery keeps 40 of the 50 U
        # done, so the query finishes before its deadline instead.
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(
            SyntheticJob("q", 100, deadline=13.0, checkpoint_interval=20.0)
        )
        FaultInjector(rdbms, FaultPlan.of(QueryCrash("q", at_time=5.0))).arm()
        # jitter=0 keeps the backoff arithmetic below exact.
        RetryController(
            rdbms, RetryPolicy(max_attempts=3, base_delay=1.0, jitter=0.0)
        )
        rdbms.run_to_completion(max_time=200.0)
        record = rdbms.record("q")
        assert record.status == "finished"
        # t=5 crash + 1 s backoff + (100 - 40 preserved) U / 10 U/s = 12 s.
        assert record.trace.finished_at == pytest.approx(12.0)


class TestSetDeadlineApi:
    def test_set_and_clear(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("q", 900))
        rdbms.set_deadline("q", 10.0)
        assert rdbms.record("q").deadline_at == 10.0
        rdbms.set_deadline("q", None)
        rdbms.run_to_completion(max_time=200.0)
        assert rdbms.record("q").status == "finished"

    def test_mid_run_deadline_applies(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("q", 900))
        rdbms.run_until(5.0)
        rdbms.set_deadline("q", 12.0)
        rdbms.run_to_completion(max_time=200.0)
        record = rdbms.record("q")
        assert record.status == "aborted"
        assert record.trace.aborted_at == pytest.approx(12.0)

    def test_rejects_past_deadline(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("q", 900))
        rdbms.run_until(5.0)
        with pytest.raises(ValueError):
            rdbms.set_deadline("q", 2.0)

    def test_rejects_terminal_query(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("q", 10))
        rdbms.run_to_completion(max_time=100.0)
        with pytest.raises(ValueError):
            rdbms.set_deadline("q", 50.0)


class TestDeadlineScanMemo:
    """The memoized earliest-deadline value must track every mutation.

    ``_next_deadline_time`` is consulted on every analytic jump; PR 5
    memoizes the O(records) scan and invalidates on the mutations that
    can move the minimum.  A stale-low value pins the clock, a
    stale-high one overshoots a live deadline -- so the memo must equal
    a brute-force recomputation after any state change.
    """

    @staticmethod
    def _brute_force(rdbms):
        import math

        return min(
            (
                r.deadline_at
                for r in rdbms._records.values()
                if r.deadline_at is not None and not r.terminal
            ),
            default=math.inf,
        )

    def _check(self, rdbms):
        assert rdbms._next_deadline_time() == self._brute_force(rdbms)

    def test_memo_tracks_mutations(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        self._check(rdbms)

        rdbms.submit(SyntheticJob("a", 500, deadline=30.0))
        self._check(rdbms)
        rdbms.submit(SyntheticJob("b", 500, deadline=15.0))
        self._check(rdbms)
        rdbms.submit(SyntheticJob("c", 40))  # no deadline
        self._check(rdbms)

        rdbms.set_deadline("c", 8.0)  # new minimum
        self._check(rdbms)
        rdbms.set_deadline("c", None)  # cleared again
        self._check(rdbms)

        rdbms.abort("b", reason="test")  # old minimum leaves the pool
        self._check(rdbms)

        rdbms.run_until(4.0)
        self._check(rdbms)

        rdbms.resubmit(SyntheticJob("b", 500, deadline=25.0))
        self._check(rdbms)

        rdbms.run_to_completion(max_time=200.0)
        self._check(rdbms)
        assert rdbms._next_deadline_time() == float("inf")

    def test_memo_survives_deadline_fire(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("slow", 900, deadline=10.0))
        rdbms.submit(SyntheticJob("ok", 30, deadline=80.0))
        rdbms.run_until(11.0)  # "slow" aborted at t=10 by its deadline
        assert rdbms.record("slow").status == "aborted"
        self._check(rdbms)

    def test_memoized_run_matches_unmemoized_semantics(self):
        """Identical abort/finish times with many deadline queries."""
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        for i in range(8):
            rdbms.submit(
                SyntheticJob(f"q{i}", 120 + 40 * i, deadline=9.0 + 4.0 * i)
            )
        rdbms.run_to_completion(max_time=500.0)
        statuses = {q: rdbms.record(q).status for q in
                    (f"q{i}" for i in range(8))}
        # Earliest-deadline queries cannot all make it at 10 U/s shared.
        assert "aborted" in statuses.values()
        for i in range(8):
            rec = rdbms.record(f"q{i}")
            if rec.status == "aborted":
                assert rec.trace.aborted_at == pytest.approx(9.0 + 4.0 * i)


class TestBlockDrainInterplay:
    """block(admit_replacement=True) x drain() x deadlines (overload PR).

    A drain means "start nothing new": blocking a victim during a drain
    must not backfill its slot from the queue, and a blocked query's
    deadline keeps ticking -- parking a query never parks its SLA.
    """

    def test_replacement_admitted_during_drain_is_rejected(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0, multiprogramming_limit=1)
        rdbms.submit(SyntheticJob("victim", 100))
        rdbms.submit(SyntheticJob("waiter", 100))
        assert rdbms.record("waiter").status == "queued"
        rdbms.drain()
        rdbms.block("victim", admit_replacement=True)
        assert rdbms.record("victim").status == "blocked"
        # The drain refused the backfill: the slot stays empty.
        assert rdbms.record("waiter").status == "queued"
        assert rdbms.running == ()

    def test_replacement_admitted_when_not_draining(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0, multiprogramming_limit=1)
        rdbms.submit(SyntheticJob("victim", 100))
        rdbms.submit(SyntheticJob("waiter", 100))
        rdbms.block("victim", admit_replacement=True)
        assert rdbms.record("waiter").status == "running"

    def test_drain_lift_after_block_backfills_on_next_admit(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0, multiprogramming_limit=1)
        rdbms.submit(SyntheticJob("victim", 100))
        rdbms.submit(SyntheticJob("waiter", 50))
        rdbms.drain()
        rdbms.block("victim", admit_replacement=True)
        rdbms.drain(False)
        rdbms.unblock("victim")
        rdbms.run_to_completion()
        assert rdbms.record("waiter").status == "finished"
        assert rdbms.record("victim").status == "finished"

    def test_blocked_query_deadline_still_fires(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("parked", 900, deadline=10.0))
        rdbms.submit(SyntheticJob("other", 500))
        rdbms.run_until(2.0)
        rdbms.block("parked")
        rdbms.run_until(15.0)
        rec = rdbms.record("parked")
        assert rec.status == "aborted"
        assert rec.trace.aborted_at == pytest.approx(10.0)
        assert "deadline" in [f.kind for f in rec.trace.fault_events]

    def test_blocked_query_deadline_fires_even_while_draining(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0, multiprogramming_limit=1)
        rdbms.submit(SyntheticJob("parked", 900, deadline=10.0))
        rdbms.submit(SyntheticJob("waiter", 500))
        rdbms.run_until(2.0)
        rdbms.drain()
        rdbms.block("parked", admit_replacement=True)
        assert rdbms.record("waiter").status == "queued"
        rdbms.run_until(15.0)
        rec = rdbms.record("parked")
        assert rec.status == "aborted"
        assert rec.trace.aborted_at == pytest.approx(10.0)
