"""Stress and conservation tests for the simulator at scale."""

import random

import pytest

from repro.sim.arrivals import ArrivalSchedule
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS


class TestScale:
    def test_two_hundred_queries_with_stream(self):
        """200 initial queries + 100 Poisson arrivals, MPL 16: everything
        finishes, work is conserved, traces are complete."""
        rng = random.Random(99)
        rdbms = SimulatedRDBMS(processing_rate=10.0, multiprogramming_limit=16)
        total_work = 0.0
        for i in range(200):
            cost = rng.uniform(1, 50)
            total_work += cost
            rdbms.submit(SyntheticJob(f"Q{i}", cost))
        schedule = ArrivalSchedule()
        times = schedule.add_poisson(
            1.0,
            100.0,
            lambda k: SyntheticJob(f"A{k}", 5.0),
            seed=rng,
        )
        arrival_work = 5.0 * len(times)
        rdbms.schedule(schedule)
        rdbms.run_to_completion()

        records = rdbms.records()
        assert len(records) == 200 + len(times)
        assert all(r.status == "finished" for r in records.values())
        assert rdbms.clock == pytest.approx(
            (total_work + arrival_work) / 10.0, rel=1e-6
        )

    def test_mpl_never_exceeded_during_run(self):
        rng = random.Random(5)
        rdbms = SimulatedRDBMS(processing_rate=5.0, multiprogramming_limit=3)
        observed = []
        rdbms.add_sampler(0.5, lambda r: observed.append(len(r.running)))
        for i in range(30):
            rdbms.submit(SyntheticJob(f"Q{i}", rng.uniform(1, 10)))
        rdbms.run_to_completion()
        assert observed
        assert max(observed) <= 3

    def test_interleaved_actions_under_load(self):
        """Aborts, blocks and priority changes mid-run stay consistent."""
        rng = random.Random(13)
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        for i in range(50):
            rdbms.submit(SyntheticJob(f"Q{i}", rng.uniform(5, 100)))
        rdbms.run_until(1.0)
        rdbms.abort("Q0")
        rdbms.block("Q1")
        rdbms.set_priority("Q2", 3)
        rdbms.run_until(2.0)
        rdbms.unblock("Q1")
        rdbms.abort("Q3", rollback_overhead=4.0)
        rdbms.run_to_completion()
        statuses = {qid: r.status for qid, r in rdbms.records().items()}
        assert statuses["Q0"] == "aborted"
        assert statuses["Q1"] == "finished"
        assert statuses["Q3"] == "aborted"
        assert statuses["__rollback_Q3"] == "finished"
        others = [
            s for qid, s in statuses.items() if qid not in ("Q0", "Q3")
        ]
        assert all(s == "finished" for s in others)

    def test_high_priority_finishes_disproportionately_early(self):
        rdbms = SimulatedRDBMS(processing_rate=1.0)
        rdbms.submit(SyntheticJob("vip", 100, priority=3))   # weight 8
        for i in range(8):
            rdbms.submit(SyntheticJob(f"bg{i}", 100, priority=0))
        rdbms.run_to_completion()
        vip = rdbms.traces["vip"].finished_at
        background = [rdbms.traces[f"bg{i}"].finished_at for i in range(8)]
        assert vip < min(background) / 2
