"""Failure injection: a query that errors mid-run fails in isolation."""

import pytest

from repro.engine import Database
from repro.sim.jobs import EngineJob, SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS


@pytest.fixture()
def db():
    d = Database(page_capacity=5)
    d.execute("CREATE TABLE t (k INT, v FLOAT)")
    d.insert_rows("t", [(i, float(i)) for i in range(100)])
    d.analyze()
    return d


def poisoned_job(db, query_id):
    """A query that divides by zero once it reaches row k = 50."""
    sql = "SELECT 100.0 / (50 - k) FROM t WHERE k >= 0"
    return EngineJob(query_id, db.prepare(sql))


class TestRuntimeFailures:
    def test_failure_isolated_from_other_queries(self, db):
        rdbms = SimulatedRDBMS(processing_rate=5.0, quantum=0.25)
        rdbms.submit(poisoned_job(db, "bad"))
        rdbms.submit(SyntheticJob("good", 30.0))
        rdbms.run_to_completion(max_time=1e6)
        assert rdbms.record("bad").status == "failed"
        assert "zero" in rdbms.record("bad").error
        assert rdbms.record("good").status == "finished"

    def test_failed_query_frees_capacity(self, db):
        rdbms = SimulatedRDBMS(processing_rate=10.0, quantum=0.25)
        rdbms.submit(poisoned_job(db, "bad"))
        rdbms.submit(SyntheticJob("good", 100.0))
        rdbms.run_to_completion(max_time=1e6)
        # 'good' sped up after the failure: it finished well before the
        # time 100/(10/2) = 20s it would need at a permanent half share.
        assert rdbms.traces["good"].finished_at < 16.0

    def test_failure_frees_mpl_slot(self, db):
        rdbms = SimulatedRDBMS(
            processing_rate=10.0, quantum=0.25, multiprogramming_limit=1
        )
        rdbms.submit(poisoned_job(db, "bad"))
        rdbms.submit(SyntheticJob("waiting", 5.0))
        assert rdbms.record("waiting").status == "queued"
        rdbms.run_to_completion(max_time=1e6)
        assert rdbms.record("waiting").status == "finished"

    def test_failed_query_records_failure_time(self, db):
        rdbms = SimulatedRDBMS(processing_rate=5.0, quantum=0.25)
        rdbms.submit(poisoned_job(db, "bad"))
        rdbms.run_to_completion(max_time=1e6)
        trace = rdbms.traces["bad"]
        # A runtime error is a failure, not a workload-management abort.
        assert trace.failed_at is not None
        assert trace.aborted_at is None
        assert trace.finished_at is None
        assert any(e.kind == "runtime-error" for e in trace.fault_events)

    def test_failure_fires_on_failure_hooks(self, db):
        rdbms = SimulatedRDBMS(processing_rate=5.0, quantum=0.25)
        seen = []
        rdbms.on_failure.append(lambda t, qid, reason: seen.append((t, qid, reason)))
        rdbms.submit(poisoned_job(db, "bad"))
        rdbms.run_to_completion(max_time=1e6)
        assert len(seen) == 1
        t, qid, reason = seen[0]
        assert qid == "bad" and "zero" in reason and t > 0

    def test_snapshot_excludes_failed_queries(self, db):
        rdbms = SimulatedRDBMS(processing_rate=5.0, quantum=0.25)
        rdbms.submit(poisoned_job(db, "bad"))
        rdbms.submit(SyntheticJob("good", 500.0))
        # Run long enough for the failure to occur.
        rdbms.run_until(30.0)
        assert rdbms.record("bad").status == "failed"
        ids = {q.query_id for q in rdbms.snapshot().running}
        assert ids == {"good"}
