"""Tests for arrival processes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.arrivals import (
    ArrivalSchedule,
    burst_arrival_times,
    poisson_arrival_times,
)
from repro.sim.jobs import SyntheticJob


class TestPoisson:
    def test_deterministic_under_seed(self):
        a = poisson_arrival_times(0.1, 1000.0, seed=5)
        b = poisson_arrival_times(0.1, 1000.0, seed=5)
        assert a == b

    def test_zero_rate_empty(self):
        assert poisson_arrival_times(0.0, 100.0) == []

    def test_times_sorted_within_horizon(self):
        times = poisson_arrival_times(0.5, 200.0, seed=1)
        assert times == sorted(times)
        assert all(0 < t <= 200.0 for t in times)

    def test_mean_rate_approximately_correct(self):
        times = poisson_arrival_times(0.2, 50_000.0, seed=2)
        assert len(times) / 50_000.0 == pytest.approx(0.2, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrival_times(-1.0, 10.0)
        with pytest.raises(ValueError):
            poisson_arrival_times(1.0, -10.0)

    @given(rate=st.floats(min_value=0.01, max_value=2.0), seed=st.integers(0, 100))
    @settings(max_examples=30)
    def test_interarrivals_positive(self, rate, seed):
        times = poisson_arrival_times(rate, 100.0, seed=seed)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g > 0 for g in gaps)

    def test_shared_rng(self):
        rng = random.Random(7)
        first = poisson_arrival_times(0.1, 100.0, seed=rng)
        second = poisson_arrival_times(0.1, 100.0, seed=rng)
        assert first != second  # rng state advanced


class TestArrivalSchedule:
    def test_sorted_entries(self):
        s = ArrivalSchedule()
        s.add(5.0, lambda: SyntheticJob("b", 1))
        s.add(1.0, lambda: SyntheticJob("a", 1))
        assert [t for t, _ in s.sorted_entries()] == [1.0, 5.0]
        assert len(s) == 2

    def test_negative_time_rejected(self):
        s = ArrivalSchedule()
        with pytest.raises(ValueError):
            s.add(-1.0, lambda: SyntheticJob("a", 1))

    def test_add_poisson_binds_index(self):
        s = ArrivalSchedule()
        times = s.add_poisson(
            0.5, 50.0, lambda i: SyntheticJob(f"job{i}", 1.0), seed=3
        )
        assert len(times) == len(s)
        jobs = [factory() for _, factory in s.sorted_entries()]
        assert len({j.query_id for j in jobs}) == len(jobs)

    def test_iteration_yields_sorted(self):
        s = ArrivalSchedule()
        s.add(2.0, lambda: SyntheticJob("x", 1))
        s.add(1.0, lambda: SyntheticJob("y", 1))
        assert [t for t, _ in s] == [1.0, 2.0]


class TestBurst:
    def test_zero_spread_is_simultaneous(self):
        assert burst_arrival_times(5.0, 3) == [5.0, 5.0, 5.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            burst_arrival_times(-1.0, 3)
        with pytest.raises(ValueError):
            burst_arrival_times(0.0, 0)
        with pytest.raises(ValueError):
            burst_arrival_times(0.0, 3, spread=-1.0)

    def test_add_burst_binds_index_to_arrival_order(self):
        s = ArrivalSchedule()
        times = s.add_burst(
            2.0, 4, lambda i: SyntheticJob(f"b{i}", 1.0), spread=3.0, seed=7
        )
        assert len(times) == len(s) == 4
        entries = s.sorted_entries()
        # The i-th earliest arrival builds job b{i}.
        ids = [factory().query_id for _, factory in entries]
        assert ids == ["b0", "b1", "b2", "b3"]

    @settings(max_examples=80, deadline=None)
    @given(
        time=st.floats(min_value=0.0, max_value=100.0,
                       allow_nan=False, allow_infinity=False),
        n=st.integers(min_value=1, max_value=40),
        spread=st.floats(min_value=0.0, max_value=30.0,
                         allow_nan=False, allow_infinity=False),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_burst_is_deterministic_sorted_and_bounded(
        self, time, n, spread, seed
    ):
        first = burst_arrival_times(time, n, spread, seed)
        second = burst_arrival_times(time, n, spread, seed)
        assert first == second  # same seed -> byte-identical storm
        assert len(first) == n
        assert first == sorted(first)
        assert all(time <= t <= time + spread for t in first)
