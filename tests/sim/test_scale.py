"""Tests for the scalability harness and the RDBMS shared schedule.

The benchmarks in ``benchmarks/test_bench_scale_concurrency.py`` assert
the *performance* claims at full size; these tests pin the *correctness*
machinery at small sizes: the harness verifies what it claims to verify,
the simulator's shared schedule stays consistent with the standard-case
oracle across every workload-management action, and all fallback paths
engage when the configuration leaves the supported regime.
"""

import json
import math

import pytest

from repro.core.multi_query import MultiQueryProgressIndicator
from repro.core.standard_case import standard_case
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS, make_synthetic_workload
from repro.sim.scale import ScaleReport, merge_bench_json, run_scale
from repro.sim.scheduler import ThrashingModel
from repro.wm.watchdog import RunawayQueryWatchdog


def _oracle(rdbms):
    snaps = [j.snapshot() for j in rdbms.running]
    return standard_case(
        snaps, rdbms.processing_rate, include_stages=False
    ).remaining_times


def assert_matches_oracle(rdbms, context=""):
    expected = _oracle(rdbms)
    got = rdbms.remaining_times()
    assert set(got) == set(expected), context
    for qid, want in expected.items():
        assert math.isclose(got[qid], want, rel_tol=1e-9, abs_tol=1e-9), (
            f"{context}: {qid} shared={got[qid]!r} oracle={want!r}"
        )
        assert math.isclose(
            rdbms.remaining_time_of(qid), want, rel_tol=1e-9, abs_tol=1e-9
        ), context


class TestRunScale:
    def test_small_sweep_is_well_formed(self):
        report = run_scale(sizes=(20, 40), rounds=2, sample=5)
        assert isinstance(report, ScaleReport)
        assert report.sizes == (20, 40)
        assert [p.n for p in report.points] == [20, 40]
        for point in report.points:
            assert point.rounds == 2
            assert point.sampled_queries == 5
            assert point.extrapolated is True
            assert point.incremental_seconds > 0
            assert (
                point.per_query_seconds_estimated
                >= point.per_query_seconds_measured
            )
            assert point.speedup_vs_per_query > 0
        # The headline correctness claim: identical estimates.
        assert report.max_rel_diff <= 1e-9

    def test_sample_covering_everything_is_not_extrapolated(self):
        report = run_scale(sizes=(10,), rounds=1, sample=1000)
        point = report.point(10)
        assert point.extrapolated is False
        assert point.sampled_queries == 10
        assert (
            point.per_query_seconds_estimated
            == pytest.approx(point.per_query_seconds_measured)
        )

    def test_as_dict_round_trips_through_json(self):
        report = run_scale(sizes=(15,), rounds=1, sample=4)
        data = json.loads(json.dumps(report.as_dict()))
        assert data["sizes"] == [15]
        assert data["points"][0]["n"] == 15
        assert data["points"][0]["max_rel_diff"] <= 1e-9

    def test_point_lookup_and_validation(self):
        report = run_scale(sizes=(12,), rounds=1, sample=3)
        assert report.point(12).n == 12
        with pytest.raises(KeyError):
            report.point(999)
        with pytest.raises(ValueError):
            run_scale(sizes=())
        with pytest.raises(ValueError):
            run_scale(sizes=(0,))
        with pytest.raises(ValueError):
            run_scale(sizes=(10,), rounds=0)
        with pytest.raises(ValueError):
            run_scale(sizes=(10,), sample=0)


class TestMergeBenchJson:
    def test_sections_merge_order_independently(self, tmp_path):
        path = tmp_path / "BENCH_scale.json"
        merge_bench_json(path, "scale", {"a": 1})
        merge_bench_json(path, "complexity", {"b": 2})
        merge_bench_json(path, "scale", {"a": 3})
        data = json.loads(path.read_text())
        assert data == {"scale": {"a": 3}, "complexity": {"b": 2}}

    def test_corrupt_existing_file_is_replaced(self, tmp_path):
        path = tmp_path / "BENCH_scale.json"
        path.write_text("not json {")
        data = merge_bench_json(path, "scale", {"ok": True})
        assert data == {"scale": {"ok": True}}
        path.write_text(json.dumps([1, 2, 3]))
        data = merge_bench_json(path, "scale", {"ok": True})
        assert data == {"scale": {"ok": True}}

    def test_write_is_atomic_on_failure(self, tmp_path):
        # Regression: a crash mid-write used to leave a truncated file.
        # The merge now goes through a temp file + os.replace, so a failed
        # serialisation must leave the previous contents untouched and no
        # temp droppings behind.
        path = tmp_path / "BENCH_scale.json"
        merge_bench_json(path, "scale", {"keep": 1})
        before = path.read_text()
        with pytest.raises(TypeError):
            merge_bench_json(path, "scale", {"bad": object()})
        assert path.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == [path.name]

    def test_no_temp_files_left_on_success(self, tmp_path):
        path = tmp_path / "BENCH_scale.json"
        merge_bench_json(path, "scale", {"a": 1})
        merge_bench_json(path, "scale", {"a": 2})
        assert [p.name for p in tmp_path.iterdir()] == [path.name]


class TestSharedScheduleIntegration:
    def _rdbms(self, n=12, mpl=None, rate=2.0):
        rdbms = SimulatedRDBMS(processing_rate=rate, multiprogramming_limit=mpl)
        jobs = make_synthetic_workload(
            [5.0 + 7.0 * (i % 4) for i in range(n)],
            priorities=[i % 3 for i in range(n)],
        )
        for job in jobs:
            rdbms.submit(job)
        return rdbms

    def test_matches_oracle_and_survives_steps(self):
        rdbms = self._rdbms()
        assert rdbms.shared_schedule_supported
        assert_matches_oracle(rdbms, "initial")
        assert rdbms.shared_schedule() is not None
        for k in range(5):
            rdbms.run_until(rdbms.clock + 1.5)
            assert_matches_oracle(rdbms, f"after step {k}")
        # Maintained, not rebuilt: the same object is still serving.
        assert rdbms._shared_schedule is not None

    def test_matches_pi_estimates(self):
        rdbms = self._rdbms()
        rdbms.run_until(2.0)
        estimate = MultiQueryProgressIndicator().estimate(rdbms.snapshot())
        shared = rdbms.remaining_times()
        for qid, want in estimate.remaining_seconds.items():
            assert math.isclose(shared[qid], want, rel_tol=1e-9, abs_tol=1e-9)

    def test_block_unblock_and_priority_changes(self):
        rdbms = self._rdbms()
        rdbms.remaining_times()  # build the schedule
        victim = rdbms.running[0].query_id
        rdbms.block(victim)
        assert victim not in rdbms.remaining_times()
        assert_matches_oracle(rdbms, "after block")
        with pytest.raises(ValueError, match="not running"):
            rdbms.remaining_time_of(victim)
        rdbms.unblock(victim)
        assert_matches_oracle(rdbms, "after unblock")
        rdbms.set_priority(rdbms.running[2].query_id, 4)
        assert_matches_oracle(rdbms, "after promotion")
        rdbms.set_priority(rdbms.running[3].query_id, -3)
        assert_matches_oracle(rdbms, "after demotion")

    def test_abort_fail_and_late_arrivals(self):
        rdbms = self._rdbms(mpl=6)
        rdbms.remaining_times()
        rdbms.abort(rdbms.running[1].query_id)
        assert_matches_oracle(rdbms, "after abort (queue refilled)")
        rdbms.fail(rdbms.running[0].query_id, "injected")
        assert_matches_oracle(rdbms, "after fail")
        rdbms.submit(SyntheticJob("late", 9.0, priority=1))
        assert_matches_oracle(rdbms, "after late submit")
        rdbms.run_to_completion()
        assert rdbms.remaining_times() == {}

    def test_finish_reconciliation_keeps_schedule_live(self):
        rdbms = self._rdbms(n=6)
        rdbms.remaining_times()
        rdbms.run_to_completion()
        # Every completion was popped in agreement with the simulator:
        # the schedule was never invalidated, just drained.
        assert rdbms._shared_schedule is not None
        assert len(rdbms._shared_schedule) == 0

    def test_unknown_and_non_running_queries_raise(self):
        rdbms = self._rdbms(n=4, mpl=2)
        with pytest.raises(KeyError, match="unknown query"):
            rdbms.remaining_time_of("ghost")
        queued = rdbms.queued[0].query_id
        with pytest.raises(ValueError, match="queued"):
            rdbms.remaining_time_of(queued)

    def test_unsupported_speed_model_falls_back(self):
        rdbms = SimulatedRDBMS(speed_model=ThrashingModel())
        for job in make_synthetic_workload([5.0, 7.0, 11.0]):
            rdbms.submit(job)
        assert not rdbms.shared_schedule_supported
        assert rdbms.shared_schedule() is None
        # The fallback still answers (with the standard-case model).
        times = rdbms.remaining_times()
        assert set(times) == {"Q1", "Q2", "Q3"}
        assert rdbms.remaining_time_of("Q1") == times["Q1"]

    def test_speed_model_swap_invalidates(self):
        rdbms = self._rdbms(n=4)
        assert rdbms.shared_schedule() is not None
        rdbms.speed_model = ThrashingModel()
        rdbms.run_until(1.0)
        assert rdbms.shared_schedule() is None
        assert set(rdbms.remaining_times()) == {
            j.query_id for j in rdbms.running
        }

    def test_corruption_does_not_reach_shared_schedule(self):
        rdbms = self._rdbms(n=4)
        rdbms.remaining_times()
        rdbms.corrupt_estimates(float("nan"))
        # snapshot-based PIs now refuse...
        with pytest.raises(ValueError):
            MultiQueryProgressIndicator().estimate(rdbms.snapshot())
        # ...but the engine-internal schedule still serves exact answers.
        assert_matches_oracle_uncorrupted(rdbms)


def assert_matches_oracle_uncorrupted(rdbms):
    snaps = [j.snapshot() for j in rdbms.running]
    expected = standard_case(
        snaps, rdbms.processing_rate, include_stages=False
    ).remaining_times
    got = rdbms.remaining_times()
    for qid, want in expected.items():
        assert math.isclose(got[qid], want, rel_tol=1e-9, abs_tol=1e-9)


class TestWatchdogSharedSchedule:
    def _run(self, use_shared):
        rdbms = SimulatedRDBMS(processing_rate=1.0)
        for job in make_synthetic_workload([4.0, 4.0, 40.0]):
            rdbms.submit(job)
        watchdog = RunawayQueryWatchdog(
            rdbms,
            budget_seconds=20.0,
            check_interval=1.0,
            use_shared_schedule=use_shared,
        )
        watchdog.attach()
        rdbms.run_to_completion()
        return watchdog

    def test_same_enforcement_as_pi_path(self):
        pi_based = self._run(use_shared=False)
        shared = self._run(use_shared=True)
        assert [a.query_id for a in shared.actions] == [
            a.query_id for a in pi_based.actions
        ]
        assert [a.action for a in shared.actions] == [
            a.action for a in pi_based.actions
        ]
        assert not shared.fallback_engaged
