"""Tests for the simulated RDBMS event loop and actions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.standard_case import standard_case
from repro.sim.arrivals import ArrivalSchedule
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS, make_synthetic_workload


class TestBasicExecution:
    def test_single_job(self):
        db = SimulatedRDBMS(processing_rate=2.0)
        db.submit(SyntheticJob("a", 10))
        db.run_to_completion()
        assert db.clock == pytest.approx(5.0)
        assert db.record("a").status == "finished"

    def test_matches_standard_case(self):
        jobs = make_synthetic_workload([10, 20, 30, 40])
        db = SimulatedRDBMS(processing_rate=1.0)
        for j in jobs:
            db.submit(j)
        db.run_to_completion()
        expected = standard_case([j.snapshot() for j in jobs], 1.0)
        for qid, t in expected.remaining_times.items():
            pass
        finishes = {q: db.traces[q].finished_at for q in ("Q1", "Q2", "Q3", "Q4")}
        assert finishes == pytest.approx(
            {"Q1": 40.0, "Q2": 70.0, "Q3": 90.0, "Q4": 100.0}
        )

    def test_weighted_jobs(self):
        db = SimulatedRDBMS(processing_rate=3.0)
        db.submit(SyntheticJob("heavy", 10, weight=2.0))
        db.submit(SyntheticJob("light", 10, weight=1.0))
        db.run_to_completion()
        assert db.traces["heavy"].finished_at == pytest.approx(5.0)
        assert db.traces["light"].finished_at == pytest.approx(5 + 5 / 3)

    def test_run_until_partial_progress(self):
        db = SimulatedRDBMS(processing_rate=1.0)
        job = SyntheticJob("a", 10)
        db.submit(job)
        db.run_until(4.0)
        assert db.clock == pytest.approx(4.0)
        assert job.completed_work == pytest.approx(4.0)
        assert db.record("a").status == "running"

    def test_run_backwards_rejected(self):
        db = SimulatedRDBMS()
        db.submit(SyntheticJob("a", 1))
        db.run_until(5.0)
        with pytest.raises(ValueError):
            db.run_until(1.0)

    def test_duplicate_id_rejected(self):
        db = SimulatedRDBMS()
        db.submit(SyntheticJob("a", 1))
        with pytest.raises(ValueError):
            db.submit(SyntheticJob("a", 2))

    def test_zero_cost_job(self):
        db = SimulatedRDBMS()
        db.submit(SyntheticJob("zero", 0))
        db.run_to_completion()
        assert db.record("zero").status == "finished"
        assert db.traces["zero"].finished_at == pytest.approx(0.0)

    def test_max_time_guard(self):
        db = SimulatedRDBMS(processing_rate=1e-6)
        db.submit(SyntheticJob("a", 1e9))
        with pytest.raises(RuntimeError):
            db.run_to_completion(max_time=10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedRDBMS(processing_rate=0)
        with pytest.raises(ValueError):
            SimulatedRDBMS(multiprogramming_limit=0)
        with pytest.raises(ValueError):
            SimulatedRDBMS(quantum=0)


class TestAdmissionQueue:
    def test_mpl_enforced(self):
        jobs = make_synthetic_workload([50, 10, 20])
        db = SimulatedRDBMS(processing_rate=1.0, multiprogramming_limit=2)
        for j in jobs:
            db.submit(j)
        assert len(db.running) == 2
        assert len(db.queued) == 1
        db.run_to_completion()
        assert db.traces["Q2"].finished_at == pytest.approx(20.0)
        assert db.traces["Q3"].started_at == pytest.approx(20.0)
        assert db.traces["Q3"].finished_at == pytest.approx(60.0)
        assert db.traces["Q1"].finished_at == pytest.approx(80.0)
        assert db.traces["Q3"].queue_wait == pytest.approx(20.0)

    def test_fifo_order(self):
        db = SimulatedRDBMS(multiprogramming_limit=1)
        for j in make_synthetic_workload([5, 5, 5]):
            db.submit(j)
        db.run_to_completion()
        starts = [db.traces[q].started_at for q in ("Q1", "Q2", "Q3")]
        assert starts == sorted(starts)


class TestArrivals:
    def test_scheduled_arrivals(self):
        db = SimulatedRDBMS(processing_rate=1.0)
        db.submit(SyntheticJob("a", 20))
        sched = ArrivalSchedule()
        sched.add(10.0, lambda: SyntheticJob("late", 5))
        db.schedule(sched)
        db.run_to_completion()
        assert db.traces["late"].submitted_at == pytest.approx(10.0)
        assert db.traces["late"].finished_at == pytest.approx(20.0)
        assert db.traces["a"].finished_at == pytest.approx(25.0)

    def test_drain_rejects_scheduled_arrivals(self):
        db = SimulatedRDBMS(processing_rate=1.0)
        db.submit(SyntheticJob("a", 20))
        sched = ArrivalSchedule()
        sched.add(5.0, lambda: SyntheticJob("late", 5))
        db.schedule(sched)
        db.drain(True)
        db.run_to_completion()
        assert "late" not in db.traces.queries
        assert db.traces["a"].finished_at == pytest.approx(20.0)

    def test_drain_rejects_direct_submission(self):
        db = SimulatedRDBMS()
        db.drain(True)
        with pytest.raises(RuntimeError):
            db.submit(SyntheticJob("a", 1))
        db.drain(False)
        db.submit(SyntheticJob("a", 1))

    def test_arrival_callback(self):
        seen = []
        db = SimulatedRDBMS()
        db.on_arrival.append(lambda t, qid: seen.append((t, qid)))
        db.submit(SyntheticJob("a", 5))
        assert seen == [(0.0, "a")]

    def test_finish_callback(self):
        seen = []
        db = SimulatedRDBMS()
        db.on_finish.append(lambda t, qid: seen.append((t, qid)))
        db.submit(SyntheticJob("a", 5))
        db.run_to_completion()
        assert seen == [(5.0, "a")]


class TestActions:
    def test_abort_running(self):
        db = SimulatedRDBMS(processing_rate=1.0)
        for j in make_synthetic_workload([10, 10]):
            db.submit(j)
        db.run_until(2.0)
        db.abort("Q1")
        db.run_to_completion()
        assert db.record("Q1").status == "aborted"
        assert db.traces["Q1"].aborted_at == pytest.approx(2.0)
        # Q2 had 9 left at t=2, then runs alone.
        assert db.traces["Q2"].finished_at == pytest.approx(11.0)

    def test_abort_queued(self):
        db = SimulatedRDBMS(multiprogramming_limit=1)
        for j in make_synthetic_workload([10, 10]):
            db.submit(j)
        db.abort("Q2")
        db.run_to_completion()
        assert db.record("Q2").status == "aborted"
        assert db.traces["Q1"].finished_at == pytest.approx(10.0)

    def test_double_abort_rejected(self):
        db = SimulatedRDBMS()
        db.submit(SyntheticJob("a", 5))
        db.abort("a")
        with pytest.raises(ValueError):
            db.abort("a")

    def test_abort_frees_mpl_slot(self):
        db = SimulatedRDBMS(multiprogramming_limit=1)
        for j in make_synthetic_workload([100, 10]):
            db.submit(j)
        db.abort("Q1")
        assert db.record("Q2").status == "running"

    def test_block_and_unblock(self):
        db = SimulatedRDBMS(processing_rate=1.0)
        for j in make_synthetic_workload([10, 10]):
            db.submit(j)
        db.block("Q2")
        assert db.record("Q2").status == "blocked"
        assert len(db.blocked) == 1
        db.run_until(10.0)
        # Q1 ran alone.
        assert db.record("Q1").status == "finished"
        assert db.traces["Q1"].finished_at == pytest.approx(10.0)
        db.unblock("Q2")
        db.run_to_completion()
        assert db.traces["Q2"].finished_at == pytest.approx(20.0)

    def test_blocked_jobs_do_not_stall_completion(self):
        db = SimulatedRDBMS()
        for j in make_synthetic_workload([10, 10]):
            db.submit(j)
        db.block("Q2")
        db.run_to_completion()  # must terminate with Q2 still blocked
        assert db.record("Q2").status == "blocked"

    def test_block_requires_running(self):
        db = SimulatedRDBMS(multiprogramming_limit=1)
        for j in make_synthetic_workload([10, 10]):
            db.submit(j)
        with pytest.raises(ValueError):
            db.block("Q2")  # queued, not running

    def test_unblock_requires_blocked(self):
        db = SimulatedRDBMS()
        db.submit(SyntheticJob("a", 5))
        with pytest.raises(ValueError):
            db.unblock("a")

    def test_set_priority_changes_weight(self):
        db = SimulatedRDBMS(processing_rate=3.0)
        for j in make_synthetic_workload([10, 10]):
            db.submit(j)
        db.set_priority("Q1", 1)  # weight 2
        db.run_to_completion()
        assert db.traces["Q1"].finished_at == pytest.approx(5.0)

    def test_set_priority_custom_weight(self):
        db = SimulatedRDBMS()
        db.submit(SyntheticJob("a", 5))
        db.set_priority("a", 0, weight=7.5)
        assert db.record("a").job.weight == 7.5
        with pytest.raises(ValueError):
            db.set_priority("a", 0, weight=0.0)

    def test_unknown_query(self):
        db = SimulatedRDBMS()
        with pytest.raises(KeyError):
            db.record("nope")
        with pytest.raises(KeyError):
            db.abort("nope")


class TestSnapshotsAndSampling:
    def test_snapshot_contents(self):
        db = SimulatedRDBMS(processing_rate=2.0, multiprogramming_limit=2)
        for j in make_synthetic_workload([10, 20, 30]):
            db.submit(j)
        snap = db.snapshot()
        assert len(snap.running) == 2
        assert len(snap.queued) == 1
        assert snap.processing_rate == 2.0
        assert snap.multiprogramming_limit == 2

    def test_sampler_fires_on_schedule(self):
        times = []
        db = SimulatedRDBMS(processing_rate=1.0)
        db.submit(SyntheticJob("a", 10))
        db.add_sampler(2.0, lambda r: times.append(r.clock))
        db.run_to_completion()
        assert times == pytest.approx([2.0, 4.0, 6.0, 8.0, 10.0])

    def test_sampler_validation(self):
        db = SimulatedRDBMS()
        with pytest.raises(ValueError):
            db.add_sampler(0.0, lambda r: None)

    def test_trace_records_speed(self):
        db = SimulatedRDBMS(processing_rate=1.0)
        for j in make_synthetic_workload([10, 30]):
            db.submit(j)
        db.add_sampler(1.0, lambda r: None)
        db.run_to_completion()
        speed = db.traces["Q2"].speed
        # Shared first (0.5), then alone (1.0).
        assert speed.at(5.0) == pytest.approx(0.5)
        assert speed.at(25.0) == pytest.approx(1.0)


class TestConservation:
    @given(
        costs=st.lists(
            st.floats(min_value=0.5, max_value=200.0), min_size=1, max_size=8
        ),
        rate=st.floats(min_value=0.5, max_value=5.0),
        mpl=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
    )
    @settings(max_examples=60, deadline=None)
    def test_drain_time_equals_total_work_over_rate(self, costs, rate, mpl):
        db = SimulatedRDBMS(processing_rate=rate, multiprogramming_limit=mpl)
        for j in make_synthetic_workload(costs):
            db.submit(j)
        db.run_to_completion()
        assert db.clock == pytest.approx(sum(costs) / rate, rel=1e-6)
        for qid in db.records():
            assert db.record(qid).status == "finished"

    @given(
        costs=st.lists(
            st.floats(min_value=0.5, max_value=50.0), min_size=2, max_size=6
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_simulation_matches_analytic_finish_times(self, costs):
        jobs = make_synthetic_workload(costs)
        expected = standard_case([j.snapshot() for j in jobs], 1.0).remaining_times
        db = SimulatedRDBMS(processing_rate=1.0)
        for j in jobs:
            db.submit(j)
        db.run_to_completion()
        for qid, t in expected.items():
            assert db.traces[qid].finished_at == pytest.approx(t, rel=1e-6)


class TestMakeSyntheticWorkload:
    def test_basic(self):
        jobs = make_synthetic_workload([1, 2], priorities=[0, 1], prefix="J")
        assert [j.query_id for j in jobs] == ["J1", "J2"]
        assert jobs[1].weight == 2.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            make_synthetic_workload([1, 2], priorities=[0])
        with pytest.raises(ValueError):
            make_synthetic_workload([1, 2], initial_done=[0.0])
