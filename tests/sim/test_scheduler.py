"""Tests for the speed models."""

import pytest

from repro.sim.jobs import SyntheticJob
from repro.sim.scheduler import NoisyFairSharing, ThrashingModel, WeightedFairSharing


def jobs(*weights):
    return [SyntheticJob(f"q{i}", 100, weight=w) for i, w in enumerate(weights)]


class TestWeightedFairSharing:
    def test_proportional_split(self):
        model = WeightedFairSharing()
        speeds = model.speeds(jobs(1, 3), rate=8.0)
        assert speeds["q0"] == pytest.approx(2.0)
        assert speeds["q1"] == pytest.approx(6.0)

    def test_total_equals_rate(self):
        model = WeightedFairSharing()
        speeds = model.speeds(jobs(1, 2, 5, 0.5), rate=3.0)
        assert sum(speeds.values()) == pytest.approx(3.0)

    def test_empty(self):
        assert WeightedFairSharing().speeds([], 1.0) == {}

    def test_single_job_gets_everything(self):
        speeds = WeightedFairSharing().speeds(jobs(7), rate=2.5)
        assert speeds["q0"] == pytest.approx(2.5)


class TestNoisyFairSharing:
    def test_factors_stable_across_calls(self):
        model = NoisyFairSharing(noise=0.3, seed=1)
        a = model.speeds(jobs(1, 1), rate=1.0)
        b = model.speeds(jobs(1, 1), rate=1.0)
        assert a == b

    def test_noise_violates_assumption_one(self):
        model = NoisyFairSharing(noise=0.4, renormalize=False, seed=2)
        speeds = model.speeds(jobs(1, 1, 1), rate=3.0)
        assert sum(speeds.values()) != pytest.approx(3.0, abs=1e-6)

    def test_renormalized_preserves_total(self):
        model = NoisyFairSharing(noise=0.4, renormalize=True, seed=2)
        speeds = model.speeds(jobs(1, 1, 1), rate=3.0)
        assert sum(speeds.values()) == pytest.approx(3.0)

    def test_factors_bounded(self):
        model = NoisyFairSharing(noise=0.2, seed=3)
        model.speeds(jobs(1, 1, 1, 1, 1), rate=1.0)
        for f in model.factors().values():
            assert 0.8 <= f <= 1.2

    def test_validation(self):
        with pytest.raises(ValueError):
            NoisyFairSharing(noise=1.0)
        with pytest.raises(ValueError):
            NoisyFairSharing(noise=-0.1)

    def test_empty(self):
        assert NoisyFairSharing().speeds([], 1.0) == {}


class TestThrashingModel:
    def test_full_rate_below_knee(self):
        model = ThrashingModel(knee=4, degradation=0.1)
        speeds = model.speeds(jobs(1, 1), rate=2.0)
        assert sum(speeds.values()) == pytest.approx(2.0)

    def test_degrades_beyond_knee(self):
        model = ThrashingModel(knee=2, degradation=0.1)
        speeds = model.speeds(jobs(1, 1, 1, 1), rate=1.0)
        assert sum(speeds.values()) == pytest.approx(0.8)

    def test_floor(self):
        model = ThrashingModel(knee=1, degradation=0.5, min_fraction=0.25)
        assert model.effective_rate(100, 1.0) == pytest.approx(0.25)

    def test_weights_still_respected(self):
        model = ThrashingModel(knee=1, degradation=0.1)
        speeds = model.speeds(jobs(1, 3), rate=1.0)
        assert speeds["q1"] == pytest.approx(3 * speeds["q0"])

    def test_validation(self):
        with pytest.raises(ValueError):
            ThrashingModel(knee=0)
        with pytest.raises(ValueError):
            ThrashingModel(degradation=1.0)
        with pytest.raises(ValueError):
            ThrashingModel(min_fraction=0.0)

    def test_empty(self):
        assert ThrashingModel().speeds([], 1.0) == {}
