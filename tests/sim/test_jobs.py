"""Tests for job abstractions."""

import pytest

from repro.sim.jobs import CostNoiseJob, SyntheticJob


class TestSyntheticJob:
    def test_lifecycle(self):
        j = SyntheticJob("a", 10)
        assert not j.finished
        assert j.estimated_remaining_cost() == 10
        consumed = j.advance(4)
        assert consumed == 4
        assert j.completed_work == 4
        assert j.estimated_remaining_cost() == 6
        consumed = j.advance(100)
        assert consumed == pytest.approx(6)
        assert j.finished

    def test_initial_done(self):
        j = SyntheticJob("a", 10, initial_done=7)
        assert j.completed_work == 7
        assert j.estimated_remaining_cost() == 3

    def test_true_remaining_matches_estimate(self):
        j = SyntheticJob("a", 10, initial_done=2)
        assert j.true_remaining_cost() == j.estimated_remaining_cost()

    def test_priority_sets_weight(self):
        assert SyntheticJob("a", 1, priority=2).weight == 4.0
        assert SyntheticJob("a", 1, priority=2, weight=9.0).weight == 9.0

    def test_snapshot(self):
        j = SyntheticJob("a", 10, priority=1, initial_done=4)
        s = j.snapshot()
        assert s.query_id == "a"
        assert s.remaining_cost == 6
        assert s.completed_work == 4
        assert s.weight == 2.0
        assert s.priority == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticJob("a", -1)
        with pytest.raises(ValueError):
            SyntheticJob("a", 10, initial_done=11)
        with pytest.raises(ValueError):
            SyntheticJob("a", 1, weight=0)
        j = SyntheticJob("a", 1)
        with pytest.raises(ValueError):
            j.advance(-1)

    def test_zero_cost_is_finished(self):
        assert SyntheticJob("a", 0).finished


class TestCostNoiseJob:
    def test_estimate_scaled_execution_untouched(self):
        inner = SyntheticJob("a", 10)
        noisy = CostNoiseJob(inner, error_factor=2.0)
        assert noisy.estimated_remaining_cost() == 20.0
        noisy.advance(5)
        assert inner.completed_work == 5
        assert noisy.completed_work == 5
        assert noisy.estimated_remaining_cost() == 10.0
        assert not noisy.finished
        noisy.advance(5)
        assert noisy.finished

    def test_inner_accessor(self):
        inner = SyntheticJob("a", 10)
        assert CostNoiseJob(inner, 1.5).inner is inner

    def test_identity_preserved(self):
        inner = SyntheticJob("a", 10, priority=1)
        noisy = CostNoiseJob(inner, 0.5)
        assert noisy.query_id == "a"
        assert noisy.weight == inner.weight

    def test_validation(self):
        with pytest.raises(ValueError):
            CostNoiseJob(SyntheticJob("a", 1), 0.0)
