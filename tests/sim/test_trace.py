"""Tests for trace recording."""

import pytest

from repro.sim.trace import QueryTrace, TraceSet


class TestQueryTrace:
    def test_actual_remaining(self):
        t = QueryTrace("a", finished_at=100.0)
        assert t.actual_remaining(40.0) == 60.0
        assert t.actual_remaining(150.0) == 0.0

    def test_actual_remaining_requires_finish(self):
        t = QueryTrace("a")
        with pytest.raises(ValueError):
            t.actual_remaining(0.0)

    def test_response_time_and_queue_wait(self):
        t = QueryTrace("a", submitted_at=5.0, started_at=8.0, finished_at=20.0)
        assert t.response_time == 15.0
        assert t.queue_wait == 3.0

    def test_unfinished_response_time_none(self):
        assert QueryTrace("a").response_time is None
        assert QueryTrace("a").queue_wait is None

    def test_record_estimate(self):
        t = QueryTrace("a")
        t.record_estimate("multi-query", 1.0, 10.0)
        t.record_estimate("multi-query", 2.0, 9.0)
        assert list(t.estimates["multi-query"]) == [(1.0, 10.0), (2.0, 9.0)]


class TestTraceSet:
    def test_for_query_creates(self):
        ts = TraceSet()
        assert "a" not in ts
        trace = ts.for_query("a")
        assert "a" in ts
        assert ts["a"] is trace

    def test_finished_queries_sorted(self):
        ts = TraceSet()
        ts.for_query("a").finished_at = 30.0
        ts.for_query("b").finished_at = 10.0
        ts.for_query("c")  # unfinished
        done = ts.finished_queries()
        assert [t.query_id for t in done] == ["b", "a"]

    def test_last_finishing(self):
        ts = TraceSet()
        ts.for_query("a").finished_at = 30.0
        ts.for_query("b").finished_at = 10.0
        assert ts.last_finishing().query_id == "a"

    def test_last_finishing_empty_raises(self):
        with pytest.raises(ValueError):
            TraceSet().last_finishing()


class TestAttemptWorkAccounting:
    def test_starts_empty(self):
        trace = QueryTrace("q")
        assert trace.work_preserved == []
        assert trace.work_lost == []
        assert trace.preserved_work == 0.0
        assert trace.wasted_work == 0.0

    def test_record_attempt_work_accumulates(self):
        trace = QueryTrace("q")
        trace.record_attempt_work(40.0, 10.0)
        trace.record_attempt_work(0.0, 25.0)
        assert trace.work_preserved == [40.0, 0.0]
        assert trace.work_lost == [10.0, 25.0]
        assert trace.preserved_work == pytest.approx(40.0)
        assert trace.wasted_work == pytest.approx(35.0)

    def test_rejects_negative_amounts(self):
        trace = QueryTrace("q")
        with pytest.raises(ValueError):
            trace.record_attempt_work(-1.0, 0.0)
        with pytest.raises(ValueError):
            trace.record_attempt_work(0.0, -1.0)
