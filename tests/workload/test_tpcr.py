"""Tests for the TPC-R-style data generator and the paper's queries."""

import pytest

from repro.engine import use_decorrelation
from repro.sim.rdbms import SimulatedRDBMS
from repro.workload.queries import (
    engine_job,
    join_query,
    paper_query,
    prepare_paper_query,
    scan_query,
)
from repro.workload.tpcr import TpcrConfig, generate


@pytest.fixture(scope="module")
def dataset():
    return generate(TpcrConfig(scale=1 / 4000, seed=3), part_sizes={1: 3, 2: 1})


class TestGenerator:
    def test_lineitem_size_scales(self, dataset):
        cfg = dataset.config
        lineitem = dataset.db.catalog.table("lineitem")
        assert lineitem.heap.row_count == cfg.lineitem_tuples
        assert cfg.lineitem_tuples == 6000

    def test_part_tables_sized_ten_n(self, dataset):
        part1 = dataset.db.catalog.table("part_1")
        part2 = dataset.db.catalog.table("part_2")
        assert part1.heap.row_count == 30  # 10 * N_1
        assert part2.heap.row_count == 10

    def test_matches_per_part(self, dataset):
        """Each part tuple matches ~30 lineitem tuples on partkey."""
        db = dataset.db
        rows = db.query(
            "SELECT count(*) FROM part_1 p JOIN lineitem l ON l.partkey = p.partkey"
        )
        matches_per_part = rows[0][0] / 30
        assert matches_per_part == pytest.approx(30, rel=0.01)

    def test_distinct_partkeys_in_part_table(self, dataset):
        db = dataset.db
        total, distinct = db.query(
            "SELECT count(*), count(DISTINCT partkey) FROM part_1"
        )[0]
        assert total == distinct

    def test_lineitem_index_exists(self, dataset):
        table = dataset.db.catalog.table("lineitem")
        assert table.index_on("partkey") is not None

    def test_table_summary_shape(self, dataset):
        summary = dataset.table_summary()
        names = [name for name, _, _ in summary]
        assert names == ["lineitem", "part_1", "part_2"]
        for _, rows, pages in summary:
            assert rows > 0 and pages > 0

    def test_deterministic(self):
        a = generate(TpcrConfig(scale=1 / 8000, seed=9), part_sizes={1: 2})
        b = generate(TpcrConfig(scale=1 / 8000, seed=9), part_sizes={1: 2})
        assert a.db.query(paper_query(1)) == b.db.query(paper_query(1))


class TestPaperQueries:
    def test_paper_query_plans_index_scan(self, dataset):
        plan = dataset.db.explain(paper_query(1))
        assert "IndexScan" not in plan.split("\n")[0]  # outer is a seq scan
        assert "SeqScan part_1" in plan

    def test_paper_query_decorrelates_to_left_join(self, dataset):
        # The correlated scalar subquery is rewritten into a grouped
        # subplan LEFT-joined on partkey -- the vectorized batch path.
        plan = dataset.db.explain(paper_query(1))
        assert "HashLeftJoin" in plan
        assert "HashAggregate" in plan
        with use_decorrelation(False):
            fallback = dataset.db.explain(paper_query(1))
        assert "HashLeftJoin" not in fallback

    def test_paper_query_selects_some_parts(self, dataset):
        rows = dataset.db.query(paper_query(1))
        assert 0 < len(rows) < 30

    def test_join_and_scan_queries_run(self, dataset):
        assert len(dataset.db.query(join_query(1))) <= 10
        dataset.db.query(scan_query(2))

    def test_query_index_validation(self):
        with pytest.raises(ValueError):
            paper_query(0)
        with pytest.raises(ValueError):
            join_query(0)
        with pytest.raises(ValueError):
            scan_query(-1)

    def test_prepare_gives_steppable_execution(self, dataset):
        ex = prepare_paper_query(dataset.db, 1)
        assert ex.root.est_cost > 0
        ex.step(5.0)
        assert 0 < ex.work_done
        assert not ex.finished

    def test_cost_scales_with_part_size(self, dataset):
        # Decorrelated plans are page-granular, so the two tiny part
        # tables may tie; the estimate must never shrink as N grows.
        c1 = dataset.db.estimated_cost(paper_query(1))  # N=3 -> 30 rows
        c2 = dataset.db.estimated_cost(paper_query(2))  # N=1 -> 10 rows
        assert c1 >= c2
        # The per-row fallback path keeps the strict scaling the PI
        # experiments rely on.
        with use_decorrelation(False):
            f1 = dataset.db.estimated_cost(paper_query(1))
            f2 = dataset.db.estimated_cost(paper_query(2))
        assert f1 > f2


class TestEngineJobsUnderSimulator:
    def test_concurrent_paper_queries(self, dataset):
        rdbms = SimulatedRDBMS(processing_rate=100.0, quantum=0.25)
        jobs = [engine_job(dataset.db, f"Q{i}", i) for i in (1, 2)]
        for job in jobs:
            rdbms.submit(job)
        rdbms.run_to_completion(max_time=1e6)
        for job in jobs:
            assert job.finished
            assert rdbms.record(job.query_id).status == "finished"
            assert job.execution.rows == dataset.db.query(
                paper_query(int(job.query_id[1:]))
            )

    def test_estimates_refine_during_simulation(self, dataset):
        rdbms = SimulatedRDBMS(processing_rate=50.0, quantum=0.25)
        job = engine_job(dataset.db, "Q1", 1)
        initial = job.estimated_remaining_cost()
        rdbms.submit(job)
        rdbms.run_until(1.0)
        mid = job.estimated_remaining_cost()
        assert 0 < mid < initial

    def test_engine_jobs_respect_admission_queue(self, dataset):
        """The NAQ mechanics (paper §2.3) with real SQL executions."""
        rdbms = SimulatedRDBMS(
            processing_rate=100.0, quantum=0.25, multiprogramming_limit=1
        )
        q1 = engine_job(dataset.db, "Q1", 1)
        q2 = engine_job(dataset.db, "Q2", 2)
        rdbms.submit(q1)
        rdbms.submit(q2)
        assert rdbms.record("Q2").status == "queued"
        rdbms.run_to_completion(max_time=1e6)
        t1 = rdbms.traces["Q1"]
        t2 = rdbms.traces["Q2"]
        assert t2.started_at == pytest.approx(t1.finished_at, abs=0.5)
        assert q2.execution.rows == dataset.db.query(paper_query(2))

    def test_blocking_engine_job_freezes_progress(self, dataset):
        rdbms = SimulatedRDBMS(processing_rate=20.0, quantum=0.25)
        job = engine_job(dataset.db, "Q1", 1)
        filler = engine_job(dataset.db, "Q2", 2)
        rdbms.submit(job)
        rdbms.submit(filler)
        rdbms.run_until(1.0)
        rdbms.block("Q1")
        frozen = job.completed_work
        rdbms.run_until(3.0)
        assert job.completed_work == frozen
        rdbms.unblock("Q1")
        rdbms.run_to_completion(max_time=1e6)
        assert job.finished
