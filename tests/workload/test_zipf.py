"""Tests for the Zipf workload sampler."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.zipf import ZipfSampler, zipf_probabilities


class TestProbabilities:
    def test_normalised(self):
        probs = zipf_probabilities(1.2, 50)
        assert sum(probs) == pytest.approx(1.0)

    def test_monotone_decreasing_for_positive_a(self):
        probs = zipf_probabilities(2.2, 20)
        assert probs == sorted(probs, reverse=True)

    def test_a_zero_is_uniform(self):
        probs = zipf_probabilities(0.0, 4)
        assert probs == pytest.approx([0.25] * 4)

    def test_rank_ratio(self):
        probs = zipf_probabilities(1.0, 10)
        assert probs[0] / probs[1] == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_probabilities(1.0, 0)


class TestSampler:
    def test_deterministic_under_seed(self):
        a = ZipfSampler.over_range(1.2, 100, seed=9).sample_many(50)
        b = ZipfSampler.over_range(1.2, 100, seed=9).sample_many(50)
        assert a == b

    def test_values_in_range(self):
        samples = ZipfSampler.over_range(2.2, 10, seed=0).sample_many(500)
        assert all(1 <= s <= 10 for s in samples)

    def test_small_ranks_dominate(self):
        samples = ZipfSampler.over_range(2.2, 100, seed=1).sample_many(2000)
        ones = sum(1 for s in samples if s == 1)
        assert ones / len(samples) > 0.5  # Zipf(2.2) puts ~0.6 mass on rank 1

    def test_mean_matches_empirical(self):
        sampler = ZipfSampler.over_range(1.5, 20, seed=2)
        analytic = sampler.mean()
        empirical = sum(sampler.sample_many(20_000)) / 20_000
        assert empirical == pytest.approx(analytic, rel=0.05)

    def test_custom_values(self):
        sampler = ZipfSampler(1.0, [10.0, 20.0, 30.0], seed=3)
        assert set(sampler.sample_many(100)) <= {10.0, 20.0, 30.0}

    def test_probabilities_accessor(self):
        sampler = ZipfSampler.over_range(1.2, 5)
        assert sampler.probabilities() == pytest.approx(zipf_probabilities(1.2, 5))

    def test_size_biased_shifts_exponent(self):
        base = ZipfSampler.over_range(2.2, 50, seed=4)
        biased = base.size_biased()
        assert biased.a == pytest.approx(1.2)
        # Size-biased mean is strictly larger.
        assert biased.mean() > base.mean()

    def test_shared_rng(self):
        rng = random.Random(11)
        s1 = ZipfSampler.over_range(1.2, 10, rng)
        s2 = s1.size_biased()
        # Both draw from the same stream without raising.
        s1.sample()
        s2.sample()

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(1.0, [])

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler.over_range(1.0, 3).sample_many(-1)

    @given(a=st.floats(min_value=0.0, max_value=4.0), n=st.integers(1, 60))
    @settings(max_examples=40)
    def test_cdf_always_terminates_at_one(self, a, n):
        sampler = ZipfSampler.over_range(a, n, seed=0)
        assert sampler._cdf[-1] == 1.0
        for _ in range(10):
            v = sampler.sample()
            assert 1 <= v <= n
