"""Tests for derived tables (FROM-clause subqueries)."""

import pytest

from repro.engine import Database
from repro.engine.errors import ParseError, PlanError


@pytest.fixture()
def db():
    d = Database(page_capacity=5)
    d.execute("CREATE TABLE t (k INT, v FLOAT)")
    d.insert_rows("t", [(i % 4, float(i)) for i in range(40)])
    return d


class TestDerivedTables:
    def test_aggregate_in_from(self, db):
        rows = db.query(
            "SELECT d.k, d.total FROM "
            "(SELECT k, sum(v) AS total FROM t GROUP BY k) d "
            "WHERE d.total > 180 ORDER BY d.k"
        )
        assert rows == [(1, 190.0), (2, 200.0), (3, 210.0)]

    def test_count_over_distinct(self, db):
        assert db.query(
            "SELECT count(*) FROM (SELECT DISTINCT k FROM t) x"
        ) == [(4,)]

    def test_join_base_with_derived(self, db):
        rows = db.query(
            "SELECT a.k, b.total FROM t a "
            "JOIN (SELECT k, count(*) total FROM t GROUP BY k) b ON a.k = b.k "
            "WHERE a.v < 2 ORDER BY a.k"
        )
        assert rows == [(0, 10), (1, 10)]

    def test_union_as_derived_table(self, db):
        rows = db.query(
            "SELECT y.k FROM (SELECT k FROM t WHERE k = 1 "
            "UNION SELECT k FROM t WHERE k = 2) y ORDER BY y.k"
        )
        assert rows == [(1,), (2,)]

    def test_nested_derived_tables(self, db):
        rows = db.query(
            "SELECT z.n FROM (SELECT count(*) n FROM "
            "(SELECT DISTINCT k FROM t) inner_d) z"
        )
        assert rows == [(4,)]

    def test_alias_required(self, db):
        with pytest.raises(ParseError):
            db.query("SELECT 1 FROM (SELECT k FROM t)")

    def test_only_select_allowed(self, db):
        with pytest.raises(ParseError):
            db.query("SELECT 1 FROM (DELETE FROM t) x")

    def test_alias_scopes_columns(self, db):
        # The inner alias is not visible outside.
        with pytest.raises(PlanError):
            db.query("SELECT t.k FROM (SELECT k FROM t) d")

    def test_outer_columns_use_alias(self, db):
        rows = db.query("SELECT d.k FROM (SELECT k FROM t WHERE k = 3) d LIMIT 1")
        assert rows == [(3,)]

    def test_derived_table_is_steppable_and_costed(self, db):
        ex = db.prepare(
            "SELECT d.k FROM (SELECT k, sum(v) s FROM t GROUP BY k) d "
            "WHERE d.s > 0"
        )
        assert ex.root.est_cost > 0
        ex.run_to_completion()
        assert ex.work_done > 0
        assert len(ex.rows) == 4

    def test_star_expansion_over_derived(self, db):
        rows = db.query("SELECT * FROM (SELECT k, v FROM t WHERE v < 2) d ORDER BY v")
        assert rows == [(0, 0.0), (1, 1.0)]
