"""End-to-end SQL tests through the Database facade."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database
from repro.engine.errors import CatalogError, ExecutionError, PlanError, SqlTypeError


@pytest.fixture()
def db():
    d = Database(page_capacity=4)
    d.execute("CREATE TABLE nums (k INT, v FLOAT, tag TEXT)")
    d.execute(
        "INSERT INTO nums VALUES "
        "(1, 10.0, 'a'), (2, 20.0, 'b'), (3, 30.0, 'a'), "
        "(4, 40.0, NULL), (5, 50.0, 'b'), (6, NULL, 'c')"
    )
    return d


class TestBasicQueries:
    def test_select_star(self, db):
        rows = db.query("SELECT * FROM nums")
        assert len(rows) == 6
        assert rows[0] == (1, 10.0, "a")

    def test_projection_and_filter(self, db):
        rows = db.query("SELECT k FROM nums WHERE v > 25")
        assert rows == [(3,), (4,), (5,)]

    def test_expressions(self, db):
        rows = db.query("SELECT k * 2 + 1 FROM nums WHERE k = 2")
        assert rows == [(5,)]

    def test_null_filtering(self, db):
        assert db.query("SELECT k FROM nums WHERE tag IS NULL") == [(4,)]
        assert len(db.query("SELECT k FROM nums WHERE tag IS NOT NULL")) == 5
        # NULL comparisons exclude rows.
        assert db.query("SELECT k FROM nums WHERE v > 1000 OR v IS NULL") == [(6,)]

    def test_order_by(self, db):
        rows = db.query("SELECT k FROM nums WHERE v IS NOT NULL ORDER BY v DESC")
        assert rows == [(5,), (4,), (3,), (2,), (1,)]

    def test_order_by_position(self, db):
        rows = db.query("SELECT k, v FROM nums WHERE v IS NOT NULL ORDER BY 2 DESC")
        assert [r[0] for r in rows] == [5, 4, 3, 2, 1]
        from repro.engine.errors import PlanError

        with pytest.raises(PlanError):
            db.query("SELECT k FROM nums ORDER BY 2")
        with pytest.raises(PlanError):
            db.query("SELECT k FROM nums ORDER BY 0")

    def test_order_by_alias_and_expression(self, db):
        rows = db.query("SELECT k, v * -1 AS neg FROM nums WHERE k <= 3 ORDER BY neg")
        assert [r[0] for r in rows] == [3, 2, 1]
        rows = db.query("SELECT k FROM nums WHERE k <= 3 ORDER BY v * -1")
        assert [r[0] for r in rows] == [3, 2, 1]

    def test_limit_offset(self, db):
        rows = db.query("SELECT k FROM nums ORDER BY k LIMIT 2 OFFSET 1")
        assert rows == [(2,), (3,)]

    def test_distinct(self, db):
        rows = db.query("SELECT DISTINCT tag FROM nums WHERE tag IS NOT NULL ORDER BY tag")
        assert rows == [("a",), ("b",), ("c",)]

    def test_select_without_from(self, db):
        assert db.query("SELECT 1 + 1, 'x'") == [(2, "x")]

    def test_like(self, db):
        assert db.query("SELECT k FROM nums WHERE tag LIKE 'a%'") == [(1,), (3,)]


class TestAggregates:
    def test_global_aggregates(self, db):
        rows = db.query("SELECT count(*), count(v), sum(v), min(v), max(v), avg(v) FROM nums")
        assert rows == [(6, 5, 150.0, 10.0, 50.0, 30.0)]

    def test_group_by(self, db):
        rows = db.query(
            "SELECT tag, count(*) n FROM nums WHERE tag IS NOT NULL "
            "GROUP BY tag ORDER BY tag"
        )
        assert rows == [("a", 2), ("b", 2), ("c", 1)]

    def test_having(self, db):
        rows = db.query(
            "SELECT tag, count(*) n FROM nums GROUP BY tag HAVING count(*) >= 2 "
            "ORDER BY tag"
        )
        assert rows == [("a", 2), ("b", 2)]

    def test_aggregate_on_empty_input(self, db):
        rows = db.query("SELECT count(*), sum(v) FROM nums WHERE k > 99")
        assert rows == [(0, None)]

    def test_group_by_on_empty_input(self, db):
        rows = db.query("SELECT tag, count(*) FROM nums WHERE k > 99 GROUP BY tag")
        assert rows == []

    def test_count_distinct(self, db):
        rows = db.query("SELECT count(DISTINCT tag) FROM nums")
        assert rows == [(3,)]

    def test_aggregate_expression(self, db):
        rows = db.query("SELECT sum(v) / count(v) FROM nums")
        assert rows == [(30.0,)]

    def test_group_by_expression(self, db):
        rows = db.query(
            "SELECT k % 2, count(*) FROM nums GROUP BY k % 2 ORDER BY k % 2"
        )
        assert rows == [(0, 3), (1, 3)]

    def test_ungrouped_column_rejected(self, db):
        with pytest.raises(PlanError):
            db.query("SELECT v, count(*) FROM nums GROUP BY tag")

    def test_nested_aggregate_rejected(self, db):
        with pytest.raises(PlanError):
            db.query("SELECT sum(count(*)) FROM nums")


class TestJoins:
    @pytest.fixture()
    def jdb(self, db):
        db.execute("CREATE TABLE names (k INT, name TEXT)")
        db.execute(
            "INSERT INTO names VALUES (1, 'one'), (2, 'two'), (7, 'seven')"
        )
        return db

    def test_inner_join(self, jdb):
        rows = jdb.query(
            "SELECT n.k, names.name FROM nums n JOIN names ON n.k = names.k "
            "ORDER BY n.k"
        )
        assert rows == [(1, "one"), (2, "two")]

    def test_comma_join_with_where(self, jdb):
        rows = jdb.query(
            "SELECT n.k, m.name FROM nums n, names m WHERE n.k = m.k ORDER BY n.k"
        )
        assert rows == [(1, "one"), (2, "two")]

    def test_cross_join(self, jdb):
        rows = jdb.query("SELECT count(*) FROM nums CROSS JOIN names")
        assert rows == [(18,)]

    def test_join_with_extra_filters(self, jdb):
        rows = jdb.query(
            "SELECT n.k FROM nums n JOIN names m ON n.k = m.k WHERE n.v > 15"
        )
        assert rows == [(2,)]

    def test_non_equi_join(self, jdb):
        rows = jdb.query(
            "SELECT count(*) FROM nums n JOIN names m ON n.k < m.k"
        )
        # pairs with n.k < m.k: m.k=2 (k=1), m.k=7 (k=1..6): 1 + 6 = 7
        assert rows == [(7,)]

    def test_self_join(self, jdb):
        rows = jdb.query(
            "SELECT a.k, b.k FROM names a JOIN names b ON a.k = b.k"
        )
        assert len(rows) == 3


class TestSubqueries:
    def test_uncorrelated_scalar(self, db):
        rows = db.query("SELECT k FROM nums WHERE v > (SELECT avg(v) FROM nums)")
        assert rows == [(4,), (5,)]

    def test_correlated_scalar(self, db):
        db.execute("CREATE TABLE pairs (k INT, w FLOAT)")
        db.execute("INSERT INTO pairs VALUES (1, 5.0), (1, 15.0), (2, 100.0)")
        rows = db.query(
            "SELECT k FROM nums n WHERE n.v > "
            "(SELECT sum(p.w) FROM pairs p WHERE p.k = n.k)"
        )
        # k=1: 10 > 20? no. k=2: 20 > 100? no. k>=3: NULL comparison -> no.
        assert rows == []
        rows = db.query(
            "SELECT k FROM nums n WHERE n.v >= "
            "(SELECT sum(p.w) FROM pairs p WHERE p.k = n.k) / 2"
        )
        assert rows == [(1,)]

    def test_exists(self, db):
        db.execute("CREATE TABLE flags (k INT)")
        db.execute("INSERT INTO flags VALUES (2), (4)")
        rows = db.query(
            "SELECT k FROM nums n WHERE EXISTS "
            "(SELECT 1 FROM flags f WHERE f.k = n.k)"
        )
        assert rows == [(2,), (4,)]
        rows = db.query(
            "SELECT count(*) FROM nums n WHERE NOT EXISTS "
            "(SELECT 1 FROM flags f WHERE f.k = n.k)"
        )
        assert rows == [(4,)]

    def test_in_subquery(self, db):
        db.execute("CREATE TABLE flags (k INT)")
        db.execute("INSERT INTO flags VALUES (1), (3)")
        assert db.query(
            "SELECT k FROM nums WHERE k IN (SELECT k FROM flags)"
        ) == [(1,), (3,)]
        assert db.query(
            "SELECT count(*) FROM nums WHERE k NOT IN (SELECT k FROM flags)"
        ) == [(4,)]

    def test_scalar_subquery_multiple_rows_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT k FROM nums WHERE v > (SELECT v FROM nums)")

    def test_scalar_subquery_no_rows_is_null(self, db):
        rows = db.query(
            "SELECT k FROM nums WHERE v > (SELECT v FROM nums WHERE k > 99)"
        )
        assert rows == []


class TestDDLAndDML:
    def test_insert_with_column_list(self, db):
        db.execute("CREATE TABLE t2 (a INT, b TEXT)")
        n = db.execute("INSERT INTO t2 (b, a) VALUES ('x', 1)")
        assert n == 1
        assert db.query("SELECT a, b FROM t2") == [(1, "x")]

    def test_insert_arity_error(self, db):
        with pytest.raises(PlanError):
            db.execute("INSERT INTO nums (k) VALUES (1, 2)")

    def test_type_errors_on_insert(self, db):
        with pytest.raises(SqlTypeError):
            db.execute("INSERT INTO nums VALUES ('oops', 1.0, 'x')")

    def test_drop_table(self, db):
        db.execute("DROP TABLE nums")
        with pytest.raises(CatalogError):
            db.query("SELECT 1 FROM nums")

    def test_duplicate_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE nums (x INT)")

    def test_create_index_then_lookup(self, db):
        db.execute("CREATE INDEX nums_k ON nums (k)")
        assert db.query("SELECT v FROM nums WHERE k = 3") == [(30.0,)]

    def test_prepare_requires_select(self, db):
        with pytest.raises(PlanError):
            db.prepare("DROP TABLE nums")
        with pytest.raises(PlanError):
            db.query("DROP TABLE nums")

    def test_explain_output(self, db):
        plan = db.explain("SELECT k FROM nums WHERE v > 10")
        assert "SeqScan" in plan
        assert "cost=" in plan

    def test_estimated_cost_positive(self, db):
        assert db.estimated_cost("SELECT * FROM nums") > 0


class TestIndexVsSeqScanEquivalence:
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=60),
        probe=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_same_results_with_and_without_index(self, keys, probe):
        plain = Database(page_capacity=3)
        plain.execute("CREATE TABLE t (k INT)")
        plain.insert_rows("t", [(k,) for k in keys])

        indexed = Database(page_capacity=3)
        indexed.execute("CREATE TABLE t (k INT)")
        indexed.insert_rows("t", [(k,) for k in keys])
        indexed.execute("CREATE INDEX t_k ON t (k)")
        indexed.analyze()

        sql = f"SELECT k FROM t WHERE k = {probe}"
        assert sorted(plain.query(sql)) == sorted(indexed.query(sql))
        assert "IndexScan" in indexed.explain(sql)
        assert "SeqScan" in plain.explain(sql)
