"""Differential suite for the columnar page layout (row mode = oracle).

The columnar refactor changed *how* pages are stored and read (column
vectors + selection vectors, late materialization) but must not change
*anything* observable: for every workload template, a hypothesis corpus of
generated SQL, the awkward vector widths (1, 7, 1024) and several page
capacities, the batch engine must produce byte-identical rows and charge
the identical work total -- including mid-chunk checkpoint/restores,
cancellation, memory pressure, and with the optional numpy acceleration
disabled (the soft dependency may speed gathers up, never change them).

Also pins the RID-probe invariant: index probes charge 1 U per *page*
touched under the columnar layout, exactly as under the row layout and
exactly as in row mode.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import CancellationToken, Database, QueryCancelled
from repro.engine import vector as vector_mod
from repro.engine.vector import Chunk, ColumnVector
from repro.workload.queries import join_query, paper_query, scan_query
from repro.workload.tpcr import TpcrConfig, generate

BATCH_SIZES = (1, 7, 1024)
PAGE_CAPACITIES = (1, 3, 50)


@pytest.fixture(scope="module")
def dataset():
    return generate(TpcrConfig(scale=1 / 4000, seed=5), part_sizes={1: 4})


def run(db, sql, mode, batch_size=None, **kw):
    ex = db.prepare(sql, execution_mode=mode, batch_size=batch_size, **kw)
    rows = ex.run_to_completion()
    return rows, ex.work_done, ex


@pytest.fixture(params=["numpy", "pure-python"])
def numpy_mode(request, monkeypatch):
    """Run the decorated test twice: with and without the numpy mirror."""
    if request.param == "pure-python":
        monkeypatch.setattr(vector_mod, "_np", None)
    return request.param


class TestColumnVector:
    def test_metadata_tracking(self):
        v = ColumnVector()
        assert v.kind == "empty" and not v.has_null
        v.push(1)
        assert v.kind == "int"
        v.push(2.5)
        assert v.kind == "num"
        v.push(None)
        assert v.has_null
        assert not v.is_clean_numeric

    def test_bool_is_not_numeric(self):
        v = ColumnVector([True, 1])
        assert v.kind == "other"

    def test_take_preserves_metadata(self, numpy_mode):
        v = ColumnVector(list(range(200)))
        sub = v.take([5, 3, 199])
        assert list(sub) == [5, 3, 199]
        assert sub.kind == "int" and not sub.has_null
        assert list(v.take(range(2, 5))) == [2, 3, 4]

    def test_numpy_gather_matches_pure_python(self):
        if not vector_mod.numpy_enabled():
            pytest.skip("numpy not available in this build")
        sel = [3, 0, 150, 99] * 20  # above the gather threshold
        ints = ColumnVector(list(range(151)))
        floats = ColumnVector([i * 0.1 for i in range(151)])
        for col in (ints, floats):
            fast = col.take(sel)
            slow = [col[i] for i in sel]
            assert list(fast) == slow
            assert all(type(a) is type(b) for a, b in zip(fast, slow))

    def test_huge_ints_disable_mirror_not_results(self):
        v = ColumnVector([2**80, 1, 2] * 40)
        sub = v.take(list(range(60)))
        assert sub[0] == 2**80


class TestChunk:
    def test_selection_composition(self):
        c = Chunk([ColumnVector([10, 11, 12, 13]), ColumnVector("abcd")])
        assert len(c) == 4
        narrowed = c.take([0, 2, 3])
        again = narrowed.take([1, 2])
        assert again.tuples() == [(12, "c"), (13, "d")]
        assert list(again) == [(12, "c"), (13, "d")]

    def test_slicing_stays_columnar(self):
        c = Chunk([ColumnVector(range(10))])
        s = c[2:5]
        assert type(s) is Chunk
        assert s.tuples() == [(2,), (3,), (4,)]
        assert c[3] == (3,)

    def test_zero_copy_column(self):
        col = ColumnVector([1, 2, 3])
        c = Chunk([col])
        assert c.column(0) is col


class TestWorkloadTemplates:
    @pytest.mark.parametrize(
        "sql",
        [paper_query(1), join_query(1), scan_query(1)],
        ids=["paper", "join_agg", "scan_sort"],
    )
    def test_rows_and_work_identical(self, dataset, sql, numpy_mode):
        db = dataset.db
        oracle_rows, oracle_work, _ = run(db, sql, "row")
        for width in BATCH_SIZES:
            rows, work, _ = run(db, sql, "batch", batch_size=width)
            assert rows == oracle_rows, f"width={width}"
            assert work == oracle_work, f"width={width}"


SQL_CORPUS = [
    "SELECT k, v FROM t WHERE k > 0",
    "SELECT count(*), sum(v), min(v), max(k), avg(v) FROM t",
    "SELECT count(*), sum(k), min(k), max(k) FROM t WHERE k <> 1",
    "SELECT k, count(*) c, sum(v) s, min(v), max(v) FROM t GROUP BY k ORDER BY k",
    "SELECT DISTINCT k FROM t ORDER BY k",
    "SELECT k, v FROM t ORDER BY v DESC, k LIMIT 5",
    "SELECT a.k, b.v FROM t a JOIN t b ON a.k = b.k WHERE a.v > b.v",
    "SELECT k FROM t WHERE k IN (1, 2, 3) OR v IS NULL",
    "SELECT CASE WHEN k > 0 THEN v ELSE -1 END FROM t WHERE k IS NOT NULL",
    "SELECT abs(v), k * 2 + 1 FROM t WHERE k > -2 AND v < 40",
    "SELECT * FROM t p WHERE p.v > (SELECT avg(v) FROM t WHERE k = p.k)",
]


@st.composite
def small_tables(draw):
    n = draw(st.integers(min_value=0, max_value=30))
    return [
        (
            draw(st.one_of(st.none(), st.integers(-4, 4))),
            draw(
                st.one_of(
                    st.none(),
                    st.floats(-50, 50, allow_nan=False),
                    st.integers(-50, 50),
                )
            ),
        )
        for _ in range(n)
    ]


class TestHypothesisCorpus:
    @given(
        rows=small_tables(),
        sql=st.sampled_from(SQL_CORPUS),
        width=st.sampled_from(BATCH_SIZES),
        page=st.sampled_from(PAGE_CAPACITIES),
        use_numpy=st.booleans(),
    )
    @settings(max_examples=150, deadline=None)
    def test_columnar_batch_matches_row_oracle(
        self, rows, sql, width, page, use_numpy
    ):
        saved_np = vector_mod._np
        if not use_numpy:
            vector_mod._np = None
        try:
            db = Database(page_capacity=page)
            db.execute("CREATE TABLE t (k INT, v FLOAT)")
            db.insert_rows("t", rows)
            oracle_rows, oracle_work, _ = run(db, sql, "row")
            got_rows, got_work, _ = run(db, sql, "batch", batch_size=width)
            assert got_rows == oracle_rows
            # Byte-identical, not merely equal: 1 == 1.0 in Python, but the
            # layout must also preserve every value's type.
            assert [tuple(map(type, r)) for r in got_rows] == [
                tuple(map(type, r)) for r in oracle_rows
            ]
            assert got_work == oracle_work
        finally:
            vector_mod._np = saved_np


class TestCheckpointMidChunk:
    @pytest.mark.parametrize("width", BATCH_SIZES)
    def test_restore_inside_a_page(self, width, numpy_mode):
        """A resume offset that lands mid-page re-enters the columnar
        chunk via a range selection; rows and work must still match."""
        db = Database(page_capacity=50)
        db.execute("CREATE TABLE t (k INT, v FLOAT)")
        db.insert_rows("t", [(i % 5, float(i)) for i in range(173)])
        sql = "SELECT k, sum(v) FROM t WHERE k <> 3 GROUP BY k ORDER BY k"
        oracle_rows, oracle_work, _ = run(db, sql, "row")

        ex = db.prepare(
            sql, checkpoint_interval=1.0, execution_mode="batch",
            batch_size=width,
        )
        ex.step(1.0)
        ckpt = ex.last_checkpoint
        assert ckpt is not None
        resumed = db.prepare(
            sql, checkpoint_interval=1.0, execution_mode="batch",
            batch_size=width,
        )
        resumed.restore(ckpt)
        rows = resumed.run_to_completion()
        assert rows == oracle_rows
        assert resumed.work_done == oracle_work

    def test_cross_mode_restore_columnar(self, dataset):
        db = dataset.db
        sql = scan_query(1)
        oracle_rows, oracle_work, _ = run(db, sql, "row")
        ex = db.prepare(sql, checkpoint_interval=1.0, execution_mode="batch",
                        batch_size=7)
        ex.step(1.0)
        ckpt = ex.last_checkpoint
        assert ckpt is not None
        resumed = db.prepare(sql, execution_mode="row")
        resumed.restore(ckpt)
        assert resumed.run_to_completion() == oracle_rows
        assert resumed.work_done == oracle_work


class TestCancelAndMemoryEquivalence:
    @pytest.mark.parametrize("width", BATCH_SIZES)
    def test_cancel_fires_in_both_modes(self, dataset, width):
        db = dataset.db
        sql = join_query(1)
        for mode, bs in (("row", None), ("batch", width)):
            tok = CancellationToken()
            ex = db.prepare(sql, cancel_token=tok, execution_mode=mode,
                            batch_size=bs)
            ex.step(5.0)
            tok.cancel("test")
            with pytest.raises(QueryCancelled):
                ex.step(5.0)
            assert not ex.finished

    @pytest.mark.parametrize("width", BATCH_SIZES)
    def test_memory_pressure_equivalence(self, dataset, width, numpy_mode):
        db = dataset.db
        sql = join_query(1)
        row_rows, row_work, row_ex = run(db, sql, "row", memory_budget=64)
        rows, work, ex = run(
            db, sql, "batch", batch_size=width, memory_budget=64
        )
        assert ex.progress.memory_pressure_events() > 0
        assert (
            ex.progress.memory_pressure_events()
            == row_ex.progress.memory_pressure_events()
        )
        assert rows == row_rows
        assert work == row_work


class TestRidProbeInvariant:
    """Satellite: fetch-by-RID charges 1 U per page touched, both layouts
    of the batch dimension (row mode vs columnar batch mode) agreeing."""

    def _db(self, page_capacity=10):
        db = Database(page_capacity=page_capacity)
        db.execute("CREATE TABLE t (k INT, v FLOAT)")
        # k repeats every 7 rows, so one key's RIDs spread across pages.
        db.insert_rows("t", [(i % 7, float(i)) for i in range(210)])
        db.execute("CREATE INDEX t_k ON t (k)")
        db.analyze()
        return db

    def test_equality_probe_work_parity(self):
        db = self._db()
        sql = "SELECT v FROM t WHERE k = 3"
        plan = db.explain(sql)
        assert "IndexScan" in plan, plan
        row_rows, row_work, _ = run(db, sql, "row")
        for width in BATCH_SIZES:
            rows, work, _ = run(db, sql, "batch", batch_size=width)
            assert rows == row_rows
            assert work == row_work

    def test_probe_charges_one_u_per_distinct_page(self):
        db = self._db()
        table = db.catalog.table("t")
        index = table.indexes["t_k"]
        rids = index.search(3)
        distinct_pages = len({rid.page_no for rid in rids})
        assert distinct_pages > 1  # the key genuinely spans pages
        _, work, _ = run(db, "SELECT v FROM t WHERE k = 3", "batch")
        assert work == index.lookup_cost(len(rids)) + distinct_pages

    def test_range_probe_work_parity(self):
        db = self._db()
        sql = "SELECT v FROM t WHERE k BETWEEN 1 AND 2"
        plan = db.explain(sql)
        assert "RangeIndexScan" in plan, plan
        row_rows, row_work, _ = run(db, sql, "row")
        for width in BATCH_SIZES:
            rows, work, _ = run(db, sql, "batch", batch_size=width)
            assert rows == row_rows
            assert work == row_work

    def test_fetch_builds_identical_tuples(self):
        db = self._db(page_capacity=3)
        table = db.catalog.table("t")
        heap = table.heap
        by_scan = {rid: row for rid, row in heap.scan_rows()}
        for rid, row in by_scan.items():
            assert heap.fetch(rid) == row


class TestPageCapacityPlumbing:
    """Satellite: per-table page_capacity through create_table, catalog
    stats, and EXPLAIN output."""

    def test_create_table_override(self):
        db = Database(page_capacity=50)
        db.create_table("CREATE TABLE small (k INT)", page_capacity=5)
        db.execute("CREATE TABLE dflt (k INT)")
        db.insert_rows("small", [(i,) for i in range(20)])
        db.insert_rows("dflt", [(i,) for i in range(20)])
        assert db.catalog.table("small").heap.page_count == 4
        assert db.catalog.table("dflt").heap.page_count == 1

    def test_override_survives_update_rewrite(self):
        db = Database(page_capacity=50)
        db.create_table("CREATE TABLE s (k INT)", page_capacity=5)
        db.insert_rows("s", [(i,) for i in range(20)])
        db.execute("UPDATE s SET k = k + 1 WHERE k > 5")
        assert db.catalog.table("s").heap.page_capacity == 5
        assert db.catalog.table("s").heap.page_count == 4

    def test_analyze_records_capacity(self):
        db = Database(page_capacity=50)
        db.create_table("CREATE TABLE s (k INT)", page_capacity=7)
        db.insert_rows("s", [(i,) for i in range(10)])
        db.analyze("s")
        assert db.catalog.table("s").stats.page_capacity == 7

    def test_explain_shows_pages_and_capacity(self):
        db = Database(page_capacity=50)
        db.create_table("CREATE TABLE s (k INT)", page_capacity=5)
        db.insert_rows("s", [(i,) for i in range(20)])
        plan = db.explain("SELECT k FROM s")
        assert "SeqScan s" in plan
        assert "[pages=4 cap=5]" in plan

    def test_capacity_sweep_same_results_different_work(self):
        results, works = [], []
        for cap in (2, 10, 100):
            db = Database(page_capacity=cap)
            db.execute("CREATE TABLE t (k INT, v FLOAT)")
            db.insert_rows("t", [(i % 3, float(i)) for i in range(100)])
            rows, work, _ = run(
                db, "SELECT k, sum(v) FROM t GROUP BY k ORDER BY k", "batch"
            )
            results.append(rows)
            works.append(work)
        assert results[0] == results[1] == results[2]
        assert works[0] > works[1] > works[2]  # fewer, bigger pages
