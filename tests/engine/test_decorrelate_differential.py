"""Differential corpus: decorrelated batch plans vs. the naive row oracle.

The row engine with decorrelation disabled executes correlated subqueries
the pre-rewrite way (per-outer-row subplans) and is the semantics oracle.
Every query in the corpus runs both ways over hypothesis-generated data --
including empty inner tables, NULL correlation keys, NULL values inside
IN groups, and duplicate outer keys -- and the rows must be identical.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database, use_decorrelation

#: Queries the rewrite provably fires on (asserted below).
REWRITTEN_CORPUS = [
    "SELECT t.k, t.v FROM t WHERE t.v > "
    "(SELECT avg(s.v) FROM s WHERE s.k = t.k)",
    "SELECT t.k, (SELECT count(*) FROM s WHERE s.k = t.k) FROM t",
    "SELECT t.k, (SELECT count(s.v) FROM s WHERE s.k = t.k) FROM t",
    "SELECT t.k, (SELECT sum(s.v) FROM s WHERE s.k = t.k) FROM t",
    "SELECT t.k, (SELECT min(s.v) FROM s WHERE s.k = t.k AND s.v > 0) FROM t",
    "SELECT t.v, (SELECT max(s.v) FROM s WHERE s.k = t.k) m FROM t ORDER BY t.v",
    "SELECT t.k FROM t WHERE t.v > "
    "(SELECT sum(s.v) / count(s.v) FROM s WHERE s.k = t.k)",
    "SELECT t.k FROM t WHERE EXISTS (SELECT 1 FROM s WHERE s.k = t.k)",
    "SELECT t.k FROM t WHERE NOT EXISTS "
    "(SELECT 1 FROM s WHERE s.k = t.k AND s.v < 0)",
    "SELECT count(*) FROM t WHERE EXISTS (SELECT 1 FROM s WHERE s.k = t.k)",
    "SELECT t.k, t.v FROM t WHERE t.v IN "
    "(SELECT s.v FROM s WHERE s.k = t.k)",
    "SELECT t.k, t.v FROM t WHERE t.v NOT IN "
    "(SELECT s.v FROM s WHERE s.k = t.k)",
    "SELECT t.k FROM t WHERE 0 IN (SELECT s.v FROM s WHERE s.k = t.k)",
]

#: Queries the safety conditions must leave on the row-loop path; they
#: still have to match the oracle (trivially -- same plan -- but they
#: guard against the rewrite firing where it must not).
FALLBACK_CORPUS = [
    "SELECT t.k FROM t WHERE t.v > "
    "(SELECT avg(s.v) FROM s WHERE s.k < t.k)",
    "SELECT t.k FROM t WHERE t.v > (SELECT avg(s.v) FROM s)",
    "SELECT t.k FROM t WHERE t.v IN "
    "(SELECT s.v + 0 FROM s WHERE s.k = t.k)",
]

BATCH_SIZES = (1, 7, 1024)


@st.composite
def key_value_rows(draw):
    n = draw(st.integers(min_value=0, max_value=25))
    return [
        (
            draw(st.one_of(st.none(), st.integers(-3, 3))),
            draw(
                st.one_of(
                    st.none(),
                    st.integers(-40, 40),
                    st.floats(-40, 40, allow_nan=False),
                )
            ),
        )
        for _ in range(n)
    ]


def build(rows_t, rows_s, page):
    db = Database(page_capacity=page)
    db.execute("CREATE TABLE t (k INT, v FLOAT)")
    db.execute("CREATE TABLE s (k INT, v FLOAT)")
    db.insert_rows("t", rows_t)
    db.insert_rows("s", rows_s)
    return db


class TestRewrittenCorpus:
    @pytest.mark.parametrize("sql", REWRITTEN_CORPUS)
    def test_pass_fires(self, sql):
        db = build([(1, 1.0)], [(1, 1.0)], 8)
        assert "#dc" in db.explain(sql), "corpus entry did not decorrelate"

    @given(
        rows_t=key_value_rows(),
        rows_s=key_value_rows(),
        sql=st.sampled_from(REWRITTEN_CORPUS),
        width=st.sampled_from(BATCH_SIZES),
        page=st.sampled_from([1, 4, 50]),
    )
    @settings(max_examples=150, deadline=None)
    def test_batch_matches_naive_row_oracle(
        self, rows_t, rows_s, sql, width, page
    ):
        db = build(rows_t, rows_s, page)
        got = db.prepare(
            sql, execution_mode="batch", batch_size=width
        ).run_to_completion()
        with use_decorrelation(False):
            want = db.prepare(sql, execution_mode="row").run_to_completion()
        assert got == want

    @given(
        rows_t=key_value_rows(),
        rows_s=key_value_rows(),
        sql=st.sampled_from(REWRITTEN_CORPUS),
    )
    @settings(max_examples=40, deadline=None)
    def test_decorrelated_modes_agree_on_work(self, rows_t, rows_s, sql):
        """Row and batch execution of the *same* rewritten plan stay
        work-identical -- the engine's core mode invariant."""
        db = build(rows_t, rows_s, 4)
        ex_b = db.prepare(sql, execution_mode="batch")
        rows_b = ex_b.run_to_completion()
        ex_r = db.prepare(sql, execution_mode="row")
        rows_r = ex_r.run_to_completion()
        assert rows_b == rows_r
        assert ex_b.work_done == ex_r.work_done


class TestFallbackCorpus:
    @pytest.mark.parametrize("sql", FALLBACK_CORPUS)
    def test_pass_does_not_fire(self, sql):
        db = build([(1, 1.0)], [(1, 1.0)], 8)
        assert "#dc" not in db.explain(sql)

    @given(
        rows_t=key_value_rows(),
        rows_s=key_value_rows(),
        sql=st.sampled_from(FALLBACK_CORPUS),
        width=st.sampled_from(BATCH_SIZES),
    )
    @settings(max_examples=40, deadline=None)
    def test_fallback_matches_oracle(self, rows_t, rows_s, sql, width):
        db = build(rows_t, rows_s, 8)
        got = db.prepare(
            sql, execution_mode="batch", batch_size=width
        ).run_to_completion()
        with use_decorrelation(False):
            want = db.prepare(sql, execution_mode="row").run_to_completion()
        assert got == want
