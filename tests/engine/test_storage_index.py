"""Tests for heap storage and the simulated B-tree index."""

import pytest

from repro.engine.errors import ExecutionError
from repro.engine.index import BTreeIndex
from repro.engine.storage import RID, HeapFile, Page


class TestPage:
    def test_capacity(self):
        p = Page(2)
        p.append((1,))
        p.append((2,))
        assert p.full
        with pytest.raises(ExecutionError):
            p.append((3,))

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Page(0)


class TestHeapFile:
    def test_append_and_fetch(self):
        h = HeapFile(page_capacity=2)
        rids = [h.append((i,)) for i in range(5)]
        assert h.row_count == 5
        assert h.page_count == 3
        assert rids[0] == RID(0, 0)
        assert rids[2] == RID(1, 0)
        assert h.fetch(rids[4]) == (4,)

    def test_scan_rows_in_order(self):
        h = HeapFile(page_capacity=3)
        for i in range(7):
            h.append((i,))
        rows = [row for _, row in h.scan_rows()]
        assert rows == [(i,) for i in range(7)]

    def test_scan_pages(self):
        h = HeapFile(page_capacity=3)
        for i in range(7):
            h.append((i,))
        pages = list(h.scan_pages())
        assert [n for n, _ in pages] == [0, 1, 2]
        assert len(pages[2][1]) == 1

    def test_dangling_fetch(self):
        h = HeapFile()
        with pytest.raises(ExecutionError):
            h.fetch(RID(0, 0))
        h.append((1,))
        with pytest.raises(ExecutionError):
            h.fetch(RID(0, 5))

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            HeapFile(page_capacity=0)


class TestBTreeIndex:
    def _index(self, n=1000, per_key=1):
        idx = BTreeIndex("i", "t", "c", fanout=4, leaf_capacity=8)
        for k in range(n):
            for j in range(per_key):
                idx.insert(k, RID(k // 10, j))
        return idx

    def test_search(self):
        idx = self._index(100, per_key=3)
        assert len(idx.search(5)) == 3
        assert idx.search(1000) == []
        assert idx.search(None) == []

    def test_null_keys_not_indexed(self):
        idx = BTreeIndex("i", "t", "c")
        idx.insert(None, RID(0, 0))
        assert idx.entry_count == 0

    def test_height_grows_with_keys(self):
        small = self._index(5)
        big = self._index(5000)
        assert small.height() < big.height()
        assert small.height() >= 1

    def test_lookup_cost(self):
        idx = self._index(1000)
        base = idx.lookup_cost(1)
        assert base == idx.height()
        assert idx.lookup_cost(100) > base

    def test_search_range(self):
        idx = self._index(20)
        keys = [k for k, _ in idx.search_range(5, 8)]
        assert keys == [5, 6, 7, 8]
        keys = [k for k, _ in idx.search_range(5, 8, low_inclusive=False,
                                               high_inclusive=False)]
        assert keys == [6, 7]
        assert [k for k, _ in idx.search_range(18, None)] == [18, 19]

    def test_min_max(self):
        idx = self._index(10)
        assert idx.min_key() == 0
        assert idx.max_key() == 9
        empty = BTreeIndex("i", "t", "c")
        assert empty.min_key() is None

    def test_unhashable_probe(self):
        idx = self._index(10)
        with pytest.raises(ExecutionError):
            idx.search([1, 2])

    def test_validation(self):
        with pytest.raises(ValueError):
            BTreeIndex("i", "t", "c", fanout=1)
        with pytest.raises(ValueError):
            BTreeIndex("i", "t", "c", leaf_capacity=0)
