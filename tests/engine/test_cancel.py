"""Tests for cooperative query cancellation."""

import random

import pytest

from repro.engine import CancellationToken, Database, QueryCancelled
from repro.engine.operators.base import WorkAccount


@pytest.fixture()
def db():
    d = Database(page_capacity=10)
    rng = random.Random(9)
    d.execute("CREATE TABLE t (k INT, v FLOAT)")
    d.insert_rows("t", [(i, rng.random()) for i in range(300)])
    d.analyze()
    return d


class TestToken:
    def test_starts_uncancelled(self):
        tok = CancellationToken()
        assert not tok.cancelled
        tok.raise_if_cancelled()  # no-op

    def test_cancel_fires_once_first_reason_wins(self):
        tok = CancellationToken()
        tok.cancel("deadline")
        tok.cancel("second caller")
        assert tok.cancelled
        assert tok.reason == "deadline"

    def test_raise_carries_reason(self):
        tok = CancellationToken()
        tok.cancel("admission control")
        with pytest.raises(QueryCancelled, match="admission control"):
            tok.raise_if_cancelled()

    def test_charge_checks_token(self):
        tok = CancellationToken()
        account = WorkAccount(cancel_token=tok)
        account.charge(1.0)
        tok.cancel("mid-pull")
        with pytest.raises(QueryCancelled, match="mid-pull"):
            account.charge(1.0)


class TestExecutionCancel:
    def test_precancelled_token_stops_first_step(self, db):
        tok = CancellationToken()
        tok.cancel("never admitted")
        ex = db.prepare("SELECT * FROM t", cancel_token=tok)
        with pytest.raises(QueryCancelled):
            ex.step(1.0)
        assert not ex.finished

    def test_cancel_mid_run(self, db):
        tok = CancellationToken()
        ex = db.prepare("SELECT * FROM t ORDER BY v", cancel_token=tok)
        ex.step(5.0)
        done_before = ex.work_done
        tok.cancel("operator intervention")
        with pytest.raises(QueryCancelled, match="operator intervention"):
            ex.step(5.0)
        # Cancellation is prompt: no further work was charged.
        assert ex.work_done == done_before

    def test_cancelled_execution_stays_cancelled(self, db):
        tok = CancellationToken()
        ex = db.prepare("SELECT * FROM t", cancel_token=tok)
        ex.step(2.0)
        tok.cancel()
        for _ in range(2):
            with pytest.raises(QueryCancelled):
                ex.step(1.0)

    def test_token_reachable_from_execution(self, db):
        tok = CancellationToken()
        ex = db.prepare("SELECT * FROM t", cancel_token=tok)
        assert ex.cancel_token is tok
        ex2 = db.prepare("SELECT * FROM t")
        assert ex2.cancel_token is None
