"""Tests for UPDATE / DELETE / LEFT JOIN / UNION support."""

import pytest

from repro.engine import Database
from repro.engine.errors import ParseError, PlanError, SqlTypeError


@pytest.fixture()
def db():
    d = Database(page_capacity=4)
    d.execute("CREATE TABLE t (k INT, v FLOAT)")
    d.execute("INSERT INTO t VALUES (1, 10.0), (2, 20.0), (3, 30.0), (4, NULL)")
    d.execute("CREATE TABLE u (k INT, name TEXT)")
    d.execute("INSERT INTO u VALUES (1, 'one'), (3, 'three'), (9, 'nine')")
    return d


class TestLeftJoin:
    def test_unmatched_rows_padded_with_nulls(self, db):
        rows = db.query(
            "SELECT t.k, u.name FROM t LEFT JOIN u ON t.k = u.k ORDER BY t.k"
        )
        assert rows == [(1, "one"), (2, None), (3, "three"), (4, None)]

    def test_left_outer_keyword(self, db):
        rows = db.query(
            "SELECT count(*) FROM t LEFT OUTER JOIN u ON t.k = u.k"
        )
        assert rows == [(4,)]

    def test_anti_join_idiom(self, db):
        rows = db.query(
            "SELECT t.k FROM t LEFT JOIN u ON t.k = u.k "
            "WHERE u.name IS NULL ORDER BY t.k"
        )
        assert rows == [(2,), (4,)]

    def test_where_not_pushed_into_nullable_side(self, db):
        # A WHERE filter on u must apply after padding, not before joining.
        rows = db.query(
            "SELECT t.k FROM t LEFT JOIN u ON t.k = u.k "
            "WHERE u.name = 'one' OR u.name IS NULL ORDER BY t.k"
        )
        assert rows == [(1,), (2,), (4,)]

    def test_residual_on_condition_decides_matching(self, db):
        # ON t.k = u.k AND u.k > 1: row k=1 must NOT match (residual fails)
        # and must still appear padded.
        rows = db.query(
            "SELECT t.k, u.k FROM t LEFT JOIN u ON t.k = u.k AND u.k > 1 "
            "ORDER BY t.k"
        )
        assert rows == [(1, None), (2, None), (3, 3), (4, None)]

    def test_non_equi_left_join(self, db):
        rows = db.query(
            "SELECT t.k, u.k FROM t LEFT JOIN u ON t.k > u.k AND u.k > 2 "
            "ORDER BY t.k"
        )
        # only u.k=3 qualifies; t.k=4 > 3 matches, others padded.
        assert rows == [(1, None), (2, None), (3, None), (4, 3)]

    def test_left_join_explain_shows_outer(self, db):
        plan = db.explain("SELECT 1 FROM t LEFT JOIN u ON t.k = u.k")
        assert "HashLeftJoin" in plan


class TestUnion:
    def test_union_deduplicates(self, db):
        rows = db.query("SELECT k FROM t WHERE k <= 2 UNION SELECT k FROM u ORDER BY k")
        assert rows == [(1,), (2,), (3,), (9,)]

    def test_union_all_keeps_duplicates(self, db):
        rows = db.query(
            "SELECT k FROM t WHERE k = 1 UNION ALL SELECT k FROM u WHERE k = 1"
        )
        assert rows == [(1,), (1,)]

    def test_three_way_chain(self, db):
        rows = db.query(
            "SELECT k FROM t WHERE k = 1 UNION SELECT k FROM u WHERE k = 9 "
            "UNION ALL SELECT k FROM t WHERE k = 1 ORDER BY k"
        )
        # mixed chain with any plain UNION dedups the whole result.
        assert rows == [(1,), (9,)]

    def test_order_and_limit_apply_to_whole_union(self, db):
        rows = db.query(
            "SELECT k FROM t UNION SELECT k FROM u ORDER BY k DESC LIMIT 3"
        )
        assert rows == [(9,), (4,), (3,)]

    def test_arity_mismatch_rejected(self, db):
        with pytest.raises(PlanError):
            db.query("SELECT k FROM t UNION SELECT k, name FROM u")

    def test_branch_order_by_rejected(self, db):
        with pytest.raises(ParseError):
            db.query("SELECT k FROM t ORDER BY k UNION SELECT k FROM u")

    def test_order_by_expression_rejected(self, db):
        with pytest.raises(PlanError):
            db.query("SELECT k FROM t UNION SELECT k FROM u ORDER BY k + 1")

    def test_union_in_in_subquery(self, db):
        rows = db.query(
            "SELECT k FROM t WHERE k IN (SELECT k FROM u UNION SELECT 2) "
            "ORDER BY k"
        )
        assert rows == [(1,), (2,), (3,)]

    def test_union_in_exists_subquery(self, db):
        rows = db.query(
            "SELECT t.k FROM t WHERE EXISTS "
            "(SELECT 1 FROM u WHERE u.k = t.k UNION ALL "
            " SELECT 1 FROM u WHERE u.k = t.k + 8) ORDER BY t.k"
        )
        assert rows == [(1,), (3,)]

    def test_union_as_scalar_subquery(self, db):
        rows = db.query(
            "SELECT (SELECT max(k) FROM t UNION SELECT max(k) FROM t) FROM t "
            "WHERE k = 1"
        )
        assert rows == [(4,)]

    def test_union_is_steppable(self, db):
        ex = db.prepare("SELECT k FROM t UNION ALL SELECT k FROM u")
        while not ex.finished:
            ex.step(1.0)
        assert len(ex.rows) == 7
        assert ex.work_done > 0


class TestUpdate:
    def test_update_with_where(self, db):
        n = db.execute("UPDATE t SET v = v * 2 WHERE k <= 2")
        assert n == 2
        assert db.query("SELECT v FROM t ORDER BY k") == [
            (20.0,), (40.0,), (30.0,), (None,)
        ]

    def test_update_all_rows(self, db):
        assert db.execute("UPDATE t SET v = 0.0") == 4

    def test_update_multiple_columns_sees_old_values(self, db):
        db.execute("UPDATE t SET k = k + 10, v = k * 1.0 WHERE k = 1")
        # v is computed from the OLD k.
        assert db.query("SELECT k, v FROM t WHERE k = 11") == [(11, 1.0)]

    def test_update_type_checked(self, db):
        with pytest.raises(SqlTypeError):
            db.execute("UPDATE t SET k = 'oops'")

    def test_update_rebuilds_indexes(self, db):
        db.execute("CREATE INDEX t_k ON t (k)")
        db.execute("UPDATE t SET k = 100 WHERE k = 1")
        db.analyze()
        assert db.query("SELECT k FROM t WHERE k = 100") == [(100,)]
        assert db.query("SELECT k FROM t WHERE k = 1") == []

    def test_update_invalidates_stats(self, db):
        db.analyze()
        db.execute("UPDATE t SET v = 1.0 WHERE k = 1")
        assert db.catalog.table("t").stats is None


class TestDelete:
    def test_delete_with_where(self, db):
        assert db.execute("DELETE FROM t WHERE k > 2") == 2
        assert db.query("SELECT k FROM t ORDER BY k") == [(1,), (2,)]

    def test_delete_null_predicate_rows_survive(self, db):
        # WHERE v > 15 is NULL for the NULL row: it must survive.
        db.execute("DELETE FROM t WHERE v > 15")
        assert db.query("SELECT k FROM t ORDER BY k") == [(1,), (4,)]

    def test_delete_everything(self, db):
        assert db.execute("DELETE FROM t") == 4
        assert db.query("SELECT count(*) FROM t") == [(0,)]

    def test_delete_rebuilds_indexes(self, db):
        db.execute("CREATE INDEX t_k ON t (k)")
        db.execute("DELETE FROM t WHERE k = 3")
        db.analyze()
        assert db.query("SELECT k FROM t WHERE k = 3") == []
        assert db.query("SELECT k FROM t WHERE k = 2") == [(2,)]

    def test_parse_errors(self, db):
        with pytest.raises(ParseError):
            db.execute("DELETE t WHERE k = 1")
        with pytest.raises(ParseError):
            db.execute("UPDATE t k = 1")


class TestExplainStatement:
    def test_explain_select(self, db):
        plan = db.execute("EXPLAIN SELECT k FROM t WHERE v > 15")
        assert isinstance(plan, str)
        assert "SeqScan t" in plan
        assert "cost=" in plan

    def test_explain_union(self, db):
        plan = db.execute("EXPLAIN SELECT k FROM t UNION SELECT k FROM u")
        assert "Concat" in plan
        assert "Distinct" in plan

    def test_explain_join(self, db):
        plan = db.execute("EXPLAIN SELECT 1 FROM t JOIN u ON t.k = u.k")
        assert "HashJoin" in plan

    def test_explain_does_not_execute(self, db):
        before = db.query("SELECT count(*) FROM t")
        db.execute("EXPLAIN SELECT * FROM t")
        assert db.query("SELECT count(*) FROM t") == before

    def test_explain_non_select_rejected(self, db):
        with pytest.raises(ParseError):
            db.execute("EXPLAIN DELETE FROM t")
        with pytest.raises(ParseError):
            db.execute("EXPLAIN CREATE TABLE z (a INT)")
