"""Tests for SQL types, coercion and schemas."""

import pytest

from repro.engine.errors import CatalogError, SqlTypeError
from repro.engine.schema import Column, TableSchema
from repro.engine.types import (
    SqlType,
    coerce_value,
    compare_values,
    is_numeric,
    sort_key,
)


class TestSqlType:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("int", SqlType.INTEGER),
            ("BIGINT", SqlType.INTEGER),
            ("varchar", SqlType.TEXT),
            ("double", SqlType.FLOAT),
            ("NUMERIC", SqlType.FLOAT),
            ("bool", SqlType.BOOLEAN),
        ],
    )
    def test_aliases(self, name, expected):
        assert SqlType.parse(name) is expected

    def test_unknown_type(self):
        with pytest.raises(SqlTypeError):
            SqlType.parse("BLOB")


class TestCoercion:
    def test_none_passes(self):
        assert coerce_value(None, SqlType.INTEGER) is None

    def test_integer(self):
        assert coerce_value(3.0, SqlType.INTEGER) == 3
        with pytest.raises(SqlTypeError):
            coerce_value(3.5, SqlType.INTEGER)
        with pytest.raises(SqlTypeError):
            coerce_value(True, SqlType.INTEGER)
        with pytest.raises(SqlTypeError):
            coerce_value("x", SqlType.INTEGER)

    def test_float(self):
        assert coerce_value(3, SqlType.FLOAT) == 3.0
        assert isinstance(coerce_value(3, SqlType.FLOAT), float)
        with pytest.raises(SqlTypeError):
            coerce_value(True, SqlType.FLOAT)

    def test_text(self):
        assert coerce_value("hi", SqlType.TEXT) == "hi"
        with pytest.raises(SqlTypeError):
            coerce_value(1, SqlType.TEXT)

    def test_boolean(self):
        assert coerce_value(True, SqlType.BOOLEAN) is True
        with pytest.raises(SqlTypeError):
            coerce_value(1, SqlType.BOOLEAN)


class TestComparisons:
    def test_null_propagates(self):
        assert compare_values(None, 1) is None
        assert compare_values(1, None) is None

    def test_numeric_cross_type(self):
        assert compare_values(1, 1.0) == 0
        assert compare_values(1, 2.5) == -1

    def test_strings(self):
        assert compare_values("a", "b") == -1

    def test_incomparable(self):
        with pytest.raises(SqlTypeError):
            compare_values("a", 1)
        with pytest.raises(SqlTypeError):
            compare_values(True, 1)

    def test_is_numeric(self):
        assert is_numeric(1) and is_numeric(2.5)
        assert not is_numeric(True)
        assert not is_numeric("1")

    def test_sort_key_total_order(self):
        values = [3, None, "b", 1.5, True, "a", None, False]
        ordered = sorted(values, key=sort_key)
        assert ordered[:2] == [None, None]  # NULLs first


class TestSchema:
    def _schema(self):
        return TableSchema.of(
            "t",
            [
                Column("a", SqlType.INTEGER, nullable=False),
                Column("b", SqlType.TEXT),
            ],
        )

    def test_positions_case_insensitive(self):
        s = self._schema()
        assert s.column_position("A") == 0
        assert s.column("B").sql_type is SqlType.TEXT
        assert s.has_column("a") and not s.has_column("zz")

    def test_unknown_column(self):
        with pytest.raises(CatalogError):
            self._schema().column_position("zz")

    def test_validate_row(self):
        s = self._schema()
        assert s.validate_row([1, "x"]) == (1, "x")
        assert s.validate_row([2, None]) == (2, None)

    def test_not_null_enforced(self):
        with pytest.raises(SqlTypeError):
            self._schema().validate_row([None, "x"])

    def test_arity_enforced(self):
        with pytest.raises(SqlTypeError):
            self._schema().validate_row([1])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema.of(
                "t", [Column("a", SqlType.INTEGER), Column("A", SqlType.TEXT)]
            )

    def test_empty_schema_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema.of("t", [])

    def test_bad_names_rejected(self):
        with pytest.raises(CatalogError):
            Column("not valid", SqlType.INTEGER)
        with pytest.raises(CatalogError):
            TableSchema.of("1bad", [Column("a", SqlType.INTEGER)])
