"""Tests for work-preserving operator checkpoint/resume.

The core contract: a checkpoint taken between root pulls captures a
consistent cut of the whole plan, and a *fresh* execution of the same SQL
restored from it produces exactly the rows the original would have -- at
the cost of only the work done since the checkpoint.
"""

import random

import pytest

from repro.engine import Database, ExecutionCheckpoint
from repro.engine.errors import ExecutionError


@pytest.fixture()
def db():
    d = Database(page_capacity=10)
    rng = random.Random(3)
    d.execute("CREATE TABLE big (k INT, v FLOAT)")
    d.insert_rows("big", [(i, rng.random()) for i in range(400)])
    d.execute("CREATE TABLE lookup (k INT, w FLOAT)")
    d.insert_rows("lookup", [(i % 80, rng.random()) for i in range(800)])
    d.execute("CREATE INDEX lookup_k ON lookup (k)")
    d.analyze()
    return d


#: One query per checkpointable plan shape.
SHAPES = {
    "seq_scan": "SELECT * FROM big",
    "filter_project": "SELECT k, v * 2 FROM big WHERE v > 0.5",
    "sort": "SELECT k, v FROM big ORDER BY v DESC, k",
    "limit": "SELECT k FROM big WHERE v > 0.3 LIMIT 17",
    "distinct": "SELECT DISTINCT k % 7 FROM big",
    "hash_join": (
        "SELECT b.k, l.w FROM big b JOIN lookup l ON b.k = l.k "
        "WHERE b.v > 0.6"
    ),
    "left_join": (
        "SELECT b.k, l.w FROM big b LEFT JOIN lookup l ON b.k = l.k"
    ),
    "hash_agg": (
        "SELECT k % 5 grp, sum(v), count(*) FROM big GROUP BY k % 5"
    ),
    "global_agg": "SELECT sum(v), min(k), max(k) FROM big",
    "union": (
        "SELECT k FROM big WHERE k < 30 UNION ALL "
        "SELECT k FROM big WHERE k >= 370"
    ),
    "paper_style": (
        "SELECT k FROM big b WHERE b.v > "
        "(SELECT sum(l.w) / count(*) FROM lookup l WHERE l.k = b.k % 80)"
    ),
}


def run_until(ex, target_work, budget=1.0):
    """Step the execution until at least *target_work* U's are done."""
    while not ex.finished and ex.work_done < target_work:
        ex.step(budget)


def checkpoint_near(ex, target_work, budget=1.0):
    """Step towards *target_work*, returning the last live checkpoint.

    Pulls are coarse (a trailing exhaust pull can charge many pages at
    once), so the execution may *finish* before reaching the target; in
    that case the snapshot from just before the final pull is the latest
    one a cadence-driven checkpointer could have taken.
    """
    ckpt = None
    while not ex.finished and ex.work_done < target_work:
        ex.step(budget)
        ckpt = ex.checkpoint() or ckpt
    return ckpt


class TestResumeEquivalence:
    """Restore-from-checkpoint must be invisible in results and work."""

    @pytest.mark.parametrize("shape", sorted(SHAPES))
    @pytest.mark.parametrize("fraction", [0.25, 0.5, 0.9])
    def test_resume_matches_uninterrupted_run(self, db, shape, fraction):
        sql = SHAPES[shape]
        reference = db.prepare(sql)
        reference.run_to_completion()
        assert reference.rows, f"degenerate test query for {shape}"

        ex = db.prepare(sql)
        ckpt = checkpoint_near(ex, fraction * reference.work_done)
        assert ckpt is not None, f"{shape} should be checkpointable"

        resumed = db.prepare(sql)
        resumed.restore(ckpt)
        resumed.run_to_completion()

        assert resumed.rows == reference.rows
        # Work conservation: the credited checkpoint work plus the work
        # done after restore equals the uninterrupted run's total.
        assert resumed.work_done == pytest.approx(reference.work_done)
        assert resumed.restored_from is ckpt

    @pytest.mark.parametrize("shape", ["sort", "hash_join", "hash_agg"])
    def test_same_checkpoint_restores_twice(self, db, shape):
        """Restoring must not let the resumed run mutate the snapshot."""
        sql = SHAPES[shape]
        reference = db.prepare(sql)
        reference.run_to_completion()

        ex = db.prepare(sql)
        ckpt = checkpoint_near(ex, 0.4 * reference.work_done)
        assert ckpt is not None

        for _ in range(2):
            resumed = db.prepare(sql)
            resumed.restore(ckpt)
            resumed.run_to_completion()
            assert resumed.rows == reference.rows

    def test_checkpoint_carries_emitted_rows(self, db):
        sql = SHAPES["seq_scan"]
        ex = db.prepare(sql)
        run_until(ex, 10.0)
        ckpt = ex.checkpoint()
        assert ckpt.rows_emitted == len(ex.rows)
        assert list(ckpt.rows) == ex.rows
        assert ckpt.work_done == ex.work_done


class TestCadence:
    """Automatic checkpointing on a work-interval cadence."""

    def test_interval_takes_checkpoints(self, db):
        dense = db.prepare(SHAPES["paper_style"], checkpoint_interval=5.0)
        dense.run_to_completion()
        sparse = db.prepare(SHAPES["paper_style"], checkpoint_interval=500.0)
        sparse.run_to_completion()
        assert dense.checkpoints_taken > sparse.checkpoints_taken >= 1
        assert isinstance(dense.last_checkpoint, ExecutionCheckpoint)
        assert 0 < dense.last_checkpoint.work_done <= dense.work_done

    def test_no_interval_takes_none(self, db):
        ex = db.prepare(SHAPES["seq_scan"])
        ex.run_to_completion()
        assert ex.checkpoints_taken == 0
        assert ex.last_checkpoint is None

    def test_invalid_interval_rejected(self, db):
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ExecutionError):
                db.prepare(SHAPES["seq_scan"], checkpoint_interval=bad)

    def test_last_checkpoint_resumes(self, db):
        sql = SHAPES["hash_agg"]
        reference = db.prepare(sql)
        reference.run_to_completion()

        ex = db.prepare(sql, checkpoint_interval=3.0)
        run_until(ex, 0.6 * reference.work_done)
        assert ex.last_checkpoint is not None
        resumed = db.prepare(sql)
        resumed.restore(ex.last_checkpoint)
        resumed.run_to_completion()
        assert resumed.rows == reference.rows


class TestRestoreGuards:
    def test_restore_requires_fresh_execution(self, db):
        sql = SHAPES["seq_scan"]
        ex = db.prepare(sql)
        run_until(ex, 5.0)
        ckpt = ex.checkpoint()
        used = db.prepare(sql)
        used.step(1.0)
        with pytest.raises(ExecutionError):
            used.restore(ckpt)

    def test_restore_rejects_other_sql(self, db):
        ex = db.prepare(SHAPES["seq_scan"])
        run_until(ex, 5.0)
        ckpt = ex.checkpoint()
        other = db.prepare(SHAPES["sort"])
        with pytest.raises(ExecutionError):
            other.restore(ckpt)

    def test_finished_execution_stops_checkpointing(self, db):
        ex = db.prepare(SHAPES["seq_scan"])
        ex.run_to_completion()
        assert ex.checkpoint() is None


class TestNonCheckpointable:
    """Plans without cheap state decline; their subtree restarts instead."""

    def test_index_probe_plan_returns_none(self, db):
        ex = db.prepare("SELECT * FROM lookup WHERE k = 5")
        run_until(ex, 1.0, budget=0.25)
        if ex.finished:  # tiny probe may finish in one pull
            assert ex.checkpoint() is None
        else:
            assert ex.checkpoint() is None

    def test_cadence_on_non_checkpointable_plan_is_harmless(self, db):
        reference = db.query("SELECT * FROM lookup WHERE k BETWEEN 2 AND 9")
        ex = db.prepare(
            "SELECT * FROM lookup WHERE k BETWEEN 2 AND 9",
            checkpoint_interval=0.5,
        )
        ex.run_to_completion()
        assert ex.rows == reference
        assert ex.last_checkpoint is None
