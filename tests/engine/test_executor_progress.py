"""Tests for cooperative execution, work accounting and progress tracking."""

import random

import pytest

from repro.engine import Database
from repro.engine.errors import ExecutionError
from repro.engine.progress import find_driver_scan


@pytest.fixture()
def db():
    d = Database(page_capacity=10)
    rng = random.Random(1)
    d.execute("CREATE TABLE big (k INT, v FLOAT)")
    d.insert_rows("big", [(i, rng.random()) for i in range(500)])
    d.execute("CREATE TABLE lookup (k INT, w FLOAT)")
    d.insert_rows(
        "lookup", [(i % 100, rng.random()) for i in range(1000)]
    )
    d.execute("CREATE INDEX lookup_k ON lookup (k)")
    d.analyze()
    return d


PAPER_STYLE = (
    "SELECT k FROM big b WHERE b.v > "
    "(SELECT sum(l.w) / count(*) FROM lookup l WHERE l.k = b.k % 100)"
)


class TestWorkAccounting:
    def test_seq_scan_charges_pages(self, db):
        ex = db.prepare("SELECT * FROM big")
        ex.run_to_completion()
        assert ex.work_done == db.catalog.table("big").heap.page_count

    def test_work_independent_of_step_size(self, db):
        totals = []
        for budget in (0.5, 3.0, 1000.0):
            ex = db.prepare(PAPER_STYLE)
            while not ex.finished:
                ex.step(budget)
            totals.append(ex.work_done)
        assert totals[0] == pytest.approx(totals[1]) == pytest.approx(totals[2])

    def test_results_independent_of_step_size(self, db):
        reference = db.query(PAPER_STYLE)
        ex = db.prepare(PAPER_STYLE)
        while not ex.finished:
            ex.step(0.7)
        assert ex.rows == reference

    def test_step_budget_conservation(self, db):
        """Consumed budgets sum to total work despite per-pull overshoot."""
        ex = db.prepare(PAPER_STYLE)
        consumed = 0.0
        while not ex.finished:
            consumed += ex.step(2.0)
        assert consumed == pytest.approx(ex.work_done, rel=0.02)

    def test_step_after_finish_is_zero(self, db):
        ex = db.prepare("SELECT count(*) FROM big")
        ex.run_to_completion()
        assert ex.step(10.0) == 0.0

    def test_negative_budget_rejected(self, db):
        ex = db.prepare("SELECT 1")
        with pytest.raises(ExecutionError):
            ex.step(-1.0)

    def test_index_probe_cheaper_than_seq_scan(self, db):
        seq = db.prepare("SELECT * FROM big WHERE v >= 0")
        seq.run_to_completion()
        probe = db.prepare("SELECT * FROM lookup WHERE k = 5")
        probe.run_to_completion()
        assert probe.work_done < seq.work_done

    def test_column_names(self, db):
        ex = db.prepare("SELECT k AS key, v FROM big")
        assert ex.column_names == ("key", "v")


class TestProgressTracker:
    def test_initial_estimate_is_optimizer_cost(self, db):
        ex = db.prepare(PAPER_STYLE)
        assert ex.progress.estimated_remaining_cost() == pytest.approx(
            ex.root.est_cost
        )

    def test_driver_scan_found(self, db):
        ex = db.prepare(PAPER_STYLE)
        driver = find_driver_scan(ex.root)
        assert driver is not None
        assert driver.table.name == "big"

    def test_refinement_converges(self, db):
        ex = db.prepare(PAPER_STYLE)
        ex.run_to_completion()
        actual = ex.work_done
        errors = []
        ex2 = db.prepare(PAPER_STYLE)
        checkpoints = [0.25, 0.5, 0.75]
        for frac in checkpoints:
            while ex2.work_done < actual * frac and not ex2.finished:
                ex2.step(1.0)
            errors.append(
                abs(ex2.progress.estimated_total_cost() - actual) / actual
            )
        # Estimates become (weakly) more accurate and end close to truth.
        assert errors[-1] <= errors[0] + 0.05
        assert errors[-1] < 0.15

    def test_remaining_reaches_zero(self, db):
        ex = db.prepare(PAPER_STYLE)
        ex.run_to_completion()
        assert ex.progress.estimated_remaining_cost() == 0.0
        assert ex.progress.completed_fraction() == 1.0

    def test_fraction_monotone(self, db):
        ex = db.prepare("SELECT * FROM big WHERE v > 0.5")
        fractions = []
        while not ex.finished:
            ex.step(5.0)
            fractions.append(ex.progress.driver_fraction())
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_no_driver_falls_back_to_optimizer(self, db):
        ex = db.prepare("SELECT w FROM lookup WHERE k = 7")
        assert find_driver_scan(ex.root) is None
        assert ex.progress.estimated_remaining_cost() == pytest.approx(
            ex.root.est_cost
        )


class TestEstimateQuality:
    def test_estimate_within_factor_two_with_stats(self, db):
        """With fresh statistics the optimizer estimate lands in the right
        ballpark for the paper-style plan (it need not be exact)."""
        ex = db.prepare(PAPER_STYLE)
        est = ex.root.est_cost
        ex.run_to_completion()
        assert est == pytest.approx(ex.work_done, rel=1.0)

    def test_explain_shows_plan_shape(self, db):
        plan = db.explain(PAPER_STYLE)
        assert "SeqScan big" in plan
        assert "Filter" in plan
