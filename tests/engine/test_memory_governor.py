"""Tests for per-query memory governance and graceful degradation.

The ladder under memory pressure: buffering operators first *degrade*
(sort -> bounded external merge, hash join -> block-partitioned passes,
hash aggregate -> spilled partials) -- producing identical results at the
cost of extra modeled work -- and only operators that cannot shed state
(DISTINCT sets, materialized inners) ride usage up to the hard limit and
abort with :class:`MemoryBudgetExceeded`.
"""

import random

import pytest

from repro.engine import Database, MemoryBudgetExceeded, MemoryGovernor
from repro.sim.jobs import EngineJob


@pytest.fixture()
def db():
    d = Database(page_capacity=10)
    rng = random.Random(5)
    d.execute("CREATE TABLE big (k INT, v FLOAT)")
    d.insert_rows("big", [(i, rng.random()) for i in range(400)])
    d.execute("CREATE TABLE small (k INT, w FLOAT)")
    d.insert_rows("small", [(i, rng.random()) for i in range(60)])
    d.analyze()
    return d


class TestGovernorUnit:
    def test_reserve_within_budget(self):
        gov = MemoryGovernor(budget_rows=10)
        assert gov.reserve("op", 10) is True
        assert not gov.over_budget

    def test_reserve_past_budget_returns_false(self):
        gov = MemoryGovernor(budget_rows=10)
        assert gov.reserve("op", 11) is False
        assert gov.over_budget

    def test_release_returns_rows(self):
        gov = MemoryGovernor(budget_rows=10)
        gov.reserve("op", 8)
        gov.release(5)
        assert gov.used_rows == 3
        gov.release(10)  # floor at zero
        assert gov.used_rows == 0

    def test_peak_tracks_high_water_mark(self):
        gov = MemoryGovernor(budget_rows=10)
        gov.reserve("op", 7)
        gov.release(7)
        gov.reserve("op", 3)
        assert gov.peak_rows == 7

    def test_hard_limit_raises(self):
        gov = MemoryGovernor(budget_rows=10, hard_limit_factor=2.0)
        with pytest.raises(MemoryBudgetExceeded):
            gov.reserve("op", 21)
        assert gov.events[-1].kind == "hard-limit"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MemoryGovernor(budget_rows=0)
        with pytest.raises(ValueError):
            MemoryGovernor(budget_rows=10, hard_limit_factor=0.5)
        with pytest.raises(ValueError):
            MemoryGovernor(budget_rows=10, hard_limit_factor=float("inf"))


class TestGracefulDegradation:
    """Degraded operators: same answer, more work, visible pressure."""

    CASES = {
        "sort": "SELECT k, v FROM big ORDER BY v DESC, k",
        "hash_join": (
            "SELECT b.k, s.w FROM big b JOIN small s ON b.k = s.k"
        ),
        "hash_agg": (
            "SELECT k % 50 grp, sum(v), count(*) FROM big GROUP BY k % 50"
        ),
    }

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_degrade_preserves_results_and_charges_extra(self, db, case):
        sql = self.CASES[case]
        plain = db.prepare(sql)
        plain.run_to_completion()
        assert plain.rows

        squeezed = db.prepare(sql, memory_budget=8)
        squeezed.run_to_completion()

        assert squeezed.rows == plain.rows
        assert squeezed.work_done > plain.work_done
        assert squeezed.progress.memory_pressure_events() > 0
        kinds = {e.kind for e in squeezed.account.memory.events}
        assert kinds & {"degrade", "spill"}
        assert "hard-limit" not in kinds

    def test_no_budget_changes_nothing(self, db):
        sql = self.CASES["sort"]
        a = db.prepare(sql)
        a.run_to_completion()
        b = db.prepare(sql)
        b.run_to_completion()
        assert a.work_done == b.work_done
        assert a.progress.memory_pressure_events() == 0

    def test_roomy_budget_stays_quiet(self, db):
        sql = self.CASES["hash_agg"]
        ex = db.prepare(sql, memory_budget=100_000)
        ex.run_to_completion()
        assert ex.progress.memory_pressure_events() == 0

    def test_pressure_surfaces_in_job_snapshot(self, db):
        ex = db.prepare(self.CASES["sort"], memory_budget=8)
        job = EngineJob("q", ex)
        while not job.finished:
            job.advance(25.0)
        snap = job.snapshot()
        assert snap.memory_pressure == ex.progress.memory_pressure_events() > 0


class TestHardLimit:
    """Operators with nothing to shed abort at the end of the ladder."""

    def test_distinct_hits_hard_limit(self, db):
        # 400 distinct keys vs hard limit 5 * 8 = 40 buffered rows.
        ex = db.prepare("SELECT DISTINCT k FROM big", memory_budget=5)
        with pytest.raises(MemoryBudgetExceeded):
            ex.run_to_completion()
        assert ex.account.memory.events[-1].kind == "hard-limit"

    def test_hard_limit_is_a_runtime_failure_for_jobs(self, db):
        from repro.engine.errors import EngineError

        ex = db.prepare("SELECT DISTINCT k FROM big", memory_budget=5)
        job = EngineJob("q", ex)
        with pytest.raises(EngineError):
            while not job.finished:
                job.advance(25.0)
