"""Tests for ANALYZE statistics, selectivity and the cost model."""

import pytest

from repro.engine import Database
from repro.engine import cost as costmodel
from repro.engine.index import BTreeIndex
from repro.engine.stats import Selectivity, analyze_table


@pytest.fixture()
def analyzed():
    db = Database(page_capacity=10)
    db.execute("CREATE TABLE t (k INT, v FLOAT, tag TEXT)")
    rows = [(i, float(i % 10), "even" if i % 2 == 0 else "odd") for i in range(200)]
    rows.append((None, None, None))
    db.insert_rows("t", rows)
    table = db.catalog.table("t")
    stats = analyze_table(table)
    return db, table, stats


class TestAnalyze:
    def test_row_and_page_counts(self, analyzed):
        _, table, stats = analyzed
        assert stats.row_count == 201
        assert stats.page_count == table.heap.page_count

    def test_column_stats(self, analyzed):
        _, _, stats = analyzed
        k = stats.column("k")
        assert k.null_count == 1
        assert k.distinct_count == 200
        assert k.min_value == 0 and k.max_value == 199
        v = stats.column("v")
        assert v.distinct_count == 10
        tag = stats.column("TAG")  # case-insensitive
        assert tag.distinct_count == 2

    def test_histogram_bounds(self, analyzed):
        _, _, stats = analyzed
        hist = stats.column("k").histogram
        assert hist[0] == 0 and hist[-1] == 199
        assert hist == sorted(hist)

    def test_correlation_detects_clustering(self, analyzed):
        _, _, stats = analyzed
        # k ascends with the heap: near-perfect correlation.
        assert stats.column("k").correlation > 0.99
        # v cycles 0..9: essentially uncorrelated with position.
        assert abs(stats.column("v").correlation) < 0.2

    def test_analyze_marks_table(self, analyzed):
        _, table, stats = analyzed
        assert table.stats is stats

    def test_insert_invalidates_stats(self, analyzed):
        _, table, _ = analyzed
        table.insert((999, 1.0, "x"))
        assert table.stats is None


class TestSelectivity:
    def test_equality(self, analyzed):
        _, _, stats = analyzed
        sel = Selectivity(stats)
        assert sel.equality("k") == pytest.approx(1 / 200, rel=0.05)
        assert sel.equality("tag") == pytest.approx(0.5, rel=0.05)

    def test_inequality_via_histogram(self, analyzed):
        _, _, stats = analyzed
        sel = Selectivity(stats)
        assert sel.inequality("k", "<", 100) == pytest.approx(0.5, abs=0.1)
        assert sel.inequality("k", ">", 150) == pytest.approx(0.25, abs=0.1)

    def test_range_fraction(self, analyzed):
        _, _, stats = analyzed
        sel = Selectivity(stats)
        assert sel.range_fraction("k", 50, 150) == pytest.approx(0.5, abs=0.1)
        assert sel.range_fraction("k", None, None) == pytest.approx(1.0, abs=0.05)

    def test_defaults_without_stats(self):
        sel = Selectivity(None)
        assert 0 < sel.equality("x") < 1
        assert 0 < sel.range_fraction("x", 1, 2) <= 1

    def test_bad_operator(self, analyzed):
        _, _, stats = analyzed
        with pytest.raises(ValueError):
            Selectivity(stats).inequality("k", "=", 1)


class TestCostModel:
    def test_seq_scan(self):
        est = costmodel.seq_scan(10, 500)
        assert est.cost == 10.0 and est.rows == 500.0

    def test_index_probe_unclustered_costs_more(self):
        idx = BTreeIndex("i", "t", "c")
        clustered = costmodel.index_probe(
            idx, 1000, 0.03, page_count=100, rows_per_page=10, correlation=1.0
        )
        unclustered = costmodel.index_probe(
            idx, 1000, 0.03, page_count=100, rows_per_page=10, correlation=0.0
        )
        assert clustered.cost < unclustered.cost
        assert clustered.rows == unclustered.rows == pytest.approx(30.0)

    def test_expected_heap_pages_bounds(self):
        pages = costmodel.expected_heap_pages(30, 100, 10, correlation=0.0)
        assert 3 <= pages <= 30
        assert costmodel.expected_heap_pages(0, 100, 10, 0.0) == 0.0
        assert costmodel.expected_heap_pages(5, 1, 10, 0.0) == pytest.approx(1.0)

    def test_filter_and_limit(self):
        base = costmodel.Estimate(10.0, 100.0)
        assert costmodel.filter_rows(base, 0.25).rows == 25.0
        assert costmodel.limit(base, 5, 0).rows == 5.0
        assert costmodel.limit(base, None, 40).rows == 60.0

    def test_subquery_filter_dominated_by_per_row_cost(self):
        base = costmodel.Estimate(5.0, 50.0)
        est = costmodel.subquery_filter(base, 31.0, 0.33)
        assert est.cost == pytest.approx(5 + 50 * 31)

    def test_joins_and_sort(self):
        left = costmodel.Estimate(10.0, 100.0)
        right = costmodel.Estimate(20.0, 50.0)
        hj = costmodel.hash_join(left, right, 1 / 100, 50)
        assert hj.rows == pytest.approx(50.0)
        assert hj.cost > 30.0
        nl = costmodel.nested_loop_join(left, costmodel.materialize(right, 50), 1.0)
        assert nl.rows == 5000.0
        srt = costmodel.sort(left, 50)
        assert srt.cost == pytest.approx(10.0 + 2 * 2)

    def test_aggregate(self):
        base = costmodel.Estimate(10.0, 100.0)
        assert costmodel.aggregate(base, None).rows == 1.0
        assert costmodel.aggregate(base, 7.0).rows == 7.0
        assert costmodel.aggregate(base, 1e9).rows == 100.0

    def test_negative_estimate_rejected(self):
        with pytest.raises(ValueError):
            costmodel.Estimate(-1.0, 0.0)
