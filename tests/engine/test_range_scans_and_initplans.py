"""Tests for range index scans and uncorrelated-subquery init-plans."""

import pytest

from repro.engine import Database
from repro.engine.operators.scans import RangeIndexScan, SeqScan


@pytest.fixture()
def db():
    d = Database(page_capacity=10)
    d.execute("CREATE TABLE t (k INT, v FLOAT)")
    d.insert_rows("t", [(i, float(i % 7)) for i in range(1000)])
    d.execute("CREATE INDEX t_k ON t (k)")
    d.analyze()
    return d


def scan_kind(db, sql):
    plan = db.explain(sql)
    for line in plan.splitlines():
        if "Scan" in line:
            return line.strip().split(" ")[0]
    raise AssertionError(f"no scan in plan:\n{plan}")


class TestRangeIndexScan:
    def test_narrow_range_uses_index(self, db):
        assert scan_kind(db, "SELECT k FROM t WHERE k > 990") == "RangeIndexScan"
        assert scan_kind(db, "SELECT k FROM t WHERE k BETWEEN 5 AND 9") == (
            "RangeIndexScan"
        )

    def test_results_match_seq_scan(self, db):
        plain = Database(page_capacity=10)
        plain.execute("CREATE TABLE t (k INT, v FLOAT)")
        plain.insert_rows("t", [(i, float(i % 7)) for i in range(1000)])
        for sql in (
            "SELECT count(*) FROM t WHERE k >= 990",
            "SELECT count(*) FROM t WHERE k BETWEEN 100 AND 110",
            "SELECT count(*) FROM t WHERE k < 5",
            "SELECT count(*) FROM t WHERE k > 5 AND k <= 7",
            "SELECT count(*) FROM t WHERE 10 > k",  # literal on the left
        ):
            assert db.query(sql) == plain.query(sql), sql

    def test_combined_bounds_intersect(self, db):
        rows = db.query("SELECT k FROM t WHERE k >= 5 AND k < 8 ORDER BY k")
        assert rows == [(5,), (6,), (7,)]

    def test_empty_range(self, db):
        assert db.query("SELECT count(*) FROM t WHERE k > 10 AND k < 10") == [(0,)]

    def test_narrow_range_is_cheap(self, db):
        ex = db.prepare("SELECT count(*) FROM t WHERE k BETWEEN 10 AND 19")
        ex.run_to_completion()
        seq_pages = db.catalog.table("t").heap.page_count
        assert ex.work_done < seq_pages / 5
        # Estimate matches actual exactly for a clustered key.
        assert ex.root.est_cost == pytest.approx(ex.work_done, rel=0.3)

    def test_unindexed_column_stays_seq(self, db):
        assert scan_kind(db, "SELECT k FROM t WHERE v > 6") == "SeqScan"

    def test_negated_between_not_indexed(self, db):
        assert scan_kind(db, "SELECT k FROM t WHERE k NOT BETWEEN 1 AND 2") == (
            "SeqScan"
        )

    def test_null_bound_not_indexed(self, db):
        assert scan_kind(db, "SELECT k FROM t WHERE k > NULL") == "SeqScan"

    def test_remaining_conjuncts_still_filter(self, db):
        rows = db.query(
            "SELECT k FROM t WHERE k BETWEEN 0 AND 13 AND v = 3 ORDER BY k"
        )
        assert rows == [(3,), (10,)]

    def test_operator_direct(self, db):
        table = db.catalog.table("t")
        index = table.index_on("k")
        from repro.engine.operators.base import WorkAccount

        account = WorkAccount()
        scan = RangeIndexScan(
            table, "t", index, account, low=lambda env: 997, high=None
        )
        rows = list(scan.rows())
        assert [r[0] for r in rows] == [997, 998, 999]
        assert account.total >= index.height()


class TestInitPlans:
    def test_uncorrelated_subquery_runs_once(self, db):
        ex = db.prepare("SELECT k FROM t WHERE v > (SELECT avg(v) FROM t)")
        ex.run_to_completion()
        pages = db.catalog.table("t").heap.page_count
        # Two sequential scans, not one per row.
        assert ex.work_done == pytest.approx(2 * pages)

    def test_uncorrelated_estimate_not_multiplied(self, db):
        est = db.estimated_cost("SELECT k FROM t WHERE v > (SELECT avg(v) FROM t)")
        pages = db.catalog.table("t").heap.page_count
        assert est == pytest.approx(2 * pages)

    def test_correlated_subquery_still_per_row(self, db):
        db.execute("CREATE TABLE s (k INT, w FLOAT)")
        db.insert_rows("s", [(i, float(i)) for i in range(100)])
        db.execute("CREATE INDEX s_k ON s (k)")
        db.analyze()
        ex = db.prepare(
            "SELECT k FROM t WHERE v > (SELECT w FROM s WHERE s.k = t.k % 100)"
        )
        ex.run_to_completion()
        pages = db.catalog.table("t").heap.page_count
        assert ex.work_done > 3 * pages  # per-row probes dominate

    def test_results_unchanged_by_caching(self, db):
        rows = db.query("SELECT count(*) FROM t WHERE v > (SELECT avg(v) FROM t)")
        # avg(v) of i%7 over 0..999 ~= 2.997; v in {3,4,5,6} qualifies.
        assert rows[0][0] == sum(1 for i in range(1000) if (i % 7) > 2.997)

    def test_mixed_nesting(self, db):
        """A correlated subquery containing an uncorrelated one."""
        db.execute("CREATE TABLE s (k INT, w FLOAT)")
        db.insert_rows("s", [(i % 10, float(i)) for i in range(50)])
        db.analyze()
        rows = db.query(
            "SELECT count(*) FROM t WHERE k < 10 AND v >= "
            "(SELECT min(w) FROM s WHERE s.k = t.k)"
        )
        assert rows[0][0] >= 0  # runs without error; exact value checked below
        import statistics

        mins = {}
        for i in range(50):
            mins.setdefault(i % 10, []).append(float(i))
        expected = 0
        for k in range(10):
            v = float(k % 7)
            m = min(mins[k])
            if v >= m:
                expected += 1
        assert rows[0][0] == expected
