"""Direct unit tests for the ProgressTracker refinement logic."""

import pytest

from repro.engine.catalog import Catalog
from repro.engine.operators.base import WorkAccount
from repro.engine.operators.scans import SeqScan
from repro.engine.operators.transforms import Filter
from repro.engine.progress import ProgressTracker, find_driver_scan
from repro.engine.schema import Column, TableSchema
from repro.engine.types import SqlType


def make_scan(rows=100, page_capacity=10):
    catalog = Catalog(page_capacity=page_capacity)
    schema = TableSchema.of("t", [Column("k", SqlType.INTEGER)])
    table = catalog.create_table(schema)
    for i in range(rows):
        table.insert((i,))
    account = WorkAccount()
    return SeqScan(table, "t", account), account


class TestDriverDiscovery:
    def test_finds_scan_through_wrappers(self):
        scan, _ = make_scan()
        wrapped = Filter(scan, lambda env: True)
        assert find_driver_scan(wrapped) is scan

    def test_none_without_scan(self):
        from repro.engine.operators.transforms import SingleRow

        assert find_driver_scan(SingleRow(WorkAccount())) is None


class TestTracker:
    def test_initial_estimate(self):
        scan, account = make_scan()
        tracker = ProgressTracker(scan, account, optimizer_estimate=42.0)
        assert tracker.estimated_remaining_cost() == 42.0
        assert tracker.completed_fraction() == 0.0

    def test_extrapolation_converges_on_uniform_work(self):
        scan, account = make_scan(rows=100, page_capacity=10)
        tracker = ProgressTracker(scan, account, optimizer_estimate=5.0)
        it = scan.rows()
        for _ in range(60):  # 6 pages
            next(it)
        # True total is 10 pages; the optimizer lowballed at 5.
        assert tracker.estimated_total_cost() == pytest.approx(10.0, rel=0.2)

    def test_estimate_floor_is_work_done(self):
        scan, account = make_scan(rows=100, page_capacity=10)
        tracker = ProgressTracker(scan, account, optimizer_estimate=1.0)
        list(scan.rows())
        assert tracker.estimated_total_cost() >= tracker.work_done

    def test_mark_finished_zeroes_remaining(self):
        scan, account = make_scan()
        tracker = ProgressTracker(scan, account, optimizer_estimate=100.0)
        tracker.mark_finished()
        assert tracker.estimated_remaining_cost() == 0.0
        assert tracker.completed_fraction() == 1.0 or account.total == 0

    def test_no_driver_uses_optimizer_estimate(self):
        from repro.engine.operators.transforms import SingleRow

        account = WorkAccount()
        tracker = ProgressTracker(SingleRow(account), account, 7.0)
        assert tracker.driver_fraction() is None
        assert tracker.estimated_remaining_cost() == 7.0

    def test_validation(self):
        scan, account = make_scan()
        with pytest.raises(ValueError):
            ProgressTracker(scan, account, optimizer_estimate=-1.0)
        with pytest.raises(ValueError):
            ProgressTracker(scan, account, 1.0, blend_until=0.0)
        with pytest.raises(ValueError):
            ProgressTracker(scan, account, 1.0, blend_until=1.5)

    def test_blend_weights_early_fraction(self):
        scan, account = make_scan(rows=100, page_capacity=10)
        tracker = ProgressTracker(
            scan, account, optimizer_estimate=100.0, blend_until=0.5
        )
        it = scan.rows()
        next(it)  # tiny fraction: optimizer estimate dominates
        assert tracker.estimated_total_cost() > 50.0


class TestRestoreFloor:
    """Checkpointed work floors the estimate after a restore."""

    def test_restored_work_floors_driverless_estimate(self):
        """Regression: an index-only plan (no driver scan) must not report
        a total below the work a restored checkpoint proves was done."""
        from repro.engine.operators.transforms import SingleRow

        account = WorkAccount()
        tracker = ProgressTracker(SingleRow(account), account, 7.0)
        tracker.note_restore(30.0)
        assert tracker.estimated_total_cost() >= 30.0

    def test_restore_floor_keeps_maximum(self):
        from repro.engine.operators.transforms import SingleRow

        account = WorkAccount()
        tracker = ProgressTracker(SingleRow(account), account, 7.0)
        tracker.note_restore(30.0)
        tracker.note_restore(10.0)  # later, smaller note must not lower it
        assert tracker.estimated_total_cost() >= 30.0

    def test_restore_rejects_negative_work(self):
        scan, account = make_scan()
        tracker = ProgressTracker(scan, account, optimizer_estimate=5.0)
        with pytest.raises(ValueError):
            tracker.note_restore(-1.0)

    def test_restored_execution_estimate_floored(self):
        """End to end: restoring a checkpoint credits the account and the
        tracker never estimates a total below the credited work."""
        import random

        from repro.engine import Database

        d = Database(page_capacity=10)
        rng = random.Random(11)
        d.execute("CREATE TABLE t (k INT, v FLOAT)")
        d.insert_rows("t", [(i, rng.random()) for i in range(300)])
        d.analyze()
        sql = "SELECT * FROM t"
        ex = d.prepare(sql)
        while not ex.finished and ex.work_done < 12.0:
            ex.step(1.0)
        ckpt = ex.checkpoint()
        assert ckpt is not None

        resumed = d.prepare(sql)
        resumed.restore(ckpt)
        assert resumed.progress.estimated_total_cost() >= ckpt.work_done
