"""Differential tests: the engine vs. an independent Python reference.

Hypothesis generates random tables and simple queries; results from the
engine (with and without indexes, across page sizes) must match a naive
reference evaluator written directly against the row data.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database

COLS = ("k", "v")


@st.composite
def tables(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    rows = []
    for _ in range(n):
        k = draw(st.one_of(st.none(), st.integers(min_value=-5, max_value=5)))
        v = draw(
            st.one_of(
                st.none(),
                st.floats(min_value=-100, max_value=100, allow_nan=False),
            )
        )
        rows.append((k, v))
    return rows


def build(rows, page_capacity, index):
    db = Database(page_capacity=page_capacity)
    db.execute("CREATE TABLE t (k INT, v FLOAT)")
    db.insert_rows("t", rows)
    if index:
        db.execute("CREATE INDEX t_k ON t (k)")
        db.analyze()
    return db


class TestFilters:
    @given(
        rows=tables(),
        threshold=st.integers(min_value=-5, max_value=5),
        page=st.sampled_from([1, 3, 50]),
        index=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_equality_filter(self, rows, threshold, page, index):
        db = build(rows, page, index)
        got = db.query(f"SELECT k, v FROM t WHERE k = {threshold}")
        expected = [r for r in rows if r[0] is not None and r[0] == threshold]
        assert sorted(got, key=repr) == sorted(expected, key=repr)

    @given(
        rows=tables(),
        lo=st.integers(min_value=-5, max_value=5),
        hi=st.integers(min_value=-5, max_value=5),
        page=st.sampled_from([2, 50]),
        index=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_range_filter(self, rows, lo, hi, page, index):
        db = build(rows, page, index)
        got = db.query(f"SELECT k FROM t WHERE k >= {lo} AND k <= {hi}")
        expected = [
            (r[0],) for r in rows if r[0] is not None and lo <= r[0] <= hi
        ]
        assert sorted(got, key=repr) == sorted(expected, key=repr)

    @given(rows=tables(), page=st.sampled_from([2, 50]))
    @settings(max_examples=40, deadline=None)
    def test_null_handling(self, rows, page):
        db = build(rows, page, index=False)
        got = db.query("SELECT k FROM t WHERE k IS NULL")
        assert len(got) == sum(1 for r in rows if r[0] is None)
        got2 = db.query("SELECT k FROM t WHERE k = k")
        assert len(got2) == sum(1 for r in rows if r[0] is not None)


class TestAggregates:
    @given(rows=tables(), page=st.sampled_from([1, 4, 50]))
    @settings(max_examples=60, deadline=None)
    def test_global_aggregates_match_reference(self, rows, page):
        db = build(rows, page, index=False)
        got = db.query("SELECT count(*), count(v), sum(v), min(v), max(v) FROM t")[0]
        vs = [r[1] for r in rows if r[1] is not None]
        expected = (
            len(rows),
            len(vs),
            sum(vs) if vs else None,
            min(vs) if vs else None,
            max(vs) if vs else None,
        )
        assert got[0] == expected[0]
        assert got[1] == expected[1]
        if expected[2] is None:
            assert got[2] is None
        else:
            assert got[2] == pytest.approx(expected[2], abs=1e-6)
        assert got[3] == expected[3]
        assert got[4] == expected[4]

    @given(rows=tables(), page=st.sampled_from([3, 50]))
    @settings(max_examples=40, deadline=None)
    def test_group_by_matches_reference(self, rows, page):
        db = build(rows, page, index=False)
        got = dict(db.query("SELECT k, count(*) FROM t GROUP BY k"))
        expected: dict = {}
        for k, _ in rows:
            expected[k] = expected.get(k, 0) + 1
        assert got == expected


class TestJoinsAndUnionsDifferential:
    @given(
        left=tables(),
        right=tables(),
        page=st.sampled_from([2, 50]),
    )
    @settings(max_examples=40, deadline=None)
    def test_left_join_matches_reference(self, left, right, page):
        db = Database(page_capacity=page)
        db.execute("CREATE TABLE l (k INT, v FLOAT)")
        db.insert_rows("l", left)
        db.execute("CREATE TABLE r (k INT, v FLOAT)")
        db.insert_rows("r", right)
        got = db.query("SELECT l.k, r.k FROM l LEFT JOIN r ON l.k = r.k")
        expected = []
        for lk, _ in left:
            matches = [rk for rk, _ in right if lk is not None and rk == lk]
            if matches:
                expected.extend((lk, rk) for rk in matches)
            else:
                expected.append((lk, None))
        assert sorted(got, key=repr) == sorted(expected, key=repr)

    @given(a=tables(), b=tables(), keep_all=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_union_matches_reference(self, a, b, keep_all):
        db = Database(page_capacity=5)
        db.execute("CREATE TABLE a (k INT, v FLOAT)")
        db.insert_rows("a", a)
        db.execute("CREATE TABLE b (k INT, v FLOAT)")
        db.insert_rows("b", b)
        op = "UNION ALL" if keep_all else "UNION"
        got = db.query(f"SELECT k FROM a {op} SELECT k FROM b")
        raw = [(r[0],) for r in a] + [(r[0],) for r in b]
        expected = raw if keep_all else list(dict.fromkeys(raw))
        assert sorted(got, key=repr) == sorted(expected, key=repr)

    @given(rows=tables(), threshold=st.integers(-5, 5))
    @settings(max_examples=30, deadline=None)
    def test_delete_matches_reference(self, rows, threshold):
        db = build(rows, 4, index=False)
        deleted = db.execute(f"DELETE FROM t WHERE k > {threshold}")
        survivors = [
            r for r in rows if not (r[0] is not None and r[0] > threshold)
        ]
        assert deleted == len(rows) - len(survivors)
        got = db.query("SELECT k, v FROM t")
        assert sorted(got, key=repr) == sorted(survivors, key=repr)


class TestOrderAndWork:
    @given(rows=tables(), page=st.sampled_from([2, 50]), desc=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_order_by_matches_python_sort(self, rows, page, desc):
        db = build(rows, page, index=False)
        direction = "DESC" if desc else "ASC"
        got = db.query(f"SELECT k FROM t WHERE k IS NOT NULL ORDER BY k {direction}")
        expected = sorted(
            (r[0] for r in rows if r[0] is not None), reverse=desc
        )
        assert [g[0] for g in got] == expected

    @given(rows=tables(), page=st.sampled_from([1, 5]))
    @settings(max_examples=30, deadline=None)
    def test_work_finite_and_page_dependent(self, rows, page):
        db = build(rows, page, index=False)
        ex = db.prepare("SELECT * FROM t")
        ex.run_to_completion()
        expected_pages = math.ceil(len(rows) / page) if rows else 0
        assert ex.work_done == expected_pages
