"""Tests for plan shapes and cost annotations."""

import pytest

from repro.engine import Database, use_decorrelation
from repro.engine.errors import PlanError
from repro.engine.operators.joins import HashJoin, NestedLoopJoin
from repro.engine.operators.scans import IndexScan, SeqScan
from repro.engine.operators.sort import Sort
from repro.engine.operators.transforms import Distinct, Filter, Limit


@pytest.fixture()
def db():
    d = Database(page_capacity=10)
    d.execute("CREATE TABLE a (k INT, v FLOAT)")
    d.insert_rows("a", [(i, float(i)) for i in range(100)])
    d.execute("CREATE TABLE b (k INT, w FLOAT)")
    d.insert_rows("b", [(i % 20, float(i)) for i in range(200)])
    d.execute("CREATE INDEX b_k ON b (k)")
    d.analyze()
    return d


def find_ops(root, cls):
    found = []

    def walk(op):
        if isinstance(op, cls):
            found.append(op)
        for child in op.children():
            walk(child)

    walk(root)
    return found


class TestAccessPaths:
    def test_seq_scan_without_predicate(self, db):
        root = db.prepare("SELECT * FROM a").root
        assert find_ops(root, SeqScan)

    def test_index_scan_for_equality_on_indexed_column(self, db):
        root = db.prepare("SELECT * FROM b WHERE k = 5").root
        assert find_ops(root, IndexScan)
        assert not find_ops(root, SeqScan)

    def test_no_index_scan_for_range(self, db):
        root = db.prepare("SELECT * FROM b WHERE k > 5").root
        assert not find_ops(root, IndexScan)

    def test_no_index_scan_when_probe_depends_on_same_table(self, db):
        root = db.prepare("SELECT * FROM b WHERE k = k").root
        assert not find_ops(root, IndexScan)

    def test_pushed_filter_below_joins(self, db):
        root = db.prepare(
            "SELECT * FROM a JOIN b ON a.k = b.k WHERE a.v > 50"
        ).root
        joins = find_ops(root, HashJoin)
        assert joins
        filters = find_ops(joins[0], Filter)
        assert filters, "single-table predicate should be pushed below the join"

    def test_index_scan_in_correlated_subquery(self, db):
        # The row-loop fallback path (decorrelation off) costs the
        # subquery per outer row; this stays as the fallback for queries
        # the rewrite cannot prove safe.
        with use_decorrelation(False):
            root = db.prepare(
                "SELECT * FROM a WHERE a.v > "
                "(SELECT sum(b.w) FROM b WHERE b.k = a.k)"
            ).root
        # The subquery plan is held by the filter closure; check the
        # estimated cost reflects per-row subquery work instead.
        filters = find_ops(root, Filter)
        assert filters
        scan = find_ops(root, SeqScan)[0]
        assert root.est_cost > scan.est_cost * 5

    def test_correlated_subquery_decorrelates_by_default(self, db):
        sql = (
            "SELECT * FROM a WHERE a.v > "
            "(SELECT sum(b.w) FROM b WHERE b.k = a.k)"
        )
        root = db.prepare(sql).root
        # The rewrite turns the correlated filter into a grouped LEFT
        # hash join, far cheaper than the per-row replan...
        joins = find_ops(root, HashJoin)
        assert joins and joins[0].left_outer
        with use_decorrelation(False):
            fallback = db.prepare(sql).root
        assert root.est_cost < fallback.est_cost
        # ...and both shapes return the same rows.
        with use_decorrelation(False):
            oracle = db.prepare(sql, execution_mode="row").run_to_completion()
        assert db.query(sql) == oracle


class TestJoinStrategies:
    def test_equi_join_becomes_hash_join(self, db):
        root = db.prepare("SELECT * FROM a JOIN b ON a.k = b.k").root
        assert find_ops(root, HashJoin)
        assert not find_ops(root, NestedLoopJoin)

    def test_comma_join_with_where_becomes_hash_join(self, db):
        root = db.prepare("SELECT * FROM a, b WHERE a.k = b.k").root
        assert find_ops(root, HashJoin)

    def test_cross_join_is_nested_loop(self, db):
        root = db.prepare("SELECT * FROM a CROSS JOIN b").root
        assert find_ops(root, NestedLoopJoin)

    def test_non_equi_join_is_nested_loop(self, db):
        root = db.prepare("SELECT * FROM a JOIN b ON a.k < b.k").root
        assert find_ops(root, NestedLoopJoin)


class TestPlanAnnotations:
    def test_costs_monotone_up_the_tree(self, db):
        root = db.prepare(
            "SELECT k, count(*) FROM b WHERE w > 10 GROUP BY k ORDER BY k"
        ).root

        def check(op):
            for child in op.children():
                assert op.est_cost >= child.est_cost - 1e-9
                check(child)

        check(root)

    def test_seq_scan_estimate_equals_pages(self, db):
        root = db.prepare("SELECT * FROM a").root
        scan = find_ops(root, SeqScan)[0]
        assert scan.est_cost == db.catalog.table("a").heap.page_count
        assert scan.est_rows == 100

    def test_sort_and_limit_nodes_present(self, db):
        root = db.prepare("SELECT * FROM a ORDER BY v LIMIT 3").root
        assert find_ops(root, Sort)
        assert isinstance(root, Limit)

    def test_distinct_node(self, db):
        root = db.prepare("SELECT DISTINCT k FROM b").root
        assert find_ops(root, Distinct)

    def test_explain_includes_all_nodes(self, db):
        text = db.explain("SELECT DISTINCT a.k FROM a JOIN b ON a.k = b.k "
                          "WHERE a.v > 2 ORDER BY a.k LIMIT 5")
        for fragment in ("HashJoin", "SeqScan", "Distinct", "Sort", "Limit"):
            assert fragment in text


class TestErrors:
    def test_unknown_table(self, db):
        with pytest.raises(Exception):
            db.prepare("SELECT * FROM missing")

    def test_unknown_column(self, db):
        with pytest.raises(PlanError):
            db.prepare("SELECT zzz FROM a")

    def test_star_with_unknown_alias(self, db):
        with pytest.raises(PlanError):
            db.prepare("SELECT x.* FROM a")

    def test_distinct_with_hidden_order_column(self, db):
        with pytest.raises(PlanError):
            db.prepare("SELECT DISTINCT k FROM a ORDER BY v")

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(PlanError):
            db.prepare("SELECT k FROM a WHERE sum(v) > 1")
