"""Tests for the SQL lexer."""

import pytest

from repro.engine.errors import ParseError
from repro.engine.sql.lexer import TokenType, tokenize


def kinds(sql):
    return [(t.type, t.value) for t in tokenize(sql)[:-1]]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        assert kinds("select FROM Where")[0] == (TokenType.KEYWORD, "SELECT")
        assert kinds("select FROM Where")[2] == (TokenType.KEYWORD, "WHERE")

    def test_identifiers_keep_case(self):
        assert kinds("Part_1")[0] == (TokenType.IDENT, "Part_1")

    def test_numbers(self):
        assert kinds("42")[0] == (TokenType.NUMBER, "42")
        assert kinds("3.14")[0] == (TokenType.NUMBER, "3.14")
        assert kinds("1e5")[0] == (TokenType.NUMBER, "1e5")
        assert kinds("2.5E-3")[0] == (TokenType.NUMBER, "2.5E-3")
        assert kinds(".5")[0] == (TokenType.NUMBER, ".5")

    def test_string_with_escape(self):
        toks = kinds("'it''s'")
        assert toks[0] == (TokenType.STRING, "it's")

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_operators(self):
        ops = [v for t, v in kinds("a <> b <= c >= d != e || f")]
        assert "<>" in ops and "<=" in ops and ">=" in ops
        assert "!=" in ops and "||" in ops

    def test_comments_skipped(self):
        toks = kinds("select -- comment here\n 1")
        assert len(toks) == 2

    def test_punctuation(self):
        toks = kinds("(a, b);")
        values = [v for _, v in toks]
        assert values == ["(", "a", ",", "b", ")", ";"]

    def test_unexpected_character(self):
        with pytest.raises(ParseError) as err:
            tokenize("select @")
        assert err.value.position == 7

    def test_eof_token_always_present(self):
        assert tokenize("")[-1].type is TokenType.EOF
        assert tokenize("select")[-1].type is TokenType.EOF

    def test_positions_recorded(self):
        toks = tokenize("ab cd")
        assert toks[0].position == 0
        assert toks[1].position == 3
