"""Direct tests of physical operators and their work accounting."""

import pytest

from repro.engine import Database
from repro.engine.catalog import Catalog
from repro.engine.expr import BindContext, ColumnSlot, Env, Layout
from repro.engine.operators.agg import AggSpec, HashAggregate
from repro.engine.operators.base import WorkAccount
from repro.engine.operators.joins import HashJoin, NestedLoopJoin
from repro.engine.operators.scans import IndexScan, SeqScan
from repro.engine.operators.sort import Sort
from repro.engine.operators.transforms import (
    Distinct,
    Filter,
    Limit,
    Materialize,
    Project,
    SingleRow,
)
from repro.engine.schema import Column, TableSchema
from repro.engine.types import SqlType


def make_table(rows, page_capacity=4, name="t", columns=("k", "v")):
    catalog = Catalog(page_capacity=page_capacity)
    schema = TableSchema.of(
        name,
        [Column(c, SqlType.INTEGER if i == 0 else SqlType.FLOAT)
         for i, c in enumerate(columns)],
    )
    table = catalog.create_table(schema)
    for row in rows:
        table.insert(row)
    return catalog, table


class TestSeqScan:
    def test_yields_all_rows_charging_pages(self):
        _, table = make_table([(i, float(i)) for i in range(10)], page_capacity=3)
        account = WorkAccount()
        scan = SeqScan(table, "t", account)
        rows = list(scan.rows())
        assert len(rows) == 10
        assert account.total == 4.0  # ceil(10/3) pages

    def test_progress_fraction_row_granular(self):
        _, table = make_table([(i, float(i)) for i in range(8)], page_capacity=4)
        account = WorkAccount()
        scan = SeqScan(table, "t", account)
        it = scan.rows()
        assert scan.progress_fraction() <= 0.0 or scan.total_pages == 0
        next(it)
        f1 = scan.progress_fraction()
        next(it)
        next(it)
        f2 = scan.progress_fraction()
        assert 0 <= f1 < f2 < 1.0
        list(it)
        assert scan.progress_fraction() == pytest.approx(1.0)

    def test_empty_table(self):
        _, table = make_table([])
        scan = SeqScan(table, "t", WorkAccount())
        assert list(scan.rows()) == []
        assert scan.progress_fraction() == 1.0


class TestIndexScan:
    def _scan(self, probe_value):
        catalog, table = make_table(
            [(i % 5, float(i)) for i in range(50)], page_capacity=5
        )
        index = catalog.create_index("idx", "t", "k")
        account = WorkAccount()
        probe = lambda env: probe_value
        return IndexScan(table, "t", index, probe, account), account

    def test_matching_rows(self):
        scan, account = self._scan(3)
        rows = list(scan.rows())
        assert len(rows) == 10
        assert all(r[0] == 3 for r in rows)
        assert account.total > 0
        assert scan.probes_done == 1

    def test_no_match_still_charges_descent(self):
        scan, account = self._scan(99)
        assert list(scan.rows()) == []
        assert account.total >= 1.0

    def test_distinct_page_charging(self):
        # All matches on one value spread over 10 pages of 5 rows:
        # k cycles 0..4 so k=3 hits every page exactly twice.
        scan, account = self._scan(3)
        list(scan.rows())
        # descent (height) + 10 heap pages, NOT 10 rows + descent each.
        assert account.total == pytest.approx(scan.index.height() + 10)


class TestTransforms:
    def _base(self):
        _, table = make_table([(i, float(i)) for i in range(10)], page_capacity=5)
        return SeqScan(table, "t", WorkAccount())

    def test_filter(self):
        scan = self._base()
        op = Filter(scan, lambda env: env.row[0] >= 7)
        assert [r[0] for r in op.rows()] == [7, 8, 9]

    def test_filter_null_is_dropped(self):
        scan = self._base()
        op = Filter(scan, lambda env: None if env.row[0] == 0 else env.row[0] > 5)
        assert [r[0] for r in op.rows()] == [6, 7, 8, 9]

    def test_project(self):
        scan = self._base()
        op = Project(
            scan,
            [lambda env: env.row[0] * 10],
            Layout([ColumnSlot(None, "x")]),
        )
        assert [r for r in op.rows()][:3] == [(0,), (10,), (20,)]

    def test_project_arity_checked(self):
        scan = self._base()
        with pytest.raises(ValueError):
            Project(scan, [], Layout([ColumnSlot(None, "x")]))

    def test_limit_offset(self):
        op = Limit(self._base(), limit=3, offset=2)
        assert [r[0] for r in op.rows()] == [2, 3, 4]
        op = Limit(self._base(), limit=None, offset=8)
        assert [r[0] for r in op.rows()] == [8, 9]

    def test_limit_stops_pulling(self):
        scan = self._base()
        op = Limit(scan, limit=1)
        assert len(list(op.rows())) == 1
        # Only the first page was read.
        assert scan.account.total == 1.0

    def test_distinct(self):
        _, table = make_table([(1, 1.0), (1, 1.0), (2, 1.0)])
        scan = SeqScan(table, "t", WorkAccount())
        assert len(list(Distinct(scan).rows())) == 2

    def test_materialize_replays_free(self):
        scan = self._base()
        mat = Materialize(scan, rows_per_page=5)
        first = list(mat.rows())
        charged = scan.account.total
        second = list(mat.rows())
        assert first == second
        assert scan.account.total == charged  # no extra work

    def test_materialize_spill_charge(self):
        scan = self._base()
        mat = Materialize(scan, rows_per_page=5)
        list(mat.rows())
        # 2 scan pages + 2*2 spill pages.
        assert scan.account.total == pytest.approx(2 + 4)

    def test_single_row(self):
        op = SingleRow(WorkAccount())
        assert list(op.rows()) == [()]


class TestJoins:
    def _tables(self):
        cat_l, left = make_table([(i, float(i)) for i in range(6)], name="l")
        cat_r, right = make_table(
            [(i % 3, float(i) * 10) for i in range(6)], name="r",
            columns=("k", "w"),
        )
        account = WorkAccount()
        lscan = SeqScan(left, "l", account)
        rscan = SeqScan(right, "r", account)
        return lscan, rscan

    def test_hash_join(self):
        lscan, rscan = self._tables()
        join = HashJoin(
            lscan, rscan,
            probe_key=lambda env: env.row[0],
            build_key=lambda env: env.row[0],
        )
        rows = list(join.rows())
        # keys 0,1,2 each match twice; keys 3..5 never.
        assert len(rows) == 6
        assert all(r[0] == r[2] for r in rows)

    def test_hash_join_null_keys_dropped(self):
        _, left = make_table([(None, 1.0), (1, 1.0)], name="l")
        _, right = make_table([(None, 2.0), (1, 2.0)], name="r")
        account = WorkAccount()
        join = HashJoin(
            SeqScan(left, "l", account),
            SeqScan(right, "r", account),
            probe_key=lambda env: env.row[0],
            build_key=lambda env: env.row[0],
        )
        assert len(list(join.rows())) == 1

    def test_nested_loop_cross(self):
        lscan, rscan = self._tables()
        join = NestedLoopJoin(lscan, Materialize(rscan), None)
        assert len(list(join.rows())) == 36

    def test_nested_loop_with_condition(self):
        lscan, rscan = self._tables()
        join = NestedLoopJoin(
            lscan,
            Materialize(rscan),
            condition=lambda env: env.row[0] == env.row[2],
        )
        assert len(list(join.rows())) == 6

    def test_layout_merged(self):
        lscan, rscan = self._tables()
        join = NestedLoopJoin(lscan, Materialize(rscan), None)
        names = [(s.qualifier, s.name) for s in join.layout.slots]
        assert names == [("l", "k"), ("l", "v"), ("r", "k"), ("r", "w")]


class TestAggregateAndSort:
    def _scan(self):
        _, table = make_table(
            [(i % 3, float(i)) for i in range(9)], page_capacity=5
        )
        return SeqScan(table, "t", WorkAccount())

    def test_hash_aggregate_groups(self):
        scan = self._scan()
        agg = HashAggregate(
            scan,
            group_exprs=[lambda env: env.row[0]],
            aggregates=[
                AggSpec("COUNT", arg=None),
                AggSpec("SUM", arg=lambda env: env.row[1]),
            ],
            layout=Layout(
                [ColumnSlot(None, "k"), ColumnSlot(None, "n"), ColumnSlot(None, "s")]
            ),
        )
        rows = sorted(agg.rows())
        assert rows == [(0, 3, 9.0), (1, 3, 12.0), (2, 3, 15.0)]

    def test_global_aggregate_empty_input(self):
        _, table = make_table([])
        scan = SeqScan(table, "t", WorkAccount())
        agg = HashAggregate(
            scan,
            group_exprs=[],
            aggregates=[AggSpec("COUNT", None), AggSpec("MAX", lambda env: env.row[0])],
            layout=Layout([ColumnSlot(None, "n"), ColumnSlot(None, "m")]),
        )
        assert list(agg.rows()) == [(0, None)]

    def test_distinct_aggregate(self):
        scan = self._scan()
        agg = HashAggregate(
            scan,
            group_exprs=[],
            aggregates=[AggSpec("COUNT", lambda env: env.row[0], distinct=True)],
            layout=Layout([ColumnSlot(None, "n")]),
        )
        assert list(agg.rows()) == [(3,)]

    def test_agg_spec_validation(self):
        with pytest.raises(Exception):
            AggSpec("MEDIAN", lambda env: 1)
        with pytest.raises(Exception):
            AggSpec("SUM", None)

    def test_sort_multi_key(self):
        scan = self._scan()
        op = Sort(
            scan,
            keys=[
                (lambda env: env.row[0], False),
                (lambda env: env.row[1], True),
            ],
            rows_per_page=5,
        )
        rows = list(op.rows())
        assert [r[0] for r in rows] == [0, 0, 0, 1, 1, 1, 2, 2, 2]
        assert rows[0][1] > rows[1][1] > rows[2][1]

    def test_sort_charges_spill(self):
        scan = self._scan()
        op = Sort(scan, keys=[(lambda env: env.row[0], False)], rows_per_page=5)
        list(op.rows())
        # 2 scan pages + 2 * ceil(9/5) sort pages.
        assert scan.account.total == pytest.approx(2 + 4)

    def test_sort_requires_keys(self):
        with pytest.raises(ValueError):
            Sort(self._scan(), keys=[])
