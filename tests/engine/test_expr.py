"""Tests for expression binding and evaluation (three-valued logic etc.)."""

import pytest

from repro.engine.errors import ExecutionError, PlanError, SqlTypeError
from repro.engine.expr import BindContext, ColumnSlot, Env, Layout, bind_expr
from repro.engine.sql import ast, parse_statement


def expr_of(sql_expr: str) -> ast.Expr:
    """Parse a standalone expression via a SELECT wrapper."""
    return parse_statement(f"SELECT {sql_expr}").items[0].expr


def where_of(sql_pred: str) -> ast.Expr:
    return parse_statement(f"SELECT 1 FROM t WHERE {sql_pred}").where


LAYOUT = Layout(
    [ColumnSlot("t", "a"), ColumnSlot("t", "b"), ColumnSlot("t", "s")]
)
CTX = BindContext(LAYOUT)


def evaluate(sql_pred: str, row=(1, 2, "abc")):
    bound = bind_expr(where_of(sql_pred), CTX)
    return bound(Env(row))


def evaluate_expr(sql_expr: str, row=(1, 2, "abc")):
    bound = bind_expr(expr_of(sql_expr), CTX)
    return bound(Env(row))


class TestLiteralsAndColumns:
    def test_literal(self):
        assert evaluate_expr("42") == 42
        assert evaluate_expr("'hi'") == "hi"
        assert evaluate_expr("NULL") is None

    def test_column_lookup(self):
        assert evaluate_expr("a") == 1
        assert evaluate_expr("t.b") == 2

    def test_unknown_column(self):
        with pytest.raises(PlanError):
            bind_expr(expr_of("zzz"), CTX)

    def test_ambiguous_column(self):
        layout = Layout([ColumnSlot("x", "a"), ColumnSlot("y", "a")])
        with pytest.raises(PlanError):
            bind_expr(expr_of("a"), BindContext(layout))
        # qualified references disambiguate
        assert bind_expr(expr_of("x.a"), BindContext(layout))(Env((7, 8))) == 7


class TestArithmetic:
    def test_basic(self):
        assert evaluate_expr("a + b * 2") == 5
        assert evaluate_expr("b / 4") == 0.5
        assert evaluate_expr("7 % 4") == 3
        assert evaluate_expr("-b") == -2

    def test_null_propagation(self):
        assert evaluate_expr("a + NULL") is None
        assert evaluate_expr("-(NULL)") is None

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            evaluate_expr("1 / 0")
        with pytest.raises(ExecutionError):
            evaluate_expr("1 % 0")

    def test_type_errors(self):
        with pytest.raises(SqlTypeError):
            evaluate_expr("s + 1")
        with pytest.raises(SqlTypeError):
            evaluate_expr("-s")

    def test_concat(self):
        assert evaluate_expr("s || '!'") == "abc!"
        assert evaluate_expr("s || NULL") is None
        with pytest.raises(SqlTypeError):
            evaluate_expr("s || 1")


class TestThreeValuedLogic:
    def test_and(self):
        assert evaluate("TRUE AND TRUE") is True
        assert evaluate("TRUE AND FALSE") is False
        assert evaluate("FALSE AND NULL") is False  # short-circuit
        assert evaluate("TRUE AND NULL") is None
        assert evaluate("NULL AND NULL") is None

    def test_or(self):
        assert evaluate("TRUE OR NULL") is True
        assert evaluate("FALSE OR NULL") is None
        assert evaluate("FALSE OR FALSE") is False

    def test_not(self):
        assert evaluate("NOT TRUE") is False
        assert evaluate("NOT NULL") is None

    def test_comparisons_with_null(self):
        assert evaluate("a = NULL") is None
        assert evaluate("NULL <> NULL") is None

    def test_comparison_operators(self):
        assert evaluate("a < b") is True
        assert evaluate("a >= b") is False
        assert evaluate("a <> b") is True
        assert evaluate("s = 'abc'") is True


class TestPredicates:
    def test_is_null(self):
        assert evaluate("NULL IS NULL") is True
        assert evaluate("a IS NULL") is False
        assert evaluate("a IS NOT NULL") is True

    def test_in_list(self):
        assert evaluate("a IN (1, 2)") is True
        assert evaluate("a IN (5, 6)") is False
        assert evaluate("a NOT IN (5)") is True
        # NULL member: unknown unless a match is found.
        assert evaluate("a IN (1, NULL)") is True
        assert evaluate("a IN (5, NULL)") is None
        assert evaluate("NULL IN (1)") is None

    def test_between(self):
        assert evaluate("b BETWEEN 1 AND 3") is True
        assert evaluate("b NOT BETWEEN 1 AND 3") is False
        assert evaluate("b BETWEEN NULL AND 3") is None

    def test_like(self):
        assert evaluate("s LIKE 'a%'") is True
        assert evaluate("s LIKE '_bc'") is True
        assert evaluate("s LIKE 'a_c'") is True  # _ matches the 'b'
        assert evaluate("s LIKE 'a_d'") is False
        assert evaluate("s NOT LIKE 'z%'") is True
        assert evaluate("s LIKE NULL") is None
        with pytest.raises(SqlTypeError):
            evaluate("a LIKE 'x'")

    def test_like_escapes_regex_chars(self):
        layout = Layout([ColumnSlot("t", "a"), ColumnSlot("t", "b"), ColumnSlot("t", "s")])
        bound = bind_expr(where_of("s LIKE 'a.c'"), BindContext(layout))
        assert bound(Env((1, 2, "abc"))) is False
        assert bound(Env((1, 2, "a.c"))) is True

    def test_case(self):
        assert evaluate_expr("CASE WHEN a = 1 THEN 'one' ELSE 'other' END") == "one"
        assert evaluate_expr("CASE WHEN a = 9 THEN 'nine' END") is None


class TestFunctions:
    def test_scalars(self):
        assert evaluate_expr("abs(-3)") == 3
        assert evaluate_expr("round(2.567, 1)") == 2.6
        assert evaluate_expr("floor(2.9)") == 2
        assert evaluate_expr("ceil(2.1)") == 3
        assert evaluate_expr("length(s)") == 3
        assert evaluate_expr("upper(s)") == "ABC"
        assert evaluate_expr("lower('XY')") == "xy"
        assert evaluate_expr("coalesce(NULL, NULL, 5)") == 5
        assert evaluate_expr("nullif(1, 1)") is None
        assert evaluate_expr("nullif(1, 2)") == 1

    def test_null_in_scalar(self):
        assert evaluate_expr("abs(NULL)") is None
        assert evaluate_expr("upper(NULL)") is None

    def test_unknown_function(self):
        with pytest.raises(PlanError):
            bind_expr(expr_of("frobnicate(1)"), CTX)

    def test_aggregate_rejected_in_scalar_context(self):
        with pytest.raises(PlanError):
            bind_expr(expr_of("sum(a)"), CTX)


class TestCorrelation:
    def test_outer_reference(self):
        outer = BindContext(Layout([ColumnSlot("p", "k")]))
        inner = BindContext(Layout([ColumnSlot("l", "k")]), outer=outer)
        bound = bind_expr(expr_of("p.k"), inner)
        env = Env((10,), parent=Env((99,)))
        assert bound(env) == 99

    def test_inner_shadows_outer(self):
        outer = BindContext(Layout([ColumnSlot("p", "k")]))
        inner = BindContext(Layout([ColumnSlot("l", "k")]), outer=outer)
        bound = bind_expr(expr_of("k"), inner)
        env = Env((10,), parent=Env((99,)))
        assert bound(env) == 10

    def test_escaped_scope_raises(self):
        outer = BindContext(Layout([ColumnSlot("p", "k")]))
        inner = BindContext(Layout([ColumnSlot("l", "k")]), outer=outer)
        bound = bind_expr(expr_of("p.k"), inner)
        with pytest.raises(ExecutionError):
            bound(Env((10,)))  # no parent env

    def test_subquery_requires_compiler(self):
        with pytest.raises(PlanError):
            bind_expr(where_of("a > (SELECT 1)"), CTX)
