"""Tests for the plan-time subquery-decorrelation rewrite.

Plan shapes, rewrite-rule firing, the semantic corner cases the rewrite
must preserve (empty groups, NULL keys, three-valued NOT IN), the safety
conditions that make it back off, plan-pool eligibility of rewritten
statements, and the uncorrelated IN membership probe.
"""

import pytest

from repro.engine import (
    Database,
    default_decorrelation,
    set_default_decorrelation,
    use_decorrelation,
)
from repro.engine.decorrelate import (
    decorrelate_select,
    decorrelate_statement,
    resolve_decorrelation,
)
from repro.engine.errors import SqlTypeError
from repro.engine.sql import parse_statement


def fresh_db():
    db = Database(page_capacity=8)
    db.execute("CREATE TABLE t (k INT, v FLOAT)")
    db.execute("CREATE TABLE s (k INT, v FLOAT)")
    db.insert_rows(
        "t", [(1, 10.0), (2, 20.0), (2, 25.0), (3, 30.0), (None, 40.0)]
    )
    db.insert_rows("s", [(1, 10.0), (1, None), (2, 99.0), (None, 20.0)])
    db.analyze()
    return db


def tags_for(db, sql):
    statement = parse_statement(sql)
    _, fired = decorrelate_statement(statement, db.catalog)
    return fired


def oracle(db, sql):
    with use_decorrelation(False):
        return db.prepare(sql, execution_mode="row").run_to_completion()


class TestSwitch:
    def test_default_is_on(self):
        assert default_decorrelation() is True

    def test_context_manager_restores(self):
        with use_decorrelation(False):
            assert default_decorrelation() is False
        assert default_decorrelation() is True

    def test_set_and_resolve(self):
        set_default_decorrelation(False)
        try:
            assert resolve_decorrelation(None) is False
            assert resolve_decorrelation(True) is True
        finally:
            set_default_decorrelation(True)
        assert resolve_decorrelation(None) is True
        assert resolve_decorrelation(False) is False


class TestRuleFiring:
    def test_scalar_aggregate_fires(self):
        db = fresh_db()
        assert tags_for(
            db,
            "SELECT t.k FROM t WHERE t.v > "
            "(SELECT avg(s.v) FROM s WHERE s.k = t.k)",
        ) == ("scalar-agg",)

    def test_exists_fires_semi(self):
        db = fresh_db()
        assert tags_for(
            db,
            "SELECT t.k FROM t WHERE EXISTS "
            "(SELECT 1 FROM s WHERE s.k = t.k)",
        ) == ("semi-join",)

    def test_not_exists_fires_anti(self):
        db = fresh_db()
        assert tags_for(
            db,
            "SELECT t.k FROM t WHERE NOT EXISTS "
            "(SELECT 1 FROM s WHERE s.k = t.k)",
        ) == ("anti-join",)

    def test_in_fires(self):
        db = fresh_db()
        assert tags_for(
            db,
            "SELECT t.k FROM t WHERE t.v IN "
            "(SELECT s.v FROM s WHERE s.k = t.k)",
        ) == ("semi-in",)

    def test_not_in_fires(self):
        db = fresh_db()
        assert tags_for(
            db,
            "SELECT t.k FROM t WHERE t.v NOT IN "
            "(SELECT s.v FROM s WHERE s.k = t.k)",
        ) == ("anti-in",)

    def test_plan_shape_is_left_hash_join(self):
        db = fresh_db()
        plan = db.explain(
            "SELECT t.k FROM t WHERE t.v > "
            "(SELECT avg(s.v) FROM s WHERE s.k = t.k)"
        )
        assert "HashLeftJoin" in plan
        assert "HashAggregate" in plan
        assert "#dc0" in plan

    def test_union_branches_decorrelate(self):
        db = fresh_db()
        sql = (
            "SELECT t.k FROM t WHERE EXISTS "
            "(SELECT 1 FROM s WHERE s.k = t.k) "
            "UNION SELECT t.k FROM t WHERE t.v > "
            "(SELECT avg(s.v) FROM s WHERE s.k = t.k)"
        )
        assert tags_for(db, sql) == ("semi-join", "scalar-agg")
        assert db.query(sql) == oracle(db, sql)


class TestSemanticCorners:
    def test_count_over_empty_group_is_zero(self):
        db = fresh_db()
        sql = (
            "SELECT t.k, (SELECT count(*) FROM s WHERE s.k = t.k) "
            "FROM t ORDER BY 1"
        )
        rows = db.query(sql)
        assert rows == oracle(db, sql)
        # k=3 has no s rows; COUNT must be 0, not NULL.
        assert (3, 0) in rows

    def test_sum_over_empty_group_is_null(self):
        db = fresh_db()
        sql = "SELECT t.k, (SELECT sum(s.v) FROM s WHERE s.k = t.k) FROM t"
        rows = db.query(sql)
        assert rows == oracle(db, sql)
        assert (3, None) in rows

    def test_null_correlation_key_never_matches(self):
        db = fresh_db()
        # t has a NULL k; s has a NULL k with v=20 -- they must not join.
        sql = (
            "SELECT t.v FROM t WHERE EXISTS "
            "(SELECT 1 FROM s WHERE s.k = t.k)"
        )
        rows = db.query(sql)
        assert rows == oracle(db, sql)
        assert (40.0,) not in rows

    def test_duplicate_outer_keys_each_get_the_value(self):
        db = fresh_db()
        sql = (
            "SELECT t.v, (SELECT max(s.v) FROM s WHERE s.k = t.k) "
            "FROM t WHERE t.k = 2"
        )
        rows = db.query(sql)
        assert rows == oracle(db, sql)
        assert rows == [(20.0, 99.0), (25.0, 99.0)]

    def test_not_in_with_inner_null_is_unknown(self):
        db = fresh_db()
        # k=1's group is {10.0, NULL}: v NOT IN it is NULL for v != 10,
        # so no k=1 row may survive; k=3's group is empty, so NOT IN is
        # TRUE and the row survives.
        sql = (
            "SELECT t.k, t.v FROM t WHERE t.v NOT IN "
            "(SELECT s.v FROM s WHERE s.k = t.k)"
        )
        rows = db.query(sql)
        assert rows == oracle(db, sql)
        assert all(k != 1 for k, _ in rows)
        assert (3, 30.0) in rows

    def test_in_with_null_operand_is_unknown(self):
        db = fresh_db()
        db.execute("INSERT INTO t VALUES (1, NULL)")
        sql = (
            "SELECT t.k, t.v FROM t WHERE t.v IN "
            "(SELECT s.v FROM s WHERE s.k = t.k)"
        )
        assert db.query(sql) == oracle(db, sql)

    def test_select_list_and_order_by_share_one_join(self):
        db = fresh_db()
        sql = (
            "SELECT t.k, (SELECT count(*) FROM s WHERE s.k = t.k) c "
            "FROM t ORDER BY (SELECT count(*) FROM s WHERE s.k = t.k), t.k"
        )
        plan = db.explain(sql)
        assert plan.count("HashLeftJoin") == 1
        assert db.query(sql) == oracle(db, sql)

    def test_compound_aggregate_expression(self):
        db = fresh_db()
        sql = (
            "SELECT t.k FROM t WHERE t.v > "
            "(SELECT sum(s.v) / count(s.v) FROM s WHERE s.k = t.k)"
        )
        assert tags_for(db, sql) == ("scalar-agg",)
        assert db.query(sql) == oracle(db, sql)


class TestSafetyFallbacks:
    """Unprovable queries must pass through the rewrite untouched."""

    @pytest.mark.parametrize(
        "sql",
        [
            # Non-equality correlation.
            "SELECT t.k FROM t WHERE t.v > "
            "(SELECT avg(s.v) FROM s WHERE s.k < t.k)",
            # LIMIT inside a scalar subquery.
            "SELECT t.k FROM t WHERE t.v > "
            "(SELECT avg(s.v) FROM s WHERE s.k = t.k LIMIT 1)",
            # GROUP BY inside the subquery body.
            "SELECT t.k FROM t WHERE EXISTS "
            "(SELECT s.k FROM s WHERE s.k = t.k GROUP BY s.k)",
            # No aggregate in the scalar body.
            "SELECT t.k FROM t WHERE t.v = "
            "(SELECT s.v FROM s WHERE s.k = t.k AND s.v IS NOT NULL)",
            # Uncorrelated: already an init-plan, nothing to decorrelate.
            "SELECT t.k FROM t WHERE t.v > (SELECT avg(s.v) FROM s)",
            # Computed IN operand (could raise; scan short-circuits).
            "SELECT t.k FROM t WHERE t.v * 2 IN "
            "(SELECT s.v FROM s WHERE s.k = t.k)",
            # Non-column IN value expression.
            "SELECT t.k FROM t WHERE t.v IN "
            "(SELECT s.v + 1 FROM s WHERE s.k = t.k)",
        ],
        ids=[
            "non-equality",
            "limit",
            "group-by",
            "no-aggregate",
            "uncorrelated",
            "computed-operand",
            "computed-value",
        ],
    )
    def test_rewrite_backs_off_and_results_match(self, sql):
        db = fresh_db()
        assert tags_for(db, sql) == ()
        assert db.query(sql) == oracle(db, sql)

    def test_cross_family_key_backs_off(self):
        db = fresh_db()
        db.execute("CREATE TABLE u (k TEXT)")
        db.insert_rows("u", [("1",)])
        # t.k is INT, u.k is TEXT: hash equality would silently not
        # match where compare_values raises, so the rewrite must not
        # fire and the error must surface unchanged.
        sql = "SELECT t.k FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.k = t.k)"
        assert tags_for(db, sql) == ()
        with pytest.raises(SqlTypeError):
            db.query(sql)

    def test_rewrite_returns_input_object_on_no_op(self):
        db = fresh_db()
        statement = parse_statement("SELECT t.k FROM t WHERE t.v > 1")
        rewritten, fired = decorrelate_select(statement, db.catalog)
        assert rewritten is statement
        assert fired == ()


class TestPlanPoolEligibility:
    def test_decorrelated_statement_pools(self):
        db = fresh_db()
        sql = (
            "SELECT t.k FROM t WHERE t.v > "
            "(SELECT avg(s.v) FROM s WHERE s.k = t.k)"
        )
        first = db.query(sql)
        hits = db.plan_cache_hits
        assert db.query(sql) == first
        assert db.plan_cache_hits == hits + 1

    def test_unrewritable_subquery_still_not_pooled(self):
        db = fresh_db()
        sql = "SELECT t.k FROM t WHERE t.v > (SELECT avg(s.v) FROM s)"
        first = db.query(sql)
        hits = db.plan_cache_hits
        assert db.query(sql) == first
        assert db.plan_cache_hits == hits

    def test_decorrelation_settings_pool_separately(self):
        db = fresh_db()
        sql = (
            "SELECT t.k FROM t WHERE t.v > "
            "(SELECT avg(s.v) FROM s WHERE s.k = t.k)"
        )
        rows = db.query(sql)
        with use_decorrelation(False):
            # Different pool key; the subquery-bearing plan is not pooled.
            assert db.query(sql) == rows
            hits = db.plan_cache_hits
            assert db.query(sql) == rows
            assert db.plan_cache_hits == hits

    def test_database_decorrelate_off_keeps_row_loop_plan(self):
        db = Database(page_capacity=8, decorrelate=False)
        db.execute("CREATE TABLE t (k INT, v FLOAT)")
        db.execute("CREATE TABLE s (k INT, v FLOAT)")
        db.insert_rows("t", [(1, 1.0)])
        db.insert_rows("s", [(1, 1.0)])
        plan = db.explain(
            "SELECT t.k FROM t WHERE t.v > "
            "(SELECT avg(s.v) FROM s WHERE s.k = t.k)"
        )
        assert "HashLeftJoin" not in plan


class TestUncorrelatedInProbe:
    def _db(self, small_rows):
        db = Database(page_capacity=10, decorrelate=False)
        db.execute("CREATE TABLE big (id INT, v FLOAT)")
        db.execute("CREATE TABLE small (v FLOAT)")
        db.insert_rows("big", [(i, float(i % 10)) for i in range(300)])
        db.insert_rows("small", small_rows)
        db.analyze()
        return db

    def test_probe_skips_per_row_comparisons(self, monkeypatch):
        """The hashed probe does no per-row compare_values calls."""
        import repro.engine.expr as expr_mod

        calls = {"n": 0}
        real = expr_mod.compare_values

        def counting(a, b):
            calls["n"] += 1
            return real(a, b)

        db = self._db([(3.0,), (7.0,), (None,)])
        sql = "SELECT id FROM big WHERE v IN (SELECT v FROM small)"
        expected = db.prepare(sql, execution_mode="row").run_to_completion()
        monkeypatch.setattr(expr_mod, "compare_values", counting)
        rows = db.prepare(sql, execution_mode="row").run_to_completion()
        assert rows == expected
        # The naive scan would do O(outer x inner) comparisons (several
        # hundred here); the probe needs none for clean hits/misses.
        assert calls["n"] == 0

    def test_work_units_are_one_scan_each(self):
        """The inner query charges its scan once, not once per outer row."""
        db = self._db([(3.0,), (7.0,)])
        sql = "SELECT id FROM big WHERE v IN (SELECT v FROM small)"
        ex = db.prepare(sql, execution_mode="row")
        ex.run_to_completion()
        big_pages = db.catalog.table("big").heap.page_count
        small_pages = db.catalog.table("small").heap.page_count
        assert ex.work_done == pytest.approx(big_pages + small_pages)

    def test_probe_matches_scan_on_mixed_type_error(self):
        db = self._db([])
        db.execute("CREATE TABLE names (s TEXT)")
        db.insert_rows("names", [("x",)])
        sql = "SELECT id FROM big WHERE v IN (SELECT s FROM names)"
        # Comparing float with str must raise exactly as the ordered
        # scan does (the clash precedes any possible match).
        with pytest.raises(SqlTypeError):
            db.prepare(sql, execution_mode="row").run_to_completion()

    def test_probe_falls_back_on_nan(self):
        nan = float("nan")
        db = self._db([(nan,)])
        sql = "SELECT id FROM big WHERE v IN (SELECT v FROM small)"
        rows = db.prepare(sql, execution_mode="row").run_to_completion()
        # compare_values treats NaN as equal to every number (engine
        # quirk), so every big row matches; the probe must agree.
        assert len(rows) == 300

    def test_correlated_in_still_scans(self):
        # Correlated runner: rows differ per outer row; no probe.
        db = Database(page_capacity=10, decorrelate=False)
        db.execute("CREATE TABLE t (k INT, v FLOAT)")
        db.execute("CREATE TABLE s (k INT, v FLOAT)")
        db.insert_rows("t", [(1, 1.0), (2, 2.0)])
        db.insert_rows("s", [(1, 1.0), (2, 9.0)])
        sql = (
            "SELECT t.k FROM t WHERE t.v IN "
            "(SELECT s.v FROM s WHERE s.k = t.k)"
        )
        rows = db.prepare(sql, execution_mode="row").run_to_completion()
        assert rows == [(1,)]
