"""Differential suite: vectorized (batch) vs. row-at-a-time execution.

The row engine is the oracle.  For every workload template, a hypothesis
corpus of generated SQL, and the awkward vector widths (1, 7, 1024) the
batch engine must produce byte-identical rows and charge the identical
work total -- including under checkpoints/restores, cancellation and
memory pressure.  Also covers the plan cache (satellite of the same PR):
hit/miss counters, stats-epoch invalidation, and work parity on reuse.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import CancellationToken, Database, QueryCancelled
from repro.workload.queries import join_query, paper_query, scan_query
from repro.workload.tpcr import TpcrConfig, generate

BATCH_SIZES = (1, 7, 1024)


@pytest.fixture(scope="module")
def dataset():
    return generate(TpcrConfig(scale=1 / 4000, seed=3), part_sizes={1: 4})


def run(db, sql, mode, batch_size=None, **kw):
    ex = db.prepare(sql, execution_mode=mode, batch_size=batch_size, **kw)
    rows = ex.run_to_completion()
    return rows, ex.work_done, ex


class TestWorkloadTemplates:
    """Every workload query template, both modes, three vector widths."""

    @pytest.mark.parametrize(
        "sql",
        [paper_query(1), join_query(1), scan_query(1)],
        ids=["paper", "join_agg", "scan_sort"],
    )
    def test_rows_and_work_identical(self, dataset, sql):
        db = dataset.db
        oracle_rows, oracle_work, _ = run(db, sql, "row")
        for width in BATCH_SIZES:
            rows, work, _ = run(db, sql, "batch", batch_size=width)
            assert rows == oracle_rows, f"width={width}"
            assert work == oracle_work, f"width={width}"


SQL_CORPUS = [
    "SELECT k, v FROM t WHERE k > 0",
    "SELECT k, v FROM t WHERE k = 2 OR v < 0",
    "SELECT count(*), sum(v), min(v), max(k), avg(v) FROM t",
    "SELECT k, count(*) c, sum(v) s FROM t GROUP BY k ORDER BY k",
    "SELECT k, sum(v) s FROM t GROUP BY k HAVING count(*) > 1",
    "SELECT DISTINCT k FROM t ORDER BY k",
    "SELECT k, v FROM t ORDER BY v DESC, k LIMIT 5",
    "SELECT k, v FROM t ORDER BY v LIMIT 3 OFFSET 2",
    "SELECT a.k, b.v FROM t a JOIN t b ON a.k = b.k WHERE a.v > b.v",
    "SELECT k FROM t WHERE k IN (1, 2, 3)",
    "SELECT k FROM t WHERE v IS NULL",
    "SELECT k FROM t WHERE k > 0 UNION SELECT k FROM t WHERE k < 0",
    "SELECT k FROM t UNION ALL SELECT k FROM t ORDER BY k",
    "SELECT abs(v), upper('x'), k * 2 + 1 FROM t WHERE k IS NOT NULL",
    "SELECT * FROM t p WHERE p.v > (SELECT avg(v) FROM t WHERE k = p.k)",
    "SELECT k FROM t p WHERE EXISTS "
    "(SELECT 1 FROM t i WHERE i.k = p.k AND i.v < 0)",
]


@st.composite
def small_tables(draw):
    n = draw(st.integers(min_value=0, max_value=30))
    return [
        (
            draw(st.one_of(st.none(), st.integers(-4, 4))),
            draw(
                st.one_of(
                    st.none(),
                    st.floats(-50, 50, allow_nan=False),
                    st.integers(-50, 50),
                )
            ),
        )
        for _ in range(n)
    ]


class TestHypothesisCorpus:
    @given(
        rows=small_tables(),
        sql=st.sampled_from(SQL_CORPUS),
        width=st.sampled_from(BATCH_SIZES),
        page=st.sampled_from([1, 3, 50]),
    )
    @settings(max_examples=120, deadline=None)
    def test_batch_matches_row_oracle(self, rows, sql, width, page):
        db = Database(page_capacity=page)
        db.execute("CREATE TABLE t (k INT, v FLOAT)")
        db.insert_rows("t", rows)
        oracle_rows, oracle_work, _ = run(db, sql, "row")
        got_rows, got_work, _ = run(db, sql, "batch", batch_size=width)
        assert got_rows == oracle_rows
        assert got_work == oracle_work


class TestCheckpointEquivalence:
    @pytest.mark.parametrize("width", BATCH_SIZES)
    def test_crash_restore_matches_uninterrupted_row(self, dataset, width):
        """Restore mid-flight in batch mode; final rows/work match row mode."""
        db = dataset.db
        sql = join_query(1)
        oracle_rows, oracle_work, _ = run(db, sql, "row")

        ex = db.prepare(
            sql, checkpoint_interval=20.0,
            execution_mode="batch", batch_size=width,
        )
        while not ex.finished and ex.last_checkpoint is None:
            ex.step(10.0)
        ckpt = ex.last_checkpoint
        assert ckpt is not None

        resumed = db.prepare(
            sql, checkpoint_interval=20.0,
            execution_mode="batch", batch_size=width,
        )
        resumed.restore(ckpt)
        rows = resumed.run_to_completion()
        assert rows == oracle_rows
        assert resumed.work_done == oracle_work

    def test_cross_mode_restore(self, dataset):
        """A batch-mode checkpoint resumes under the row engine (and back)."""
        db = dataset.db
        sql = scan_query(1)
        oracle_rows, oracle_work, _ = run(db, sql, "row")

        ex = db.prepare(sql, checkpoint_interval=1.0, execution_mode="batch",
                        batch_size=7)
        ex.step(1.0)
        ckpt = ex.last_checkpoint
        assert ckpt is not None
        resumed = db.prepare(sql, execution_mode="row")
        resumed.restore(ckpt)
        rows = resumed.run_to_completion()
        assert rows == oracle_rows
        assert resumed.work_done == oracle_work


class TestCancelAndMemoryEquivalence:
    @pytest.mark.parametrize("width", BATCH_SIZES)
    def test_cancel_fires_in_both_modes(self, dataset, width):
        db = dataset.db
        sql = join_query(1)
        for mode, bs in (("row", None), ("batch", width)):
            tok = CancellationToken()
            ex = db.prepare(sql, cancel_token=tok, execution_mode=mode,
                            batch_size=bs)
            ex.step(5.0)
            tok.cancel("test")
            with pytest.raises(QueryCancelled):
                ex.step(5.0)
            assert not ex.finished

    @pytest.mark.parametrize("width", BATCH_SIZES)
    def test_memory_pressure_equivalence(self, dataset, width):
        """Same degradations, same extra work, same rows under a tiny budget."""
        db = dataset.db
        sql = join_query(1)
        row_rows, row_work, row_ex = run(db, sql, "row", memory_budget=64)
        rows, work, ex = run(
            db, sql, "batch", batch_size=width, memory_budget=64
        )
        assert ex.progress.memory_pressure_events() > 0
        assert (
            ex.progress.memory_pressure_events()
            == row_ex.progress.memory_pressure_events()
        )
        assert rows == row_rows
        assert work == row_work


class TestPlanCache:
    def _db(self):
        db = Database(page_capacity=4)
        db.execute("CREATE TABLE t (k INT, v FLOAT)")
        db.insert_rows("t", [(i % 3, float(i)) for i in range(20)])
        return db

    def test_hit_and_miss_counters(self):
        db = self._db()
        sql = "SELECT k, sum(v) FROM t GROUP BY k ORDER BY k"
        first = db.query(sql)
        assert db.plan_cache_misses >= 1
        hits = db.plan_cache_hits
        again = db.query(sql)
        assert db.plan_cache_hits == hits + 1
        assert again == first

    def test_reuse_work_parity(self):
        db = self._db()
        sql = "SELECT k, v FROM t ORDER BY v DESC LIMIT 4"
        ex1 = db.prepare(sql)
        ex1.run_to_completion()
        cold_work = ex1.work_done
        db.query(sql)
        cached = db.query(sql)  # pool hit: account must have been reset
        assert cached == ex1.rows
        ex2 = db.prepare(sql)
        ex2.run_to_completion()
        assert ex2.work_done == cold_work

    def test_stats_epoch_invalidation(self):
        db = self._db()
        sql = "SELECT count(*) FROM t"
        assert db.query(sql) == [(20,)]
        hits = db.plan_cache_hits
        db.insert_rows("t", [(9, 9.0)])  # bumps the stats epoch
        assert db.query(sql) == [(21,)]
        assert db.plan_cache_hits == hits  # stale plan was not reused

    def test_modes_pooled_separately(self):
        db = self._db()
        sql = "SELECT k FROM t WHERE k = 1"
        rows_b = db.query(sql, execution_mode="batch")
        rows_r = db.query(sql, execution_mode="row")
        assert rows_b == rows_r
        assert db.query(sql, execution_mode="batch") == rows_b

    def test_explicit_invalidate(self):
        db = self._db()
        sql = "SELECT k FROM t"
        db.query(sql)
        db.query(sql)
        assert db.plan_cache_hits >= 1
        db.invalidate_plan_cache()
        misses = db.plan_cache_misses
        db.query(sql)
        assert db.plan_cache_misses == misses + 1

    def test_subquery_statements_not_pooled(self):
        # Uncorrelated: the decorrelation pass leaves it alone (it is
        # already a run-once init-plan), so it still plans fresh.
        db = self._db()
        sql = "SELECT k FROM t p WHERE p.v > (SELECT avg(v) FROM t)"
        first = db.query(sql)
        hits = db.plan_cache_hits
        assert db.query(sql) == first
        assert db.plan_cache_hits == hits  # planned fresh both times

    def test_correlated_subquery_pools_after_decorrelation(self):
        # Correlated: the rewrite makes the statement subquery-free, so
        # pool eligibility (decided on the rewritten form) now holds.
        db = self._db()
        sql = "SELECT k FROM t p WHERE p.v > (SELECT avg(v) FROM t WHERE k = p.k)"
        first = db.query(sql)
        hits = db.plan_cache_hits
        assert db.query(sql) == first
        assert db.plan_cache_hits == hits + 1
