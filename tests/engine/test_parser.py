"""Tests for the SQL parser."""

import pytest

from repro.engine.errors import ParseError
from repro.engine.sql import ast, parse_statement, parse_statements


class TestSelect:
    def test_minimal(self):
        s = parse_statement("SELECT 1")
        assert isinstance(s, ast.Select)
        assert s.items[0].expr == ast.Literal(1)
        assert s.from_items == ()

    def test_star(self):
        s = parse_statement("SELECT * FROM t")
        assert isinstance(s.items[0].expr, ast.Star)

    def test_qualified_star(self):
        s = parse_statement("SELECT p.* FROM part p")
        assert s.items[0].expr == ast.Star(qualifier="p")

    def test_aliases(self):
        s = parse_statement("SELECT a AS x, b y FROM t")
        assert s.items[0].alias == "x"
        assert s.items[1].alias == "y"

    def test_table_alias(self):
        s = parse_statement("SELECT 1 FROM part_1 AS p")
        assert s.from_items[0] == ast.TableRef(name="part_1", alias="p")
        s2 = parse_statement("SELECT 1 FROM part_1 p")
        assert s2.from_items[0].alias == "p"

    def test_where_precedence(self):
        s = parse_statement("SELECT 1 FROM t WHERE a OR b AND c")
        assert isinstance(s.where, ast.BinaryOp)
        assert s.where.op == "OR"
        assert s.where.right.op == "AND"

    def test_arithmetic_precedence(self):
        s = parse_statement("SELECT 1 + 2 * 3")
        expr = s.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_unary_minus(self):
        s = parse_statement("SELECT -a")
        assert s.items[0].expr == ast.UnaryOp("-", ast.ColumnRef("a"))

    def test_not_equal_normalised(self):
        s = parse_statement("SELECT 1 FROM t WHERE a != b")
        assert s.where.op == "<>"

    def test_group_by_having(self):
        s = parse_statement(
            "SELECT k, count(*) FROM t GROUP BY k HAVING count(*) > 3"
        )
        assert len(s.group_by) == 1
        assert s.having is not None

    def test_order_limit_offset(self):
        s = parse_statement("SELECT a FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 5")
        assert s.order_by[0].descending is True
        assert s.order_by[1].descending is False
        assert s.limit == 10
        assert s.offset == 5

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_joins(self):
        s = parse_statement("SELECT 1 FROM a JOIN b ON a.x = b.y CROSS JOIN c")
        join = s.from_items[0]
        assert isinstance(join, ast.Join)
        assert join.kind == "CROSS"
        assert isinstance(join.left, ast.Join)
        assert join.left.kind == "INNER"

    def test_comma_join(self):
        s = parse_statement("SELECT 1 FROM a, b")
        assert len(s.from_items) == 2

    def test_between_and_in(self):
        s = parse_statement("SELECT 1 FROM t WHERE a BETWEEN 1 AND 2 AND b IN (1,2)")
        assert isinstance(s.where.left, ast.Between)
        assert isinstance(s.where.right, ast.InList)

    def test_not_variants(self):
        s = parse_statement(
            "SELECT 1 FROM t WHERE a NOT IN (1) AND b NOT LIKE 'x%' "
            "AND c NOT BETWEEN 1 AND 2 AND d IS NOT NULL"
        )
        conj = []

        def flatten(e):
            if isinstance(e, ast.BinaryOp) and e.op == "AND":
                flatten(e.left)
                flatten(e.right)
            else:
                conj.append(e)

        flatten(s.where)
        assert conj[0].negated and conj[1].negated and conj[2].negated
        assert conj[3].negated  # IS NOT NULL

    def test_case(self):
        s = parse_statement("SELECT CASE WHEN a THEN 1 ELSE 0 END FROM t")
        case = s.items[0].expr
        assert isinstance(case, ast.Case)
        assert case.else_ == ast.Literal(0)

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT CASE ELSE 1 END")

    def test_scalar_subquery(self):
        s = parse_statement(
            "SELECT 1 FROM p WHERE p.x > (SELECT sum(y) FROM l WHERE l.k = p.k)"
        )
        assert isinstance(s.where.right, ast.ScalarSubquery)

    def test_exists_and_in_subquery(self):
        s = parse_statement(
            "SELECT 1 FROM t WHERE EXISTS (SELECT 1 FROM u) AND a IN (SELECT b FROM v)"
        )
        assert isinstance(s.where.left, ast.ExistsSubquery)
        assert isinstance(s.where.right, ast.InSubquery)

    def test_count_star_and_distinct(self):
        s = parse_statement("SELECT count(*), count(DISTINCT a) FROM t")
        assert s.items[0].expr.star
        assert s.items[1].expr.distinct

    def test_boolean_and_null_literals(self):
        s = parse_statement("SELECT TRUE, FALSE, NULL")
        assert [i.expr.value for i in s.items] == [True, False, None]


class TestOtherStatements:
    def test_insert(self):
        s = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)")
        assert isinstance(s, ast.Insert)
        assert s.columns == ("a", "b")
        assert len(s.rows) == 2

    def test_insert_without_columns(self):
        s = parse_statement("INSERT INTO t VALUES (1)")
        assert s.columns == ()

    def test_create_table(self):
        s = parse_statement(
            "CREATE TABLE t (a INT NOT NULL, b VARCHAR(20), c DECIMAL(10,2))"
        )
        assert isinstance(s, ast.CreateTable)
        assert s.columns[0].nullable is False
        assert s.columns[1].nullable is True

    def test_primary_key_means_not_null(self):
        s = parse_statement("CREATE TABLE t (id INT PRIMARY KEY)")
        assert s.columns[0].nullable is False

    def test_create_index(self):
        s = parse_statement("CREATE INDEX i ON t (col)")
        assert isinstance(s, ast.CreateIndex)
        assert (s.name, s.table, s.column) == ("i", "t", "col")

    def test_drop_table(self):
        s = parse_statement("DROP TABLE t")
        assert isinstance(s, ast.DropTable)

    def test_script(self):
        stmts = parse_statements("SELECT 1; SELECT 2;; SELECT 3")
        assert len(stmts) == 3

    def test_single_statement_enforced(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1; SELECT 2")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT",
            "SELECT 1 FROM",
            "SELECT 1 WHERE",
            "SELECT 1 FROM t WHERE",
            "INSERT INTO",
            "CREATE BLAH",
            "SELECT 1 FROM t LIMIT x",
            "SELECT 1 FROM t GROUP",
            "SELECT a NOT 5 FROM t",
            "SELECT (1",
            "FROM t",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(ParseError):
            parse_statement(bad)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as err:
            parse_statement("SELECT 1 FROM t WHERE )")
        assert err.value.position is not None
