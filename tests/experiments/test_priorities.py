"""Tests for the mixed-priority extension experiment."""

import math

import pytest

from repro.experiments.priorities import (
    PriorityMCQConfig,
    run_priority_mcq,
    sweep_priority_spread,
)

FAST = PriorityMCQConfig(runs=4, seed=17)


class TestRunPriorityMCQ:
    def test_multi_exact_under_weighted_sharing(self):
        errors = run_priority_mcq(FAST)
        assert errors.multi_avg == pytest.approx(0.0, abs=1e-9)
        assert errors.multi_low_priority == pytest.approx(0.0, abs=1e-9)

    def test_single_has_error(self):
        errors = run_priority_mcq(FAST)
        assert errors.single_avg > 0.05

    def test_deterministic(self):
        a = run_priority_mcq(FAST)
        b = run_priority_mcq(FAST)
        assert a.single_avg == b.single_avg

    def test_equal_priority_special_case(self):
        config = PriorityMCQConfig(runs=4, priorities=(1,), seed=3)
        errors = run_priority_mcq(config)
        assert errors.multi_avg == pytest.approx(0.0, abs=1e-9)
        assert not math.isnan(errors.single_low_priority)


class TestSweep:
    def test_labels_and_order(self):
        sweep = sweep_priority_spread(FAST, ((0,), (0, 2)))
        assert [label for label, _ in sweep] == ["0", "0/2"]

    def test_spread_hurts_single_query_low_priority(self):
        sweep = sweep_priority_spread(FAST, ((0,), (0, 3)))
        flat = dict(sweep)
        assert (
            flat["0/3"].single_low_priority > flat["0"].single_low_priority
        )
