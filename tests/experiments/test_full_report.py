"""Tests for the one-command reproduction report."""

import pytest

from repro.experiments.full_report import ReportConfig, generate_report


@pytest.fixture(scope="module")
def report():
    return generate_report(ReportConfig(runs=2, seed=42))


class TestGenerateReport:
    def test_every_artifact_present(self, report):
        for heading in (
            "Table 1",
            "Figure 1",
            "Figure 2",
            "Figures 3 & 4",
            "Figure 5",
            "Figures 6 & 7",
            "Figures 8 & 9",
            "Figure 10",
            "Figure 11",
            "Prototype fidelity",
        ):
            assert heading in report, f"missing section {heading!r}"

    def test_contains_measured_series(self, report):
        assert "single-query estimate" in report
        assert "multi-query estimate" in report
        assert "t/t_finish" in report
        assert "lambda'" in report

    def test_markdown_structure(self, report):
        lines = report.splitlines()
        assert lines[0].startswith("# Reproduction report")
        # balanced code fences
        assert sum(1 for l in lines if l.strip() == "```") % 2 == 0

    def test_deterministic(self):
        a = generate_report(ReportConfig(runs=1, seed=1))
        b = generate_report(ReportConfig(runs=1, seed=1))
        assert a == b


class TestShell:
    def test_scripted_session(self, capsys):
        from repro.cli import build_parser, cmd_shell

        args = build_parser().parse_args(["shell", "--scale", "0.0001"])
        script = iter(
            [
                "\\d",
                "SELECT count(*) FROM lineitem",
                "bad sql ;;;",
                "",
                "\\q",
            ]
        )
        code = cmd_shell(args, input_fn=lambda prompt: next(script))
        assert code == 0
        out = capsys.readouterr().out
        assert "lineitem" in out
        assert "(1 rows)" in out
        assert "error:" in out

    def test_eof_exits(self, capsys):
        from repro.cli import build_parser, cmd_shell

        args = build_parser().parse_args(["shell", "--scale", "0.0001"])

        def boom(prompt):
            raise EOFError

        assert cmd_shell(args, input_fn=boom) == 0

    def test_report_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        assert main(["report", "--out", str(out), "--runs", "1"]) == 0
        assert out.exists()
        assert "Figure 11" in out.read_text()
