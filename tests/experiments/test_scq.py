"""Tests for the SCQ experiment (Figures 6-10)."""

import math

import pytest

from repro.experiments.scq import (
    SCQConfig,
    calibrated_cost_per_size,
    evaluate_run,
    mean_arrival_cost,
    run_adaptive_trace,
    run_lambda_sensitivity,
    run_scq_sweep,
    simulate_scq_run,
)
from repro.core.forecast import WorkloadForecast

FAST = SCQConfig(runs=6)


class TestCalibration:
    def test_saturation_point(self):
        cfg = SCQConfig()
        c_bar = mean_arrival_cost(cfg)
        assert cfg.saturation_lambda * c_bar == pytest.approx(
            cfg.processing_rate, rel=1e-9
        )

    def test_explicit_cost_per_size_respected(self):
        cfg = SCQConfig(cost_per_size=3.0)
        assert calibrated_cost_per_size(cfg) == 3.0


class TestSingleRun:
    def test_deterministic(self):
        a = simulate_scq_run(FAST, 0.03, seed=5)
        b = simulate_scq_run(FAST, 0.03, seed=5)
        assert a.actual_finish == b.actual_finish
        assert a.arrival_times == b.arrival_times

    def test_all_initial_queries_finish(self):
        run = simulate_scq_run(FAST, 0.05, seed=1)
        assert len(run.actual_finish) == 10
        assert all(t > 0 for t in run.actual_finish.values())

    def test_no_arrivals_at_lambda_zero(self):
        run = simulate_scq_run(FAST, 0.0, seed=1)
        assert run.arrival_times == []

    def test_arrivals_slow_down_finishes(self):
        quiet = simulate_scq_run(FAST, 0.0, seed=2)
        busy = simulate_scq_run(FAST, 0.05, seed=2)
        assert max(busy.actual_finish.values()) >= max(quiet.actual_finish.values())

    def test_last_finishing(self):
        run = simulate_scq_run(FAST, 0.0, seed=3)
        last = run.last_finishing
        assert run.actual_finish[last] == max(run.actual_finish.values())


class TestEvaluation:
    def test_exact_forecast_perfect_at_lambda_zero(self):
        run = simulate_scq_run(FAST, 0.0, seed=4)
        errors = evaluate_run(run, None)
        assert errors.multi_avg() == pytest.approx(0.0, abs=1e-6)
        assert errors.single_avg() > 0.0

    def test_errors_finite(self):
        run = simulate_scq_run(FAST, 0.05, seed=4)
        c_bar = mean_arrival_cost(FAST)
        errors = evaluate_run(run, WorkloadForecast(0.05, c_bar))
        for err in list(errors.single.values()) + list(errors.multi.values()):
            assert math.isfinite(err)


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_scq_sweep(FAST, lambdas=(0.0, 0.03, 0.06, 0.15))

    def test_figure6_multi_beats_single_when_stable(self, sweep):
        for p in sweep.points:
            if p.lam <= 0.06:
                assert p.multi_last < p.single_last

    def test_figure7_multi_beats_single_on_average_when_stable(self, sweep):
        for p in sweep.points:
            if p.lam <= 0.06:
                assert p.multi_avg < p.single_avg

    def test_single_error_decreases_with_lambda_when_stable(self, sweep):
        stable = [p for p in sweep.points if p.lam <= 0.06]
        lasts = [p.single_last for p in stable]
        assert lasts == sorted(lasts, reverse=True)

    def test_multi_error_increases_with_lambda(self, sweep):
        stable = [p for p in sweep.points if p.lam <= 0.15]
        multis = [p.multi_last for p in stable]
        assert multis[0] <= multis[-1]

    def test_last_finisher_error_at_least_average(self, sweep):
        """The last finishing query gets the largest, most random influence."""
        for p in sweep.points:
            assert p.single_last >= p.single_avg - 1e-9

    def test_as_rows(self, sweep):
        rows = sweep.as_rows()
        assert len(rows) == 4
        assert all(len(r) == 5 for r in rows)


class TestLambdaSensitivity:
    @pytest.fixture(scope="class")
    def sens(self):
        return run_lambda_sensitivity(
            FAST, true_lambda=0.03, lambda_primes=(0.0, 0.03, 0.05, 0.15)
        )

    def test_figure8_single_error_constant_across_lambda_prime(self, sens):
        singles = [p.single_last for p in sens.points]
        assert max(singles) - min(singles) < 1e-9

    def test_figure8_error_monotone_beyond_true_lambda(self, sens):
        """Paper Fig 8: 'the bigger the difference between lambda' and
        lambda, the more inaccurate the multi-query estimate' -- the curve
        rises monotonically for lambda' above the truth."""
        by_lp = {p.lam: p.multi_last for p in sens.points}
        assert by_lp[0.03] <= by_lp[0.05] <= by_lp[0.15]
        # Near-or-below-truth guesses stay accurate.
        assert by_lp[0.0] < 1.0 and by_lp[0.03] < 1.0

    def test_figure9_multi_beats_single_for_moderate_error(self, sens):
        """Even a somewhat wrong lambda' beats no explicit model."""
        for p in sens.points:
            if p.lam <= 0.05:
                assert p.multi_avg < p.single_avg

    def test_error_grows_with_lambda_prime_deviation(self, sens):
        by_lp = {p.lam: p.multi_avg for p in sens.points}
        assert by_lp[0.03] <= by_lp[0.05] <= by_lp[0.15]


class TestAdaptiveTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return run_adaptive_trace(
            SCQConfig(runs=1, seed=42),
            true_lambda=0.03,
            lambda_primes=(0.04, 0.05),
        )

    def test_figure10_series_nonempty(self, trace):
        for lp in (0.04, 0.05):
            assert len(trace.series[lp]) >= 3

    def test_figure10_error_shrinks_towards_completion(self, trace):
        for lp in (0.04, 0.05):
            assert trace.final_error(lp) <= trace.initial_error(lp) + 0.05
            assert trace.final_error(lp) < 0.3
