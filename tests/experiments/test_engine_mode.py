"""Tests for the engine-backed MCQ experiment (prototype fidelity)."""

import pytest

from repro.experiments.engine_mode import (
    EngineMCQConfig,
    build_database,
    run_engine_maintenance,
    run_engine_mcq,
)

FAST = EngineMCQConfig(
    n_queries=4, max_size=8, scale=1 / 8000, processing_rate=10.0,
    sample_interval=1.0, seed=5,
)


class TestBuildDatabase:
    def test_builds_part_tables(self):
        db, sizes = build_database(FAST)
        assert len(sizes) == FAST.n_queries
        for i in range(1, FAST.n_queries + 1):
            assert db.catalog.has_table(f"part_{i}")
        assert db.catalog.table("lineitem").index_on("partkey") is not None

    def test_deterministic(self):
        _, a = build_database(FAST)
        _, b = build_database(FAST)
        assert a == b


class TestRunEngineMCQ:
    @pytest.fixture(scope="class")
    def result(self):
        return run_engine_mcq(FAST)

    def test_estimates_recorded(self, result):
        assert result.estimates.get("multi-query")
        assert result.estimates.get("single-query")

    def test_focus_has_largest_initial_cost(self, result):
        # The focus query is picked by largest remaining cost after the
        # head-start, so it has one of the larger initial costs.
        focus_cost = result.initial_costs[result.focus_query]
        assert focus_cost >= max(result.initial_costs.values()) * 0.3

    def test_optimizer_estimates_imperfect_but_sane(self, result):
        """The whole point of engine mode: estimates have real error."""
        errors = [
            result.cost_estimation_error(qid) for qid in result.initial_costs
        ]
        assert all(e < 1.0 for e in errors)
        assert any(e > 0.001 for e in errors)

    def test_multi_query_beats_single(self, result):
        assert result.mean_relative_error("multi-query") < (
            result.mean_relative_error("single-query")
        )

    def test_missing_estimator_raises(self, result):
        with pytest.raises(ValueError):
            result.mean_relative_error("bogus")


class TestQueryMix:
    def test_mixed_query_shapes_run(self):
        config = EngineMCQConfig(
            n_queries=4, max_size=8, scale=1 / 8000, processing_rate=10.0,
            sample_interval=1.0, seed=5, query_mix=True,
        )
        result = run_engine_mcq(config)
        assert result.estimates["multi-query"]
        # All queries completed with positive true work.
        assert all(w > 0 for w in result.final_works.values())

    def test_headline_survives_query_mix(self):
        result = run_engine_mcq(EngineMCQConfig(query_mix=True))
        assert result.mean_relative_error("multi-query") < (
            result.mean_relative_error("single-query")
        )


class TestEngineMaintenance:
    @pytest.fixture(scope="class")
    def result(self):
        return run_engine_maintenance(FAST, deadline_fraction=0.5)

    def test_all_methods_reported(self, result):
        assert set(result.fractions) == {
            "no PI", "single-query PI", "multi-query PI"
        }
        for uw in result.fractions.values():
            assert 0.0 <= uw <= 1.0

    def test_true_costs_positive(self, result):
        assert len(result.true_costs) == FAST.n_queries
        assert all(c > 0 for c in result.true_costs.values())

    def test_deterministic(self):
        a = run_engine_maintenance(FAST, deadline_fraction=0.5)
        b = run_engine_maintenance(FAST, deadline_fraction=0.5)
        assert a.fractions == b.fractions

    def test_generous_deadline_no_pi_loses_nothing(self):
        result = run_engine_maintenance(FAST, deadline_fraction=1.5)
        assert result.fractions["no PI"] == pytest.approx(0.0)
