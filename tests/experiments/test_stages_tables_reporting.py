"""Tests for the Fig 1/2 stage figures, Table 1 builder and reporting."""

import pytest

from repro.experiments.reporting import format_series, format_table, sparkline
from repro.experiments.stages import compare_blocking, figure1, figure2
from repro.experiments.tables import build_table1
from repro.workload.tpcr import TpcrConfig


class TestFigure1:
    def test_default_schedule(self):
        fig = figure1()
        assert fig.result.finish_order == ("Q1", "Q2", "Q3", "Q4")
        assert fig.stage_durations() == pytest.approx([40.0, 30.0, 20.0, 10.0])

    def test_render_contains_all_queries(self):
        text = figure1().render()
        for qid in ("Q1", "Q2", "Q3", "Q4"):
            assert qid in text
        assert "stages:" in text

    def test_custom_rate(self):
        fig = figure1(processing_rate=2.0)
        assert fig.result.quiescent_time == pytest.approx(50.0)


class TestFigure2:
    def test_blocked_query_absent(self):
        fig = figure2(blocked="Q3")
        assert "Q3" not in fig.result.remaining_times
        assert fig.blocked == ("Q3",)

    def test_unknown_blocked_query(self):
        with pytest.raises(ValueError):
            figure2(blocked="Q9")

    def test_comparison_speedups(self):
        cmp = compare_blocking(victim="Q3")
        ups = cmp.speedups()
        assert set(ups) == {"Q1", "Q2", "Q4"}
        assert ups["Q4"] == pytest.approx(30.0)
        # Bounded by the victim's remaining time.
        r_victim = cmp.baseline.result.remaining_times["Q3"]
        assert all(v <= r_victim for v in ups.values())


class TestTable1:
    def test_rows_match_config(self):
        result = build_table1(TpcrConfig(scale=1 / 4000), part_sizes={1: 4})
        rows = {r.table: r for r in result.rows}
        assert rows["lineitem"].tuples == 6000
        assert rows["part_1"].tuples == 40
        assert rows["part_1"].paper_tuples == "10 x 4"

    def test_render(self):
        result = build_table1(TpcrConfig(scale=1 / 4000), part_sizes={1: 4})
        text = result.render()
        assert "lineitem" in text and "24M" in text


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [(1, 2.5), (30, 4.125)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "4.125" in text

    def test_format_series_downsamples(self):
        series = [(float(i), float(i * 2)) for i in range(100)]
        text = format_series("title", series, max_points=5)
        assert text.startswith("title")
        assert len(text.splitlines()) <= 12
        # last point always included
        assert "198.0" in text

    def test_format_series_empty(self):
        assert "(no data)" in format_series("x", [])

    def test_write_csv(self, tmp_path):
        from repro.experiments.reporting import write_csv

        path = tmp_path / "out.csv"
        n = write_csv(str(path), ["a", "b"], [(1, "x,y"), (2.5, 'q"z')])
        assert n == 2
        text = path.read_text()
        assert text.splitlines()[0] == "a,b"
        assert '"x,y"' in text  # comma field quoted

    def test_sparkline(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == " " and line[-1] == "@"
        assert sparkline([]) == ""
        assert len(set(sparkline([5.0, 5.0, 5.0]))) == 1
