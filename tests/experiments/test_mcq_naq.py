"""Tests for the MCQ (Fig 3/4) and NAQ (Fig 5) experiments."""

import pytest

from repro.experiments.harness import MULTI_QUERY, MULTI_QUERY_NO_QUEUE, SINGLE_QUERY
from repro.experiments.mcq import MCQConfig, run_mcq
from repro.experiments.naq import NAQConfig, run_naq


class TestMCQ:
    @pytest.fixture(scope="class")
    def result(self):
        return run_mcq(MCQConfig(seed=3))

    def test_all_queries_finish(self, result):
        assert len(result.finish_times) == 10

    def test_focus_is_last_finishing(self, result):
        assert result.finish_time == max(result.finish_times.values())

    def test_multi_query_estimate_tracks_actual(self, result):
        """Figure 3: the multi-query estimate stays near the dashed line."""
        assert result.mean_abs_error(MULTI_QUERY) <= 0.05 * result.finish_time

    def test_single_query_overestimates_initially(self, result):
        """Figure 3: the single-query estimate starts far too high."""
        assert result.initial_overestimate_factor(SINGLE_QUERY) > 1.5
        assert result.initial_overestimate_factor(MULTI_QUERY) == pytest.approx(
            1.0, abs=0.1
        )

    def test_multi_beats_single(self, result):
        assert result.mean_abs_error(MULTI_QUERY) < result.mean_abs_error(SINGLE_QUERY)

    def test_speed_rises_as_others_finish(self, result):
        """Figure 4: speed increases several-fold over the run."""
        assert result.speedup_factor() > 2.0
        speeds = [v for _, v in result.speed]
        # Monotone non-decreasing (fair sharing; queries only leave).
        assert all(b >= a - 1e-9 for a, b in zip(speeds, speeds[1:]))

    def test_actual_series_decreases_linearly(self, result):
        values = [v for _, v in result.actual]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_different_seeds_give_different_runs(self):
        r1 = run_mcq(MCQConfig(seed=1))
        r2 = run_mcq(MCQConfig(seed=2))
        assert r1.finish_time != r2.finish_time

    def test_errors_on_missing_estimator(self):
        result = run_mcq(MCQConfig(seed=4))
        with pytest.raises(KeyError):
            result.mean_abs_error("nonexistent")


class TestNAQ:
    @pytest.fixture(scope="class")
    def result(self):
        return run_naq(NAQConfig())

    def test_timeline_matches_paper_structure(self, result):
        """Q2 finishes -> Q3 starts -> Q3 finishes -> Q1 finishes."""
        assert result.q3_start < result.q3_finish < result.q1_finish

    def test_paper_default_timeline_values(self, result):
        # N=(50,10,20), cost 5/size, C=1: Q2 at 100, Q3 at 300, Q1 at 400.
        assert result.q3_start == pytest.approx(100.0)
        assert result.q3_finish == pytest.approx(300.0)
        assert result.q1_finish == pytest.approx(400.0)

    def test_queue_aware_estimate_is_exact(self, result):
        assert result.mean_abs_error(MULTI_QUERY) == pytest.approx(0.0, abs=1e-6)

    def test_queue_blind_underestimates_before_q3_starts(self, result):
        series = result.estimates[MULTI_QUERY_NO_QUEUE]
        before = [(t, v) for t, v in series if t < result.q3_start]
        assert before, "expected estimates before Q3 started"
        for t, v in before:
            assert v < result.q1_finish - t

    def test_single_overestimates_before_q2_finishes(self, result):
        series = result.estimates[SINGLE_QUERY]
        before = [(t, v) for t, v in series if t < result.q3_start]
        assert before
        for t, v in before:
            assert v > result.q1_finish - t

    def test_queue_aware_beats_both_before_q3_starts(self, result):
        horizon = result.q3_start - 1e-9
        aware = result.mean_abs_error(MULTI_QUERY, until=horizon)
        blind = result.mean_abs_error(MULTI_QUERY_NO_QUEUE, until=horizon)
        single = result.mean_abs_error(SINGLE_QUERY, until=horizon)
        assert aware < blind
        assert aware < single

    def test_all_estimators_converge_at_the_end(self, result):
        """After Q3 finishes, everyone sees Q1 alone: errors vanish."""
        for name in (SINGLE_QUERY, MULTI_QUERY, MULTI_QUERY_NO_QUEUE):
            err = result.error_at(name, result.q1_finish - 2.0)
            assert err < 25.0
