"""Tests for the PI harness that wires estimators into simulations."""

import pytest

from repro.core.forecast import AdaptiveForecaster, WorkloadForecast
from repro.core.multi_query import MultiQueryProgressIndicator
from repro.experiments.harness import (
    MULTI_QUERY,
    SINGLE_QUERY,
    PIHarness,
    actual_remaining_series,
    estimate_series,
)
from repro.sim.rdbms import SimulatedRDBMS, make_synthetic_workload


def build(costs=(50, 100), interval=5.0, **kwargs):
    db = SimulatedRDBMS(processing_rate=1.0)
    for job in make_synthetic_workload(costs):
        db.submit(job)
    harness = PIHarness(db, interval=interval, **kwargs)
    return db, harness


class TestSampling:
    def test_records_both_estimators(self):
        db, _ = build()
        db.run_to_completion()
        trace = db.traces["Q2"]
        assert MULTI_QUERY in trace.estimates
        assert SINGLE_QUERY in trace.estimates

    def test_multi_query_estimates_exact_under_assumptions(self):
        db, _ = build()
        db.run_to_completion()
        fin = db.traces["Q2"].finished_at
        for t, est in db.traces["Q2"].estimates[MULTI_QUERY]:
            if t < fin:
                assert est == pytest.approx(fin - t, rel=1e-6)

    def test_single_needs_warmup(self):
        db, _ = build(interval=5.0)
        db.run_to_completion()
        single = db.traces["Q2"].estimates[SINGLE_QUERY]
        multi = db.traces["Q2"].estimates[MULTI_QUERY]
        # The first single estimate arrives one sample later than multi.
        assert single.first_time() > multi.first_time()

    def test_with_single_disabled(self):
        db, _ = build(with_single=False)
        db.run_to_completion()
        assert SINGLE_QUERY not in db.traces["Q2"].estimates

    def test_custom_multi_indicators(self):
        db = SimulatedRDBMS(processing_rate=1.0)
        for job in make_synthetic_workload([30, 60]):
            db.submit(job)
        PIHarness(
            db,
            interval=5.0,
            multi_indicators={
                "forecasting": MultiQueryProgressIndicator(
                    forecast=WorkloadForecast(0.1, 10.0)
                )
            },
        )
        db.run_to_completion()
        assert "forecasting" in db.traces["Q2"].estimates

    def test_sample_now(self):
        db, harness = build(interval=1000.0)
        harness.sample_now()
        assert len(db.traces["Q1"].estimates[MULTI_QUERY]) == 1

    def test_invalid_interval(self):
        db = SimulatedRDBMS()
        with pytest.raises(ValueError):
            PIHarness(db, interval=0.0)


class TestArrivalForwarding:
    def test_arrivals_feed_adaptive_forecaster(self):
        db = SimulatedRDBMS(processing_rate=1.0)
        prior = WorkloadForecast(arrival_rate=0.5, average_cost=1.0)
        forecaster = AdaptiveForecaster(prior, prior_strength=0.0)
        indicator = MultiQueryProgressIndicator(forecaster=forecaster)
        PIHarness(db, interval=5.0, multi_indicators={"m": indicator},
                  with_single=False)
        for job in make_synthetic_workload([5, 5, 5]):
            db.submit(job)
        # Three arrivals observed at t=0 (simultaneous: rate undefined,
        # cost mean well-defined).
        current = indicator.current_forecast()
        assert current is not None
        assert current.average_cost == pytest.approx(5.0)


class TestSeriesHelpers:
    def test_estimate_series(self):
        db, _ = build()
        db.run_to_completion()
        series = estimate_series(db, "Q1", MULTI_QUERY)
        assert series and all(len(p) == 2 for p in series)
        assert estimate_series(db, "Q1", "missing") == []

    def test_actual_remaining_series(self):
        db, _ = build()
        db.run_to_completion()
        fin = db.traces["Q1"].finished_at
        pts = actual_remaining_series(db, "Q1", [0.0, fin / 2])
        assert pts[0][1] == pytest.approx(fin)
        assert pts[1][1] == pytest.approx(fin / 2)
