"""Seeded-determinism regression: both backends, byte-identical reruns.

Two guarantees, per projection backend:

* **Reproducibility**: the same MCQ / NAQ / SCQ configuration and seed
  produce *byte-identical* traces and estimate series on every rerun
  (the incremental schedule uses seeded treap priorities precisely so
  that identical op sequences yield identical floats).
* **Backend agreement**: the incremental and reference backends produce
  the same estimate series to floating-point tolerance (bit-identity
  across different algorithms is not a meaningful ask; 1e-9 relative
  agreement is the contract the differential suite enforces).
"""

import math

import pytest

from repro.core.multi_query import MultiQueryProgressIndicator
from repro.core.projection import BACKENDS, default_backend, use_backend
from repro.experiments.harness import MULTI_QUERY
from repro.experiments.mcq import MCQConfig, run_mcq
from repro.experiments.naq import NAQConfig, run_naq
from repro.experiments.scq import SCQConfig, simulate_scq_run

MCQ_CONFIG = MCQConfig(n_queries=6, max_size=40, sample_interval=2.0, seed=11)
SCQ_CONFIG = SCQConfig(n_initial=6, runs=1, seed=7)


def _canon_mcq(result) -> str:
    return repr(
        (
            result.focus_query,
            result.finish_time,
            result.actual,
            sorted((name, list(s)) for name, s in result.estimates.items()),
            result.speed,
            sorted(result.finish_times.items()),
        )
    )


def _canon_naq(result) -> str:
    return repr(
        (
            sorted((name, list(s)) for name, s in result.estimates.items()),
            result.q1_finish,
            result.q3_start,
            result.q3_finish,
        )
    )


def _canon_scq(run) -> str:
    estimate = MultiQueryProgressIndicator().estimate(run.snapshot0)
    return repr(
        (
            run.snapshot0,
            sorted(run.speeds0.items()),
            sorted(run.actual_finish.items()),
            run.initial_ids,
            run.arrival_times,
            sorted(estimate.remaining_seconds.items()),
        )
    )


EXPERIMENTS = {
    "mcq": lambda: _canon_mcq(run_mcq(MCQ_CONFIG)),
    "naq": lambda: _canon_naq(run_naq(NAQConfig())),
    "scq": lambda: _canon_scq(simulate_scq_run(SCQ_CONFIG, lam=0.05, seed=3)),
}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("experiment", sorted(EXPERIMENTS))
def test_same_seed_is_byte_identical(backend, experiment):
    runner = EXPERIMENTS[experiment]
    with use_backend(backend):
        first = runner()
        second = runner()
    assert first == second, (
        f"{experiment} under {backend!r} backend is not reproducible"
    )


def test_use_backend_restores_default():
    before = default_backend()
    with use_backend("reference"):
        assert default_backend() == "reference"
        with use_backend("incremental"):
            assert default_backend() == "incremental"
        assert default_backend() == "reference"
    assert default_backend() == before


def test_backends_agree_on_mcq_series():
    results = {}
    for backend in BACKENDS:
        with use_backend(backend):
            results[backend] = run_mcq(MCQ_CONFIG)
    inc, ref = results["incremental"], results["reference"]
    assert inc.focus_query == ref.focus_query
    # The simulation itself is backend-independent: identical timelines.
    assert inc.finish_time == ref.finish_time
    assert inc.finish_times == ref.finish_times
    inc_series = inc.estimates[MULTI_QUERY]
    ref_series = ref.estimates[MULTI_QUERY]
    assert len(inc_series) == len(ref_series)
    for (t1, v1), (t2, v2) in zip(inc_series, ref_series):
        assert t1 == t2
        assert math.isclose(v1, v2, rel_tol=1e-9, abs_tol=1e-6), (
            f"estimate at t={t1}: incremental={v1!r} reference={v2!r}"
        )


def test_explicit_backend_overrides_default():
    pi_ref = MultiQueryProgressIndicator(backend="reference")
    pi_inc = MultiQueryProgressIndicator(backend="incremental")
    pi_default = MultiQueryProgressIndicator()
    assert pi_ref.backend == "reference"
    assert pi_inc.backend == "incremental"
    with use_backend("reference"):
        assert pi_default.backend == "reference"
        assert pi_inc.backend == "incremental"
    with pytest.raises(ValueError, match="unknown backend"):
        MultiQueryProgressIndicator(backend="treap")
