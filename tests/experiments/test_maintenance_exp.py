"""Tests for the scheduled-maintenance experiment (Figure 11)."""

import random

import pytest

from repro.experiments.maintenance import (
    MULTI_PI,
    NO_PI,
    SINGLE_PI,
    THEORETICAL,
    MaintenanceConfig,
    per_run_extremes,
    run_maintenance_sweep,
    run_one,
    reduction_vs,
    sample_running_queries,
    t_finish_of,
)

FAST = MaintenanceConfig(runs=8)


class TestSampling:
    def test_sample_shape(self):
        queries = sample_running_queries(FAST, random.Random(0))
        assert len(queries) == FAST.n_queries
        for q in queries:
            assert q.total_cost > 0
            assert 0 <= q.completed_work <= q.total_cost

    def test_deterministic(self):
        a = sample_running_queries(FAST, random.Random(5))
        b = sample_running_queries(FAST, random.Random(5))
        assert [(q.remaining_cost, q.completed_work) for q in a] == [
            (q.remaining_cost, q.completed_work) for q in b
        ]

    def test_t_finish(self):
        queries = sample_running_queries(FAST, random.Random(1))
        assert t_finish_of(queries, 2.0) == pytest.approx(
            sum(q.remaining_cost for q in queries) / 2.0
        )


class TestRunOne:
    def test_methods_bounded(self):
        rng = random.Random(3)
        queries = sample_running_queries(FAST, rng)
        deadline = 0.5 * t_finish_of(queries, 1.0)
        for method in (NO_PI, SINGLE_PI, MULTI_PI, THEORETICAL):
            frac = run_one(queries, deadline, FAST, method)
            assert 0.0 <= frac <= 1.0

    def test_theoretical_lower_bounds_multi(self):
        rng = random.Random(4)
        queries = sample_running_queries(FAST, rng)
        for f in (0.2, 0.5, 0.8):
            deadline = f * t_finish_of(queries, 1.0)
            limit = run_one(queries, deadline, FAST, THEORETICAL)
            multi = run_one(queries, deadline, FAST, MULTI_PI)
            assert limit <= multi + 1e-9


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_maintenance_sweep(FAST)

    def test_figure11_no_pi_and_multi_lose_nothing_at_t_finish(self, sweep):
        assert sweep.at(NO_PI, 1.0) == pytest.approx(0.0, abs=1e-9)
        assert sweep.at(MULTI_PI, 1.0) == pytest.approx(0.0, abs=1e-9)

    def test_figure11_single_pi_overaborts_at_t_finish(self, sweep):
        """The paper reports 67% of work needlessly lost."""
        assert sweep.at(SINGLE_PI, 1.0) > 0.3

    def test_figure11_multi_best_of_the_three_methods(self, sweep):
        for f in sweep.fractions:
            assert sweep.at(MULTI_PI, f) <= sweep.at(NO_PI, f) + 1e-9
            assert sweep.at(MULTI_PI, f) <= sweep.at(SINGLE_PI, f) + 1e-9

    def test_figure11_multi_tracks_theoretical_limit(self, sweep):
        for f in sweep.fractions:
            gap = sweep.at(MULTI_PI, f) - sweep.at(THEORETICAL, f)
            # Paper: 3%-12% above the limit on average, worst case 60%.
            assert -1e-9 <= gap <= 0.25

    def test_figure11_curves_decrease_with_deadline(self, sweep):
        for method in (NO_PI, MULTI_PI, THEORETICAL):
            curve = sweep.curve(method)
            assert all(b <= a + 1e-9 for a, b in zip(curve, curve[1:]))

    def test_figure11_multi_reduces_vs_no_pi_in_paper_band(self, sweep):
        """Paper: 18%-44% reduction vs the no-PI method for t < t_finish."""
        reductions = reduction_vs(sweep, MULTI_PI, NO_PI)
        interior = [
            r for f, r in zip(sweep.fractions, reductions) if f < 1.0
        ]
        assert all(r > 0.05 for r in interior)
        assert any(r > 0.15 for r in interior)

    def test_reduction_vs_zero_baseline(self, sweep):
        reductions = reduction_vs(sweep, MULTI_PI, NO_PI)
        # At t = t_finish the baseline loses nothing: reduction reported 0.
        assert reductions[-1] == 0.0


class TestPerRunExtremes:
    def test_extremes_bounded_and_sane(self):
        stats = per_run_extremes(MaintenanceConfig(runs=4), baseline=NO_PI)
        assert 0.0 <= stats.best_reduction <= 1.0
        assert stats.worst_increase >= 0.0
        assert 0.0 <= stats.win_rate <= 1.0

    def test_multi_wins_most_points(self):
        stats = per_run_extremes(MaintenanceConfig(runs=6), baseline=SINGLE_PI)
        assert stats.win_rate > 0.6
        assert stats.best_reduction > 0.2

    def test_deterministic(self):
        a = per_run_extremes(MaintenanceConfig(runs=3))
        b = per_run_extremes(MaintenanceConfig(runs=3))
        assert a == b
