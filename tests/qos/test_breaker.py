"""Tests for the per-node circuit breaker state machine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qos.breaker import BreakerBoard, BreakerConfig, CircuitBreaker


class TestConfigValidation:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)

    def test_rejects_bad_cooldown(self):
        with pytest.raises(ValueError):
            BreakerConfig(cooldown=0.0)
        with pytest.raises(ValueError):
            BreakerConfig(cooldown=float("inf"))

    def test_rejects_bad_latency_factor(self):
        with pytest.raises(ValueError):
            BreakerConfig(latency_factor=1.0)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        b = CircuitBreaker()
        assert b.state == "closed"
        assert b.allow(0.0)

    def test_trips_open_on_consecutive_failures(self):
        b = CircuitBreaker(BreakerConfig(failure_threshold=3, cooldown=5.0))
        b.record_failure(1.0)
        b.record_failure(2.0)
        assert b.state == "closed"
        b.record_failure(3.0)
        assert b.state == "open"
        assert not b.allow(3.0)

    def test_success_resets_the_failure_streak(self):
        b = CircuitBreaker(BreakerConfig(failure_threshold=3))
        b.record_failure(1.0)
        b.record_failure(2.0)
        b.record_success(2.5)
        b.record_failure(3.0)
        b.record_failure(4.0)
        assert b.state == "closed"  # streak restarted after the success

    def test_open_refuses_until_cooldown(self):
        b = CircuitBreaker(BreakerConfig(failure_threshold=1, cooldown=5.0))
        b.record_failure(10.0)
        assert not b.allow(10.0)
        assert not b.allow(14.9)
        assert b.retry_after(12.0) == pytest.approx(3.0)
        assert b.allow(15.0)
        assert b.state == "half_open"

    def test_half_open_grants_exactly_one_probe(self):
        b = CircuitBreaker(BreakerConfig(failure_threshold=1, cooldown=5.0))
        b.record_failure(0.0)
        assert b.allow(5.0)  # the probe
        assert not b.allow(5.0)  # second concurrent request refused
        b.record_success(6.0)
        assert b.state == "closed"
        assert b.allow(6.0)

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        b = CircuitBreaker(BreakerConfig(failure_threshold=1, cooldown=5.0))
        b.record_failure(0.0)
        assert b.allow(5.0)
        b.record_failure(6.0)
        assert b.state == "open"
        assert not b.allow(10.9)  # fresh cooldown anchored at t=6
        assert b.allow(11.0)

    def test_retry_after_is_pure(self):
        b = CircuitBreaker(BreakerConfig(failure_threshold=1, cooldown=5.0))
        b.record_failure(0.0)
        assert b.retry_after(100.0) == 0.0
        assert b.state == "open"  # retry_after never transitions

    def test_straggler_failures_do_not_extend_cooldown(self):
        b = CircuitBreaker(BreakerConfig(failure_threshold=1, cooldown=5.0))
        b.record_failure(0.0)
        b.record_failure(4.0)  # straggler from before the trip
        assert b.allow(5.0)  # cooldown still anchored at t=0

    def test_transitions_are_logged(self):
        b = CircuitBreaker(BreakerConfig(failure_threshold=1, cooldown=1.0))
        b.record_failure(0.0)
        b.allow(1.0)
        b.record_success(1.5)
        states = [(t.from_state, t.to_state) for t in b.transitions]
        assert states == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]


class TestLatencyTrip:
    def test_slow_success_counts_as_failure(self):
        cfg = BreakerConfig(failure_threshold=1, latency_factor=3.0)
        b = CircuitBreaker(cfg)
        b.record_latency(0.0, observed=10.0, expected=1.0)
        assert b.state == "open"

    def test_normal_latency_is_a_success(self):
        cfg = BreakerConfig(failure_threshold=2, latency_factor=3.0)
        b = CircuitBreaker(cfg)
        b.record_failure(0.0)
        b.record_latency(1.0, observed=2.0, expected=1.0)
        assert b.consecutive_failures == 0

    def test_latency_check_disabled_without_factor(self):
        b = CircuitBreaker(BreakerConfig(failure_threshold=1))
        b.record_latency(0.0, observed=1e6, expected=1.0)
        assert b.state == "closed"

    def test_nonfinite_expected_disables_the_comparison(self):
        cfg = BreakerConfig(failure_threshold=1, latency_factor=2.0)
        b = CircuitBreaker(cfg)
        b.record_latency(0.0, observed=10.0, expected=float("nan"))
        assert b.state == "closed"


class TestBoard:
    def test_lazily_creates_per_node_breakers(self):
        board = BreakerBoard(BreakerConfig(failure_threshold=1))
        a = board.for_node("node0")
        assert board.for_node("node0") is a
        assert board.for_node("node1") is not a

    def test_open_nodes_lists_tripped_breakers(self):
        board = BreakerBoard(BreakerConfig(failure_threshold=1))
        board.for_node("node1").record_failure(0.0)
        board.for_node("node0")
        assert board.open_nodes() == ("node1",)


# ---------------------------------------------------------------------------
# Property tests: arbitrary failure/success/clock sequences
# ---------------------------------------------------------------------------

OPS = st.lists(
    st.tuples(
        st.sampled_from(["fail", "success", "allow"]),
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
    ),
    max_size=60,
)

CONFIGS = st.builds(
    BreakerConfig,
    failure_threshold=st.integers(min_value=1, max_value=5),
    cooldown=st.floats(min_value=0.1, max_value=20.0),
)


def _replay(config, ops):
    """Replay an op sequence with a monotone clock; return (breaker, now)."""
    b = CircuitBreaker(config)
    now = 0.0
    opened_at = None
    for op, dt in ops:
        now += dt
        if op == "fail":
            before = b.state
            b.record_failure(now)
            if before != "open" and b.state == "open":
                opened_at = now
        elif op == "success":
            b.record_success(now)
        else:
            allowed = b.allow(now)
            # Never probe before the cooldown elapses.
            if allowed and opened_at is not None and b.state == "half_open":
                assert now >= opened_at + config.cooldown - 1e-9
    return b, now


@settings(max_examples=200, deadline=None)
@given(config=CONFIGS, ops=OPS)
def test_never_probes_before_cooldown(config, ops):
    # The assertion lives inside _replay: every allow() granted out of the
    # open state happens at or after opened_at + cooldown.
    _replay(config, ops)


@settings(max_examples=200, deadline=None)
@given(config=CONFIGS, ops=OPS)
def test_healthy_node_never_wedges_open(config, ops):
    # However hostile the history, a node that is healthy *now* escapes:
    # wait out the cooldown, probe, succeed -> closed and allowing.
    b, now = _replay(config, ops)
    later = now + config.cooldown + 1.0
    if not b.allow(later):
        # The only legitimate refusal after a full cooldown is a probe the
        # replay already has in flight; the healthy node answers it.
        assert b.state == "half_open", (
            "breaker refused a request after full cooldown with no probe out"
        )
    b.record_success(later)
    assert b.state == "closed"
    assert b.allow(later)


@settings(max_examples=200, deadline=None)
@given(config=CONFIGS, ops=OPS)
def test_closed_state_always_allows(config, ops):
    b, now = _replay(config, ops)
    if b.state == "closed":
        assert b.allow(now)


@settings(max_examples=100, deadline=None)
@given(config=CONFIGS, ops=OPS)
def test_retry_after_never_exceeds_cooldown(config, ops):
    b, now = _replay(config, ops)
    assert 0.0 <= b.retry_after(now) <= config.cooldown + 1e-9
