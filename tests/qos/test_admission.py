"""Tests for the PI-driven admission controller."""

import pytest

from repro.obs import Observability
from repro.qos.admission import AdmissionController, AdmissionPolicy
from repro.sim.arrivals import ArrivalSchedule
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS


def make_system(policy=None, rate=10.0, mpl=None, obs=None):
    rdbms = SimulatedRDBMS(
        processing_rate=rate, multiprogramming_limit=mpl, obs=obs
    )
    return rdbms, AdmissionController(rdbms, policy=policy)


class TestPolicyValidation:
    def test_rejects_bad_budgets(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_in_flight=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(work_budget=0.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(min_retry_delay=0.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_defers=-1)

    def test_priority_floor_picks_the_strictest_active(self):
        policy = AdmissionPolicy(pressure_floors=((2, 0), (3, 1)))
        assert policy.priority_floor(0) is None
        assert policy.priority_floor(1) is None
        assert policy.priority_floor(2) == 0
        assert policy.priority_floor(3) == 1
        assert policy.priority_floor(9) == 1


class TestAdmit:
    def test_empty_system_admits(self):
        _, gate = make_system()
        d = gate.submit(SyntheticJob("q1", cost=50.0))
        assert d.outcome == "admit"
        assert d.admitted

    def test_feasible_deadline_admits(self):
        rdbms, gate = make_system()
        # Alone at 10 U/s, 50 U finishes at t=5 -- well inside t=10.
        d = gate.submit(SyntheticJob("q1", cost=50.0, deadline=10.0))
        assert d.outcome == "admit"
        rdbms.run_to_completion()
        assert rdbms.record("q1").status == "finished"

    def test_feasibility_off_admits_on_budgets_alone(self):
        _, gate = make_system(AdmissionPolicy(feasibility=False))
        gate.submit(SyntheticJob("bg", cost=1000.0, deadline=0.001))
        d = gate.submit(SyntheticJob("q1", cost=1000.0))
        assert d.outcome == "admit"
        assert d.reason == "budgets hold"


class TestDefer:
    def test_in_flight_budget_defers_then_retries(self):
        rdbms, gate = make_system(AdmissionPolicy(max_in_flight=1))
        gate.submit(SyntheticJob("q1", cost=50.0))
        d = gate.submit(SyntheticJob("q2", cost=50.0))
        assert d.outcome == "defer"
        assert d.retry_after is not None and d.retry_after > 0
        rdbms.run_to_completion()
        # The auto-retry re-gated q2 once q1 finished.
        assert gate.outcomes["q2"].outcome == "admit"
        assert rdbms.record("q2").status == "finished"

    def test_work_budget_defers(self):
        _, gate = make_system(AdmissionPolicy(work_budget=100.0))
        gate.submit(SyntheticJob("q1", cost=80.0))
        d = gate.submit(SyntheticJob("q2", cost=40.0))
        assert d.outcome == "defer"
        assert "work budget full" in d.reason

    def test_retry_after_tracks_next_projected_finish(self):
        rdbms, gate = make_system(AdmissionPolicy(max_in_flight=1))
        gate.submit(SyntheticJob("q1", cost=50.0))  # finishes at t=5
        d = gate.submit(SyntheticJob("q2", cost=50.0))
        assert d.retry_after == pytest.approx(5.0)

    def test_deadline_newcomer_defers_rather_than_degrades(self):
        _, gate = make_system()
        gate.submit(SyntheticJob("bg", cost=100.0, deadline=15.0))
        # Equal-weight sharing would push bg to t=20 > 15; the newcomer
        # carries its own deadline so best-effort demotion is pointless.
        d = gate.submit(SyntheticJob("q2", cost=100.0, deadline=30.0))
        assert d.outcome == "defer"
        assert "bg" in d.reason

    def test_defer_cap_turns_into_reject(self):
        rdbms, gate = make_system(
            AdmissionPolicy(max_in_flight=1, max_defers=2)
        )
        gate.submit(SyntheticJob("q1", cost=1000.0))
        job = SyntheticJob("q2", cost=10.0)
        assert gate.submit(job).outcome == "defer"
        assert gate.submit(job).outcome == "defer"
        d = gate.submit(job)
        assert d.outcome == "reject"
        assert "deferred 2 times" in d.reason


class TestDegrade:
    def test_infeasible_full_weight_admits_demoted(self):
        rdbms, gate = make_system()
        gate.submit(SyntheticJob("vip", cost=100.0, deadline=15.0))
        # Equal weight: vip finishes at t=20 (miss).  Demoted to weight
        # 0.25 the newcomer leaves vip 8 U/s -> t=12.5 (hit).
        d = gate.submit(SyntheticJob("q2", cost=100.0))
        assert d.outcome == "degrade"
        assert d.admitted
        assert d.demoted_priority == -2
        assert rdbms.record("q2").job.priority == -2
        rdbms.run_to_completion()
        vip = rdbms.record("vip")
        assert vip.status == "finished"
        assert vip.trace.finished_at <= 15.0

    def test_degrade_disabled_defers_instead(self):
        _, gate = make_system(AdmissionPolicy(allow_degrade=False))
        gate.submit(SyntheticJob("vip", cost=100.0, deadline=15.0))
        d = gate.submit(SyntheticJob("q2", cost=100.0))
        assert d.outcome == "defer"


class TestReject:
    def test_draining_rejects(self):
        rdbms, gate = make_system()
        rdbms.drain()
        d = gate.submit(SyntheticJob("q1", cost=10.0))
        assert d.outcome == "reject"
        assert "draining" in d.reason
        assert "q1" not in rdbms.records()

    def test_pressure_floor_rejects_low_classes(self):
        _, gate = make_system()
        gate.set_pressure(2)
        assert gate.submit(SyntheticJob("lo", cost=1.0, priority=-1)).outcome \
            == "reject"
        assert gate.submit(SyntheticJob("ok", cost=1.0, priority=0)).outcome \
            == "admit"
        gate.set_pressure(3)
        assert gate.submit(SyntheticJob("mid", cost=1.0, priority=0)).outcome \
            == "reject"
        assert gate.submit(SyntheticJob("hi", cost=1.0, priority=1)).outcome \
            == "admit"

    def test_pressure_must_be_nonnegative(self):
        _, gate = make_system()
        with pytest.raises(ValueError):
            gate.set_pressure(-1)

    def test_non_finite_cost_rejects(self):
        _, gate = make_system()
        d = gate.submit(SyntheticJob("q1", cost=float("inf")))
        assert d.outcome == "reject"
        assert "non-finite" in d.reason


class TestWiring:
    def test_attach_gates_scripted_arrivals(self):
        rdbms, gate = make_system(AdmissionPolicy(max_in_flight=1))
        gate.attach()
        schedule = ArrivalSchedule()
        schedule.add(1.0, lambda: SyntheticJob("a1", cost=10.0))
        schedule.add(1.0, lambda: SyntheticJob("a2", cost=10.0))
        rdbms.schedule(schedule)
        rdbms.run_to_completion()
        assert gate.outcomes["a1"].admitted
        # a2 hit the in-flight cap on arrival, then retried in.
        assert gate.counts()["defer"] >= 1
        assert rdbms.record("a2").status == "finished"

    def test_resubmit_goes_through_the_gate(self):
        rdbms, gate = make_system()
        gate.submit(SyntheticJob("q1", cost=10.0))
        rdbms.run_until(0.1)
        rdbms.abort("q1")
        d = gate.resubmit(SyntheticJob("q1", cost=10.0))
        assert d.outcome == "admit"
        rdbms.run_to_completion()
        assert rdbms.record("q1").status == "finished"

    def test_decisions_log_and_counts(self):
        _, gate = make_system(AdmissionPolicy(max_in_flight=1))
        gate.submit(SyntheticJob("q1", cost=50.0))
        gate.submit(SyntheticJob("q2", cost=50.0))
        counts = gate.counts()
        assert counts == {"admit": 1, "degrade": 0, "defer": 1, "reject": 0}
        assert [d.query_id for d in gate.decisions] == ["q1", "q2"]

    def test_obs_counters_and_trace(self):
        obs = Observability()
        rdbms, gate = make_system(
            AdmissionPolicy(max_in_flight=1), obs=obs
        )
        gate.submit(SyntheticJob("q1", cost=50.0))
        gate.submit(SyntheticJob("q2", cost=50.0))
        assert obs.metrics.counter_value("qos.admission.admit") == 1
        assert obs.metrics.counter_value("qos.admission.defer") == 1
        kinds = [e["event"] for e in obs.tracer.events]
        assert "qos.admission.admit" in kinds
        assert "qos.admission.defer" in kinds
