"""Tests for the graceful-degradation ladder."""

import pytest

from repro.obs import Observability
from repro.qos.admission import AdmissionController
from repro.qos.ladder import RUNGS, DegradationLadder, LadderConfig
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS


def make_system(config=None, rate=10.0, mpl=4, obs=None, admission=False):
    rdbms = SimulatedRDBMS(
        processing_rate=rate, multiprogramming_limit=mpl, obs=obs
    )
    gate = AdmissionController(rdbms) if admission else None
    ladder = DegradationLadder(rdbms, config=config, admission=gate)
    return rdbms, ladder, gate


class TestConfigValidation:
    def test_thresholds_must_increase(self):
        with pytest.raises(ValueError):
            LadderConfig(coalesce_at=3.0, demote_at=2.0)
        with pytest.raises(ValueError):
            LadderConfig(coalesce_at=0.0)

    def test_other_knobs_validated(self):
        with pytest.raises(ValueError):
            LadderConfig(clear_fraction=0.0)
        with pytest.raises(ValueError):
            LadderConfig(clear_ticks=0)
        with pytest.raises(ValueError):
            LadderConfig(refresh_factor=0.5)
        with pytest.raises(ValueError):
            LadderConfig(max_shed_per_step=0)

    def test_rung_names(self):
        assert RUNGS == ("normal", "coalesce", "demote", "shed")


class TestOverloadScore:
    def test_idle_system_scores_zero(self):
        _, ladder, _ = make_system()
        assert ladder.overload_score() == 0.0

    def test_score_combines_queue_and_horizon(self):
        rdbms, ladder, _ = make_system(
            LadderConfig(horizon_target=10.0), rate=10.0, mpl=2
        )
        for i in range(4):
            rdbms.submit(SyntheticJob(f"q{i}", cost=50.0))
        # 2 running + 2 queued: queue term = 2/2 = 1.0; total work
        # 200 U at 10 U/s = 20 s horizon -> horizon term = 2.0.
        assert ladder.overload_score() == pytest.approx(3.0)


class TestEscalation:
    def test_climbs_one_rung_per_tick(self):
        rdbms, ladder, _ = make_system(
            LadderConfig(coalesce_at=0.5, demote_at=1.0, shed_at=100.0,
                         horizon_target=10.0),
            mpl=2,
        )
        ladder.attach()
        for i in range(6):
            rdbms.submit(SyntheticJob(f"q{i}", cost=100.0, priority=1))
        assert ladder.rung == 0
        rdbms.run_until(1.01)  # first check
        assert ladder.rung == 1
        rdbms.run_until(2.01)  # second check
        assert ladder.rung == 2

    def test_descends_with_hysteresis(self):
        rdbms, ladder, _ = make_system(
            LadderConfig(coalesce_at=0.5, demote_at=10.0, shed_at=20.0,
                         horizon_target=10.0, clear_ticks=2),
        )
        ladder.attach()
        rdbms.submit(SyntheticJob("q0", cost=100.0, priority=1))
        rdbms.run_until(1.01)
        assert ladder.rung == 1  # 10 s horizon -> score 1.0 >= 0.5
        # Work drains; the score falls below 0.5 * 0.75 once the horizon
        # drops under 3.75 s (t > 6.25).  Two calm ticks then clear it.
        rdbms.run_until(7.01)
        assert ladder.rung == 1  # one calm tick so far
        rdbms.run_until(8.01)
        assert ladder.rung == 0
        actions = [e.action for e in ladder.events]
        assert "restore-cadence" in actions

    def test_ladder_sets_admission_pressure(self):
        rdbms, ladder, gate = make_system(
            LadderConfig(coalesce_at=0.5, demote_at=1.0, shed_at=100.0,
                         horizon_target=10.0),
            admission=True,
        )
        ladder.attach()
        for i in range(4):
            rdbms.submit(SyntheticJob(f"q{i}", cost=100.0, priority=1))
        rdbms.run_until(1.01)
        assert gate.pressure == 1
        rdbms.run_until(2.01)
        assert gate.pressure == 2

    def test_attach_is_single_shot(self):
        _, ladder, _ = make_system()
        ladder.attach()
        with pytest.raises(RuntimeError):
            ladder.attach()


class TestRungActions:
    def test_coalesce_and_restore_pi_cadence(self):
        rdbms, ladder, _ = make_system(LadderConfig(refresh_factor=4.0))
        ticks = []
        handle = rdbms.add_sampler(1.0, lambda r: ticks.append(r.clock))
        ladder.register_pi_sampler(handle)
        ladder.apply_coalesce()
        assert handle.interval == 4.0
        ladder.restore_cadence()
        assert handle.interval == 1.0

    def test_register_after_coalesce_coalesces_immediately(self):
        rdbms, ladder, _ = make_system(
            LadderConfig(coalesce_at=0.5, demote_at=50.0, shed_at=100.0,
                         horizon_target=10.0),
        )
        ladder.attach()
        rdbms.submit(SyntheticJob("q0", cost=200.0, priority=1))
        rdbms.run_until(1.01)
        assert ladder.rung == 1
        handle = rdbms.add_sampler(1.0, lambda r: None)
        ladder.register_pi_sampler(handle)
        assert handle.interval == 4.0

    def test_demote_targets_only_low_priority(self):
        rdbms, ladder, _ = make_system(
            LadderConfig(low_priority_ceiling=0, demote_priority=-2)
        )
        rdbms.submit(SyntheticJob("lo", cost=50.0, priority=0))
        rdbms.submit(SyntheticJob("hi", cost=50.0, priority=2))
        acted = ladder.demote_low_priority()
        assert acted == ("lo",)
        assert rdbms.record("lo").job.priority == -2
        assert rdbms.record("hi").job.priority == 2
        # Idempotent: a second sweep does nothing.
        assert ladder.demote_low_priority() == ()

    def test_park_and_release(self):
        rdbms, ladder, _ = make_system()
        rdbms.submit(SyntheticJob("lo", cost=50.0, priority=0))
        rdbms.submit(SyntheticJob("hi", cost=50.0, priority=2))
        parked = ladder.park_low_priority()
        assert parked == ("lo",)
        assert ladder.parked == ("lo",)
        assert rdbms.record("lo").status == "blocked"
        released = ladder.release_parked()
        assert released == ("lo",)
        assert ladder.parked == ()
        assert rdbms.record("lo").status in ("running", "queued")

    def test_shed_kills_least_progressed_first(self):
        rdbms, ladder, _ = make_system(rate=10.0, mpl=2)
        rdbms.submit(SyntheticJob("old", cost=100.0))
        rdbms.run_until(2.0)  # old has 20 U sunk
        rdbms.submit(SyntheticJob("new", cost=100.0))
        shed = ladder.shed(1)
        assert shed == ("new",)  # least sunk work wasted
        assert rdbms.record("new").status == "aborted"
        assert ladder.shed_ids == ["new"]

    def test_shed_spares_high_priority_and_parked(self):
        rdbms, ladder, _ = make_system()
        rdbms.submit(SyntheticJob("hi", cost=50.0, priority=3))
        rdbms.submit(SyntheticJob("lo", cost=50.0, priority=0))
        ladder.park_low_priority()  # parks lo
        assert ladder.shed_candidates() == []
        assert ladder.shed() == ()

    def test_full_climb_sheds_under_storm(self):
        rdbms, ladder, _ = make_system(
            LadderConfig(coalesce_at=0.5, demote_at=1.0, shed_at=1.5,
                         horizon_target=5.0, max_shed_per_step=2),
            rate=1.0, mpl=2,
        )
        ladder.attach()
        for i in range(8):
            rdbms.submit(SyntheticJob(f"q{i}", cost=100.0))
        rdbms.run_until(3.5)  # three checks: rungs 1, 2, 3
        assert ladder.rung == 3
        assert len(ladder.shed_ids) >= 1
        statuses = {qid: rdbms.record(qid).status for qid in ladder.shed_ids}
        assert all(s == "aborted" for s in statuses.values())

    def test_obs_counters_and_rung_gauge(self):
        obs = Observability()
        rdbms, ladder, _ = make_system(obs=obs)
        rdbms.submit(SyntheticJob("lo", cost=50.0, priority=0))
        ladder.demote_low_priority()
        assert obs.metrics.counter_value("qos.ladder.demote") == 1
        assert obs.metrics.gauge("qos.ladder.rung").value == 0
