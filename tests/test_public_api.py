"""Tests for the top-level public API surface."""

import pytest

import repro


class TestPublicAPI:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_end_to_end_via_top_level_names(self):
        rdbms = repro.SimulatedRDBMS(processing_rate=2.0)
        rdbms.submit(repro.SyntheticJob("a", 10))
        rdbms.submit(repro.SyntheticJob("b", 30))
        pi = repro.MultiQueryProgressIndicator()
        estimate = pi.estimate(rdbms.snapshot())
        assert estimate.for_query("b") == pytest.approx(20.0)
        rdbms.run_to_completion()
        assert rdbms.traces["b"].finished_at == pytest.approx(20.0)

    def test_workload_management_names(self):
        queries = [repro.QuerySnapshot(f"q{i}", 10.0 * (i + 1)) for i in range(3)]
        choice = repro.choose_victim(queries, "q0", 1.0)
        assert choice.victims
        plan = repro.plan_maintenance(queries, 30.0, 1.0)
        exact = repro.exact_maintenance_plan(queries, 30.0, 1.0)
        assert exact.lost_work <= plan.lost_work + 1e-9

    def test_database_name(self):
        db = repro.Database()
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.query("SELECT a FROM t") == [(1,)]

    def test_standard_case_and_project_names(self):
        queries = [repro.QuerySnapshot("a", 10), repro.QuerySnapshot("b", 20)]
        analytic = repro.standard_case(queries, 1.0)
        projected = repro.project(queries, processing_rate=1.0)
        assert analytic.remaining_times == pytest.approx(
            projected.remaining_times
        )
