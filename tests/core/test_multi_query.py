"""Tests for the multi-query progress indicator."""

import math

import pytest

from repro.core.forecast import AdaptiveForecaster, WorkloadForecast
from repro.core.model import QuerySnapshot, SystemSnapshot
from repro.core.multi_query import MultiQueryProgressIndicator
from repro.core.standard_case import standard_case


def snap(running, queued=(), rate=1.0, mpl=None, time=0.0):
    return SystemSnapshot.of(
        running=running,
        queued=queued,
        processing_rate=rate,
        multiprogramming_limit=mpl,
        time=time,
    )


def q(qid, cost, weight=1.0):
    return QuerySnapshot(qid, cost, weight=weight)


class TestPlainEstimation:
    def test_matches_standard_case(self):
        queries = [q("a", 10), q("b", 25), q("c", 40)]
        pi = MultiQueryProgressIndicator()
        est = pi.estimate(snap(queries, rate=2.0))
        expected = standard_case(queries, 2.0).remaining_times
        for qid, t in expected.items():
            assert est.for_query(qid) == pytest.approx(t)

    def test_estimate_for_shortcut(self):
        queries = [q("a", 10), q("b", 20)]
        pi = MultiQueryProgressIndicator()
        assert pi.estimate_for(snap(queries), "b") == pytest.approx(30.0)

    def test_unknown_query_raises(self):
        pi = MultiQueryProgressIndicator()
        est = pi.estimate(snap([q("a", 10)]))
        with pytest.raises(KeyError):
            est.for_query("zzz")

    def test_quiescent_time(self):
        pi = MultiQueryProgressIndicator()
        est = pi.estimate(snap([q("a", 10), q("b", 20)], rate=2.0))
        assert est.quiescent_time == pytest.approx(15.0)

    def test_estimate_time_carried_from_snapshot(self):
        pi = MultiQueryProgressIndicator()
        est = pi.estimate(snap([q("a", 10)], time=42.0))
        assert est.time == 42.0


class TestQueueVisibility:
    def _naq(self):
        return snap(
            [q("Q1", 250), q("Q2", 50)],
            queued=[q("Q3", 100)],
            rate=1.0,
            mpl=2,
        )

    def test_queue_aware_estimate(self):
        pi = MultiQueryProgressIndicator(consider_queue=True)
        est = pi.estimate(self._naq())
        assert est.for_query("Q1") == pytest.approx(400.0)
        assert est.for_query("Q3") == pytest.approx(300.0)
        assert est.queue_waits["Q3"] == pytest.approx(100.0)

    def test_queue_blind_estimate(self):
        pi = MultiQueryProgressIndicator(consider_queue=False)
        est = pi.estimate(self._naq())
        # Blind to Q3: Q1 seems to finish at 50*2 + 200 = 300.
        assert est.for_query("Q1") == pytest.approx(300.0)
        # Queued queries get no estimate (reported as +inf).
        assert math.isinf(est.for_query("Q3"))

    def test_queue_aware_beats_blind_for_running_query(self):
        state = self._naq()
        aware = MultiQueryProgressIndicator(consider_queue=True).estimate(state)
        blind = MultiQueryProgressIndicator(consider_queue=False).estimate(state)
        actual_q1 = 400.0
        assert abs(aware.for_query("Q1") - actual_q1) < abs(
            blind.for_query("Q1") - actual_q1
        )


class TestForecasting:
    def test_forecast_inflates_estimates(self):
        state = snap([q("a", 100)])
        plain = MultiQueryProgressIndicator().estimate(state)
        loaded = MultiQueryProgressIndicator(
            forecast=WorkloadForecast(arrival_rate=0.05, average_cost=20.0)
        ).estimate(state)
        assert loaded.for_query("a") > plain.for_query("a")

    def test_estimates_bounded_under_overload_forecast(self):
        """The drain-relative horizon keeps estimates finite and sane."""
        state = snap([q("a", 100)])
        pi = MultiQueryProgressIndicator(
            forecast=WorkloadForecast(arrival_rate=5.0, average_cost=100.0),
            horizon_drain_factor=3.0,
        )
        est = pi.estimate(state)
        assert math.isfinite(est.for_query("a"))
        # All forecast work within the horizon plus own work is an upper
        # bound on the projection's outcome.
        assert est.for_query("a") <= 100 + 5.0 * 300 * 100 + 1

    def test_horizon_factor_validation(self):
        with pytest.raises(ValueError):
            MultiQueryProgressIndicator(horizon_drain_factor=0.0)

    def test_explicit_horizon_respected(self):
        state = snap([q("a", 100)])
        f = WorkloadForecast(arrival_rate=0.1, average_cost=10.0, horizon=20.0)
        est = MultiQueryProgressIndicator(forecast=f).estimate(state)
        # Only two virtual arrivals (t=10, 20) fit in the horizon.
        assert est.for_query("a") == pytest.approx(120.0)
        assert est.forecast_used is not None
        assert est.forecast_used.horizon == 20.0


class TestAdaptiveForecaster:
    def test_forecaster_overrides_static_forecast(self):
        prior = WorkloadForecast(arrival_rate=0.5, average_cost=100.0)
        pi = MultiQueryProgressIndicator(
            forecast=WorkloadForecast(arrival_rate=0.0, average_cost=0.0),
            forecaster=AdaptiveForecaster(prior),
        )
        current = pi.current_forecast()
        assert current is not None
        assert current.arrival_rate == pytest.approx(0.5)

    def test_observed_arrivals_correct_the_rate(self):
        prior = WorkloadForecast(arrival_rate=0.5, average_cost=10.0)
        pi = MultiQueryProgressIndicator(
            forecaster=AdaptiveForecaster(prior, prior_strength=2.0)
        )
        # Real arrivals ~ one per 100s: far slower than the prior.
        for i in range(50):
            pi.observe_arrival(i * 100.0, cost=10.0)
        corrected = pi.current_forecast()
        assert corrected is not None
        assert corrected.arrival_rate < 0.05

    def test_estimates_improve_as_forecaster_learns(self):
        state = snap([q("a", 100)])
        prior = WorkloadForecast(arrival_rate=0.2, average_cost=50.0)
        pi = MultiQueryProgressIndicator(
            forecaster=AdaptiveForecaster(prior, prior_strength=2.0)
        )
        before = pi.estimate(state).for_query("a")
        # The true stream is empty-ish: arrivals every 1000s, tiny cost.
        for i in range(100):
            pi.observe_arrival(i * 1000.0, cost=1.0)
        after = pi.estimate(state).for_query("a")
        truth = 100.0  # no real load
        assert abs(after - truth) < abs(before - truth)
