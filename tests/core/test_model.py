"""Tests for the core data model."""

import pytest

from repro.core.model import (
    DEFAULT_PRIORITY_WEIGHTS,
    QuerySnapshot,
    SystemSnapshot,
    weight_for_priority,
)


class TestWeights:
    def test_default_weights_double_per_level(self):
        assert weight_for_priority(0) == 1.0
        assert weight_for_priority(1) == 2.0
        assert weight_for_priority(3) == 8.0

    def test_unknown_priority_extends_naturally(self):
        assert weight_for_priority(12) == 4096.0

    def test_custom_table(self):
        assert weight_for_priority(1, {1: 5.0}) == 5.0

    def test_default_table_contents(self):
        assert DEFAULT_PRIORITY_WEIGHTS[2] == 4.0


class TestQuerySnapshot:
    def test_total_cost(self):
        q = QuerySnapshot("a", remaining_cost=30, completed_work=10)
        assert q.total_cost == 40

    def test_with_remaining(self):
        q = QuerySnapshot("a", remaining_cost=30, completed_work=10)
        q2 = q.with_remaining(5)
        assert q2.remaining_cost == 5
        assert q2.completed_work == 35
        assert q2.total_cost == q.total_cost

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            QuerySnapshot("a", remaining_cost=-1)

    def test_negative_done_rejected(self):
        with pytest.raises(ValueError):
            QuerySnapshot("a", remaining_cost=1, completed_work=-1)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            QuerySnapshot("a", remaining_cost=1, weight=0)

    def test_frozen(self):
        q = QuerySnapshot("a", remaining_cost=1)
        with pytest.raises(AttributeError):
            q.remaining_cost = 5  # type: ignore[misc]


class TestSystemSnapshot:
    def _snap(self):
        return SystemSnapshot.of(
            running=[QuerySnapshot("a", 10, weight=1), QuerySnapshot("b", 20, weight=3)],
            queued=[QuerySnapshot("c", 5)],
            processing_rate=4.0,
            multiprogramming_limit=2,
            time=7.0,
        )

    def test_total_weight(self):
        assert self._snap().total_weight == 4.0

    def test_total_remaining_cost_includes_queue(self):
        assert self._snap().total_remaining_cost == 35.0

    def test_speed_of(self):
        snap = self._snap()
        assert snap.speed_of("a") == pytest.approx(1.0)
        assert snap.speed_of("b") == pytest.approx(3.0)

    def test_speed_of_queued_raises(self):
        with pytest.raises(KeyError):
            self._snap().speed_of("c")

    def test_find(self):
        snap = self._snap()
        assert snap.find("c").remaining_cost == 5
        with pytest.raises(KeyError):
            snap.find("zzz")

    def test_without(self):
        snap = self._snap().without("b")
        assert [q.query_id for q in snap.running] == ["a"]
        with pytest.raises(KeyError):
            self._snap().without("zzz")

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            SystemSnapshot.of(
                running=[QuerySnapshot("a", 1)],
                queued=[QuerySnapshot("a", 2)],
            )

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            SystemSnapshot.of(running=[], processing_rate=0.0)

    def test_bad_mpl_rejected(self):
        with pytest.raises(ValueError):
            SystemSnapshot.of(running=[], multiprogramming_limit=0)
