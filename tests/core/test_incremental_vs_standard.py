"""Differential suite: IncrementalSchedule vs the standard-case oracle.

Property-based randomized testing of the tentpole equivalence claim:
after *any* sequence of add / remove / advance / reweight / set_remaining
operations, :meth:`IncrementalSchedule.remaining_time_of` must equal a
fresh :func:`standard_case` solve over the schedule's own live snapshots,
for every live query, at every step -- to 1e-9 tolerance.

A second set of properties runs the same differential through the
:func:`project` entry points, covering the Section 2.3 (admission queue)
and Section 2.4 (forecast arrivals) generalisations: the incremental and
reference backends must agree on every projected finish time.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.forecast import WorkloadForecast
from repro.core.incremental import IncrementalSchedule
from repro.core.model import QuerySnapshot
from repro.core.projection import project
from repro.core.standard_case import standard_case

TOL = 1e-9

costs = st.floats(0.0, 1000.0, allow_nan=False, allow_infinity=False)
weights = st.floats(0.05, 16.0, allow_nan=False, allow_infinity=False)
rates = st.floats(0.1, 100.0, allow_nan=False, allow_infinity=False)
advances = st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False)


def close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=TOL, abs_tol=TOL)


def assert_matches_oracle(sched: IncrementalSchedule, context: str) -> None:
    """Every live query's O(log n) answer == a fresh O(n log n) solve."""
    snaps = sched.snapshots()
    oracle = standard_case(snaps, sched.processing_rate, include_stages=False)
    sweep = sched.remaining_times()
    assert set(sweep) == set(oracle.remaining_times)
    assert sched.finish_order() == oracle.finish_order, context
    for qid, expected in oracle.remaining_times.items():
        point = sched.remaining_time_of(qid)
        assert close(point, expected), (
            f"{context}: remaining_time_of({qid!r}) = {point!r} "
            f"!= oracle {expected!r}"
        )
        assert close(sweep[qid], expected), (
            f"{context}: remaining_times()[{qid!r}] = {sweep[qid]!r} "
            f"!= oracle {expected!r}"
        )


@settings(max_examples=1000, deadline=None)
@given(data=st.data(), rate=rates)
def test_random_op_sequences_match_standard_case(data, rate):
    """The tentpole differential: >= 1000 randomized op sequences."""
    sched = IncrementalSchedule(rate)
    next_id = 0
    n_ops = data.draw(st.integers(1, 20), label="n_ops")
    for step in range(n_ops):
        live = sorted(sched.query_ids())
        choices = ["add"]
        if live:
            choices += ["remove", "advance", "reweight", "set_remaining"]
        op = data.draw(st.sampled_from(choices), label=f"op{step}")
        if op == "add":
            sched.add(
                QuerySnapshot(
                    f"q{next_id}",
                    data.draw(costs, label="cost"),
                    weight=data.draw(weights, label="weight"),
                )
            )
            next_id += 1
        elif op == "remove":
            sched.remove(data.draw(st.sampled_from(live), label="victim"))
        elif op == "advance":
            finished = sched.advance(data.draw(advances, label="dt"))
            for _, qid in finished:
                assert qid not in sched
        elif op == "reweight":
            sched.reweight(
                data.draw(st.sampled_from(live), label="target"),
                data.draw(weights, label="new_weight"),
            )
        else:
            sched.set_remaining(
                data.draw(st.sampled_from(live), label="target"),
                data.draw(costs, label="new_cost"),
            )
        assert_matches_oracle(sched, f"after op {step} ({op})")


@settings(max_examples=200, deadline=None)
@given(data=st.data(), rate=rates)
def test_advance_completion_times_match_oracle(data, rate):
    """Completion instants reported by advance() equal the oracle's r_i."""
    n = data.draw(st.integers(1, 12), label="n")
    snaps = [
        QuerySnapshot(
            f"q{i}",
            data.draw(costs, label=f"cost{i}"),
            weight=data.draw(weights, label=f"w{i}"),
        )
        for i in range(n)
    ]
    oracle = standard_case(snaps, rate, include_stages=False)
    sched = IncrementalSchedule(rate, snaps)
    horizon = max(oracle.remaining_times.values()) + 1.0
    finished = sched.advance(horizon)
    assert tuple(qid for _, qid in finished) == oracle.finish_order
    for t, qid in finished:
        expected = oracle.remaining_times[qid]
        assert math.isclose(t, expected, rel_tol=1e-9, abs_tol=1e-6), (
            f"{qid} finished at {t!r}, oracle says {expected!r}"
        )
    assert len(sched) == 0


def _snapshot_pool(data, prefix, max_n, min_cost=0.0):
    n = data.draw(st.integers(0, max_n), label=f"n_{prefix}")
    lo = st.floats(min_cost, 1000.0, allow_nan=False, allow_infinity=False)
    return [
        QuerySnapshot(
            f"{prefix}{i}",
            data.draw(lo, label=f"{prefix}cost{i}"),
            weight=data.draw(weights, label=f"{prefix}w{i}"),
        )
        for i in range(n)
    ]


def _assert_backends_agree(running, queued, rate, mpl, forecast, context):
    results = {
        backend: project(
            running=running,
            queued=queued,
            processing_rate=rate,
            multiprogramming_limit=mpl,
            forecast=forecast,
            backend=backend,
        )
        for backend in ("incremental", "reference")
    }
    inc, ref = results["incremental"], results["reference"]
    assert set(inc.remaining_times) == set(ref.remaining_times), context
    for qid, expected in ref.remaining_times.items():
        got = inc.remaining_times[qid]
        assert math.isclose(got, expected, rel_tol=TOL, abs_tol=1e-6), (
            f"{context}: {qid} incremental={got!r} reference={expected!r}"
        )
    assert math.isclose(
        inc.quiescent_time, ref.quiescent_time, rel_tol=TOL, abs_tol=1e-6
    ), context
    for qid in ref.queries:
        assert math.isclose(
            inc.queries[qid].queue_wait,
            ref.queries[qid].queue_wait,
            rel_tol=TOL,
            abs_tol=1e-6,
        ), f"{context}: queue wait of {qid}"


@settings(max_examples=300, deadline=None)
@given(data=st.data(), rate=rates)
def test_projection_backends_agree_with_queue(data, rate):
    """Section 2.3 entry point: admission queue + multiprogramming limit."""
    running = _snapshot_pool(data, "r", 8)
    queued = _snapshot_pool(data, "w", 6)
    mpl = data.draw(
        st.one_of(st.none(), st.integers(1, 8)), label="mpl"
    )
    _assert_backends_agree(
        running, queued, rate, mpl, None, f"mpl={mpl}"
    )


@settings(max_examples=200, deadline=None)
@given(data=st.data(), rate=rates)
def test_projection_backends_agree_with_forecast(data, rate):
    """Section 2.4 entry point: predicted future arrivals."""
    running = _snapshot_pool(data, "r", 6, min_cost=1.0)
    queued = _snapshot_pool(data, "w", 4, min_cost=1.0)
    mpl = data.draw(st.one_of(st.none(), st.integers(1, 6)), label="mpl")
    forecast = WorkloadForecast(
        arrival_rate=data.draw(
            st.floats(0.001, 2.0, allow_nan=False), label="lambda"
        ),
        average_cost=data.draw(
            st.floats(1.0, 200.0, allow_nan=False), label="cbar"
        ),
        average_weight=data.draw(weights, label="wbar"),
        horizon=data.draw(
            st.floats(0.0, 200.0, allow_nan=False), label="horizon"
        ),
    )
    _assert_backends_agree(
        running, queued, rate, mpl, forecast,
        f"mpl={mpl} forecast={forecast}",
    )
