"""Cross-validation: the analytical projection vs the event simulator.

The projection (Section 2.2-2.4 analysis) and the simulator implement the
same system model through entirely different code paths -- closed-form /
event-driven prediction versus time-sliced execution.  For any workload
with known arrivals they must agree exactly.  Hypothesis drives both with
random workloads, MPLs and scripted arrival schedules.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import QuerySnapshot
from repro.core.projection import project
from repro.sim.arrivals import ArrivalSchedule
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS


@st.composite
def scenario(draw):
    n_initial = draw(st.integers(min_value=1, max_value=6))
    initial = [
        (
            f"q{i}",
            draw(st.floats(min_value=0.5, max_value=200.0)),
            draw(st.sampled_from([1.0, 2.0, 4.0])),
        )
        for i in range(n_initial)
    ]
    n_arrivals = draw(st.integers(min_value=0, max_value=4))
    arrivals = [
        (
            draw(st.floats(min_value=0.1, max_value=150.0)),
            f"a{j}",
            draw(st.floats(min_value=0.5, max_value=100.0)),
            draw(st.sampled_from([1.0, 2.0])),
        )
        for j in range(n_arrivals)
    ]
    mpl = draw(st.one_of(st.none(), st.integers(min_value=1, max_value=4)))
    rate = draw(st.floats(min_value=0.5, max_value=5.0))
    return initial, arrivals, mpl, rate


class TestProjectionMatchesSimulator:
    @given(data=scenario())
    @settings(max_examples=80, deadline=None)
    def test_finish_times_agree(self, data):
        initial, arrivals, mpl, rate = data

        # --- analytical projection -----------------------------------
        running_or_queued = [
            QuerySnapshot(qid, cost, weight=w) for qid, cost, w in initial
        ]
        if mpl is None:
            running, queued = running_or_queued, []
        else:
            running = running_or_queued[:mpl]
            queued = running_or_queued[mpl:]
        extra = [
            (t, QuerySnapshot(qid, cost, weight=w))
            for t, qid, cost, w in arrivals
        ]
        predicted = project(
            running,
            queued=queued,
            processing_rate=rate,
            multiprogramming_limit=mpl,
            extra_arrivals=extra,
        )

        # --- event simulation -----------------------------------------
        rdbms = SimulatedRDBMS(processing_rate=rate, multiprogramming_limit=mpl)
        for qid, cost, w in initial:
            rdbms.submit(SyntheticJob(qid, cost, weight=w))
        schedule = ArrivalSchedule()
        for t, qid, cost, w in arrivals:
            schedule.add(
                t, lambda qid=qid, cost=cost, w=w: SyntheticJob(qid, cost, weight=w)
            )
        rdbms.schedule(schedule)
        rdbms.run_to_completion()

        for qid in predicted.remaining_times:
            simulated = rdbms.traces[qid].finished_at
            assert simulated == pytest.approx(
                predicted.remaining_times[qid], rel=1e-6, abs=1e-6
            ), qid

    @given(data=scenario())
    @settings(max_examples=40, deadline=None)
    def test_queue_waits_agree(self, data):
        initial, arrivals, mpl, rate = data
        if mpl is None:
            return  # no queueing without an MPL
        running = [QuerySnapshot(qid, c, weight=w) for qid, c, w in initial[:mpl]]
        queued = [QuerySnapshot(qid, c, weight=w) for qid, c, w in initial[mpl:]]
        predicted = project(
            running,
            queued=queued,
            processing_rate=rate,
            multiprogramming_limit=mpl,
        )
        rdbms = SimulatedRDBMS(processing_rate=rate, multiprogramming_limit=mpl)
        for qid, cost, w in initial:
            rdbms.submit(SyntheticJob(qid, cost, weight=w))
        rdbms.run_to_completion()
        for qid, c, w in initial:
            trace = rdbms.traces[qid]
            assert trace.queue_wait == pytest.approx(
                predicted.queries[qid].queue_wait, rel=1e-6, abs=1e-6
            )
