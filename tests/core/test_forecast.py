"""Tests for workload forecasts and online estimators."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.forecast import (
    BURST_RATE_CAP,
    NO_FORECAST,
    AdaptiveForecaster,
    OnlineArrivalRateEstimator,
    OnlineMeanEstimator,
    WorkloadForecast,
)


class TestWorkloadForecast:
    def test_mean_interarrival(self):
        f = WorkloadForecast(arrival_rate=0.1, average_cost=5.0)
        assert f.mean_interarrival == pytest.approx(10.0)

    def test_idle_interarrival_is_inf(self):
        assert math.isinf(NO_FORECAST.mean_interarrival)

    def test_scaled(self):
        f = WorkloadForecast(arrival_rate=0.1, average_cost=5.0)
        assert f.scaled(3.0).arrival_rate == pytest.approx(0.3)
        assert f.scaled(0.0).arrival_rate == 0.0
        with pytest.raises(ValueError):
            f.scaled(-1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"arrival_rate": -0.1, "average_cost": 1.0},
            {"arrival_rate": 0.1, "average_cost": -1.0},
            {"arrival_rate": 0.1, "average_cost": 1.0, "average_weight": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadForecast(**kwargs)


class TestArrivalRateEstimator:
    def test_none_until_two_observations(self):
        e = OnlineArrivalRateEstimator()
        assert e.rate() is None
        e.observe(0.0)
        assert e.rate() is None

    def test_uniform_arrivals(self):
        e = OnlineArrivalRateEstimator()
        for i in range(11):
            e.observe(i * 5.0)
        assert e.rate() == pytest.approx(0.2)

    def test_window_tracks_recent_rate(self):
        e = OnlineArrivalRateEstimator(window=10)
        t = 0.0
        for _ in range(20):  # slow phase: one per 100s
            t += 100.0
            e.observe(t)
        for _ in range(20):  # fast phase: one per 1s
            t += 1.0
            e.observe(t)
        assert e.rate() == pytest.approx(1.0, rel=0.05)

    def test_rejects_decreasing_times(self):
        e = OnlineArrivalRateEstimator()
        e.observe(10.0)
        with pytest.raises(ValueError):
            e.observe(9.0)

    def test_simultaneous_arrivals_give_capped_rate(self):
        # A zero-span burst must not disable forecasting: the rate is at
        # its highest right then.  It reports the finite cap instead.
        e = OnlineArrivalRateEstimator()
        e.observe(1.0)
        e.observe(1.0)
        assert e.rate() == BURST_RATE_CAP
        assert math.isfinite(e.rate())

    def test_near_zero_span_capped(self):
        e = OnlineArrivalRateEstimator()
        e.observe(1.0)
        e.observe(1.0 + 1e-12)
        assert e.rate() == BURST_RATE_CAP

    def test_cap_feeds_projection_safe_rate(self):
        # The capped rate keeps virtual arrival intervals >= 1 microsecond,
        # so downstream projections cannot explode their event budget.
        e = OnlineArrivalRateEstimator()
        e.observe(2.0)
        e.observe(2.0)
        assert 1.0 / e.rate() >= 1e-6

    def test_window_validation(self):
        with pytest.raises(ValueError):
            OnlineArrivalRateEstimator(window=1)


class TestMeanEstimator:
    def test_plain_mean(self):
        e = OnlineMeanEstimator()
        assert e.mean() is None
        for v in (1.0, 2.0, 3.0):
            e.observe(v)
        assert e.mean() == pytest.approx(2.0)
        assert e.count == 3

    def test_decayed_mean_tracks_shift(self):
        e = OnlineMeanEstimator(decay=0.5)
        for _ in range(20):
            e.observe(100.0)
        for _ in range(10):
            e.observe(1.0)
        assert e.mean() == pytest.approx(1.0, abs=0.5)

    def test_decay_validation(self):
        with pytest.raises(ValueError):
            OnlineMeanEstimator(decay=1.0)
        with pytest.raises(ValueError):
            OnlineMeanEstimator(decay=0.0)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    @settings(max_examples=60)
    def test_matches_arithmetic_mean(self, values):
        e = OnlineMeanEstimator()
        for v in values:
            e.observe(v)
        assert e.mean() == pytest.approx(sum(values) / len(values), rel=1e-9, abs=1e-6)


class TestAdaptiveForecaster:
    def _prior(self, rate=0.1, cost=10.0):
        return WorkloadForecast(arrival_rate=rate, average_cost=cost)

    def test_no_observations_returns_prior(self):
        f = AdaptiveForecaster(self._prior())
        assert f.current() == self._prior()

    def test_converges_to_observed_rate(self):
        f = AdaptiveForecaster(
            self._prior(rate=0.5), prior_strength=5.0, rate_window=300
        )
        for i in range(200):
            f.observe_arrival(i * 10.0, cost=20.0)  # true rate 0.1
        current = f.current()
        assert current.arrival_rate == pytest.approx(0.1, rel=0.2)
        assert current.average_cost == pytest.approx(20.0, rel=0.1)

    def test_prior_strength_zero_means_pure_observation(self):
        f = AdaptiveForecaster(self._prior(rate=9.0), prior_strength=0.0)
        f.observe_arrival(0.0, cost=3.0)
        f.observe_arrival(2.0, cost=5.0)
        current = f.current()
        assert current.arrival_rate == pytest.approx(0.5)
        assert current.average_cost == pytest.approx(4.0)

    def test_blend_moves_monotonically_with_evidence(self):
        f = AdaptiveForecaster(self._prior(rate=1.0), prior_strength=10.0)
        rates = [f.current().arrival_rate]
        for i in range(30):
            f.observe_arrival(i * 100.0, cost=10.0)  # true rate 0.01
            rates.append(f.current().arrival_rate)
        assert rates[-1] < rates[1] < rates[0] + 1e-12

    def test_negative_prior_strength_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveForecaster(self._prior(), prior_strength=-1.0)

    def test_prior_property(self):
        prior = self._prior()
        assert AdaptiveForecaster(prior).prior is prior

    @pytest.mark.parametrize("prior_rate", [0.01, 1.0])
    def test_converges_from_wrong_prior_either_direction(self, prior_rate):
        # Figures 8-10 adaptivity: whether the prior lambda' is 10x too
        # low or 10x too high, enough evidence pulls the blend to the
        # measured rate and each new observation moves it closer.
        f = AdaptiveForecaster(
            self._prior(rate=prior_rate, cost=50.0),
            prior_strength=10.0,
            rate_window=2500,
        )
        true_rate = 0.1
        gaps = []
        for i in range(2000):
            f.observe_arrival(i / true_rate, cost=20.0)
            gaps.append(abs(f.current().arrival_rate - true_rate))
        assert f.current().arrival_rate == pytest.approx(true_rate, rel=0.1)
        assert f.current().average_cost == pytest.approx(20.0, rel=0.1)
        # Error shrinks as evidence accumulates (compare decade averages).
        assert sum(gaps[-100:]) / 100 < sum(gaps[10:110]) / 100
