"""Tests for the forward projection (Sections 2.2-2.4 combined)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.forecast import WorkloadForecast
from repro.core.model import QuerySnapshot
from repro.core.projection import ProjectionError, project
from repro.core.standard_case import standard_case


def q(qid, cost, weight=1.0):
    return QuerySnapshot(qid, cost, weight=weight)


@st.composite
def query_sets(draw, max_n=7):
    n = draw(st.integers(min_value=1, max_value=max_n))
    costs = draw(
        st.lists(st.floats(min_value=0.1, max_value=1e3), min_size=n, max_size=n)
    )
    weights = draw(
        st.lists(st.floats(min_value=0.25, max_value=8.0), min_size=n, max_size=n)
    )
    return [q(f"q{i}", c, w) for i, (c, w) in enumerate(zip(costs, weights))]


class TestEquivalenceWithStandardCase:
    @given(queries=query_sets(), rate=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=100)
    def test_no_arrivals_matches_standard_case(self, queries, rate):
        """With no queue and no forecast, projection == closed form."""
        analytic = standard_case(queries, rate).remaining_times
        projected = project(queries, processing_rate=rate).remaining_times
        for qid, t in analytic.items():
            assert projected[qid] == pytest.approx(t, rel=1e-6, abs=1e-9)


class TestAdmissionQueue:
    def test_queued_query_waits_for_slot(self):
        result = project(
            [q("run", 50)],
            queued=[q("wait", 10)],
            processing_rate=1.0,
            multiprogramming_limit=1,
        )
        assert result.remaining_times["run"] == pytest.approx(50.0)
        assert result.remaining_times["wait"] == pytest.approx(60.0)
        assert result.queries["wait"].queue_wait == pytest.approx(50.0)
        assert result.queries["run"].queue_wait == 0.0

    def test_naq_scenario(self):
        """The paper's NAQ setup: N=(50,10,20) costs, MPL 2."""
        result = project(
            [q("Q1", 50), q("Q2", 10)],
            queued=[q("Q3", 20)],
            processing_rate=1.0,
            multiprogramming_limit=2,
        )
        # Q2 finishes at 20; Q3 admitted; Q3 done at 60; Q1 at 80.
        assert result.remaining_times["Q2"] == pytest.approx(20.0)
        assert result.remaining_times["Q3"] == pytest.approx(60.0)
        assert result.remaining_times["Q1"] == pytest.approx(80.0)
        assert result.queries["Q3"].queue_wait == pytest.approx(20.0)

    def test_fifo_admission_order(self):
        result = project(
            [q("r", 10)],
            queued=[q("first", 10), q("second", 10)],
            processing_rate=1.0,
            multiprogramming_limit=1,
        )
        assert (
            result.queries["first"].queue_wait
            < result.queries["second"].queue_wait
        )

    def test_unlimited_mpl_admits_instantly(self):
        result = project(
            [q("a", 10)],
            queued=[q("b", 10)],
            processing_rate=1.0,
            multiprogramming_limit=None,
        )
        # Both share from time 0.
        assert result.remaining_times["a"] == pytest.approx(20.0)
        assert result.remaining_times["b"] == pytest.approx(20.0)

    @given(queries=query_sets(max_n=5))
    @settings(max_examples=60)
    def test_quiescent_time_conserved_with_queue(self, queries):
        """MPL changes finish times but not the drain time."""
        running, queued = queries[:1], queries[1:]
        r1 = project(running, queued=queued, processing_rate=1.0,
                     multiprogramming_limit=1)
        r2 = project(running, queued=queued, processing_rate=1.0)
        total = sum(qq.remaining_cost for qq in queries)
        assert r1.quiescent_time == pytest.approx(total, rel=1e-6)
        assert r2.quiescent_time == pytest.approx(total, rel=1e-6)


class TestForecast:
    def test_future_arrivals_slow_everyone(self):
        base = project([q("a", 100)], processing_rate=1.0)
        loaded = project(
            [q("a", 100)],
            processing_rate=1.0,
            forecast=WorkloadForecast(arrival_rate=0.1, average_cost=10.0),
        )
        assert loaded.remaining_times["a"] > base.remaining_times["a"]

    def test_zero_rate_forecast_is_noop(self):
        f = WorkloadForecast(arrival_rate=0.0, average_cost=10.0)
        with_f = project([q("a", 10)], processing_rate=1.0, forecast=f)
        without = project([q("a", 10)], processing_rate=1.0)
        assert with_f.remaining_times == without.remaining_times

    def test_horizon_limits_arrivals(self):
        unlimited = project(
            [q("a", 100)],
            processing_rate=1.0,
            forecast=WorkloadForecast(arrival_rate=0.2, average_cost=10.0),
        )
        capped = project(
            [q("a", 100)],
            processing_rate=1.0,
            forecast=WorkloadForecast(
                arrival_rate=0.2, average_cost=10.0, horizon=20.0
            ),
        )
        assert capped.remaining_times["a"] < unlimited.remaining_times["a"]

    def test_first_virtual_arrival_after_one_interval(self):
        """A query finishing before 1/lambda sees no virtual arrivals."""
        f = WorkloadForecast(arrival_rate=0.01, average_cost=50.0)
        result = project([q("a", 10)], processing_rate=1.0, forecast=f)
        assert result.remaining_times["a"] == pytest.approx(10.0)

    def test_unstable_forecast_capped_not_livelocked(self):
        """Far-above-capacity forecasts degrade gracefully."""
        f = WorkloadForecast(arrival_rate=10.0, average_cost=100.0)
        result = project([q("a", 5)], processing_rate=1.0, forecast=f)
        assert math.isfinite(result.remaining_times["a"])

    def test_exact_deterministic_arrival_effect(self):
        """Virtual arrivals of cost 10 every 10s while a 20-cost query runs.

        Hand computation: a runs alone on [0,10) (10 left), shares 1/2 on
        [10,20) (5 left), shares 1/3 on [20,30) (5/3 left), then shares 1/4
        until it finishes at 30 + (5/3)/(1/4) = 36.67s.
        """
        f = WorkloadForecast(arrival_rate=0.1, average_cost=10.0)
        result = project([q("a", 20)], processing_rate=1.0, forecast=f)
        assert result.remaining_times["a"] == pytest.approx(30 + (5 / 3) * 4)


class TestExtraArrivals:
    def test_known_one_off_arrival(self):
        result = project(
            [q("a", 20)],
            processing_rate=1.0,
            extra_arrivals=[(10.0, q("late", 5))],
        )
        # a alone until 10, then shares: late finishes at 20, a at 25.
        assert result.remaining_times["late"] == pytest.approx(20.0)
        assert result.remaining_times["a"] == pytest.approx(25.0)

    def test_extra_arrival_respects_mpl(self):
        result = project(
            [q("a", 20)],
            processing_rate=1.0,
            multiprogramming_limit=1,
            extra_arrivals=[(5.0, q("late", 5))],
        )
        assert result.remaining_times["a"] == pytest.approx(20.0)
        assert result.remaining_times["late"] == pytest.approx(25.0)
        assert result.queries["late"].queue_wait == pytest.approx(15.0)


class TestValidation:
    def test_bad_rate(self):
        with pytest.raises(ValueError):
            project([q("a", 1)], processing_rate=0.0)

    def test_empty_projection(self):
        result = project([], processing_rate=1.0)
        assert result.remaining_times == {}
        assert result.quiescent_time == 0.0

    def test_unknown_query_lookup(self):
        result = project([q("a", 1)], processing_rate=1.0)
        with pytest.raises(KeyError):
            result.remaining_time("nope")
