"""Metamorphic properties of the stage schedule (Section 2.2).

Three relations that must hold for *any* workload, checked against both
implementations of the standard case -- the closed-form oracle
(:func:`standard_case`) and the shared :class:`IncrementalSchedule`:

1. **Weight-scale invariance**: multiplying every weight by the same
   ``k > 0`` changes nothing -- fair sharing only sees weight *ratios*.
2. **Cost monotonicity**: adding remaining cost to one query never
   decreases *any* query's finish time (the slowed query obviously, and
   everyone scheduled around it can only be pushed later or left alone).
3. **Finish-order law**: completion order is ascending ``c/w`` ratio,
   ties broken by query id (the paper's Observation in Section 2.2).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import IncrementalSchedule
from repro.core.model import QuerySnapshot
from repro.core.standard_case import standard_case

TOL = 1e-9


@st.composite
def workloads(draw, min_n=1, max_n=10):
    n = draw(st.integers(min_n, max_n))
    return [
        QuerySnapshot(
            f"q{i}",
            draw(st.floats(0.0, 1000.0, allow_nan=False, allow_infinity=False)),
            weight=draw(
                st.floats(0.05, 16.0, allow_nan=False, allow_infinity=False)
            ),
        )
        for i in range(n)
    ]


rates = st.floats(0.1, 100.0, allow_nan=False, allow_infinity=False)
scales = st.floats(0.01, 100.0, allow_nan=False, allow_infinity=False)


def both_remaining_times(queries, rate):
    """Remaining times via the oracle and via the shared schedule."""
    oracle = standard_case(queries, rate, include_stages=False).remaining_times
    incremental = IncrementalSchedule(rate, queries).remaining_times()
    return oracle, incremental


@settings(deadline=None)
@given(queries=workloads(), rate=rates, k=scales)
def test_uniform_weight_scaling_changes_nothing(queries, rate, k):
    scaled = [
        QuerySnapshot(q.query_id, q.remaining_cost, weight=q.weight * k)
        for q in queries
    ]
    for impl_base, impl_scaled in zip(
        both_remaining_times(queries, rate),
        both_remaining_times(scaled, rate),
    ):
        for q in queries:
            base = impl_base[q.query_id]
            after = impl_scaled[q.query_id]
            assert math.isclose(base, after, rel_tol=1e-6, abs_tol=1e-6), (
                f"{q.query_id}: {base!r} became {after!r} under x{k} weights"
            )


@settings(deadline=None)
@given(
    data=st.data(),
    queries=workloads(),
    rate=rates,
    extra=st.floats(0.001, 500.0, allow_nan=False, allow_infinity=False),
)
def test_adding_cost_never_speeds_anyone_up(data, queries, rate, extra):
    slowed_id = data.draw(
        st.sampled_from([q.query_id for q in queries]), label="slowed"
    )
    slowed = [
        QuerySnapshot(
            q.query_id,
            q.remaining_cost + (extra if q.query_id == slowed_id else 0.0),
            weight=q.weight,
        )
        for q in queries
    ]
    for impl_base, impl_slowed in zip(
        both_remaining_times(queries, rate),
        both_remaining_times(slowed, rate),
    ):
        for q in queries:
            before = impl_base[q.query_id]
            after = impl_slowed[q.query_id]
            assert after >= before - TOL * max(1.0, abs(before)), (
                f"{q.query_id} got faster ({before!r} -> {after!r}) after "
                f"adding {extra} cost to {slowed_id}"
            )


@settings(deadline=None)
@given(queries=workloads(), rate=rates)
def test_finish_order_is_ascending_cost_weight_ratio(queries, rate):
    expected = tuple(
        q.query_id
        for q in sorted(
            queries, key=lambda q: (q.remaining_cost / q.weight, q.query_id)
        )
    )
    oracle = standard_case(queries, rate, include_stages=False)
    assert oracle.finish_order == expected
    sched = IncrementalSchedule(rate, queries)
    assert sched.finish_order() == expected
    # And actually *running* the schedule retires queries in that order.
    drained = sched.advance(oracle.remaining_times[expected[-1]] + 1.0)
    assert tuple(qid for _, qid in drained) == expected
