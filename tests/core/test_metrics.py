"""Tests for metrics and time-series helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    StepSeries,
    mean,
    mean_finite,
    relative_error,
    uniform_grid,
)


class TestRelativeError:
    def test_exact(self):
        assert relative_error(10.0, 10.0) == 0.0

    def test_overestimate(self):
        assert relative_error(30.0, 10.0) == pytest.approx(2.0)

    def test_underestimate(self):
        assert relative_error(5.0, 10.0) == pytest.approx(0.5)

    def test_zero_actual_rejected(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    def test_nonfinite_estimate_is_inf(self):
        assert math.isinf(relative_error(float("inf"), 10.0))
        assert math.isinf(relative_error(float("nan"), 10.0))

    @given(
        est=st.floats(min_value=0, max_value=1e9),
        actual=st.floats(min_value=1e-6, max_value=1e9),
    )
    @settings(max_examples=60)
    def test_symmetric_in_absolute_deviation(self, est, actual):
        up = relative_error(actual + est, actual)
        down = relative_error(max(actual - est, 0), actual)
        if actual - est >= 0:
            assert up == pytest.approx(down, rel=1e-9, abs=1e-12)


class TestMeans:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    def test_mean_finite_drops(self):
        assert mean_finite([1.0, float("inf"), 3.0]) == 2.0

    def test_mean_finite_caps(self):
        assert mean_finite([1.0, float("inf")], cap=5.0) == 3.0

    def test_mean_finite_empty(self):
        with pytest.raises(ValueError):
            mean_finite([float("nan")])

    def test_mean_finite_nan_treated_like_inf(self):
        # NaN and inf are both "estimator declined": dropped without a cap,
        # clamped to the cap with one.  NaN must never propagate to the mean.
        assert mean_finite([1.0, float("nan"), 3.0]) == 2.0
        capped = mean_finite([1.0, float("nan"), float("inf")], cap=5.0)
        assert capped == pytest.approx((1.0 + 5.0 + 5.0) / 3)
        assert not math.isnan(capped)

    def test_mean_finite_negative_inf_also_capped(self):
        assert mean_finite([float("-inf")], cap=7.0) == 7.0


class TestStepSeries:
    def test_last_observation_carried_forward(self):
        s = StepSeries([(0.0, 1.0), (10.0, 2.0)])
        assert s.at(0.0) == 1.0
        assert s.at(9.99) == 1.0
        assert s.at(10.0) == 2.0
        assert s.at(100.0) == 2.0

    def test_before_first_raises(self):
        s = StepSeries([(5.0, 1.0)])
        with pytest.raises(ValueError):
            s.at(4.9)

    def test_empty_series_raises(self):
        s = StepSeries()
        with pytest.raises(ValueError):
            s.at(0.0)
        with pytest.raises(ValueError):
            s.first_time()
        with pytest.raises(ValueError):
            s.last_time()

    def test_duplicate_time_overwrites(self):
        s = StepSeries([(1.0, 1.0), (1.0, 9.0)])
        assert len(s) == 1
        assert s.at(1.0) == 9.0

    def test_non_decreasing_enforced(self):
        s = StepSeries([(2.0, 1.0)])
        with pytest.raises(ValueError):
            s.append(1.0, 5.0)

    def test_sample(self):
        s = StepSeries([(0.0, 0.0), (2.0, 2.0), (4.0, 4.0)])
        assert s.sample([0.5, 2.5, 4.5]) == [0.0, 2.0, 4.0]

    def test_sample_carries_first_value_back(self):
        # Regression: a grid starting before the first observation used to
        # raise ValueError; carry-back now answers with the first value.
        s = StepSeries([(5.0, 7.0), (8.0, 2.0)])
        assert s.sample([0.0, 4.9, 5.0, 9.0]) == [7.0, 7.0, 7.0, 2.0]

    def test_sample_strict_mode_still_raises(self):
        s = StepSeries([(5.0, 7.0)])
        with pytest.raises(ValueError):
            s.sample([0.0], carry_back=False)

    def test_at_carry_back_opt_in(self):
        s = StepSeries([(5.0, 7.0)])
        assert s.at(0.0, carry_back=True) == 7.0
        with pytest.raises(ValueError):
            s.at(0.0)

    def test_iteration_and_accessors(self):
        pts = [(0.0, 1.0), (1.0, 2.0)]
        s = StepSeries(pts)
        assert list(s) == pts
        assert s.times == [0.0, 1.0]
        assert s.values == [1.0, 2.0]
        assert s.first_time() == 0.0
        assert s.last_time() == 1.0


class TestUniformGrid:
    def test_grid(self):
        assert uniform_grid(0.0, 10.0, 3) == [0.0, 5.0, 10.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_grid(0.0, 1.0, 1)
        with pytest.raises(ValueError):
            uniform_grid(1.0, 0.0, 3)
