"""Tests for the single-query PI baseline and its speed monitor."""

import pytest

from repro.core.single_query import SingleQueryProgressIndicator, SpeedMonitor


class TestSpeedMonitor:
    def test_needs_two_samples(self):
        m = SpeedMonitor()
        assert m.speed() is None
        m.observe(0.0, 0.0)
        assert m.speed() is None
        m.observe(1.0, 2.0)
        assert m.speed() == pytest.approx(2.0)

    def test_windowing_discards_old_speed(self):
        m = SpeedMonitor(window_seconds=5.0)
        # Fast at first (10 U/s), then slow (1 U/s).
        m.observe(0.0, 0.0)
        m.observe(1.0, 10.0)
        for t in range(2, 12):
            m.observe(float(t), 10.0 + (t - 1) * 1.0)
        # Window [6..11]: pure 1 U/s.
        assert m.speed() == pytest.approx(1.0, rel=0.2)

    def test_rejects_time_travel(self):
        m = SpeedMonitor()
        m.observe(5.0, 1.0)
        with pytest.raises(ValueError):
            m.observe(4.0, 2.0)

    def test_rejects_shrinking_work(self):
        m = SpeedMonitor()
        m.observe(0.0, 10.0)
        with pytest.raises(ValueError):
            m.observe(1.0, 5.0)

    def test_zero_speed_when_stalled(self):
        m = SpeedMonitor()
        m.observe(0.0, 5.0)
        m.observe(10.0, 5.0)
        assert m.speed() == pytest.approx(0.0)

    def test_bad_window(self):
        with pytest.raises(ValueError):
            SpeedMonitor(window_seconds=0.0)


class TestSingleQueryPI:
    def test_estimate_is_cost_over_speed(self):
        pi = SingleQueryProgressIndicator()
        pi.observe(0.0, 0.0)
        pi.observe(10.0, 20.0)  # 2 U/s
        est = pi.estimate(10.0, remaining_cost=40.0)
        assert est is not None
        assert est.remaining_seconds == pytest.approx(20.0)
        assert est.speed == pytest.approx(2.0)

    def test_no_estimate_before_speed_known(self):
        pi = SingleQueryProgressIndicator()
        assert pi.estimate(0.0, 10.0) is None
        pi.observe(0.0, 0.0)
        assert pi.estimate(0.0, 10.0) is None

    def test_no_estimate_at_zero_speed_with_work_left(self):
        pi = SingleQueryProgressIndicator()
        pi.observe(0.0, 5.0)
        pi.observe(1.0, 5.0)
        assert pi.estimate(1.0, 10.0) is None

    def test_zero_remaining_gives_zero(self):
        pi = SingleQueryProgressIndicator()
        pi.observe(0.0, 0.0)
        pi.observe(1.0, 1.0)
        est = pi.estimate(1.0, 0.0)
        assert est is not None
        assert est.remaining_seconds == 0.0

    def test_negative_cost_rejected(self):
        pi = SingleQueryProgressIndicator()
        with pytest.raises(ValueError):
            pi.estimate(0.0, -1.0)

    def test_last_estimate_retained(self):
        pi = SingleQueryProgressIndicator()
        assert pi.last_estimate is None
        pi.observe(0.0, 0.0)
        pi.observe(1.0, 1.0)
        pi.estimate(1.0, 10.0)
        assert pi.last_estimate is not None
        assert pi.last_estimate.remaining_seconds == pytest.approx(10.0)

    def test_tracks_load_change(self):
        """After a concurrent query 'finishes', the estimate shrinks."""
        pi = SingleQueryProgressIndicator(window_seconds=4.0)
        # Shared phase: 0.5 U/s.
        for t in range(0, 9):
            pi.observe(float(t), 0.5 * t)
        slow = pi.estimate(8.0, 100.0)
        # Alone now: 1 U/s from t=8 on.
        base = 4.0
        for t in range(9, 21):
            pi.observe(float(t), base + 1.0 * (t - 8))
        fast = pi.estimate(20.0, 88.0)
        assert slow is not None and fast is not None
        assert fast.remaining_seconds < slow.remaining_seconds
        assert fast.speed == pytest.approx(1.0, rel=0.05)
