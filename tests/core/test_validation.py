"""Tests for estimator input validation: NaN/inf/negative inputs fail loudly."""

import math

import pytest

from repro.core.forecast import AdaptiveForecaster, WorkloadForecast
from repro.core.model import QuerySnapshot
from repro.core.multi_query import MultiQueryProgressIndicator
from repro.core.projection import project
from repro.core.single_query import SingleQueryProgressIndicator, SpeedMonitor
from repro.core.standard_case import standard_case
from repro.core.validation import (
    finite_snapshots,
    validate_finite,
    validate_snapshots,
)
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS

NAN = float("nan")
INF = float("inf")


class TestValidateFinite:
    def test_accepts_ordinary_values(self):
        validate_finite(1.5, "x")
        validate_finite(0.0, "x", minimum=0.0)

    @pytest.mark.parametrize("bad", [NAN, INF, -INF])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValueError, match="x"):
            validate_finite(bad, "x")

    def test_enforces_minimum(self):
        with pytest.raises(ValueError):
            validate_finite(-0.1, "x", minimum=0.0)
        with pytest.raises(ValueError):
            validate_finite(0.0, "x", minimum=0.0, exclusive=True)

    def test_nan_cannot_sneak_past_a_range_check(self):
        # The reason this module exists: nan < 0 is False, so naive range
        # checks accept NaN. validate_finite must not.
        assert not (NAN < 0)
        with pytest.raises(ValueError):
            validate_finite(NAN, "x", minimum=0.0)


class TestValidateSnapshots:
    def test_accepts_clean_snapshots(self):
        validate_snapshots([QuerySnapshot("a", 10.0), QuerySnapshot("b", 0.0)])

    @pytest.mark.parametrize("bad", [NAN, INF, -1.0])
    def test_rejects_bad_remaining_cost(self, bad):
        with pytest.raises(ValueError, match="a"):
            validate_snapshots([QuerySnapshot("a", bad)])

    def test_rejects_bad_completed_work(self):
        with pytest.raises(ValueError):
            validate_snapshots([QuerySnapshot("a", 1.0, completed_work=NAN)])

    def test_finite_snapshots_filters_not_raises(self):
        good = QuerySnapshot("good", 10.0)
        kept = finite_snapshots([good, QuerySnapshot("bad", NAN)])
        assert list(kept) == [good]


class TestEstimatorsRejectCorruptInputs:
    def test_standard_case_rejects_nan_cost(self):
        with pytest.raises(ValueError):
            standard_case([QuerySnapshot("a", NAN)], 1.0)

    def test_standard_case_rejects_bad_rate(self):
        for bad in (0.0, -1.0, NAN, INF):
            with pytest.raises(ValueError):
                standard_case([QuerySnapshot("a", 10.0)], bad)

    def test_project_rejects_inf_cost(self):
        with pytest.raises(ValueError):
            project([QuerySnapshot("a", INF)], processing_rate=1.0)

    def test_multi_query_pi_rejects_corrupted_snapshot(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("q", 100))
        rdbms.corrupt_estimates(NAN)
        with pytest.raises(ValueError):
            MultiQueryProgressIndicator().estimate(rdbms.snapshot())

    def test_single_query_pi_rejects_nan_remaining(self):
        pi = SingleQueryProgressIndicator()
        pi.observe(0.0, 0.0)
        pi.observe(1.0, 2.0)
        with pytest.raises(ValueError):
            pi.estimate(2.0, NAN)

    def test_speed_monitor_rejects_nan_observation(self):
        monitor = SpeedMonitor()
        with pytest.raises(ValueError):
            monitor.observe(0.0, NAN)

    def test_workload_forecast_rejects_nan_rate(self):
        with pytest.raises(ValueError):
            WorkloadForecast(arrival_rate=NAN, average_cost=1.0, average_weight=1.0)

    def test_adaptive_forecaster_rejects_corrupt_arrival(self):
        prior = WorkloadForecast(
            arrival_rate=0.1, average_cost=10.0, average_weight=1.0
        )
        forecaster = AdaptiveForecaster(prior)
        with pytest.raises(ValueError):
            forecaster.observe_arrival(1.0, cost=INF)

    def test_clean_inputs_still_work(self):
        estimate = standard_case(
            [QuerySnapshot("a", 10.0), QuerySnapshot("b", 20.0)], 1.0
        )
        assert math.isfinite(estimate.remaining_times["b"])
