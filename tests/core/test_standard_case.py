"""Tests for the Section 2.2 standard-case stage algorithm."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import QuerySnapshot
from repro.core.standard_case import remaining_time_of, standard_case


def q(qid, cost, weight=1.0, done=0.0):
    return QuerySnapshot(qid, cost, completed_work=done, weight=weight)


class TestBasics:
    def test_empty(self):
        result = standard_case([], 1.0)
        assert result.remaining_times == {}
        assert result.finish_order == ()
        assert result.quiescent_time == 0.0

    def test_single_query(self):
        result = standard_case([q("a", 30)], 2.0)
        assert result.remaining_times["a"] == pytest.approx(15.0)
        assert result.finish_order == ("a",)

    def test_two_equal_queries_share_capacity(self):
        result = standard_case([q("a", 10), q("b", 10)], 1.0)
        # Both run at C/2 and finish together at 20s.
        assert result.remaining_times["a"] == pytest.approx(20.0)
        assert result.remaining_times["b"] == pytest.approx(20.0)

    def test_paper_figure1_example(self):
        # Four equal-priority queries; finish order follows remaining cost.
        result = standard_case(
            [q("Q1", 10), q("Q2", 20), q("Q3", 30), q("Q4", 40)], 1.0
        )
        assert result.finish_order == ("Q1", "Q2", "Q3", "Q4")
        assert result.remaining_times == pytest.approx(
            {"Q1": 40.0, "Q2": 70.0, "Q3": 90.0, "Q4": 100.0}
        )
        assert [s.duration for s in result.stages] == pytest.approx(
            [40.0, 30.0, 20.0, 10.0]
        )

    def test_weighted_speeds(self):
        # Weight-2 query runs twice as fast as weight-1.
        result = standard_case([q("fast", 10, weight=2.0), q("slow", 10)], 3.0)
        # Stage 1: fast at 2 U/s, slow at 1 U/s; fast finishes at t=5.
        assert result.remaining_times["fast"] == pytest.approx(5.0)
        # Slow then has 5 left, alone at 3 U/s: 5 + 5/3.
        assert result.remaining_times["slow"] == pytest.approx(5 + 5 / 3)

    def test_zero_cost_query_finishes_immediately(self):
        result = standard_case([q("empty", 0), q("busy", 10)], 1.0)
        assert result.remaining_times["empty"] == 0.0
        assert result.remaining_times["busy"] == pytest.approx(10.0)
        assert result.finish_order[0] == "empty"

    def test_stage_speeds_sum_to_rate(self):
        result = standard_case([q("a", 5), q("b", 15), q("c", 40)], 4.0)
        for stage in result.stages:
            assert sum(stage.speeds.values()) == pytest.approx(4.0)

    def test_stage_work_done(self):
        result = standard_case([q("a", 10), q("b", 20)], 1.0)
        s1 = result.stages[0]
        # During stage 1 both complete 10 U's.
        assert s1.work_done("a") == pytest.approx(10.0)
        assert s1.work_done("b") == pytest.approx(10.0)
        assert s1.work_done("missing") == 0.0

    def test_remaining_time_of(self):
        queries = [q("a", 10), q("b", 20)]
        assert remaining_time_of(queries, 1.0, "b") == pytest.approx(30.0)
        with pytest.raises(KeyError):
            remaining_time_of(queries, 1.0, "zzz")

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            standard_case([q("a", 1)], 0.0)
        with pytest.raises(ValueError):
            standard_case([q("a", 1)], -2.0)

    def test_deterministic_tie_break(self):
        result = standard_case([q("b", 10), q("a", 10)], 1.0)
        assert result.finish_order == ("a", "b")


@st.composite
def query_sets(draw, max_n=8):
    n = draw(st.integers(min_value=1, max_value=max_n))
    costs = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=1e4),
            min_size=n,
            max_size=n,
        )
    )
    weights = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=16.0),
            min_size=n,
            max_size=n,
        )
    )
    return [q(f"q{i}", c, w) for i, (c, w) in enumerate(zip(costs, weights))]


class TestProperties:
    @given(queries=query_sets(), rate=st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=120)
    def test_total_time_conserves_work(self, queries, rate):
        """The system drains exactly when total work / C has elapsed."""
        result = standard_case(queries, rate)
        total_work = sum(qq.remaining_cost for qq in queries)
        assert result.quiescent_time == pytest.approx(total_work / rate, rel=1e-6)

    @given(queries=query_sets())
    @settings(max_examples=120)
    def test_finish_order_matches_cost_weight_ratio(self, queries):
        result = standard_case(queries, 1.0)
        ratios = [
            next(qq for qq in queries if qq.query_id == qid).remaining_cost
            / next(qq for qq in queries if qq.query_id == qid).weight
            for qid in result.finish_order
        ]
        assert ratios == sorted(ratios)

    @given(queries=query_sets())
    @settings(max_examples=120)
    def test_remaining_times_nonnegative_and_ordered(self, queries):
        result = standard_case(queries, 2.0)
        times = [result.remaining_times[qid] for qid in result.finish_order]
        assert all(t >= 0 for t in times)
        assert times == sorted(times)

    @given(queries=query_sets())
    @settings(max_examples=120)
    def test_stage_work_adds_up_per_query(self, queries):
        """Summing each query's per-stage work reproduces its cost."""
        result = standard_case(queries, 1.5)
        for qq in queries:
            done = sum(s.work_done(qq.query_id) for s in result.stages)
            assert done == pytest.approx(qq.remaining_cost, rel=1e-6, abs=1e-6)

    @given(queries=query_sets(), factor=st.floats(min_value=0.5, max_value=4.0))
    @settings(max_examples=60)
    def test_rate_scaling(self, queries, factor):
        """Doubling C halves every remaining time."""
        base = standard_case(queries, 1.0)
        scaled = standard_case(queries, factor)
        for qid, t in base.remaining_times.items():
            assert scaled.remaining_times[qid] * factor == pytest.approx(
                t, rel=1e-6, abs=1e-9
            )

    @given(queries=query_sets(max_n=6))
    @settings(max_examples=60)
    def test_blocking_invariant(self, queries):
        """Removing a query never delays anyone (work-conserving sharing)."""
        if len(queries) < 2:
            return
        base = standard_case(queries, 1.0)
        removed = queries[0]
        rest = queries[1:]
        after = standard_case(rest, 1.0)
        for qq in rest:
            assert (
                after.remaining_times[qq.query_id]
                <= base.remaining_times[qq.query_id] + 1e-6
            )

    @given(queries=query_sets(max_n=6))
    @settings(max_examples=60)
    def test_blocked_savings_bounded_by_victim_remaining_time(self, queries):
        """Paper Section 3.1: blocking Q_m saves at most r_m for any query."""
        if len(queries) < 2:
            return
        base = standard_case(queries, 1.0)
        victim = queries[0]
        r_victim = base.remaining_times[victim.query_id]
        after = standard_case(queries[1:], 1.0)
        for qq in queries[1:]:
            saving = base.remaining_times[qq.query_id] - after.remaining_times[qq.query_id]
            assert saving <= r_victim + 1e-6


class TestStageFreeFastPath:
    @given(queries=query_sets(), rate=st.floats(min_value=0.1, max_value=50.0))
    @settings(max_examples=80)
    def test_matches_full_computation(self, queries, rate):
        """include_stages=False gives identical times, order, drain."""
        full = standard_case(queries, rate, include_stages=True)
        fast = standard_case(queries, rate, include_stages=False)
        assert fast.stages == ()
        assert fast.finish_order == full.finish_order
        assert fast.quiescent_time == pytest.approx(full.quiescent_time)
        for qid, t in full.remaining_times.items():
            assert fast.remaining_times[qid] == pytest.approx(t)

    def test_empty_fast_path(self):
        result = standard_case([], 1.0, include_stages=False)
        assert result.quiescent_time == 0.0


class TestAgainstNaiveSimulation:
    def _naive(self, queries, rate, dt=0.001):
        """Tiny-step Euler simulation of weighted fair sharing."""
        remaining = {qq.query_id: qq.remaining_cost for qq in queries}
        weights = {qq.query_id: qq.weight for qq in queries}
        finish = {}
        t = 0.0
        active = {k for k, v in remaining.items() if v > 0}
        for k in list(remaining):
            if remaining[k] <= 0:
                finish[k] = 0.0
        while active:
            total_w = sum(weights[k] for k in active)
            for k in list(active):
                remaining[k] -= rate * weights[k] / total_w * dt
            t += dt
            for k in list(active):
                if remaining[k] <= 0:
                    finish[k] = t
                    active.discard(k)
        return finish

    @pytest.mark.parametrize(
        "costs,weights",
        [
            ([3.0, 5.0], [1.0, 1.0]),
            ([2.0, 4.0, 8.0], [1.0, 2.0, 1.0]),
            ([1.0, 1.0, 1.0, 9.0], [4.0, 1.0, 2.0, 1.0]),
        ],
    )
    def test_matches_euler_simulation(self, costs, weights):
        queries = [q(f"q{i}", c, w) for i, (c, w) in enumerate(zip(costs, weights))]
        analytic = standard_case(queries, 1.0).remaining_times
        simulated = self._naive(queries, 1.0)
        for qid in analytic:
            assert analytic[qid] == pytest.approx(simulated[qid], abs=0.05)
