"""Unit tests for the shared incremental schedule (docs/PERFORMANCE.md).

The differential and metamorphic suites (test_incremental_vs_standard,
test_stage_metamorphic) cover equivalence with the Section 2.2 oracle;
this file covers the data structure's own contract: operations, errors,
time accounting, rebasing and determinism.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.incremental as incremental
from repro.core.incremental import IncrementalSchedule, incremental_schedule_of
from repro.core.model import QuerySnapshot
from repro.core.standard_case import standard_case


def q(qid, cost, weight=1.0):
    return QuerySnapshot(qid, cost, weight=weight)


class TestConstruction:
    def test_rejects_bad_rate(self):
        for rate in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                IncrementalSchedule(rate)

    def test_initial_queries_are_admitted(self):
        sched = IncrementalSchedule(2.0, [q("a", 10), q("b", 20)])
        assert len(sched) == 2
        assert "a" in sched and "b" in sched

    def test_convenience_constructor(self):
        sched = incremental_schedule_of([q("a", 5)], 1.0)
        assert sched.processing_rate == 1.0
        assert sched.remaining_time_of("a") == 5.0

    def test_empty_schedule(self):
        sched = IncrementalSchedule(1.0)
        assert len(sched) == 0
        assert sched.remaining_times() == {}
        assert sched.quiescent_time() == 0.0
        assert sched.next_finish() is None
        assert sched.query_ids() == ()


class TestStructuralOps:
    def test_duplicate_add_raises(self):
        sched = IncrementalSchedule(1.0, [q("a", 10)])
        with pytest.raises(ValueError, match="duplicate"):
            sched.add(q("a", 5))

    def test_add_rejects_corrupt_snapshot(self):
        sched = IncrementalSchedule(1.0)
        with pytest.raises(ValueError):
            sched.add(q("bad", float("nan")))
        with pytest.raises(ValueError):
            sched.add(q("bad", float("inf")))
        assert len(sched) == 0

    def test_remove_unknown_raises_keyerror(self):
        sched = IncrementalSchedule(1.0)
        with pytest.raises(KeyError, match="not scheduled"):
            sched.remove("ghost")
        with pytest.raises(KeyError):
            sched.remaining_time_of("ghost")

    def test_discard_is_idempotent(self):
        sched = IncrementalSchedule(1.0, [q("a", 10)])
        assert sched.discard("a") is True
        assert sched.discard("a") is False
        assert len(sched) == 0

    def test_reweight_keeps_cost(self):
        sched = IncrementalSchedule(1.0, [q("a", 10, weight=1.0)])
        sched.reweight("a", 4.0)
        assert sched.weight_of("a") == 4.0
        assert sched.remaining_cost_of("a") == pytest.approx(10.0)
        # Alone in the system, weight does not change its remaining time.
        assert sched.remaining_time_of("a") == pytest.approx(10.0)

    def test_reweight_validates(self):
        sched = IncrementalSchedule(1.0, [q("a", 10)])
        with pytest.raises(ValueError):
            sched.reweight("a", 0.0)
        with pytest.raises(KeyError):
            sched.reweight("ghost", 2.0)

    def test_set_remaining_re_pins_cost(self):
        sched = IncrementalSchedule(2.0, [q("a", 10)])
        sched.advance(1.0)
        sched.set_remaining("a", 100.0)
        assert sched.remaining_cost_of("a") == pytest.approx(100.0)
        assert sched.remaining_time_of("a") == pytest.approx(50.0)


class TestReadPath:
    def test_single_query_is_c_over_rate(self):
        sched = IncrementalSchedule(4.0, [q("a", 10)])
        assert sched.remaining_time_of("a") == pytest.approx(2.5)
        assert sched.quiescent_time() == pytest.approx(2.5)

    def test_two_query_stages_by_hand(self):
        # c/w ratios: a=10, b=30.  Stage 1: both run, total weight 2,
        # a finishes at 10*2/1 = 20s.  Then b alone: 20 units left at
        # full rate -> b at 40s.
        sched = IncrementalSchedule(1.0, [q("a", 10), q("b", 30)])
        assert sched.remaining_time_of("a") == pytest.approx(20.0)
        assert sched.remaining_time_of("b") == pytest.approx(40.0)
        assert sched.remaining_times() == pytest.approx({"a": 20.0, "b": 40.0})
        assert sched.finish_order() == ("a", "b")

    def test_tie_break_by_query_id(self):
        sched = IncrementalSchedule(
            1.0, [q("z", 5), q("a", 5), q("m", 5)]
        )
        assert sched.finish_order() == ("a", "m", "z")

    def test_zero_cost_query_finishes_immediately(self):
        sched = IncrementalSchedule(1.0, [q("zero", 0.0), q("b", 10)])
        assert sched.remaining_time_of("zero") == 0.0
        finished = sched.advance(0.0)
        assert [qid for _, qid in finished] == ["zero"]
        assert "zero" not in sched and "b" in sched

    def test_next_finish(self):
        sched = IncrementalSchedule(1.0, [q("a", 10), q("b", 30)])
        dt, qid = sched.next_finish()
        assert qid == "a"
        assert dt == pytest.approx(20.0)

    def test_snapshots_round_trip_through_oracle(self):
        sched = IncrementalSchedule(
            3.0, [q("a", 7, 2.0), q("b", 11, 1.0), q("c", 2, 4.0)]
        )
        sched.advance(0.5)
        snaps = sched.snapshots()
        ref = standard_case(snaps, 3.0, include_stages=False)
        for qid, expected in ref.remaining_times.items():
            assert sched.remaining_time_of(qid) == pytest.approx(
                expected, rel=1e-9, abs=1e-9
            )


class TestAdvance:
    def test_advance_validates(self):
        sched = IncrementalSchedule(1.0, [q("a", 10)])
        with pytest.raises(ValueError):
            sched.advance(-1.0)
        with pytest.raises(ValueError):
            sched.advance(float("nan"))

    def test_completions_at_exact_times(self):
        sched = IncrementalSchedule(1.0, [q("a", 10), q("b", 30)])
        finished = sched.advance(100.0)
        assert [qid for _, qid in finished] == ["a", "b"]
        times = dict((qid, t) for t, qid in finished)
        assert times["a"] == pytest.approx(20.0)
        assert times["b"] == pytest.approx(40.0)

    def test_partial_advance_accumulates_time(self):
        sched = IncrementalSchedule(1.0, [q("a", 10), q("b", 30)])
        assert sched.advance(5.0) == []
        assert sched.time == pytest.approx(5.0)
        # 5s at weight share 1/2 consumed 2.5 units of a's 10.
        assert sched.remaining_cost_of("a") == pytest.approx(7.5)
        assert sched.remaining_time_of("a") == pytest.approx(15.0)

    def test_idle_time_passes_after_drain(self):
        sched = IncrementalSchedule(1.0, [q("a", 10)])
        sched.advance(25.0)
        assert len(sched) == 0
        assert sched.time == pytest.approx(25.0)
        assert sched.virtual_time == 0.0  # drained: clock rebases free
        # The schedule is reusable after draining.
        sched.add(q("b", 5))
        assert sched.remaining_time_of("b") == pytest.approx(5.0)

    def test_interleaved_advance_matches_one_shot(self):
        queries = [q("a", 13, 2.0), q("b", 29, 1.0), q("c", 5, 4.0)]
        one = IncrementalSchedule(2.0, queries)
        many = IncrementalSchedule(2.0, queries)
        whole = one.advance(50.0)
        parts = []
        for _ in range(50):
            parts.extend(many.advance(1.0))
        assert [qid for _, qid in whole] == [qid for _, qid in parts]
        for (t1, _), (t2, _) in zip(whole, parts):
            assert t1 == pytest.approx(t2, rel=1e-9, abs=1e-9)


class TestRebase:
    def test_rebase_preserves_estimates(self):
        sched = IncrementalSchedule(
            1.0, [q("a", 10, 2.0), q("b", 20, 1.0), q("c", 30, 4.0)]
        )
        sched.advance(3.0)
        before = sched.remaining_times()
        order = sched.finish_order()
        sched.rebase()
        assert sched.virtual_time == 0.0
        assert sched.finish_order() == order
        after = sched.remaining_times()
        for qid in before:
            assert after[qid] == pytest.approx(before[qid], rel=1e-12)

    def test_rebase_on_empty_or_fresh_is_noop(self):
        sched = IncrementalSchedule(1.0)
        sched.rebase()
        sched.add(q("a", 5))
        sched.rebase()
        assert sched.remaining_time_of("a") == 5.0

    def test_auto_rebase_keeps_resolution(self):
        # A near-zero weight makes virtual time grow explosively once the
        # query runs alone (dV/dt = C/W): V overshoots the rebase
        # threshold while "slow" is still live, so advance() must rebase.
        sched = IncrementalSchedule(
            1.0, [q("b", 1.0), QuerySnapshot("slow", 0.5, weight=1e-16)]
        )
        finished = sched.advance(1.2)
        assert [qid for _, qid in finished] == ["b"]
        assert "slow" in sched
        assert sched.virtual_time == 0.0  # auto-rebased
        assert sched.remaining_time_of("slow") == pytest.approx(0.3, rel=1e-6)


_QUERY_SPECS = st.lists(
    st.tuples(
        st.floats(min_value=0.5, max_value=50.0),  # cost
        st.floats(min_value=0.25, max_value=4.0),  # weight
    ),
    min_size=1,
    max_size=6,
)
_STEPS = st.lists(
    st.floats(min_value=0.1, max_value=5.0), min_size=1, max_size=5
)


class TestRebaseTransparency:
    """The rebase behind ``_AUTO_REBASE_AT`` must be invisible to readers."""

    @given(specs=_QUERY_SPECS, steps=_STEPS)
    @settings(max_examples=50)
    def test_explicit_rebase_leaves_reads_unchanged(self, specs, steps):
        sched = IncrementalSchedule(
            2.0, [q(f"q{i}", c, w) for i, (c, w) in enumerate(specs)]
        )
        for dt in steps:
            sched.advance(dt)
        before_rt = sched.remaining_times()
        before_order = sched.finish_order()
        before_quiet = sched.quiescent_time()
        sched.rebase()
        assert sched.virtual_time == 0.0
        assert sched.finish_order() == before_order
        assert sched.quiescent_time() == pytest.approx(
            before_quiet, rel=1e-9, abs=1e-9
        )
        after = sched.remaining_times()
        assert after.keys() == before_rt.keys()
        for qid, rt in before_rt.items():
            assert after[qid] == pytest.approx(rt, rel=1e-9, abs=1e-9)

    @given(specs=_QUERY_SPECS, steps=_STEPS)
    @settings(max_examples=50)
    def test_auto_rebase_every_advance_matches_lazy_schedule(
        self, specs, steps
    ):
        # Force the _AUTO_REBASE_AT trigger after every advance on one twin
        # and leave the other at the (unreachable here) default: completions
        # and remaining-time reads must agree to 1e-9 throughout.
        def build():
            return IncrementalSchedule(
                2.0, [q(f"q{i}", c, w) for i, (c, w) in enumerate(specs)]
            )

        eager, lazy = build(), build()
        saved = incremental._AUTO_REBASE_AT
        eager_fin = []
        try:
            incremental._AUTO_REBASE_AT = 0.0
            for dt in steps:
                eager_fin.extend(eager.advance(dt))
        finally:
            incremental._AUTO_REBASE_AT = saved
        lazy_fin = []
        for dt in steps:
            lazy_fin.extend(lazy.advance(dt))
        assert [i for _, i in eager_fin] == [i for _, i in lazy_fin]
        for (ta, _), (tb, _) in zip(eager_fin, lazy_fin):
            assert ta == pytest.approx(tb, rel=1e-9, abs=1e-9)
        lazy_rt = lazy.remaining_times()
        eager_rt = eager.remaining_times()
        assert eager_rt.keys() == lazy_rt.keys()
        for qid, rt in lazy_rt.items():
            assert eager_rt[qid] == pytest.approx(rt, rel=1e-9, abs=1e-9)


class TestDeterminism:
    def test_same_ops_give_identical_floats(self):
        def build():
            sched = IncrementalSchedule(3.0)
            for i in range(40):
                sched.add(QuerySnapshot(f"q{i}", 7.0 + 13 * (i % 5), weight=1 + i % 3))
            sched.advance(2.5)
            for i in range(0, 40, 4):
                sched.discard(f"q{i}")
            sched.advance(1.25)
            return sched

        a, b = build(), build()
        assert a.remaining_times() == b.remaining_times()  # bit-identical
        assert a.finish_order() == b.finish_order()
        assert a.virtual_time == b.virtual_time

    def test_len_contains_weight_sum(self):
        sched = IncrementalSchedule(1.0, [q("a", 1, 2.0), q("b", 2, 3.0)])
        assert len(sched) == 2
        assert "a" in sched and "nope" not in sched
        assert sched.total_weight == pytest.approx(5.0)
        assert math.isfinite(sched.quiescent_time())
