"""Documentation accuracy: the README's code blocks actually run."""

import pathlib
import re

import pytest

README = pathlib.Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_readme_exists_with_expected_sections(self):
        text = README.read_text()
        for heading in ("## Installation", "## Quickstart", "## Architecture",
                        "## Testing"):
            assert heading in text

    def test_python_blocks_execute(self):
        blocks = python_blocks()
        assert blocks, "README should contain python examples"
        for block in blocks:
            exec(compile(block, "README.md", "exec"), {})  # noqa: S102

    def test_quickstart_numbers_are_accurate(self):
        """The quickstart promises specific numbers; hold the docs to them."""
        from repro import MultiQueryProgressIndicator, SimulatedRDBMS, SyntheticJob

        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("small-1", cost=100))
        rdbms.submit(SyntheticJob("small-2", cost=200))
        rdbms.submit(SyntheticJob("big", cost=900))
        snapshot = rdbms.snapshot()
        multi = MultiQueryProgressIndicator().estimate(snapshot).for_query("big")
        single = snapshot.find("big").remaining_cost / (10.0 / 3)
        assert multi == pytest.approx(120.0)
        assert single == pytest.approx(270.0)
        rdbms.run_to_completion()
        assert rdbms.traces["big"].finished_at == pytest.approx(120.0)

    def test_documented_cli_commands_exist(self):
        from repro.cli import build_parser

        parser = build_parser()
        text = README.read_text()
        for command in ("demo", "sql", "shell", "experiment", "report"):
            assert command in text
            # parse a representative invocation without executing it
            if command == "demo":
                parser.parse_args(["demo"])
            elif command == "sql":
                parser.parse_args(["sql", "SELECT 1"])
            elif command == "shell":
                parser.parse_args(["shell"])
            elif command == "experiment":
                parser.parse_args(["experiment", "mcq"])
            else:
                parser.parse_args(["report"])
