"""Tests for the table partitioners."""

import pytest

from repro.dist.partition import (
    BlockPartitioner,
    HashPartitioner,
    RangePartitioner,
)

ROWS = [(i, float(i) * 1.5) for i in range(10)]


class TestBlockPartitioner:
    def test_contiguous_and_balanced(self):
        assign = BlockPartitioner().assign(ROWS, 3)
        assert assign == [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_order_preserving_flag(self):
        assert BlockPartitioner.order_preserving is True

    def test_single_shard(self):
        assert BlockPartitioner().assign(ROWS, 1) == [0] * len(ROWS)

    def test_fewer_rows_than_shards(self):
        assert BlockPartitioner().assign(ROWS[:2], 4) == [0, 1]

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            BlockPartitioner().assign(ROWS, 0)


class TestHashPartitioner:
    def test_deterministic_across_instances(self):
        a = HashPartitioner(0).assign(ROWS, 4)
        b = HashPartitioner(0).assign(ROWS, 4)
        assert a == b

    def test_same_key_same_shard(self):
        rows = [(7, 1.0), (7, 2.0), (7, 3.0)]
        assign = HashPartitioner(0).assign(rows, 4)
        assert len(set(assign)) == 1

    def test_not_order_preserving(self):
        assert HashPartitioner.order_preserving is False

    def test_all_shards_in_range(self):
        assign = HashPartitioner(0).assign(ROWS, 3)
        assert all(0 <= s < 3 for s in assign)

    def test_rejects_bad_column(self):
        with pytest.raises(ValueError):
            HashPartitioner(-1)
        with pytest.raises(ValueError):
            HashPartitioner(5).assign(ROWS, 2)


class TestRangePartitioner:
    def test_splits_at_boundaries(self):
        part = RangePartitioner(0, [3, 7])
        assert part.assign(ROWS, 3) == [0, 0, 0, 1, 1, 1, 1, 2, 2, 2]

    def test_boundary_count_must_match_shards(self):
        with pytest.raises(ValueError):
            RangePartitioner(0, [5]).assign(ROWS, 3)

    def test_rejects_unsorted_or_empty_boundaries(self):
        with pytest.raises(ValueError):
            RangePartitioner(0, [])
        with pytest.raises(ValueError):
            RangePartitioner(0, [5, 3])
        with pytest.raises(ValueError):
            RangePartitioner(0, [3, 3])

    def test_describe_mentions_scheme(self):
        assert "range" in RangePartitioner(1, [10.0]).describe()
        assert "hash" in HashPartitioner(2).describe()
        assert "block" in BlockPartitioner().describe()
