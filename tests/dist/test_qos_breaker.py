"""Cluster-side circuit breakers and overload acceptance (-m overload).

The router wires a :class:`~repro.qos.breaker.BreakerBoard` into routing
and failover: consecutive sub-query failures on a node trip its breaker
open, routing prefers replicas with closed breakers, and failover retry
delays stretch to the breaker cooldown while every replica is refusing.
The storm acceptance test at the bottom is the ISSUE's combined
NodeCrash + ArrivalBurst scenario.
"""

import math

import pytest

from repro.dist import ClusterFaultInjector, ShardedCluster, load_tpcr
from repro.faults.plan import ArrivalBurst, FaultPlan, NodeCrash
from repro.qos.breaker import BreakerConfig
from repro.workload.tpcr import TpcrConfig, generate

SMALL = TpcrConfig(scale=1 / 8000, seed=0)
PART_SIZES = {1: 4}


def build_cluster(**kwargs) -> ShardedCluster:
    defaults = dict(
        n_shards=4, replication=2, processing_rate=10.0,
        checkpoint_interval=0.25,
    )
    defaults.update(kwargs)
    cluster = ShardedCluster(**defaults)
    load_tpcr(cluster, config=SMALL, part_sizes=PART_SIZES)
    return cluster


def run_to_quiescence(cluster, step=0.5, limit=2000.0):
    t = cluster.clock
    while not all(dq.terminal for dq in cluster.queries().values()):
        t += step
        assert t < limit, "cluster failed to quiesce"
        cluster.run_until(t)


class TestBreakerWiring:
    def test_cluster_has_a_breaker_per_node_lazily(self):
        cluster = build_cluster()
        b = cluster.breakers.for_node("node0")
        assert b.state == "closed"
        assert cluster.breakers.for_node("node0") is b

    def test_custom_breaker_config_is_used(self):
        cluster = build_cluster(
            breaker_config=BreakerConfig(failure_threshold=7, cooldown=99.0)
        )
        assert cluster.breakers.for_node("node0").config.cooldown == 99.0

    def test_node_crash_trips_the_breaker(self):
        cluster = build_cluster(
            breaker_config=BreakerConfig(failure_threshold=2, cooldown=5.0)
        )
        # Several multi-shard queries put >= threshold sub-queries on
        # every node; the crash fails them all at once.
        for i in range(3):
            cluster.submit(f"q{i}", "SELECT * FROM lineitem")
        ClusterFaultInjector(
            cluster, FaultPlan.of(NodeCrash("node1", at=1.0))
        ).arm()
        cluster.run_until(1.5)
        assert cluster.breakers.for_node("node1").state == "open"
        assert "node1" in cluster.breakers.open_nodes()

    def test_routing_skips_an_open_breaker(self):
        cluster = build_cluster(
            breaker_config=BreakerConfig(failure_threshold=1, cooldown=1e5)
        )
        # Trip node0's breaker by hand, then scatter a query: no fresh
        # sub-query may land on node0 while a closed-breaker replica
        # exists for its shards.
        cluster.breakers.for_node("node0").record_failure(cluster.clock)
        dq = cluster.submit("q0", "SELECT * FROM lineitem")
        placed = {sub.node_id for sub in dq.subqueries.values()}
        assert "node0" not in placed

    def test_queries_survive_crash_with_breakers_on(self):
        cluster = build_cluster(
            breaker_config=BreakerConfig(failure_threshold=2, cooldown=2.0)
        )
        for i in range(3):
            cluster.submit(f"q{i}", "SELECT * FROM lineitem")
        ClusterFaultInjector(
            cluster, FaultPlan.of(NodeCrash("node1", at=1.0))
        ).arm()
        run_to_quiescence(cluster)
        single = generate(SMALL, part_sizes=PART_SIZES).db
        expected = single.query("SELECT * FROM lineitem")
        for i in range(3):
            assert cluster.query(f"q{i}").finished
            assert cluster.result_rows(f"q{i}") == expected


class TestDistPiGauges:
    def test_staleness_and_degraded_gauges_published(self):
        from repro.obs import Observability

        obs = Observability()
        cluster = build_cluster(obs=obs)
        cluster.submit("q0", "SELECT * FROM lineitem")
        ClusterFaultInjector(
            cluster, FaultPlan.of(NodeCrash("node1", at=1.0))
        ).arm()
        cluster.run_until(0.5)
        # Healthy: nothing degraded, nothing stale.
        assert obs.metrics.gauge("dist.pi.degraded_shards").value == 0
        assert obs.metrics.gauge("dist.pi.staleness_max").value == 0.0
        cluster.run_until(1.2)
        # Right after the crash at least one shard is carried back; its
        # staleness is visible in the gauge without walking snapshots.
        assert obs.metrics.gauge("dist.pi.degraded_shards").value >= 1
        assert obs.metrics.gauge("dist.pi.staleness_max").value > 0.0
        run_to_quiescence(cluster)
        assert obs.metrics.gauge("dist.pi.degraded_shards").value == 0

    def test_gauges_match_aggregator_accessors(self):
        cluster = build_cluster()
        agg = cluster.aggregator
        assert agg.degraded_count() == 0
        assert agg.max_staleness(0.0) == 0.0
        agg.register("q", 0, 5.0, now=1.0)
        agg.mark_degraded("q", 0)
        assert agg.degraded_count() == 1
        assert agg.max_staleness(4.0) == pytest.approx(3.0)
        agg.mark_done("q", 0, now=5.0)
        assert agg.degraded_count() == 0
        assert agg.max_staleness(9.0) == 0.0


class TestClusterBurstArming:
    def test_synthetic_burst_rejected_by_cluster_injector(self):
        cluster = build_cluster()
        plan = FaultPlan.of(ArrivalBurst(at=1.0, n=3, cost=10.0))
        with pytest.raises(ValueError, match="sql"):
            ClusterFaultInjector(cluster, plan).arm()

    def test_sql_burst_submits_distributed_queries(self):
        cluster = build_cluster()
        plan = FaultPlan.of(
            ArrivalBurst(at=1.0, n=3, sql="SELECT COUNT(*) FROM lineitem")
        )
        ClusterFaultInjector(cluster, plan).arm()
        cluster.run_until(1.5)  # past the burst instant
        run_to_quiescence(cluster)
        for i in range(3):
            assert cluster.query(f"burst{i}").finished


@pytest.mark.overload
class TestStormAcceptance:
    """ISSUE acceptance: NodeCrash + ArrivalBurst, >= 80% work preserved."""

    @pytest.fixture(scope="class")
    def run(self):
        cluster = build_cluster(
            breaker_config=BreakerConfig(failure_threshold=3, cooldown=2.0)
        )
        for i in range(2):
            cluster.submit(f"base{i}", "SELECT * FROM lineitem")
        plan = FaultPlan.of(
            ArrivalBurst(
                at=0.5, n=6, spread=1.0,
                sql="SELECT partkey, SUM(quantity) FROM lineitem "
                    "GROUP BY partkey ORDER BY partkey",
            ),
            NodeCrash("node1", at=2.0, down_for=15.0),
        )
        injector = ClusterFaultInjector(cluster, plan)
        injector.arm()
        pi_trace = []
        t = 0.0
        while not all(dq.terminal for dq in cluster.queries().values()):
            t += 0.5
            assert t < 2000.0, "cluster failed to quiesce"
            cluster.run_until(t)
            pi_trace.append(cluster.estimates())
        return cluster, injector, pi_trace

    def test_storm_fired_and_crash_fired(self, run):
        _, injector, _ = run
        kinds = [e.kind for e in injector.log]
        assert "burst-begin" in kinds
        assert "node-crash" in kinds

    def test_every_query_finishes_correctly(self, run):
        cluster, _, _ = run
        single = generate(SMALL, part_sizes=PART_SIZES).db
        for qid, dq in cluster.queries().items():
            assert dq.finished, f"{qid}: {dq.error}"
            assert cluster.result_rows(qid) == single.query(dq.sql)

    def test_at_least_80_percent_work_preserved(self, run):
        cluster, _, _ = run
        assert cluster.failovers >= 1
        total = cluster.work_preserved + cluster.work_lost
        assert total > 0.0
        assert cluster.work_preserved / total >= 0.80

    def test_global_pi_finite_at_every_epoch(self, run):
        _, _, pi_trace = run
        assert pi_trace
        for estimates in pi_trace:
            for est in estimates.values():
                assert math.isfinite(est.remaining_seconds)
                for contrib in est.shards.values():
                    assert math.isfinite(contrib.remaining_seconds)
                    assert math.isfinite(contrib.staleness)
