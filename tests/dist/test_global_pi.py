"""Tests for the fault-tolerant global progress aggregator.

The robustness contract: the global estimate is always finite, degraded
shards carry back their last finite value with explicit staleness, and a
rejected (NaN/inf/negative) report never poisons the rollup.
"""

import math

import pytest

from repro.dist.global_pi import GlobalProgressAggregator


def make_agg() -> GlobalProgressAggregator:
    agg = GlobalProgressAggregator()
    agg.register("Q", 0, 10.0, now=0.0)
    agg.register("Q", 1, 20.0, now=0.0)
    return agg


class TestRegistration:
    def test_initial_estimate_is_served_immediately(self):
        est = make_agg().estimate("Q", 0.0)
        assert est.remaining_seconds == 20.0
        assert est.shards[0].remaining_seconds == 10.0
        assert not est.degraded

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_rejects_non_finite_initial(self, bad):
        with pytest.raises(ValueError):
            GlobalProgressAggregator().register("Q", 0, bad, now=0.0)

    def test_rejects_duplicate_shard(self):
        agg = make_agg()
        with pytest.raises(ValueError):
            agg.register("Q", 0, 5.0, now=0.0)

    def test_unknown_query_raises(self):
        with pytest.raises(KeyError):
            GlobalProgressAggregator().estimate("ghost", 0.0)


class TestReports:
    def test_global_is_slowest_shard(self):
        agg = make_agg()
        agg.report("Q", 0, 8.0, now=1.0)
        agg.report("Q", 1, 15.0, now=1.0)
        est = agg.estimate("Q", 1.0)
        assert est.remaining_seconds == 15.0
        assert est.slowest_shard == 1

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -2.0])
    def test_garbage_report_rejected_and_degrades(self, bad):
        agg = make_agg()
        agg.report("Q", 0, 8.0, now=1.0)
        assert agg.report("Q", 0, bad, now=2.0) is False
        est = agg.estimate("Q", 5.0)
        # Last finite value carried back, flagged, staleness exposed.
        assert est.shards[0].remaining_seconds == 8.0
        assert est.shards[0].degraded
        assert est.shards[0].staleness == pytest.approx(4.0)
        assert math.isfinite(est.remaining_seconds)

    def test_fresh_report_clears_degraded(self):
        agg = make_agg()
        agg.report("Q", 0, float("nan"), now=1.0)
        assert agg.estimate("Q", 1.0).shards[0].degraded
        agg.report("Q", 0, 6.0, now=2.0)
        contrib = agg.estimate("Q", 2.0).shards[0]
        assert not contrib.degraded and contrib.staleness == 0.0

    def test_fresh_contribution_has_zero_staleness(self):
        agg = make_agg()
        agg.report("Q", 0, 8.0, now=1.0)
        assert agg.estimate("Q", 50.0).shards[0].staleness == 0.0


class TestLifecycle:
    def test_mark_degraded_carries_back(self):
        agg = make_agg()
        agg.report("Q", 1, 12.0, now=2.0)
        agg.mark_degraded("Q", 1)
        contrib = agg.estimate("Q", 10.0).shards[1]
        assert contrib.degraded
        assert contrib.remaining_seconds == 12.0
        assert contrib.staleness == pytest.approx(8.0)

    def test_mark_done_is_final(self):
        agg = make_agg()
        agg.mark_done("Q", 0, now=3.0)
        assert agg.report("Q", 0, 99.0, now=4.0) is False
        agg.mark_degraded("Q", 0)
        contrib = agg.estimate("Q", 9.0).shards[0]
        assert contrib.remaining_seconds == 0.0 and not contrib.degraded

    def test_all_done_means_zero_remaining(self):
        agg = make_agg()
        agg.mark_done("Q", 0, now=3.0)
        agg.mark_done("Q", 1, now=4.0)
        assert agg.estimate("Q", 5.0).remaining_seconds == 0.0

    def test_move_shard_stays_degraded_until_live_report(self):
        agg = make_agg()
        agg.move_shard("Q", 0, 25.0, now=5.0)
        contrib = agg.estimate("Q", 5.0).shards[0]
        assert contrib.remaining_seconds == 25.0 and contrib.degraded
        agg.report("Q", 0, 24.0, now=6.0)
        assert not agg.estimate("Q", 6.0).shards[0].degraded

    def test_move_shard_requires_finite(self):
        with pytest.raises(ValueError):
            make_agg().move_shard("Q", 0, float("inf"), now=5.0)

    def test_forget_drops_query(self):
        agg = make_agg()
        agg.forget("Q")
        assert agg.query_ids() == ()
        with pytest.raises(KeyError):
            agg.estimate("Q", 0.0)


class TestAlwaysFinite:
    def test_never_nan_under_garbage_storm(self):
        agg = make_agg()
        for t in range(1, 30):
            agg.report("Q", 0, float("nan"), now=float(t))
            agg.report("Q", 1, float("inf"), now=float(t))
            est = agg.estimate("Q", float(t))
            assert math.isfinite(est.remaining_seconds)
            assert all(
                math.isfinite(c.remaining_seconds)
                for c in est.shards.values()
            )
            assert est.degraded
