"""Tests for the cluster metadata service."""

import pytest

from repro.dist.catalog import ShardCatalog
from repro.dist.partition import BlockPartitioner


def make_catalog() -> ShardCatalog:
    cat = ShardCatalog()
    for nid in ("node0", "node1", "node2"):
        cat.register_node(nid)
    cat.register_table("t", "CREATE TABLE t (x INT)", BlockPartitioner())
    cat.place_fragment("t", 0, ("node0", "node1"), (0, 1, 2))
    cat.place_fragment("t", 1, ("node1", "node2"), (3, 4))
    return cat


class TestNodes:
    def test_register_is_idempotent(self):
        cat = ShardCatalog()
        first = cat.register_node("n")
        assert cat.register_node("n") is first
        assert cat.node_ids() == ("n",)

    def test_rejects_empty_id(self):
        with pytest.raises(ValueError):
            ShardCatalog().register_node("")

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError):
            ShardCatalog().node("ghost")

    def test_health_transitions(self):
        cat = make_catalog()
        assert cat.serving_nodes() == ("node0", "node1", "node2")
        cat.mark_down("node0")
        assert not cat.node("node0").serving
        cat.mark_unreachable("node1")
        assert cat.node("node1").up  # partitioned, not dead
        assert cat.serving_nodes() == ("node2",)
        cat.mark_up("node0")
        cat.mark_reachable("node1")
        assert cat.serving_nodes() == ("node0", "node1", "node2")


class TestPlacement:
    def test_primary_is_first_serving_replica(self):
        cat = make_catalog()
        assert cat.primary_for("t", 0) == "node0"
        cat.mark_down("node0")
        assert cat.primary_for("t", 0) == "node1"

    def test_primary_none_when_chain_dead(self):
        cat = make_catalog()
        cat.mark_down("node0")
        cat.mark_unreachable("node1")
        assert cat.primary_for("t", 0) is None

    def test_positions_round_trip(self):
        cat = make_catalog()
        assert cat.positions_for("t", 0) == (0, 1, 2)
        assert cat.positions_for("t", 1) == (3, 4)

    def test_replica_chain(self):
        assert make_catalog().replicas_for("t", 1) == ("node1", "node2")

    def test_unknown_shard_raises(self):
        with pytest.raises(KeyError):
            make_catalog().replicas_for("t", 9)

    def test_placement_requires_known_nodes(self):
        cat = make_catalog()
        with pytest.raises(KeyError):
            cat.place_fragment("t", 2, ("ghost",), ())
        with pytest.raises(ValueError):
            cat.place_fragment("t", 2, (), ())

    def test_duplicate_table_rejected(self):
        cat = make_catalog()
        with pytest.raises(ValueError):
            cat.register_table("t", "ddl", BlockPartitioner())

    def test_add_index_appends(self):
        cat = make_catalog()
        cat.add_index("t", "CREATE INDEX i ON t (x)")
        assert cat.table("t").index_ddls == ("CREATE INDEX i ON t (x)",)

    def test_describe_shows_layout_and_health(self):
        cat = make_catalog()
        cat.mark_down("node2")
        text = cat.describe()
        assert "node node2: down" in text
        assert "table t" in text
        assert "shard 0: 3 rows on node0 -> node1" in text
