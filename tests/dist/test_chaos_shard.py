"""Cluster chaos acceptance gate (run with ``-m chaos``).

The PR's robustness contract, executed literally: a seeded node crash on
a 4-shard cluster must leave every distributed query finishing with
results byte-identical to a no-fault single-node run, with at least 80%
of checkpointed work preserved across failover, a global PI that is
never NaN/inf at any epoch, and degraded flags on the shards the dead
node was serving while they were down.
"""

import math

import pytest

from repro.dist import (
    ClusterFaultInjector,
    ShardedCluster,
    load_tpcr,
)
from repro.faults.plan import FaultPlan, NetworkPartition, NodeCrash
from repro.workload.tpcr import TpcrConfig, generate

pytestmark = pytest.mark.chaos

SMALL = TpcrConfig(scale=1 / 8000, seed=0)
PART_SIZES = {1: 4}

QUERIES = {
    "scan": "SELECT * FROM lineitem",
    "filter": "SELECT * FROM lineitem WHERE partkey > 5",
    "group": "SELECT partkey, SUM(quantity) FROM lineitem "
             "GROUP BY partkey ORDER BY partkey",
    "join": "SELECT p.partkey, SUM(l.extendedprice) FROM part_1 p, "
            "lineitem l WHERE p.partkey = l.partkey "
            "GROUP BY p.partkey ORDER BY p.partkey",
}


def build_cluster() -> ShardedCluster:
    # Small checkpoint interval: the work-preservation floor below is a
    # direct function of checkpoint cadence vs node throughput.
    cluster = ShardedCluster(
        n_shards=4, replication=2, processing_rate=10.0,
        checkpoint_interval=0.25,
    )
    load_tpcr(cluster, config=SMALL, part_sizes=PART_SIZES)
    return cluster


class TestSingleNodeCrashGate:
    """The acceptance checklist for one seeded mid-flight node crash."""

    @pytest.fixture(scope="class")
    def run(self):
        cluster = build_cluster()
        for qid, sql in QUERIES.items():
            cluster.submit(qid, sql)
        injector = ClusterFaultInjector(
            cluster, FaultPlan.of(NodeCrash("node1", at=2.0))
        )
        injector.arm()
        pi_trace = []  # (time, {qid: estimate}) at every sampled epoch
        t = 0.0
        while not all(dq.terminal for dq in cluster.queries().values()):
            t += 0.5
            assert t < 2000.0, "cluster failed to quiesce"
            cluster.run_until(t)
            pi_trace.append((t, cluster.estimates()))
        return cluster, injector, pi_trace

    def test_every_query_finishes(self, run):
        cluster, _, _ = run
        for qid in QUERIES:
            assert cluster.query(qid).finished, cluster.query(qid).error

    def test_results_byte_identical_to_single_node(self, run):
        cluster, _, _ = run
        single = generate(SMALL, part_sizes=PART_SIZES).db
        for qid, sql in QUERIES.items():
            assert cluster.result_rows(qid) == single.query(sql)

    def test_at_least_80_percent_work_preserved(self, run):
        cluster, _, _ = run
        assert cluster.failovers >= 1
        total = cluster.work_preserved + cluster.work_lost
        assert total > 0.0
        assert cluster.work_preserved / total >= 0.80

    def test_global_pi_never_nan_or_inf(self, run):
        _, _, pi_trace = run
        assert pi_trace
        for _t, estimates in pi_trace:
            for est in estimates.values():
                assert math.isfinite(est.remaining_seconds)
                assert est.remaining_seconds >= 0.0
                for contrib in est.shards.values():
                    assert math.isfinite(contrib.remaining_seconds)
                    assert math.isfinite(contrib.staleness)

    def test_affected_shards_flagged_degraded_while_down(self, run):
        cluster, injector, pi_trace = run
        assert injector.log  # the crash actually fired
        crash_time = injector.log[0].time
        # In the epochs right after the crash, at least one query shows a
        # degraded (carried-back) shard contribution.
        after = [
            estimates for t, estimates in pi_trace
            if t >= crash_time
        ]
        assert any(
            contrib.degraded
            for estimates in after[:8]
            for est in estimates.values()
            for contrib in est.shards.values()
        )


class TestSeededPartitionChaos:
    def test_partition_storm_all_queries_finish_identical(self):
        cluster = build_cluster()
        for qid, sql in QUERIES.items():
            cluster.submit(qid, sql)
        plan = FaultPlan.of(
            NetworkPartition("node0", at=1.0, duration=3.0),
            NetworkPartition("node2", at=2.5, duration=2.0),
            NodeCrash("node3", at=4.0, down_for=10.0),
        )
        ClusterFaultInjector(cluster, plan).arm()
        t = 0.0
        while not all(dq.terminal for dq in cluster.queries().values()):
            t += 0.5
            assert t < 2000.0, "cluster failed to quiesce"
            cluster.run_until(t)
            for est in cluster.estimates().values():
                assert math.isfinite(est.remaining_seconds)
        single = generate(SMALL, part_sizes=PART_SIZES).db
        for qid, sql in QUERIES.items():
            assert cluster.query(qid).finished, cluster.query(qid).error
            assert cluster.result_rows(qid) == single.query(sql)

    @pytest.mark.parametrize("victim", ["node0", "node1", "node2", "node3"])
    def test_any_single_node_crash_recovers(self, victim):
        cluster = build_cluster()
        cluster.submit("Q", QUERIES["scan"])
        ClusterFaultInjector(
            cluster, FaultPlan.of(NodeCrash(victim, at=1.5))
        ).arm()
        cluster.run_to_completion(max_time=2000.0)
        single = generate(SMALL, part_sizes=PART_SIZES).db
        assert cluster.query("Q").finished
        assert cluster.result_rows("Q") == single.query(QUERIES["scan"])
