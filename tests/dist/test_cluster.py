"""Tests for the sharded cluster router: planning, execution, failover."""

import math

import pytest

from repro.dist import ShardedCluster, fragment_table, load_tpcr, referenced_tables
from repro.engine.sql.parser import parse_statement
from repro.workload.tpcr import TpcrConfig

SMALL = TpcrConfig(scale=1 / 8000, seed=0)  # 3000 lineitem rows


def make_cluster(**kwargs) -> ShardedCluster:
    defaults = dict(n_shards=3, replication=2, processing_rate=10.0)
    defaults.update(kwargs)
    cluster = ShardedCluster(**defaults)
    load_tpcr(cluster, config=SMALL, part_sizes={1: 4})
    return cluster


class TestHelpers:
    def test_fragment_table_naming(self):
        assert fragment_table("lineitem", 2) == "lineitem__s2"

    def test_referenced_tables_walks_subqueries(self):
        stmt = parse_statement(
            "SELECT * FROM part_1 p WHERE p.retailprice > "
            "(SELECT SUM(l.extendedprice) FROM lineitem l "
            "WHERE l.partkey = p.partkey)"
        )
        assert referenced_tables(stmt) == {"part_1", "lineitem"}

    def test_referenced_tables_join(self):
        stmt = parse_statement(
            "SELECT * FROM part_1 p JOIN lineitem l ON p.partkey = l.partkey"
        )
        assert referenced_tables(stmt) == {"part_1", "lineitem"}


class TestDataPlacement:
    def test_fragments_placed_with_replication(self):
        cluster = make_cluster()
        for shard in range(3):
            chain = cluster.catalog.replicas_for("lineitem", shard)
            assert len(chain) == 2
            assert len(set(chain)) == 2  # replicas on distinct nodes
        # Every replica node physically holds the fragment.
        for shard in range(3):
            frag = fragment_table("lineitem", shard)
            for node_id in cluster.catalog.replicas_for("lineitem", shard):
                node = cluster.nodes[node_id]
                assert node.db.catalog.table(frag).heap.row_count > 0

    def test_fragment_rows_sum_to_table(self):
        cluster = make_cluster()
        total = 0
        for shard in range(3):
            frag = fragment_table("lineitem", shard)
            primary = cluster.catalog.primary_for("lineitem", shard)
            total += cluster.nodes[primary].db.catalog.table(frag).heap.row_count
        assert total == 3000

    def test_describe_lists_nodes_and_shards(self):
        text = make_cluster().describe()
        assert "node0" in text and "lineitem" in text


class TestSubmission:
    def test_pushdown_strategy_for_simple_scan(self):
        cluster = make_cluster()
        dq = cluster.submit("Q", "SELECT * FROM lineitem WHERE partkey > 5")
        assert dq.strategy == "pushdown"
        assert len(dq.subqueries) == 3  # one per shard

    def test_gather_strategy_for_joins_and_aggregates(self):
        cluster = make_cluster()
        dq = cluster.submit(
            "Q", "SELECT SUM(extendedprice) FROM lineitem"
        )
        assert dq.strategy == "gather"

    def test_unknown_table_rejected(self):
        with pytest.raises(ValueError, match="unpartitioned"):
            make_cluster().submit("Q", "SELECT * FROM ghost")

    def test_non_select_rejected(self):
        with pytest.raises(ValueError):
            make_cluster().submit("Q", "INSERT INTO lineitem VALUES (1, 2, 3)")

    def test_duplicate_query_id_rejected(self):
        cluster = make_cluster()
        cluster.submit("Q", "SELECT * FROM lineitem")
        with pytest.raises(ValueError):
            cluster.submit("Q", "SELECT * FROM lineitem")


class TestExecution:
    def test_runs_to_completion_with_results(self):
        cluster = make_cluster()
        cluster.submit("Q", "SELECT * FROM lineitem")
        cluster.run_to_completion()
        dq = cluster.query("Q")
        assert dq.finished
        assert len(cluster.result_rows("Q")) == 3000

    def test_estimates_always_finite_throughout(self):
        cluster = make_cluster()
        cluster.submit("Q", "SELECT * FROM lineitem")
        t = 0.0
        while not cluster.query("Q").terminal and t < 500.0:
            t += 1.0
            cluster.run_until(t)
            est = cluster.global_estimate("Q")
            assert math.isfinite(est.remaining_seconds)
            assert est.remaining_seconds >= 0.0

    def test_estimate_decreases_as_work_completes(self):
        cluster = make_cluster()
        cluster.submit("Q", "SELECT * FROM lineitem")
        cluster.run_until(2.0)
        early = cluster.global_estimate("Q").remaining_seconds
        cluster.run_until(6.0)
        later = cluster.global_estimate("Q").remaining_seconds
        if not cluster.query("Q").finished:
            assert later < early

    def test_work_tallies_zero_without_faults(self):
        cluster = make_cluster()
        cluster.submit("Q", "SELECT * FROM lineitem")
        cluster.run_to_completion()
        assert cluster.failovers == 0
        assert cluster.work_preserved == 0.0
        assert cluster.work_lost == 0.0


class TestFailover:
    def test_crash_fails_over_to_replica(self):
        cluster = make_cluster(checkpoint_interval=0.5)
        cluster.submit("Q", "SELECT * FROM lineitem")
        cluster.run_until(1.0)
        victim = cluster.nodes["node1"]
        cluster.catalog.mark_down("node1")
        victim.crash()
        cluster.run_to_completion()
        dq = cluster.query("Q")
        assert dq.finished
        assert cluster.failovers >= 1
        # The failed-over sub-queries ended up off the dead node.
        for sub in dq.subqueries.values():
            assert sub.node_id != "node1"

    def test_submit_on_downed_node_raises(self):
        cluster = make_cluster()
        cluster.catalog.mark_down("node0")
        cluster.nodes["node0"].crash()
        with pytest.raises(RuntimeError):
            from repro.sim.jobs import SyntheticJob

            cluster.nodes["node0"].submit(SyntheticJob("x", 10.0))

    def test_no_replica_left_gives_up(self):
        from repro.faults.retry import RetryPolicy

        cluster = make_cluster(
            replication=1,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.5),
        )
        cluster.submit("Q", "SELECT * FROM lineitem")
        cluster.run_until(1.0)
        cluster.catalog.mark_down("node1")
        cluster.nodes["node1"].crash()
        # Shard 1 has a single replica: with it gone the query can never
        # finish; the router must eventually give up rather than hang.
        cluster.run_until(200.0)
        dq = cluster.query("Q")
        assert dq.status == "failed"
        assert dq.error

    def test_crash_idempotent(self):
        cluster = make_cluster()
        node = cluster.nodes["node2"]
        node.crash()
        assert node.crash() == ()


class TestBrownout:
    def test_browned_out_node_slows_down(self):
        fast = make_cluster()
        fast.submit("Q", "SELECT * FROM lineitem")
        fast.run_to_completion()
        slow = make_cluster()
        slow.nodes["node0"].set_brownout(0.25)
        slow.submit("Q", "SELECT * FROM lineitem")
        slow.run_to_completion()
        assert (
            slow.query("Q").finished_at > fast.query("Q").finished_at
        )

    def test_clear_brownout_restores_rate(self):
        cluster = make_cluster()
        node = cluster.nodes["node0"]
        node.set_brownout(0.5)
        assert node.brownout_factor == 0.5
        node.clear_brownout()
        assert node.brownout_factor == 1.0
