"""Differential tests: distributed execution vs single-node, byte for byte.

The correctness contract of the sharded cluster is that distribution is
an *implementation detail*: whatever the single-node engine returns for
a query, the cluster returns exactly -- same rows, same order, same
floats -- with and without mid-flight failover.
"""

import pytest

from repro.dist import (
    HashPartitioner,
    RangePartitioner,
    ShardedCluster,
    load_tpcr,
)
from repro.workload.tpcr import TpcrConfig, generate

SMALL = TpcrConfig(scale=1 / 8000, seed=0)  # 3000 lineitem rows
PART_SIZES = {1: 4, 2: 3}

QUERIES = {
    "scan": "SELECT * FROM lineitem",
    "filter": "SELECT * FROM lineitem WHERE partkey > 5",
    "project": "SELECT partkey, extendedprice FROM lineitem "
               "WHERE quantity < 30",
    "agg": "SELECT SUM(extendedprice), COUNT(*) FROM lineitem",
    "group": "SELECT partkey, SUM(quantity) FROM lineitem "
             "GROUP BY partkey ORDER BY partkey",
    "join": "SELECT p.partkey, SUM(l.extendedprice) FROM part_1 p, "
            "lineitem l WHERE p.partkey = l.partkey "
            "GROUP BY p.partkey ORDER BY p.partkey",
}


@pytest.fixture(scope="module")
def single_db():
    return generate(SMALL, part_sizes=PART_SIZES).db


def make_cluster(partitioner=None, **kwargs):
    defaults = dict(n_shards=3, replication=2, processing_rate=10.0)
    defaults.update(kwargs)
    cluster = ShardedCluster(**defaults)
    load_tpcr(
        cluster, config=SMALL, part_sizes=PART_SIZES, partitioner=partitioner
    )
    return cluster


class TestNoFaultDifferential:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_block_partitioning_byte_identical(self, single_db, name):
        cluster = make_cluster()
        cluster.submit("Q", QUERIES[name])
        cluster.run_to_completion()
        assert cluster.result_rows("Q") == single_db.query(QUERIES[name])

    @pytest.mark.parametrize("name", ["scan", "group", "join"])
    def test_hash_partitioning_byte_identical(self, single_db, name):
        # Hash partitioning scrambles row placement entirely; the gather
        # merge must still reconstruct the original global row order.
        cluster = make_cluster(partitioner=HashPartitioner(0))
        dq = cluster.submit("Q", QUERIES[name])
        assert dq.strategy == "gather"  # hash is not order preserving
        cluster.run_to_completion()
        assert cluster.result_rows("Q") == single_db.query(QUERIES[name])

    def test_range_partitioning_byte_identical(self, single_db):
        cluster = make_cluster(partitioner=RangePartitioner(0, [4, 8]))
        cluster.submit("Q", QUERIES["scan"])
        cluster.run_to_completion()
        assert cluster.result_rows("Q") == single_db.query(QUERIES["scan"])

    def test_concurrent_queries_all_identical(self, single_db):
        cluster = make_cluster()
        for name, sql in QUERIES.items():
            cluster.submit(name, sql)
        cluster.run_to_completion()
        for name, sql in QUERIES.items():
            assert cluster.result_rows(name) == single_db.query(sql)


class TestFailoverDifferential:
    def run_with_crash(self, sql, crash_at=1.5, node="node1"):
        cluster = make_cluster(checkpoint_interval=0.5)
        cluster.submit("Q", sql)
        cluster.run_until(crash_at)
        cluster.catalog.mark_down(node)
        cluster.nodes[node].crash()
        cluster.run_to_completion()
        return cluster

    @pytest.mark.parametrize("name", ["scan", "group", "join"])
    def test_mid_flight_crash_still_byte_identical(self, single_db, name):
        cluster = self.run_with_crash(QUERIES[name])
        dq = cluster.query("Q")
        assert dq.finished
        assert cluster.result_rows("Q") == single_db.query(QUERIES[name])

    def test_failover_preserves_checkpointed_work(self, single_db):
        cluster = self.run_with_crash(QUERIES["scan"])
        assert cluster.failovers >= 1
        assert cluster.work_preserved > 0.0

    def test_partition_heals_and_results_identical(self, single_db):
        # A partitioned node is alive, just unreachable: sub-queries keep
        # running, collection is deferred, and after the heal the results
        # are exactly what single-node execution produces.
        cluster = make_cluster(processing_rate=2.0)
        cluster.submit("Q", QUERIES["scan"])
        cluster.run_until(1.0)
        cluster.catalog.mark_unreachable("node2")
        cluster.run_until(4.0)
        mid = cluster.global_estimate("Q")
        assert not cluster.query("Q").finished
        assert mid.degraded
        assert any(c.degraded for c in mid.shards.values())
        cluster.catalog.mark_reachable("node2")
        cluster.run_to_completion()
        assert cluster.failovers == 0  # nothing died, nothing moved
        assert cluster.result_rows("Q") == single_db.query(QUERIES["scan"])
