"""Tests for the fault injector: each fault shape against the simulator."""

import math

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    Brownout,
    FaultPlan,
    QueryCrash,
    QueryStall,
    StatsCorruption,
)
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.sim.scheduler import ScaledSpeedModel


def make_rdbms(**costs):
    rdbms = SimulatedRDBMS(processing_rate=10.0)
    for qid, cost in costs.items():
        rdbms.submit(SyntheticJob(qid, cost))
    return rdbms


class TestBrownoutInjection:
    def test_brownout_delays_completion_exactly(self):
        # cost 100 at 10 U/s = 10s nominal; half speed over [2, 6] loses
        # 20 U that take 2 extra seconds to make up: finish at 12s.
        rdbms = make_rdbms(q=100)
        injector = FaultInjector(
            rdbms, FaultPlan.of(Brownout(start=2.0, duration=4.0, factor=0.5))
        )
        injector.arm()
        rdbms.run_to_completion()
        assert rdbms.traces["q"].finished_at == pytest.approx(12.0)

    def test_full_outage_stops_all_progress(self):
        rdbms = make_rdbms(q=100)
        injector = FaultInjector(
            rdbms, FaultPlan.of(Brownout(start=2.0, duration=3.0, factor=0.0))
        )
        injector.arm()
        rdbms.run_to_completion()
        assert rdbms.traces["q"].finished_at == pytest.approx(13.0)

    def test_overlapping_brownouts_compose(self):
        # x0.5 over [2, 8] and x0.5 over [4, 6]: rate is x0.25 in [4, 6].
        rdbms = make_rdbms(q=100)
        injector = FaultInjector(
            rdbms,
            FaultPlan.of(
                Brownout(start=2.0, duration=6.0, factor=0.5),
                Brownout(start=4.0, duration=2.0, factor=0.5),
            ),
        )
        injector.arm()
        rdbms.run_to_completion()
        # Work done: 2s full (20) + 2s half (10) + 2s quarter (5) + 2s half
        # (10) = 45 by t=8; remaining 55 at full rate = 5.5s more.
        assert rdbms.traces["q"].finished_at == pytest.approx(13.5)

    def test_begin_and_end_logged(self):
        rdbms = make_rdbms(q=100)
        injector = FaultInjector(
            rdbms, FaultPlan.of(Brownout(start=2.0, duration=4.0))
        )
        injector.arm()
        rdbms.run_to_completion()
        kinds = [e.kind for e in injector.events]
        assert kinds == ["brownout-begin", "brownout-end"]
        assert [e.time for e in injector.events] == pytest.approx([2.0, 6.0])


class TestStallInjection:
    def test_stall_freezes_one_query(self):
        rdbms = make_rdbms(q=100)
        injector = FaultInjector(
            rdbms, FaultPlan.of(QueryStall("q", at=2.0, duration=3.0))
        )
        injector.arm()
        rdbms.run_to_completion()
        assert rdbms.traces["q"].finished_at == pytest.approx(13.0)

    def test_stalled_query_still_holds_its_share(self):
        rdbms = make_rdbms(a=100, b=100)
        injector = FaultInjector(
            rdbms, FaultPlan.of(QueryStall("a", at=0.0, duration=100.0))
        )
        injector.arm()
        rdbms.run_until(25.0)
        # The stalled query keeps its execution slot, so its fair share is
        # held (wasted), not redistributed: b still runs at 5 U/s.
        assert rdbms.traces["b"].finished_at == pytest.approx(20.0)
        assert rdbms.record("a").job.completed_work == pytest.approx(0.0)

    def test_stall_recorded_in_trace(self):
        rdbms = make_rdbms(q=100)
        injector = FaultInjector(
            rdbms, FaultPlan.of(QueryStall("q", at=2.0, duration=3.0))
        )
        injector.arm()
        rdbms.run_to_completion()
        kinds = [f.kind for f in rdbms.traces["q"].fault_events]
        assert kinds == ["stall-begin", "stall-end"]

    def test_stall_on_finished_query_is_skipped(self):
        rdbms = make_rdbms(q=10)  # finishes at t=1
        injector = FaultInjector(
            rdbms, FaultPlan.of(QueryStall("q", at=5.0, duration=1.0))
        )
        injector.arm()
        rdbms.run_to_completion()
        assert any(e.skipped for e in injector.events)
        assert rdbms.traces["q"].finished_at == pytest.approx(1.0)


class TestCrashInjection:
    def test_timed_crash_sets_failed_at_not_aborted_at(self):
        rdbms = make_rdbms(q=100)
        injector = FaultInjector(
            rdbms, FaultPlan.of(QueryCrash("q", at_time=3.0, reason="boom"))
        )
        injector.arm()
        rdbms.run_to_completion()
        record = rdbms.record("q")
        assert record.status == "failed"
        assert record.trace.failed_at == pytest.approx(3.0)
        assert record.trace.aborted_at is None

    def test_fraction_crash_fires_near_threshold(self):
        rdbms = make_rdbms(q=100)
        injector = FaultInjector(
            rdbms,
            FaultPlan.of(QueryCrash("q", at_fraction=0.5)),
            resolution=0.25,
        )
        injector.arm()
        rdbms.run_to_completion()
        record = rdbms.record("q")
        assert record.status == "failed"
        # 50% of 100 U at 10 U/s is t=5; accurate to one resolution tick.
        assert record.job.completed_work == pytest.approx(50.0, abs=10 * 0.25 + 1e-6)
        assert record.job.completed_work >= 50.0 - 1e-9

    def test_crash_on_finished_query_is_skipped(self):
        rdbms = make_rdbms(q=10)
        injector = FaultInjector(
            rdbms, FaultPlan.of(QueryCrash("q", at_time=5.0))
        )
        injector.arm()
        rdbms.run_to_completion()
        assert rdbms.record("q").status == "finished"
        crash_events = [e for e in injector.events if e.kind == "crash"]
        assert len(crash_events) == 1 and crash_events[0].skipped


class TestCorruptionInjection:
    def test_corruption_window_poisons_then_restores_snapshots(self):
        rdbms = make_rdbms(q=100)
        injector = FaultInjector(
            rdbms,
            FaultPlan.of(
                StatsCorruption(start=2.0, duration=3.0, factor=float("nan"))
            ),
        )
        injector.arm()
        rdbms.run_until(3.0)
        assert math.isnan(rdbms.snapshot().find("q").remaining_cost)
        rdbms.run_until(6.0)
        remaining = rdbms.snapshot().find("q").remaining_cost
        assert math.isfinite(remaining) and remaining == pytest.approx(40.0)

    def test_corruption_does_not_change_true_progress(self):
        rdbms = make_rdbms(q=100)
        injector = FaultInjector(
            rdbms,
            FaultPlan.of(StatsCorruption(start=0.0, duration=None, factor=100.0)),
        )
        injector.arm()
        rdbms.run_to_completion()
        assert rdbms.traces["q"].finished_at == pytest.approx(10.0)

    def test_query_targeted_corruption(self):
        rdbms = make_rdbms(a=100, b=100)
        injector = FaultInjector(
            rdbms,
            FaultPlan.of(
                StatsCorruption(
                    start=0.0, duration=None, factor=float("inf"), query_id="a"
                )
            ),
        )
        injector.arm()
        rdbms.run_until(1.0)
        snapshot = rdbms.snapshot()
        assert math.isinf(snapshot.find("a").remaining_cost)
        assert math.isfinite(snapshot.find("b").remaining_cost)


class TestInjectorMechanics:
    def test_arm_is_single_shot(self):
        rdbms = make_rdbms(q=10)
        injector = FaultInjector(rdbms, FaultPlan())
        injector.arm()
        with pytest.raises(RuntimeError):
            injector.arm()

    def test_arm_wraps_speed_model_once(self):
        rdbms = make_rdbms(q=10)
        FaultInjector(rdbms, FaultPlan()).arm()
        assert isinstance(rdbms.speed_model, ScaledSpeedModel)
        overlay = rdbms.speed_model
        FaultInjector(rdbms, FaultPlan()).arm()
        assert rdbms.speed_model is overlay

    def test_rejects_bad_resolution(self):
        rdbms = make_rdbms(q=10)
        with pytest.raises(ValueError):
            FaultInjector(rdbms, FaultPlan(), resolution=0.0)

    def test_timeline_is_sorted_and_formatted(self):
        rdbms = make_rdbms(q=100)
        injector = FaultInjector(
            rdbms,
            FaultPlan.of(
                Brownout(start=4.0, duration=1.0),
                QueryCrash("q", at_time=8.0),
            ),
        )
        injector.arm()
        rdbms.run_to_completion()
        lines = injector.timeline()
        assert len(lines) == 3
        assert "brownout-begin" in lines[0] and "crash" in lines[-1]


class TestBurstInjection:
    def test_burst_submits_n_jobs_at_time(self):
        from repro.faults.plan import ArrivalBurst

        rdbms = SimulatedRDBMS(processing_rate=10.0)
        plan = FaultPlan.of(ArrivalBurst(at=5.0, n=4, cost=10.0))
        FaultInjector(rdbms, plan).arm()
        rdbms.run_until(4.9)
        assert not any(q.startswith("burst") for q in rdbms.records())
        rdbms.run_to_completion()
        ids = [q for q in rdbms.records() if q.startswith("burst")]
        assert sorted(ids) == ["burst0", "burst1", "burst2", "burst3"]
        for q in ids:
            rec = rdbms.record(q)
            assert rec.status == "finished"
            assert rec.trace.submitted_at == pytest.approx(5.0)

    def test_spread_burst_arrives_within_window(self):
        from repro.faults.plan import ArrivalBurst

        rdbms = SimulatedRDBMS(processing_rate=100.0)
        plan = FaultPlan.of(
            ArrivalBurst(at=5.0, n=6, cost=1.0, spread=3.0, seed=11)
        )
        FaultInjector(rdbms, plan).arm()
        rdbms.run_to_completion()
        arrivals = [
            rdbms.record(f"burst{i}").trace.submitted_at for i in range(6)
        ]
        assert all(5.0 <= t <= 8.0 for t in arrivals)
        assert arrivals == sorted(arrivals)  # index i = i-th earliest

    def test_burst_jobs_carry_priority_and_deadline(self):
        from repro.faults.plan import ArrivalBurst

        rdbms = SimulatedRDBMS(processing_rate=10.0)
        plan = FaultPlan.of(
            ArrivalBurst(at=2.0, n=2, cost=10.0, priority=-1, deadline=50.0)
        )
        FaultInjector(rdbms, plan).arm()
        rdbms.run_until(2.1)
        rec = rdbms.record("burst0")
        assert rec.job.priority == -1
        assert rec.deadline_at == pytest.approx(52.0)

    def test_burst_begin_logged(self):
        from repro.faults.plan import ArrivalBurst

        rdbms = SimulatedRDBMS(processing_rate=10.0)
        injector = FaultInjector(
            rdbms, FaultPlan.of(ArrivalBurst(at=1.0, n=3, cost=5.0))
        )
        injector.arm()
        rdbms.run_to_completion()
        kinds = [e.kind for e in injector.events]
        assert "burst-begin" in kinds

    def test_sql_burst_rejected_by_single_node_injector(self):
        from repro.faults.plan import ArrivalBurst

        rdbms = SimulatedRDBMS(processing_rate=10.0)
        plan = FaultPlan.of(
            ArrivalBurst(at=1.0, n=3, sql="SELECT COUNT(*) FROM t")
        )
        with pytest.raises(ValueError, match="ClusterFaultInjector"):
            FaultInjector(rdbms, plan).arm()

    def test_burst_respects_attached_admission_controller(self):
        from repro.faults.plan import ArrivalBurst
        from repro.qos.admission import AdmissionController, AdmissionPolicy

        rdbms = SimulatedRDBMS(processing_rate=10.0)
        gate = AdmissionController(
            rdbms, AdmissionPolicy(max_in_flight=2)
        ).attach()
        plan = FaultPlan.of(ArrivalBurst(at=1.0, n=6, cost=10.0))
        FaultInjector(rdbms, plan).arm()
        rdbms.run_to_completion()
        assert gate.counts()["defer"] > 0  # the gate actually engaged
        # Deferred arrivals were retried in; everything finished.
        for i in range(6):
            assert rdbms.record(f"burst{i}").status == "finished"
