"""Chaos tests: randomized fault storms must never break the simulator.

The scripted test is the PR's acceptance scenario: one of every fault
shape -- a crash (retried), a brownout, a stall and corrupted statistics --
against a protected workload; every query must end terminal and the
watchdog must demonstrably fall back to its observed-work heuristic while
estimates are non-finite.

The randomized tests (marked ``chaos``) draw seeded fault plans and assert
only *invariants*: the run terminates, every query reaches a terminal
status, attempt counts respect the retry cap, and progress accounting
stays finite and non-negative.  Failures reproduce exactly from the seed.
"""

import math

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    Brownout,
    FaultPlan,
    QueryCrash,
    QueryStall,
    StatsCorruption,
    random_fault_plan,
)
from repro.faults.retry import RetryController, RetryPolicy
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.wm.watchdog import RunawayQueryWatchdog

TERMINAL = ("finished", "aborted", "failed")


class TestScriptedAcceptance:
    """The issue's acceptance scenario, asserted end to end."""

    def build(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        costs = {"q1": 120.0, "q2": 80.0, "q3": 900.0, "q4": 60.0}
        for qid, cost in costs.items():
            rdbms.submit(SyntheticJob(qid, cost))
        plan = FaultPlan.of(
            Brownout(start=5.0, duration=10.0, factor=0.5),
            QueryCrash("q2", at_fraction=0.5),
            QueryStall("q1", at=8.0, duration=4.0),
            StatsCorruption(
                start=0.0, duration=None, factor=float("nan"), query_id="q3"
            ),
        )
        injector = FaultInjector(rdbms, plan)
        injector.arm()
        retries = RetryController(
            rdbms, RetryPolicy(max_attempts=3, base_delay=2.0)
        )
        watchdog = RunawayQueryWatchdog(rdbms, budget_seconds=60.0)
        watchdog.attach()
        return rdbms, costs, injector, retries, watchdog

    def test_every_query_reaches_a_terminal_status(self):
        rdbms, costs, _, _, _ = self.build()
        rdbms.run_to_completion(max_time=1000.0)
        for qid in costs:
            assert rdbms.record(qid).status in TERMINAL, qid
            assert rdbms.record(qid).terminal

    def test_crashed_query_recovers_via_retry(self):
        rdbms, _, _, retries, _ = self.build()
        rdbms.run_to_completion(max_time=1000.0)
        record = rdbms.record("q2")
        assert record.status == "finished"
        assert record.attempts == 2
        assert record.trace.attempts == 2
        assert retries.retried("q2") == 1

    def test_stalled_and_browned_out_queries_still_finish(self):
        rdbms, _, _, _, _ = self.build()
        rdbms.run_to_completion(max_time=1000.0)
        assert rdbms.record("q1").status == "finished"
        assert rdbms.record("q4").status == "finished"

    def test_watchdog_catches_runaway_on_fallback_path(self):
        rdbms, _, _, _, watchdog = self.build()
        rdbms.run_to_completion(max_time=1000.0)
        # q3's stats are NaN, so the PI raises and the watchdog must use
        # the observed-work heuristic -- and still abort the runaway.
        assert rdbms.record("q3").status == "aborted"
        q3_actions = [a for a in watchdog.actions if a.query_id == "q3"]
        assert q3_actions and all(a.used_fallback for a in q3_actions)
        assert watchdog.fallback_engaged

    def test_fault_events_land_in_traces(self):
        rdbms, _, _, _, _ = self.build()
        rdbms.run_to_completion(max_time=1000.0)
        assert [f.kind for f in rdbms.traces["q2"].fault_events][:2] == [
            "crash",
            "retry",
        ]
        kinds = [f.kind for f in rdbms.traces["q1"].fault_events]
        assert "stall-begin" in kinds and "stall-end" in kinds


@pytest.mark.chaos
class TestRandomizedChaos:
    """Seeded random fault storms; only invariants are asserted."""

    HORIZON = 80.0
    POLICY = RetryPolicy(max_attempts=3, base_delay=1.0, jitter=0.3)

    def run_storm(self, seed: int):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        costs = {f"q{i}": 40.0 + 30.0 * i for i in range(6)}
        for qid, cost in costs.items():
            rdbms.submit(SyntheticJob(qid, cost))
        plan = random_fault_plan(
            seed, list(costs), horizon=self.HORIZON, n_faults=6
        )
        injector = FaultInjector(rdbms, plan)
        injector.arm()
        retries = RetryController(rdbms, self.POLICY)
        watchdog = RunawayQueryWatchdog(rdbms, budget_seconds=150.0)
        watchdog.attach()
        rdbms.run_to_completion(max_time=2000.0)
        return rdbms, costs, retries, watchdog

    @pytest.mark.parametrize("seed", range(5))
    def test_invariants_hold_under_random_faults(self, seed):
        rdbms, costs, retries, _ = self.run_storm(seed)

        # Termination: the virtual clock stopped inside the cap.
        assert rdbms.clock < 2000.0

        for qid in costs:
            record = rdbms.record(qid)
            # Every query reached a terminal status.
            assert record.status in TERMINAL, (seed, qid, record.status)
            # Attempts never exceed the retry cap.
            assert 1 <= record.attempts <= self.POLICY.max_attempts
            assert record.trace.attempts == record.attempts
            # Progress accounting stays finite and non-negative.
            done = record.job.completed_work
            assert math.isfinite(done) and done >= 0.0
            # Terminal bookkeeping is consistent: exactly one terminal
            # timestamp is set, matching the status.
            trace = record.trace
            stamps = {
                "finished": trace.finished_at,
                "aborted": trace.aborted_at,
                "failed": trace.failed_at,
            }
            assert stamps[record.status] is not None
            others = [v for k, v in stamps.items() if k != record.status]
            assert all(v is None for v in others)

        # The retry layer never resubmitted anyone past the cap.
        for qid in costs:
            assert retries.retried(qid) <= self.POLICY.max_attempts - 1

    @pytest.mark.parametrize("seed", range(5))
    def test_storms_are_reproducible(self, seed):
        first = self.run_storm(seed)
        second = self.run_storm(seed)
        assert first[0].clock == second[0].clock
        statuses_a = {q: first[0].record(q).status for q in first[1]}
        statuses_b = {q: second[0].record(q).status for q in second[1]}
        assert statuses_a == statuses_b
