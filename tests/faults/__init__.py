"""Tests for the fault-injection and resilience subsystem."""
