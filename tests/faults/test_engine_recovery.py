"""Work-preserving recovery for engine-backed queries under faults.

The acceptance scenario from the issue: a real SQL execution crashed at
50% of its work resumes from its last checkpoint and preserves at least
80% of the completed work -- and the engine-mode experiment keeps
producing a well-formed report when the crash plan runs underneath it.
"""

import random

import pytest

from repro.engine.database import Database
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, QueryCrash
from repro.faults.retry import RetryController, RetryPolicy
from repro.sim.rdbms import SimulatedRDBMS
from repro.workload.queries import engine_job
from repro.workload.tpcr import TpcrConfig, add_part_table, build_lineitem


def small_db(seed=7, parts=1, size=12):
    tpcr = TpcrConfig(scale=1 / 4000, seed=seed)
    rng = random.Random(seed)
    db = Database(page_capacity=tpcr.page_capacity)
    build_lineitem(db, tpcr, rng)
    for i in range(1, parts + 1):
        add_part_table(db, i, size, tpcr, rng)
    db.analyze()
    return db


def crash_run(db, interval, at_fraction=0.5, query="Q1", part=1):
    rdbms = SimulatedRDBMS(processing_rate=10.0)
    RetryController(rdbms, RetryPolicy(max_attempts=3, base_delay=1.0))
    FaultInjector(
        rdbms, FaultPlan.of(QueryCrash(query, at_fraction=at_fraction))
    ).arm()
    rdbms.submit(engine_job(db, query, part, checkpoint_interval=interval))
    rdbms.run_to_completion(max_time=2000.0)
    return rdbms.record(query)


class TestCrashResume:
    @pytest.fixture(scope="class")
    def db(self):
        return small_db()

    def test_acceptance_crash_at_half_preserves_80_percent(self, db):
        """The issue's bar: >= 80% of the crashed attempt's work survives."""
        record = crash_run(db, interval=25.0)
        assert record.status == "finished"
        assert record.attempts == 2
        trace = record.trace
        crashed_attempt_work = trace.preserved_work + trace.wasted_work
        assert crashed_attempt_work > 0
        assert trace.preserved_work / crashed_attempt_work >= 0.8

    def test_non_checkpointed_path_still_recovers(self, db):
        """Without checkpoints the retry restarts from scratch and still
        finishes -- the pre-existing behaviour must be intact."""
        record = crash_run(db, interval=None)
        assert record.status == "finished"
        assert record.attempts == 2
        assert record.trace.preserved_work == 0.0
        assert record.trace.wasted_work > 0.0

    def test_resumed_rows_match_unfaulted_run(self, db):
        plain = engine_job(db, "ref", 1)
        plain.execution.run_to_completion()
        record = crash_run(db, interval=25.0)
        assert record.job.execution.rows == plain.execution.rows

    def test_checkpointing_wastes_less_than_restarting(self, db):
        restart = crash_run(db, interval=None)
        resume = crash_run(db, interval=25.0)
        assert resume.trace.wasted_work < restart.trace.wasted_work


@pytest.mark.chaos
class TestChaosEngineRecovery:
    """Seeded crash storms over engine executions: invariants only."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_crash_fraction_preserves_work(self, seed):
        db = small_db(seed=7)
        rng = random.Random(seed)
        frac = rng.uniform(0.3, 0.9)
        record = crash_run(db, interval=20.0, at_fraction=frac)
        assert record.status == "finished"
        trace = record.trace
        assert trace.preserved_work >= 0.0
        assert trace.wasted_work >= 0.0
        # A resumed attempt never redoes more than one checkpoint interval
        # plus the pull that crossed the crash point.
        if record.attempts == 2 and trace.preserved_work > 0:
            assert trace.wasted_work <= 20.0 + record.job.completed_work * 0.25


@pytest.mark.chaos
class TestEngineExperimentUnderFaults:
    """The engine-mode experiment survives an injected crash plan."""

    def test_report_is_well_formed_under_crash_plan(self):
        from repro.experiments.engine_mode import EngineMCQConfig, run_engine_mcq

        config = EngineMCQConfig(
            n_queries=4, max_size=8, scale=1 / 8000, processing_rate=10.0,
            sample_interval=1.0, seed=5, checkpoint_interval=20.0,
        )
        plan = FaultPlan.of(
            QueryCrash("Q1", at_fraction=0.5),
            QueryCrash("Q3", at_fraction=0.4),
        )
        result = run_engine_mcq(
            config,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=1.0),
        )
        # Well-formed: the focus query finished, estimates were recorded,
        # and every query ended with positive completed work.
        assert result.finish_time > 0
        assert result.estimates["multi-query"]
        assert result.estimates["single-query"]
        assert set(result.final_works) == {f"Q{i}" for i in range(1, 5)}
        assert all(w > 0 for w in result.final_works.values())
        assert result.mean_relative_error("multi-query") >= 0.0
