"""Tests for declarative fault plans and their validation."""

import math

import pytest

from repro.faults.plan import (
    Brownout,
    FaultPlan,
    NetworkPartition,
    NodeBrownout,
    NodeCrash,
    QueryCrash,
    QueryStall,
    StatsCorruption,
    random_fault_plan,
)


class TestQueryCrash:
    def test_timed_trigger(self):
        crash = QueryCrash("q", at_time=5.0)
        assert crash.at_time == 5.0 and crash.at_fraction is None

    def test_fraction_trigger(self):
        crash = QueryCrash("q", at_fraction=0.5)
        assert crash.at_fraction == 0.5

    def test_requires_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            QueryCrash("q")
        with pytest.raises(ValueError):
            QueryCrash("q", at_time=1.0, at_fraction=0.5)

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_rejects_bad_time(self, bad):
        with pytest.raises(ValueError):
            QueryCrash("q", at_time=bad)

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5, float("nan")])
    def test_rejects_bad_fraction(self, bad):
        with pytest.raises(ValueError):
            QueryCrash("q", at_fraction=bad)


class TestQueryStall:
    def test_valid(self):
        stall = QueryStall("q", at=1.0, duration=2.0)
        assert stall.duration == 2.0

    @pytest.mark.parametrize("at,dur", [(-1, 1), (float("nan"), 1), (0, 0), (0, -1), (0, float("inf"))])
    def test_rejects_bad_window(self, at, dur):
        with pytest.raises(ValueError):
            QueryStall("q", at=at, duration=dur)


class TestBrownout:
    def test_valid(self):
        assert Brownout(start=0.0, duration=5.0, factor=0.0).factor == 0.0

    @pytest.mark.parametrize("factor", [-0.1, 1.1, float("nan"), float("inf")])
    def test_rejects_bad_factor(self, factor):
        with pytest.raises(ValueError):
            Brownout(start=0.0, duration=5.0, factor=factor)


class TestStatsCorruption:
    def test_nan_and_inf_factors_allowed(self):
        assert math.isnan(StatsCorruption(0.0, 5.0, float("nan")).factor)
        assert math.isinf(StatsCorruption(0.0, 5.0, float("inf")).factor)

    def test_permanent_corruption(self):
        assert StatsCorruption(0.0, None, 2.0).duration is None

    def test_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            StatsCorruption(0.0, 5.0, -1.0)

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            StatsCorruption(0.0, 0.0, 2.0)


class TestNodeCrash:
    def test_permanent_by_default(self):
        crash = NodeCrash("node1", at=5.0)
        assert crash.down_for is None

    def test_recovering_crash(self):
        assert NodeCrash("node1", at=5.0, down_for=10.0).down_for == 10.0

    def test_rejects_empty_node_and_bad_times(self):
        with pytest.raises(ValueError):
            NodeCrash("", at=5.0)
        with pytest.raises(ValueError):
            NodeCrash("node1", at=-1.0)
        with pytest.raises(ValueError):
            NodeCrash("node1", at=float("nan"))
        with pytest.raises(ValueError):
            NodeCrash("node1", at=5.0, down_for=0.0)


class TestNetworkPartition:
    def test_valid(self):
        part = NetworkPartition("node2", at=1.0, duration=4.0)
        assert part.duration == 4.0

    @pytest.mark.parametrize(
        "at,dur", [(-1, 1), (float("nan"), 1), (0, 0), (0, float("inf"))]
    )
    def test_rejects_bad_window(self, at, dur):
        with pytest.raises(ValueError):
            NetworkPartition("node2", at=at, duration=dur)

    def test_rejects_empty_node(self):
        with pytest.raises(ValueError):
            NetworkPartition("", at=1.0, duration=1.0)


class TestNodeBrownout:
    def test_factor_zero_freezes_node(self):
        assert NodeBrownout("node0", at=0.0, duration=5.0, factor=0.0).factor == 0.0

    @pytest.mark.parametrize("factor", [-0.1, 1.1, float("nan"), float("inf")])
    def test_rejects_bad_factor(self, factor):
        with pytest.raises(ValueError):
            NodeBrownout("node0", at=0.0, duration=5.0, factor=factor)


class TestFaultPlan:
    def test_of_and_len(self):
        plan = FaultPlan.of(Brownout(0.0, 1.0), QueryCrash("q", at_time=1.0))
        assert len(plan) == 2

    def test_rejects_non_faults(self):
        with pytest.raises(ValueError):
            FaultPlan(faults=("not a fault",))

    def test_for_query(self):
        crash = QueryCrash("a", at_time=1.0)
        stall = QueryStall("b", at=1.0, duration=1.0)
        plan = FaultPlan.of(crash, stall, Brownout(0.0, 1.0))
        assert plan.for_query("a") == (crash,)
        assert plan.for_query("b") == (stall,)
        assert plan.for_query("zzz") == ()

    def test_describe_mentions_every_fault(self):
        plan = FaultPlan.of(
            QueryCrash("a", at_fraction=0.5),
            QueryStall("b", at=1.0, duration=2.0),
            Brownout(0.0, 1.0, factor=0.25),
            StatsCorruption(0.0, None, float("inf")),
        )
        text = plan.describe()
        assert "crash" in text and "stall" in text
        assert "brownout" in text and "corrupt" in text
        assert "permanently" in text

    def test_describe_empty(self):
        assert "empty" in FaultPlan().describe()

    def test_for_node_and_node_faults(self):
        crash = NodeCrash("node1", at=3.0)
        part = NetworkPartition("node2", at=1.0, duration=2.0)
        qcrash = QueryCrash("a", at_time=1.0)
        plan = FaultPlan.of(crash, part, qcrash)
        assert plan.for_node("node1") == (crash,)
        assert plan.for_node("node2") == (part,)
        assert plan.for_node("node9") == ()
        assert plan.node_faults() == (crash, part)

    def test_describe_mentions_node_faults(self):
        text = FaultPlan.of(
            NodeCrash("node1", at=3.0, down_for=5.0),
            NetworkPartition("node2", at=1.0, duration=2.0),
            NodeBrownout("node0", at=0.0, duration=4.0, factor=0.25),
        ).describe()
        assert "node-crash node1" in text and "back after 5s" in text
        assert "partition" in text and "node-brownout node0" in text


class TestRandomFaultPlan:
    def test_deterministic_per_seed(self):
        a = random_fault_plan(3, ["q1", "q2"], horizon=50.0)
        b = random_fault_plan(3, ["q1", "q2"], horizon=50.0)
        assert a.describe() == b.describe()

    def test_different_seeds_differ(self):
        plans = {
            random_fault_plan(s, ["q1", "q2"], horizon=50.0, n_faults=6).describe()
            for s in range(8)
        }
        assert len(plans) > 1

    def test_all_faults_valid_and_counted(self):
        for seed in range(20):
            plan = random_fault_plan(seed, ["a", "b", "c"], 100.0, n_faults=5)
            assert len(plan) == 5  # construction already validated each fault

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            random_fault_plan(0, [], 10.0)
        with pytest.raises(ValueError):
            random_fault_plan(0, ["q"], 0.0)
        with pytest.raises(ValueError):
            random_fault_plan(0, ["q"], 10.0, n_faults=-1)
        with pytest.raises(ValueError):
            random_fault_plan(0, ["q"], 10.0, node_ids=[])

    def test_node_ids_widens_draw_to_node_faults(self):
        node_kinds = (NodeCrash, NetworkPartition, NodeBrownout)
        seen = set()
        for seed in range(30):
            plan = random_fault_plan(
                seed, ["a", "b"], 50.0, n_faults=6,
                node_ids=["node0", "node1"],
            )
            seen.update(
                type(f) for f in plan.faults if isinstance(f, node_kinds)
            )
            for fault in plan.node_faults():
                assert fault.node_id in ("node0", "node1")
        assert seen == set(node_kinds)  # every node shape eventually drawn

    def test_default_seeds_unchanged_by_node_flag_existence(self):
        # The node_ids flag is opt-in: without it, seeded plans must stay
        # byte-for-byte stable so existing chaos baselines keep meaning.
        for seed in (0, 1, 7, 42):
            plan = random_fault_plan(seed, ["q1", "q2"], horizon=50.0)
            assert not plan.node_faults()
            again = random_fault_plan(seed, ["q1", "q2"], horizon=50.0)
            # describe(), not ==: a NaN corruption factor is unequal to
            # itself, but its rendering is stable.
            assert plan.describe() == again.describe()

    def test_seed_42_plan_is_byte_stable(self):
        # Pinned golden description: fails if the no-node draw sequence
        # ever changes shape, which would silently invalidate recorded
        # chaos-test seeds.
        plan = random_fault_plan(42, ["q1", "q2"], horizon=50.0)
        assert plan.describe() == (
            "crash    q1 at 30% progress\n"
            "stall    q1 at t=27.068s for 13.6522s\n"
            "crash    q2 at t=4.68476s\n"
            "stall    q1 at t=22.4498s for 11.4502s"
        )


class TestArrivalBurst:
    def test_valid_synthetic_burst(self):
        from repro.faults.plan import ArrivalBurst

        b = ArrivalBurst(at=5.0, n=10, cost=40.0, spread=2.0)
        assert b.sql is None
        assert b.prefix == "burst"

    def test_overload_storm_is_an_alias(self):
        from repro.faults.plan import ArrivalBurst, OverloadStorm

        assert OverloadStorm is ArrivalBurst

    def test_validation(self):
        from repro.faults.plan import ArrivalBurst

        with pytest.raises(ValueError):
            ArrivalBurst(at=-1.0, n=5)
        with pytest.raises(ValueError):
            ArrivalBurst(at=0.0, n=0)
        with pytest.raises(ValueError):
            ArrivalBurst(at=0.0, n=5, cost=0.0)
        with pytest.raises(ValueError):
            ArrivalBurst(at=0.0, n=5, spread=-1.0)
        with pytest.raises(ValueError):
            ArrivalBurst(at=0.0, n=5, deadline=0.0)
        with pytest.raises(ValueError):
            ArrivalBurst(at=0.0, n=5, prefix="")

    def test_describe_mentions_the_burst(self):
        from repro.faults.plan import ArrivalBurst, FaultPlan

        plan = FaultPlan.of(ArrivalBurst(at=5.0, n=10, cost=40.0, spread=2.0))
        text = plan.describe()
        assert "burst" in text
        assert "10 x" in text
