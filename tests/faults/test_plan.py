"""Tests for declarative fault plans and their validation."""

import math

import pytest

from repro.faults.plan import (
    Brownout,
    FaultPlan,
    QueryCrash,
    QueryStall,
    StatsCorruption,
    random_fault_plan,
)


class TestQueryCrash:
    def test_timed_trigger(self):
        crash = QueryCrash("q", at_time=5.0)
        assert crash.at_time == 5.0 and crash.at_fraction is None

    def test_fraction_trigger(self):
        crash = QueryCrash("q", at_fraction=0.5)
        assert crash.at_fraction == 0.5

    def test_requires_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            QueryCrash("q")
        with pytest.raises(ValueError):
            QueryCrash("q", at_time=1.0, at_fraction=0.5)

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_rejects_bad_time(self, bad):
        with pytest.raises(ValueError):
            QueryCrash("q", at_time=bad)

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5, float("nan")])
    def test_rejects_bad_fraction(self, bad):
        with pytest.raises(ValueError):
            QueryCrash("q", at_fraction=bad)


class TestQueryStall:
    def test_valid(self):
        stall = QueryStall("q", at=1.0, duration=2.0)
        assert stall.duration == 2.0

    @pytest.mark.parametrize("at,dur", [(-1, 1), (float("nan"), 1), (0, 0), (0, -1), (0, float("inf"))])
    def test_rejects_bad_window(self, at, dur):
        with pytest.raises(ValueError):
            QueryStall("q", at=at, duration=dur)


class TestBrownout:
    def test_valid(self):
        assert Brownout(start=0.0, duration=5.0, factor=0.0).factor == 0.0

    @pytest.mark.parametrize("factor", [-0.1, 1.1, float("nan"), float("inf")])
    def test_rejects_bad_factor(self, factor):
        with pytest.raises(ValueError):
            Brownout(start=0.0, duration=5.0, factor=factor)


class TestStatsCorruption:
    def test_nan_and_inf_factors_allowed(self):
        assert math.isnan(StatsCorruption(0.0, 5.0, float("nan")).factor)
        assert math.isinf(StatsCorruption(0.0, 5.0, float("inf")).factor)

    def test_permanent_corruption(self):
        assert StatsCorruption(0.0, None, 2.0).duration is None

    def test_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            StatsCorruption(0.0, 5.0, -1.0)

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            StatsCorruption(0.0, 0.0, 2.0)


class TestFaultPlan:
    def test_of_and_len(self):
        plan = FaultPlan.of(Brownout(0.0, 1.0), QueryCrash("q", at_time=1.0))
        assert len(plan) == 2

    def test_rejects_non_faults(self):
        with pytest.raises(ValueError):
            FaultPlan(faults=("not a fault",))

    def test_for_query(self):
        crash = QueryCrash("a", at_time=1.0)
        stall = QueryStall("b", at=1.0, duration=1.0)
        plan = FaultPlan.of(crash, stall, Brownout(0.0, 1.0))
        assert plan.for_query("a") == (crash,)
        assert plan.for_query("b") == (stall,)
        assert plan.for_query("zzz") == ()

    def test_describe_mentions_every_fault(self):
        plan = FaultPlan.of(
            QueryCrash("a", at_fraction=0.5),
            QueryStall("b", at=1.0, duration=2.0),
            Brownout(0.0, 1.0, factor=0.25),
            StatsCorruption(0.0, None, float("inf")),
        )
        text = plan.describe()
        assert "crash" in text and "stall" in text
        assert "brownout" in text and "corrupt" in text
        assert "permanently" in text

    def test_describe_empty(self):
        assert "empty" in FaultPlan().describe()


class TestRandomFaultPlan:
    def test_deterministic_per_seed(self):
        a = random_fault_plan(3, ["q1", "q2"], horizon=50.0)
        b = random_fault_plan(3, ["q1", "q2"], horizon=50.0)
        assert a.describe() == b.describe()

    def test_different_seeds_differ(self):
        plans = {
            random_fault_plan(s, ["q1", "q2"], horizon=50.0, n_faults=6).describe()
            for s in range(8)
        }
        assert len(plans) > 1

    def test_all_faults_valid_and_counted(self):
        for seed in range(20):
            plan = random_fault_plan(seed, ["a", "b", "c"], 100.0, n_faults=5)
            assert len(plan) == 5  # construction already validated each fault

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            random_fault_plan(0, [], 10.0)
        with pytest.raises(ValueError):
            random_fault_plan(0, ["q"], 0.0)
        with pytest.raises(ValueError):
            random_fault_plan(0, ["q"], 10.0, n_faults=-1)
