"""Tests for the retry policy and controller."""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, QueryCrash
from repro.faults.retry import RetryController, RetryPolicy
from repro.sim.jobs import Job, SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS


class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=1.0, multiplier=2.0, jitter=0.0
        )
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 8.0]

    def test_max_delay_caps_backoff(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=10.0, max_delay=5.0, jitter=0.0
        )
        assert policy.delay(3) == 5.0

    def test_default_jitter_is_nonzero(self):
        # A node crash fails many queries at the same virtual instant; the
        # default policy must not resubmit them all at exactly the same
        # time (a retry storm), so out of the box jitter is on.
        assert RetryPolicy().jitter == 0.1

    def test_default_jitter_spreads_mass_failure_resubmissions(self):
        # K queries killed by one fault: their backoff delays must spread
        # out, deterministically, instead of collapsing onto one instant.
        policy = RetryPolicy()
        delays = [policy.delay(1, f"q{i}") for i in range(50)]
        assert len(set(delays)) > 40  # near-unique per query
        base = policy.base_delay
        assert all(base * 0.9 <= d <= base * 1.1 for d in delays)
        # Deterministic: the same ids yield the same spread on a re-run.
        assert delays == [policy.delay(1, f"q{i}") for i in range(50)]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=4.0, jitter=0.5)
        first = policy.delay(1, "q7")
        assert first == policy.delay(1, "q7")  # same inputs, same delay
        assert 2.0 <= first <= 6.0  # within [1-j, 1+j] * base
        assert policy.delay(1, "q7") != policy.delay(1, "other-query")

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(base_delay=3.0, jitter=0.0)
        assert policy.delay(1, "anything") == 3.0

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=float("nan"))
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_delay=float("inf"))

    def test_rejects_bad_attempt_number(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class FailingJob(Job):
    """A job that always dies after a fixed amount of work."""

    def __init__(self, query_id: str, die_after: float = 5.0) -> None:
        super().__init__(query_id)
        self._die_after = die_after
        self._done = 0.0

    @property
    def completed_work(self) -> float:
        """Work completed so far, U's."""
        return self._done

    @property
    def finished(self) -> bool:
        """Never finishes: it always dies first."""
        return False

    def estimated_remaining_cost(self) -> float:
        """Claimed remaining cost (never reached)."""
        return 100.0

    def advance(self, work: float) -> float:
        """Consume work; raise once the failure point is crossed."""
        from repro.engine.errors import EngineError

        self._done += work
        if self._done >= self._die_after:
            raise EngineError("persistent failure")
        return work

    def retry_copy(self) -> "FailingJob":
        """A fresh copy that will fail again."""
        return FailingJob(self.query_id, self._die_after)


class TestRetryController:
    def test_crash_is_retried_to_completion(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("q", 100))
        injector = FaultInjector(
            rdbms, FaultPlan.of(QueryCrash("q", at_time=5.0))
        )
        injector.arm()
        controller = RetryController(
            rdbms, RetryPolicy(max_attempts=3, base_delay=2.0, jitter=0.0)
        )
        rdbms.run_to_completion(max_time=100.0)
        record = rdbms.record("q")
        assert record.status == "finished"
        assert record.attempts == 2
        assert record.trace.attempts == 2
        assert controller.retried("q") == 1
        # Crash at t=5, backoff 2s, redo 100 U at 10 U/s: finish at 17.
        assert record.trace.finished_at == pytest.approx(17.0)

    def test_retry_waits_for_backoff_delay(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("q", 100))
        FaultInjector(rdbms, FaultPlan.of(QueryCrash("q", at_time=5.0))).arm()
        controller = RetryController(
            rdbms, RetryPolicy(max_attempts=2, base_delay=4.0, jitter=0.0)
        )
        rdbms.run_to_completion(max_time=100.0)
        resubmits = [e for e in controller.events if e.action == "resubmitted"]
        assert len(resubmits) == 1
        assert resubmits[0].time == pytest.approx(9.0)

    def test_persistent_failure_respects_attempts_cap(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(FailingJob("bad", die_after=5.0))
        controller = RetryController(
            rdbms, RetryPolicy(max_attempts=3, base_delay=1.0)
        )
        rdbms.run_to_completion(max_time=100.0)
        record = rdbms.record("bad")
        assert record.status == "failed"
        assert record.attempts == 3  # capped: initial + 2 retries
        assert controller.given_up == ["bad"]
        gave_up = [e for e in controller.events if e.action == "gave-up"]
        assert len(gave_up) == 1 and gave_up[0].attempt == 3
        kinds = [f.kind for f in record.trace.fault_events]
        assert "retry-exhausted" in kinds

    def test_max_attempts_one_disables_retries(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("q", 100))
        FaultInjector(rdbms, FaultPlan.of(QueryCrash("q", at_time=5.0))).arm()
        controller = RetryController(rdbms, RetryPolicy(max_attempts=1))
        rdbms.run_to_completion(max_time=100.0)
        assert rdbms.record("q").status == "failed"
        assert controller.retried("q") == 0
        assert controller.given_up == ["q"]

    def test_job_factory_overrides_retry_copy(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(FailingJob("q", die_after=5.0))
        # The factory swaps the failing job for a healthy synthetic one.
        controller = RetryController(
            rdbms,
            RetryPolicy(max_attempts=2, base_delay=1.0),
            job_factory=lambda job, attempt: SyntheticJob(job.query_id, 50),
        )
        rdbms.run_to_completion(max_time=100.0)
        record = rdbms.record("q")
        assert record.status == "finished"
        assert record.attempts == 2
        assert controller.retried("q") == 1

    def test_trace_records_retry_fault_event(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("q", 100))
        FaultInjector(rdbms, FaultPlan.of(QueryCrash("q", at_time=5.0))).arm()
        RetryController(rdbms, RetryPolicy(max_attempts=2, base_delay=1.0))
        rdbms.run_to_completion(max_time=100.0)
        kinds = [f.kind for f in rdbms.traces["q"].fault_events]
        assert "crash" in kinds and "retry" in kinds


class TestWorkAccounting:
    """Per-attempt preserved/lost accounting and the conservation law:

        gross work executed == useful work at the end + wasted work.
    """

    def run_crash(self, checkpoint_interval=None, max_attempts=3):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(
            SyntheticJob("q", 100, checkpoint_interval=checkpoint_interval)
        )
        FaultInjector(rdbms, FaultPlan.of(QueryCrash("q", at_time=5.0))).arm()
        RetryController(
            rdbms, RetryPolicy(max_attempts=max_attempts, base_delay=2.0)
        )
        rdbms.run_to_completion(max_time=200.0)
        return rdbms.record("q")

    def test_restart_from_scratch_loses_everything(self):
        record = self.run_crash(checkpoint_interval=None)
        assert record.status == "finished"
        # Crash at t=5 with 50 U done; no checkpoint, so all 50 are wasted.
        assert record.trace.work_preserved == [0.0]
        assert record.trace.work_lost == [50.0]
        assert record.trace.wasted_work == pytest.approx(50.0)

    def test_checkpoint_preserves_completed_intervals(self):
        record = self.run_crash(checkpoint_interval=20.0)
        assert record.status == "finished"
        # Crash at 50 U: the last 20-U checkpoint was at 40 U.
        assert record.trace.work_preserved == [40.0]
        assert record.trace.work_lost == [10.0]

    def test_conservation_gross_equals_useful_plus_wasted(self):
        for interval in (None, 20.0):
            record = self.run_crash(checkpoint_interval=interval)
            trace = record.trace
            useful = record.job.completed_work
            # Attempt 1 executed preserved + lost U; attempt 2 executed
            # the rest (useful - preserved).  Everything ever executed is
            # therefore useful + wasted -- no work goes unaccounted.
            gross = sum(trace.work_preserved) + sum(trace.work_lost) + (
                useful - trace.preserved_work
            )
            assert gross == pytest.approx(useful + trace.wasted_work)
            assert useful == pytest.approx(100.0)

    def test_give_up_wastes_final_attempt_too(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(FailingJob("bad", die_after=5.0))
        RetryController(rdbms, RetryPolicy(max_attempts=2, base_delay=1.0))
        rdbms.run_to_completion(max_time=100.0)
        trace = rdbms.traces["bad"]
        # Both attempts failed: each one's work is recorded as lost.
        assert len(trace.work_lost) == 2
        assert trace.preserved_work == 0.0
        assert trace.wasted_work > 0.0


class TestBreakerAwareDelay:
    """Satellite: RetryPolicy.delay consults an optional circuit breaker."""

    def _policy(self):
        return RetryPolicy(
            max_attempts=5, base_delay=1.0, multiplier=2.0, jitter=0.0
        )

    def test_backoff_unchanged_with_closed_breaker(self):
        from repro.qos.breaker import BreakerConfig, CircuitBreaker

        policy = self._policy()
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=3))
        with_breaker = [
            policy.delay(n, breaker=breaker, now=0.0) for n in (1, 2, 3, 4)
        ]
        without = [policy.delay(n) for n in (1, 2, 3, 4)]
        # Pinned: a closed breaker leaves backoff byte-identical.
        assert with_breaker == without == [1.0, 2.0, 4.0, 8.0]

    def test_jittered_backoff_unchanged_with_closed_breaker(self):
        from repro.qos.breaker import CircuitBreaker

        policy = RetryPolicy()
        breaker = CircuitBreaker()
        for i in range(20):
            qid = f"q{i}"
            assert policy.delay(1, qid, breaker=breaker, now=3.0) == \
                policy.delay(1, qid)

    def test_open_breaker_returns_its_cooldown(self):
        from repro.qos.breaker import BreakerConfig, CircuitBreaker

        policy = self._policy()
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, cooldown=30.0)
        )
        breaker.record_failure(10.0)
        # Backoff would say 1 s; the open breaker says wait out 30 s.
        assert policy.delay(1, breaker=breaker, now=10.0) == 30.0
        assert policy.delay(1, breaker=breaker, now=25.0) == 15.0

    def test_expired_cooldown_falls_back_to_backoff(self):
        from repro.qos.breaker import BreakerConfig, CircuitBreaker

        policy = self._policy()
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, cooldown=5.0)
        )
        breaker.record_failure(0.0)
        assert policy.delay(2, breaker=breaker, now=50.0) == 2.0
