"""Tests for executable maintenance policies (Section 5.3 mechanics)."""

import pytest

from repro.core.model import QuerySnapshot
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.wm.maintenance import LostWorkCase
from repro.wm.policies import (
    decide_multi_pi,
    decide_no_pi,
    decide_single_pi,
    execute_policy,
)


def q(qid, remaining, done=0.0):
    return QuerySnapshot(qid, remaining, completed_work=done)


class TestDecisions:
    def test_no_pi_never_aborts(self):
        assert decide_no_pi([q("a", 100)], 1.0, 1.0) == ()

    def test_single_pi_overaborts_under_concurrency(self):
        """Ten queries, deadline = drain time: everything could finish, but
        the single-query PI believes each query needs ``n * c_i / C`` and
        needlessly kills the biggest ones (the paper's Figure 11 effect)."""
        queries = [q(f"q{i}", 10.0 + i) for i in range(10)]
        t_finish = sum(x.remaining_cost for x in queries)  # C = 1
        aborts = decide_single_pi(queries, t_finish, 1.0)
        assert len(aborts) > 0
        # Victims are the largest remaining costs first.
        assert aborts[0] == "q9"

    def test_single_pi_kills_largest_first(self):
        # c = (10, 100): with both running each sees C/2; 100/(0.5) = 200 > 110.
        queries = [q("small", 10), q("big", 100)]
        aborts = decide_single_pi(queries, deadline=110.0, processing_rate=1.0)
        assert aborts == ("big",)

    def test_single_pi_stops_when_all_fit(self):
        queries = [q("a", 10), q("b", 12)]
        # Each sees C/2 = 0.5: worst estimate 24 <= 30.
        assert decide_single_pi(queries, 30.0, 1.0) == ()

    def test_multi_pi_uses_greedy_plan(self):
        queries = [q("a", 10, done=50), q("b", 10, done=0)]
        aborts = decide_multi_pi(
            queries, deadline=10.0, processing_rate=1.0,
            case=LostWorkCase.TOTAL_COST,
        )
        assert aborts == ("b",)


class TestExecutePolicy:
    def _rdbms(self, costs, done=None):
        db = SimulatedRDBMS(processing_rate=1.0)
        done = done or [0.0] * len(costs)
        totals = {}
        for i, (c, d) in enumerate(zip(costs, done)):
            qid = f"Q{i + 1}"
            db.submit(SyntheticJob(qid, c, initial_done=d))
            totals[qid] = c
        return db, totals

    def test_no_pi_generous_deadline_loses_nothing(self):
        db, totals = self._rdbms([10, 20, 30])
        outcome = execute_policy(db, decide_no_pi, deadline=60.0, total_costs=totals)
        assert outcome.unfinished_work == 0.0
        assert set(outcome.finished) == {"Q1", "Q2", "Q3"}
        assert outcome.unfinished_fraction == 0.0

    def test_no_pi_tight_deadline_aborts_at_deadline(self):
        db, totals = self._rdbms([10, 20, 30])
        outcome = execute_policy(db, decide_no_pi, deadline=30.0, total_costs=totals)
        # At t=30 with fair sharing: Q1 done (t=30 exactly), Q2/Q3 unfinished.
        assert outcome.aborted_upfront == ()
        assert len(outcome.aborted_at_deadline) >= 1
        assert outcome.unfinished_work > 0

    def test_multi_pi_meets_deadline_exactly(self):
        db, totals = self._rdbms([10, 20, 30])
        outcome = execute_policy(db, decide_multi_pi, deadline=30.0, total_costs=totals)
        # Greedy plan (Case 2, all e=0: ratio 1 everywhere, largest c saved
        # first): aborts Q3, leaving 30 U of work that drains exactly by 30.
        assert outcome.aborted_at_deadline == ()
        assert outcome.unfinished_work == pytest.approx(30.0)
        assert outcome.unfinished_fraction == pytest.approx(0.5)

    def test_case1_counts_only_completed_work(self):
        db, totals = self._rdbms([10, 20], done=[5, 5])
        outcome = execute_policy(
            db,
            lambda *a, **k: ("Q2",),
            deadline=5.0,
            case=LostWorkCase.COMPLETED_WORK,
            total_costs=totals,
        )
        # Q2 aborted upfront with 5 done; Q1 (5 left) finishes by 5.
        assert outcome.unfinished_work == pytest.approx(5.0)

    def test_drain_engaged(self):
        db, totals = self._rdbms([10])
        execute_policy(db, decide_no_pi, deadline=10.0, total_costs=totals)
        assert db.draining

    def test_negative_deadline_rejected(self):
        db, totals = self._rdbms([10])
        with pytest.raises(ValueError):
            execute_policy(db, decide_no_pi, deadline=-1.0, total_costs=totals)

    def test_total_work_accounting(self):
        db, totals = self._rdbms([10, 20], done=[2, 3])
        totals = {"Q1": 12.0, "Q2": 23.0}
        outcome = execute_policy(db, decide_no_pi, deadline=100.0, total_costs=totals)
        assert outcome.total_work == pytest.approx(35.0)
