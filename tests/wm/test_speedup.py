"""Tests for the single-query speed-up problem (Section 3.1).

The key validation is against brute force: for every candidate victim,
recompute the target's remaining time via the standard-case algorithm with
the victim removed, and check the chosen victim is (one of) the best.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import QuerySnapshot
from repro.core.standard_case import standard_case
from repro.wm.speedup import (
    choose_victim,
    choose_victim_equal_priority,
    choose_victims,
)


def q(qid, cost, weight=1.0):
    return QuerySnapshot(qid, cost, weight=weight)


def brute_force_single(queries, target_id, rate):
    """(victim, benefit) maximising the target's time reduction."""
    base = standard_case(queries, rate).remaining_times[target_id]
    best = None
    for victim in queries:
        if victim.query_id == target_id:
            continue
        rest = [x for x in queries if x.query_id != victim.query_id]
        after = standard_case(rest, rate).remaining_times[target_id]
        benefit = base - after
        if best is None or benefit > best[1] + 1e-9:
            best = (victim.query_id, benefit)
    return best


def brute_force_h(queries, target_id, rate, h):
    """Best h-victim subset by exhaustive search."""
    base = standard_case(queries, rate).remaining_times[target_id]
    others = [x for x in queries if x.query_id != target_id]
    best = None
    for combo in itertools.combinations(others, h):
        removed = {x.query_id for x in combo}
        rest = [x for x in queries if x.query_id not in removed]
        after = standard_case(rest, rate).remaining_times[target_id]
        benefit = base - after
        if best is None or benefit > best[1] + 1e-9:
            best = (removed, benefit)
    return best


@st.composite
def weighted_queries(draw, min_n=2, max_n=7):
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    costs = draw(
        st.lists(st.floats(min_value=0.5, max_value=500.0), min_size=n, max_size=n)
    )
    weights = draw(
        st.lists(
            st.sampled_from([1.0, 2.0, 4.0, 8.0]), min_size=n, max_size=n
        )
    )
    return [q(f"q{i}", c, w) for i, (c, w) in enumerate(zip(costs, weights))]


class TestSingleVictim:
    def test_victim_that_outlives_target(self):
        # Target q0 (cost 10); q1 runs longer -- block q1.
        queries = [q("q0", 10), q("q1", 100)]
        choice = choose_victim(queries, "q0", 1.0)
        assert choice.victims == ("q1",)
        # Baseline: q0 finishes at 20 (shared). Alone: 10. Benefit 10.
        assert choice.benefit == pytest.approx(10.0)
        assert choice.baseline_remaining == pytest.approx(20.0)
        assert choice.predicted_remaining == pytest.approx(10.0)

    def test_earlier_finisher_benefit_is_cost_over_rate(self):
        # Target q2 is last; blocking an earlier query saves its cost / C.
        queries = [q("q0", 10), q("q1", 20), q("q2", 100)]
        choice = choose_victim(queries, "q2", 2.0)
        # Both other queries finish earlier; pick the largest cost: q1.
        assert choice.victims == ("q1",)
        assert choice.benefit == pytest.approx(20 / 2.0)

    def test_prediction_consistent_with_benefit(self):
        queries = [q("a", 30), q("b", 60), q("c", 90)]
        choice = choose_victim(queries, "b", 1.0)
        assert choice.baseline_remaining - choice.predicted_remaining == (
            pytest.approx(choice.benefit)
        )

    def test_validation(self):
        queries = [q("a", 1), q("b", 2)]
        with pytest.raises(ValueError):
            choose_victim(queries, "zzz", 1.0)
        with pytest.raises(ValueError):
            choose_victim([q("a", 1)], "a", 1.0)
        with pytest.raises(ValueError):
            choose_victim(queries, "a", 0.0)
        with pytest.raises(ValueError):
            choose_victims(queries, "a", 1.0, h=0)
        with pytest.raises(ValueError):
            choose_victims(queries, "a", 1.0, h=2)

    @given(queries=weighted_queries())
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force(self, queries):
        target = queries[0].query_id
        choice = choose_victim(queries, target, 1.0)
        brute = brute_force_single(queries, target, 1.0)
        assert brute is not None
        assert choice.benefit == pytest.approx(brute[1], rel=1e-6, abs=1e-6)

    @given(queries=weighted_queries())
    @settings(max_examples=60, deadline=None)
    def test_benefit_bounded_by_victim_remaining_time(self, queries):
        """Section 3.1: blocking Q_m saves at most r_m."""
        target = queries[-1].query_id
        choice = choose_victim(queries, target, 1.0)
        r = standard_case(queries, 1.0).remaining_times
        assert choice.benefit <= r[choice.victims[0]] + 1e-6


class TestMultipleVictims:
    def test_two_victims(self):
        queries = [q("t", 50), q("v1", 100), q("v2", 100), q("v3", 10)]
        choice = choose_victims(queries, "t", 1.0, h=2)
        assert set(choice.victims) == {"v1", "v2"}
        assert choice.predicted_remaining < choice.baseline_remaining

    @given(
        queries=weighted_queries(min_n=3, max_n=6),
        h=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=50, deadline=None)
    def test_greedy_matches_exhaustive(self, queries, h):
        if len(queries) - 1 < h:
            return
        target = queries[0].query_id
        choice = choose_victims(queries, target, 1.0, h=h)
        brute = brute_force_h(queries, target, 1.0, h)
        assert brute is not None
        realized = choice.baseline_remaining - choice.predicted_remaining
        assert realized == pytest.approx(brute[1], rel=1e-6, abs=1e-6)

    def test_all_other_queries_blocked_runs_alone(self):
        queries = [q("t", 30), q("a", 10), q("b", 20)]
        choice = choose_victims(queries, "t", 1.0, h=2)
        assert set(choice.victims) == {"a", "b"}
        assert choice.predicted_remaining == pytest.approx(30.0)


class TestEqualPrioritySpecialCase:
    def test_later_query_chosen(self):
        queries = [q("t", 10), q("big", 100), q("small", 5)]
        choice = choose_victim_equal_priority(queries, "t", 1.0)
        assert choice.victims == ("big",)

    def test_target_is_last_picks_largest_other(self):
        queries = [q("a", 1), q("b", 50), q("t", 100)]
        choice = choose_victim_equal_priority(queries, "t", 1.0)
        assert choice.victims == ("b",)

    def test_mixed_weights_rejected(self):
        queries = [q("a", 1, weight=1), q("b", 1, weight=2)]
        with pytest.raises(ValueError):
            choose_victim_equal_priority(queries, "a", 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_victim_equal_priority([q("a", 1)], "a", 1.0)
        with pytest.raises(ValueError):
            choose_victim_equal_priority([q("a", 1), q("b", 1)], "zzz", 1.0)
        with pytest.raises(ValueError):
            choose_victim_equal_priority([q("a", 1), q("b", 1)], "a", 0.0)

    @given(queries=weighted_queries(min_n=2, max_n=7))
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_general_algorithm_on_benefit(self, queries):
        equal = [q(x.query_id, x.remaining_cost, 1.0) for x in queries]
        target = equal[0].query_id
        fast = choose_victim_equal_priority(equal, target, 1.0)
        general = choose_victim(equal, target, 1.0)
        assert fast.benefit == pytest.approx(general.benefit, rel=1e-6, abs=1e-6)
