"""Tests for the exact maintenance oracle (the theoretical limit)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import QuerySnapshot
from repro.wm.maintenance import LostWorkCase, plan_maintenance, quiescent_time
from repro.wm.oracle import exact_maintenance_plan


def q(qid, remaining, done=0.0):
    return QuerySnapshot(qid, remaining, completed_work=done)


@st.composite
def workloads(draw, max_n=9):
    n = draw(st.integers(min_value=1, max_value=max_n))
    items = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=100.0),
                st.floats(min_value=0.0, max_value=100.0),
            ),
            min_size=n,
            max_size=n,
        )
    )
    return [q(f"q{i}", c, d) for i, (c, d) in enumerate(items)]


class TestExactPlan:
    def test_trivial_no_abort(self):
        plan = exact_maintenance_plan([q("a", 10)], 10.0, 1.0)
        assert plan.aborts == ()
        assert plan.lost_work == 0.0

    def test_beats_greedy_on_adversarial_case(self):
        # Greedy by ratio can be suboptimal on knapsack instances.
        queries = [
            q("a", 6, done=5),   # ratio (5+6)/6 = 1.83
            q("b", 5, done=5),   # ratio 2.0
            q("c", 5, done=6),   # ratio 2.2
        ]
        # Deadline allows keeping 10 U of work: optimum keeps b+c
        # (lost = a = 11); greedy aborts a first (by ratio), then needs
        # nothing else: same here -- construct stricter capacity 6:
        deadline = 6.0
        exact = exact_maintenance_plan(queries, deadline, 1.0, LostWorkCase.TOTAL_COST)
        greedy = plan_maintenance(queries, deadline, 1.0, LostWorkCase.TOTAL_COST)
        assert exact.meets_deadline and greedy.meets_deadline
        assert exact.lost_work <= greedy.lost_work + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            exact_maintenance_plan([], -1.0, 1.0)
        with pytest.raises(ValueError):
            exact_maintenance_plan([], 1.0, 0.0)

    @given(
        queries=workloads(),
        frac=st.floats(min_value=0.0, max_value=1.0),
        case=st.sampled_from(list(LostWorkCase)),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_meets_deadline_and_lower_bounds_greedy(self, queries, frac, case):
        deadline = frac * quiescent_time(queries, 1.0)
        exact = exact_maintenance_plan(queries, deadline, 1.0, case)
        greedy = plan_maintenance(queries, deadline, 1.0, case)
        assert exact.meets_deadline
        assert exact.lost_work <= greedy.lost_work + 1e-6

    @given(queries=workloads(max_n=6), frac=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_exact_is_truly_optimal_vs_enumeration(self, queries, frac):
        """Independent subset enumeration confirms optimality."""
        from itertools import combinations

        deadline = frac * quiescent_time(queries, 1.0)
        capacity = deadline  # rate 1.0
        case = LostWorkCase.TOTAL_COST
        best = float("inf")
        ids = list(range(len(queries)))
        for r in range(len(queries) + 1):
            for combo in combinations(ids, r):
                kept = [queries[i] for i in ids if i not in combo]
                if sum(x.remaining_cost for x in kept) <= capacity + 1e-9:
                    lost = sum(case.loss_of(queries[i]) for i in combo)
                    best = min(best, lost)
        exact = exact_maintenance_plan(queries, deadline, 1.0, case)
        assert exact.lost_work == pytest.approx(best, rel=1e-9, abs=1e-6)


class TestDPFallback:
    def test_large_n_uses_dp_and_respects_deadline(self):
        queries = [q(f"q{i}", (i % 7) + 1.0, done=(i % 3) * 2.0) for i in range(30)]
        deadline = 0.4 * quiescent_time(queries, 1.0)
        plan = exact_maintenance_plan(queries, deadline, 1.0, resolution=2000)
        assert plan.meets_deadline

    def test_dp_close_to_enumeration_on_boundary_size(self):
        queries = [q(f"q{i}", (i % 5) + 1.5, done=i * 1.0) for i in range(12)]
        deadline = 0.5 * quiescent_time(queries, 1.0)
        exact = exact_maintenance_plan(queries, deadline, 1.0)
        from repro.wm.oracle import _best_keep_set_dp

        keep = _best_keep_set_dp(
            list(queries), deadline * 1.0, LostWorkCase.TOTAL_COST, 5000
        )
        kept_ids = {x.query_id for x in keep}
        lost_dp = sum(
            LostWorkCase.TOTAL_COST.loss_of(x)
            for x in queries
            if x.query_id not in kept_ids
        )
        # DP is optimal to one capacity bucket.
        assert lost_dp <= exact.lost_work * 1.05 + 1e-6
        assert sum(x.remaining_cost for x in keep) <= deadline + 1e-9

    def test_dp_zero_capacity(self):
        queries = [q("a", 5), q("done", 0, done=3)]
        plan = exact_maintenance_plan(
            queries, 0.0, 1.0, resolution=100
        )
        assert "a" in plan.aborts
