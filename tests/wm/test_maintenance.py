"""Tests for the scheduled maintenance planner (Section 3.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import QuerySnapshot
from repro.wm.maintenance import (
    LostWorkCase,
    largest_remaining_first_plan,
    plan_maintenance,
    quiescent_time,
)


def q(qid, remaining, done=0.0):
    return QuerySnapshot(qid, remaining, completed_work=done)


class TestQuiescentTime:
    def test_total_work_over_rate(self):
        assert quiescent_time([q("a", 10), q("b", 20)], 2.0) == pytest.approx(15.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            quiescent_time([], 0.0)


class TestLostWorkCase:
    def test_case1_counts_completed(self):
        query = q("a", remaining=10, done=4)
        assert LostWorkCase.COMPLETED_WORK.loss_of(query) == 4

    def test_case2_counts_total(self):
        query = q("a", remaining=10, done=4)
        assert LostWorkCase.TOTAL_COST.loss_of(query) == 14


class TestGreedyPlan:
    def test_no_aborts_needed_when_deadline_generous(self):
        plan = plan_maintenance([q("a", 10), q("b", 20)], deadline=30.0,
                                processing_rate=1.0)
        assert plan.aborts == ()
        assert plan.lost_work == 0.0
        assert plan.meets_deadline

    def test_aborts_cheapest_loss_per_saved_second(self):
        # b has done lots of work; a has done none -- abort a first (Case 1).
        queries = [q("a", 20, done=0), q("b", 20, done=50)]
        plan = plan_maintenance(
            queries, deadline=20.0, processing_rate=1.0,
            case=LostWorkCase.COMPLETED_WORK,
        )
        assert plan.aborts == ("a",)
        assert plan.lost_work == 0.0
        assert plan.projected_quiescent_time == pytest.approx(20.0)

    def test_case2_prefers_small_total_cost_per_saved_second(self):
        # Case 2 ratio is (e+c)/c = 1 + e/c: abort the query with the least
        # completed work relative to remaining.
        queries = [q("a", 10, done=90), q("b", 10, done=5)]
        plan = plan_maintenance(
            queries, deadline=10.0, processing_rate=1.0,
            case=LostWorkCase.TOTAL_COST,
        )
        assert plan.aborts == ("b",)
        assert plan.lost_work == pytest.approx(15.0)

    def test_zero_deadline_aborts_everything_outstanding(self):
        queries = [q("a", 10), q("b", 5), q("done", 0, done=8)]
        plan = plan_maintenance(queries, 0.0, 1.0)
        assert set(plan.aborts) == {"a", "b"}
        assert plan.projected_quiescent_time == 0.0

    def test_zero_remaining_never_aborted(self):
        plan = plan_maintenance([q("done", 0, done=5)], 0.0, 1.0)
        assert plan.aborts == ()

    def test_unfinished_fraction(self):
        queries = [q("a", 10, done=0), q("b", 10, done=0)]
        plan = plan_maintenance(queries, 10.0, 1.0, case=LostWorkCase.TOTAL_COST)
        assert len(plan.aborts) == 1
        assert plan.unfinished_fraction == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_maintenance([], -1.0, 1.0)
        with pytest.raises(ValueError):
            plan_maintenance([], 1.0, 0.0)

    @given(
        queries=st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=100.0),
                st.floats(min_value=0.0, max_value=100.0),
            ),
            min_size=1,
            max_size=10,
        ),
        frac=st.floats(min_value=0.0, max_value=1.2),
        case=st.sampled_from(list(LostWorkCase)),
    )
    @settings(max_examples=80, deadline=None)
    def test_plan_always_meets_deadline(self, queries, frac, case):
        snaps = [q(f"q{i}", c, d) for i, (c, d) in enumerate(queries)]
        deadline = frac * quiescent_time(snaps, 1.0)
        plan = plan_maintenance(snaps, deadline, 1.0, case)
        assert plan.meets_deadline

    @given(
        queries=st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=100.0),
                st.floats(min_value=0.0, max_value=100.0),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_generous_deadline_aborts_nothing(self, queries):
        snaps = [q(f"q{i}", c, d) for i, (c, d) in enumerate(queries)]
        plan = plan_maintenance(snaps, quiescent_time(snaps, 1.0) + 1.0, 1.0)
        assert plan.aborts == ()


class TestLargestRemainingFirst:
    def test_abort_order_is_largest_first(self):
        queries = [q("small", 5), q("big", 50), q("mid", 20)]
        plan = largest_remaining_first_plan(queries, 10.0, 1.0)
        assert plan.aborts[0] == "big"
        assert plan.meets_deadline

    def test_loses_more_than_greedy_when_big_query_is_cheap(self):
        # The big query has barely started (cheap to kill under Case 1)...
        # but under Case 2 killing it costs its whole cost; greedy can do
        # better by killing two smaller, barely-started queries.
        queries = [
            q("big", 60, done=1),
            q("m1", 25, done=1),
            q("m2", 25, done=1),
        ]
        greedy = plan_maintenance(queries, 60.0, 1.0, LostWorkCase.TOTAL_COST)
        naive = largest_remaining_first_plan(
            queries, 60.0, 1.0, LostWorkCase.TOTAL_COST
        )
        assert greedy.lost_work <= naive.lost_work

    def test_validation(self):
        with pytest.raises(ValueError):
            largest_remaining_first_plan([], -1.0, 1.0)
        with pytest.raises(ValueError):
            largest_remaining_first_plan([], 1.0, 0.0)
