"""Tests for the runaway-query watchdog: PI path, fallback path, escalation."""

import pytest

from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.wm.watchdog import RunawayQueryWatchdog


def make_rdbms(**costs):
    rdbms = SimulatedRDBMS(processing_rate=10.0)
    for qid, cost in costs.items():
        rdbms.submit(SyntheticJob(qid, cost))
    return rdbms


class TestPiPath:
    def test_runaway_is_demoted_then_aborted(self):
        rdbms = make_rdbms(small=50, huge=5000)
        watchdog = RunawayQueryWatchdog(rdbms, budget_seconds=30.0)
        watchdog.attach()
        rdbms.run_to_completion(max_time=1000.0)
        assert [a.action for a in watchdog.actions if a.query_id == "huge"] == [
            "deprioritize",
            "abort",
        ]
        assert rdbms.record("huge").status == "aborted"
        assert rdbms.record("huge").trace.aborted_at is not None
        assert rdbms.record("huge").trace.failed_at is None

    def test_pi_estimates_are_recorded(self):
        rdbms = make_rdbms(small=50, huge=5000)
        watchdog = RunawayQueryWatchdog(rdbms, budget_seconds=30.0)
        watchdog.attach()
        rdbms.run_to_completion(max_time=1000.0)
        for action in watchdog.actions:
            assert not action.used_fallback
            assert action.estimated_remaining is not None
            assert action.estimated_remaining > 0
        assert not watchdog.fallback_engaged

    def test_prediction_fires_before_budget_is_burned(self):
        # The PI knows at t=1 that huge cannot finish inside the budget,
        # so enforcement happens long before 30 virtual seconds elapse.
        rdbms = make_rdbms(small=50, huge=5000)
        watchdog = RunawayQueryWatchdog(rdbms, budget_seconds=30.0)
        watchdog.attach()
        rdbms.run_to_completion(max_time=1000.0)
        abort = [a for a in watchdog.actions if a.action == "abort"][0]
        assert abort.time < 30.0

    def test_innocent_queries_are_untouched(self):
        rdbms = make_rdbms(a=50, b=80, c=60)
        watchdog = RunawayQueryWatchdog(rdbms, budget_seconds=100.0)
        watchdog.attach()
        rdbms.run_to_completion(max_time=1000.0)
        assert watchdog.actions == []
        assert all(
            rdbms.record(q).status == "finished" for q in ("a", "b", "c")
        )

    def test_watchdog_frees_capacity_for_survivors(self):
        rdbms = make_rdbms(small=100, huge=5000)
        watchdog = RunawayQueryWatchdog(rdbms, budget_seconds=30.0)
        watchdog.attach()
        rdbms.run_to_completion(max_time=1000.0)
        # huge is aborted by t=2; small then owns the full 10 U/s and
        # finishes well before its unprotected time of 20s.
        assert rdbms.traces["small"].finished_at < 15.0


class TestFallbackPath:
    def test_nan_estimates_engage_observed_work_fallback(self):
        rdbms = make_rdbms(q=1000)
        rdbms.corrupt_estimates(float("nan"))
        watchdog = RunawayQueryWatchdog(rdbms, budget_seconds=10.0)
        watchdog.attach()
        rdbms.run_to_completion(max_time=500.0)
        assert watchdog.fallback_engaged
        assert all(a.used_fallback for a in watchdog.actions)
        assert all(a.estimated_remaining is None for a in watchdog.actions)
        assert rdbms.record("q").status == "aborted"

    def test_fallback_waits_for_observed_overrun(self):
        # Without an estimate the watchdog cannot predict: it only acts
        # once the query has observably exceeded the budget.
        rdbms = make_rdbms(q=1000)
        rdbms.corrupt_estimates(float("nan"))
        watchdog = RunawayQueryWatchdog(rdbms, budget_seconds=10.0)
        watchdog.attach()
        rdbms.run_to_completion(max_time=500.0)
        first = watchdog.actions[0]
        assert first.time > 10.0

    def test_inf_corruption_also_degrades(self):
        rdbms = make_rdbms(q=1000)
        rdbms.corrupt_estimates(float("inf"))
        watchdog = RunawayQueryWatchdog(rdbms, budget_seconds=10.0)
        watchdog.attach()
        rdbms.run_to_completion(max_time=500.0)
        assert watchdog.fallback_engaged
        assert rdbms.record("q").status == "aborted"

    def test_fallback_spares_queries_within_budget(self):
        rdbms = make_rdbms(q=50)  # finishes at t=5
        rdbms.corrupt_estimates(float("nan"))
        watchdog = RunawayQueryWatchdog(rdbms, budget_seconds=10.0)
        watchdog.attach()
        rdbms.run_to_completion(max_time=500.0)
        assert rdbms.record("q").status == "finished"
        assert watchdog.actions == []

    def test_recovers_to_pi_path_when_corruption_clears(self):
        rdbms = make_rdbms(q=5000)
        rdbms.corrupt_estimates(float("nan"))
        rdbms.add_event(5.0, lambda r: r.clear_estimate_corruption())
        watchdog = RunawayQueryWatchdog(rdbms, budget_seconds=30.0)
        watchdog.attach()
        rdbms.run_to_completion(max_time=1000.0)
        # Once stats heal at t=5 the PI predicts the overrun immediately
        # (events fire before same-tick samplers, so the t=5 check sees
        # clean estimates).
        assert watchdog.actions
        assert not watchdog.actions[0].used_fallback
        assert watchdog.actions[0].time == pytest.approx(5.0)


class TestPartialSnapshots:
    """Per-query carry-back: one corrupt query must not blind the rest."""

    def test_corrupt_query_policed_with_carried_back_estimate(self):
        rdbms = make_rdbms(small=50, huge=5000)
        watchdog = RunawayQueryWatchdog(rdbms, budget_seconds=30.0)
        watchdog.attach()
        # Let the sampler observe one finite estimate for huge, then
        # corrupt only huge's stats mid-flight.
        rdbms.run_until(1.5)
        rdbms.corrupt_estimates(float("nan"), "huge")
        rdbms.run_to_completion(max_time=1000.0)
        abort = [a for a in watchdog.actions if a.action == "abort"][0]
        assert abort.query_id == "huge"
        assert abort.used_fallback
        assert "carried-back" in abort.reason
        assert rdbms.record("huge").status == "aborted"

    def test_healthy_queries_keep_predictive_estimates(self):
        rdbms = make_rdbms(small=50, huge=5000, other=4000)
        watchdog = RunawayQueryWatchdog(rdbms, budget_seconds=30.0)
        watchdog.attach()
        rdbms.run_until(1.5)
        rdbms.corrupt_estimates(float("nan"), "huge")
        rdbms.run_to_completion(max_time=1000.0)
        # other is also a runaway but its stats are fine: its actions
        # stay on the real PI path, no whole-tick fallback.
        other_actions = [a for a in watchdog.actions if a.query_id == "other"]
        assert other_actions
        assert all(not a.used_fallback for a in other_actions)
        assert all(a.estimated_remaining is not None for a in other_actions)
        assert rdbms.record("other").status == "aborted"
        assert rdbms.record("small").status == "finished"

    def test_never_seen_finite_falls_back_to_observed_work(self):
        # Corrupted before the first sampler tick: no finite history to
        # carry back, so this one query degrades to the observed-work
        # heuristic while the rest of the tick stays predictive.
        rdbms = make_rdbms(small=50, huge=5000)
        rdbms.corrupt_estimates(float("nan"), "huge")
        watchdog = RunawayQueryWatchdog(rdbms, budget_seconds=30.0)
        watchdog.attach()
        rdbms.run_to_completion(max_time=1000.0)
        abort = [a for a in watchdog.actions if a.action == "abort"][0]
        assert abort.used_fallback
        assert "no usable estimate" in abort.reason
        assert abort.time > 30.0  # waited for the observed overrun
        assert rdbms.record("small").status == "finished"

    def test_escalation_continues_across_corruption_onset(self):
        # Stats go bad *between* the demote and the abort: the watchdog
        # escalates anyway, switching that query to the carried-back
        # number instead of stalling its enforcement ladder.
        rdbms = make_rdbms(q=5000)
        watchdog = RunawayQueryWatchdog(rdbms, budget_seconds=300.0)
        watchdog.attach()
        rdbms.run_until(1.5)  # t=1 tick: predictive demote
        rdbms.corrupt_estimates(float("nan"), "q")
        rdbms.run_to_completion(max_time=2000.0)
        demote, abort = watchdog.actions
        assert demote.action == "deprioritize" and not demote.used_fallback
        assert abort.action == "abort" and abort.used_fallback
        assert abort.time == pytest.approx(2.0)
        assert rdbms.record("q").status == "aborted"


class TestConstruction:
    def test_rejects_bad_budget(self):
        rdbms = make_rdbms(q=10)
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                RunawayQueryWatchdog(rdbms, budget_seconds=bad)

    def test_rejects_bad_interval(self):
        rdbms = make_rdbms(q=10)
        with pytest.raises(ValueError):
            RunawayQueryWatchdog(rdbms, budget_seconds=10.0, check_interval=0.0)

    def test_attach_is_single_shot(self):
        rdbms = make_rdbms(q=10)
        watchdog = RunawayQueryWatchdog(rdbms, budget_seconds=10.0)
        watchdog.attach()
        with pytest.raises(RuntimeError):
            watchdog.attach()

    def test_demoted_and_aborted_properties(self):
        rdbms = make_rdbms(small=50, huge=5000)
        watchdog = RunawayQueryWatchdog(rdbms, budget_seconds=30.0)
        watchdog.attach()
        rdbms.run_to_completion(max_time=1000.0)
        assert watchdog.demoted == ("huge",)
        assert watchdog.aborted == ("huge",)


class TestDeadlineMode:
    """Predictive deadline enforcement: demote/abort ahead of expiry."""

    def test_predicted_miss_is_demoted_then_aborted_early(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        # 2000 U at 10 U/s needs 200 s; the 60 s deadline cannot be met
        # and the PI knows it immediately.
        rdbms.submit(SyntheticJob("doomed", 2000, deadline=60.0))
        watchdog = RunawayQueryWatchdog(rdbms, enforce_deadlines=True)
        watchdog.attach()
        rdbms.run_to_completion(max_time=1000.0)
        actions = [a.action for a in watchdog.actions if a.query_id == "doomed"]
        assert actions == ["deprioritize", "abort"]
        abort = [a for a in watchdog.actions if a.action == "abort"][0]
        # Predictive: well before the hard enforcement at t=60.
        assert abort.time < 60.0
        assert "deadline" in abort.reason
        assert not abort.used_fallback

    def test_meetable_deadline_left_alone(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("fine", 100, deadline=50.0))
        watchdog = RunawayQueryWatchdog(rdbms, enforce_deadlines=True)
        watchdog.attach()
        rdbms.run_to_completion(max_time=1000.0)
        assert watchdog.actions == []
        assert rdbms.record("fine").status == "finished"

    def test_queries_without_deadlines_are_ignored(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("huge", 5000))
        watchdog = RunawayQueryWatchdog(rdbms, enforce_deadlines=True)
        watchdog.attach()
        rdbms.run_to_completion(max_time=1000.0)
        assert watchdog.actions == []
        assert rdbms.record("huge").status == "finished"

    def test_no_estimate_leaves_hard_enforcement_as_backstop(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("q", 2000, deadline=30.0))
        # Corrupted stats: the PI refuses, and deadline mode is purely
        # predictive -- so the watchdog stays silent and the RDBMS's hard
        # enforcement kills the query at expiry instead.
        rdbms.corrupt_estimates(float("nan"), "q")
        watchdog = RunawayQueryWatchdog(rdbms, enforce_deadlines=True)
        watchdog.attach()
        rdbms.run_to_completion(max_time=1000.0)
        assert watchdog.actions == []
        record = rdbms.record("q")
        assert record.status == "aborted"
        assert record.trace.aborted_at == pytest.approx(30.0)

    def test_budget_and_deadline_modes_compose(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("overbudget", 5000))
        rdbms.submit(SyntheticJob("misses", 900, deadline=30.0))
        watchdog = RunawayQueryWatchdog(
            rdbms, budget_seconds=200.0, enforce_deadlines=True
        )
        watchdog.attach()
        rdbms.run_to_completion(max_time=2000.0)
        assert "overbudget" in watchdog.aborted
        assert "misses" in watchdog.aborted

    def test_needs_budget_or_deadline_mode(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        with pytest.raises(ValueError):
            RunawayQueryWatchdog(rdbms)

    def test_budget_none_exposed(self):
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        watchdog = RunawayQueryWatchdog(rdbms, enforce_deadlines=True)
        assert watchdog.budget_seconds is None
