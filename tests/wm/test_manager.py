"""Tests for the adaptive maintenance manager."""

import pytest

from repro.sim.jobs import CostNoiseJob, SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.wm.manager import AdaptiveMaintenanceManager, run_adaptive_maintenance


def build_rdbms(costs, noise=None):
    db = SimulatedRDBMS(processing_rate=1.0)
    for i, c in enumerate(costs):
        job = SyntheticJob(f"Q{i + 1}", c)
        if noise:
            job = CostNoiseJob(job, noise[i])
        db.submit(job)
    return db


class TestAdaptiveManager:
    def test_generous_deadline_aborts_nothing(self):
        db = build_rdbms([10, 20, 30])
        manager = run_adaptive_maintenance(db, deadline=60.0)
        assert manager.total_aborted == []
        assert all(r.status == "finished" for r in db.records().values())

    def test_tight_deadline_plans_upfront(self):
        db = build_rdbms([10, 20, 30])
        manager = run_adaptive_maintenance(db, deadline=30.0)
        # Initial plan must abort enough to drain 30 U by t=30.
        assert manager.events[0].aborted != ()
        assert db.quiescent() or not db.running

    def test_drains_by_deadline_under_accurate_estimates(self):
        db = build_rdbms([15, 25, 40, 60])
        manager = run_adaptive_maintenance(db, deadline=70.0)
        finished = [
            r for r in db.records().values() if r.status == "finished"
        ]
        assert finished, "some queries should finish"
        # Nothing left running past the deadline.
        assert not db.running and not db.queued
        # With exact estimates, no late (O3) aborts are needed.
        assert manager.finish() == ()

    def test_revision_catches_underestimated_costs(self):
        """Jobs report half their true remaining cost: the initial plan is
        too optimistic, and later revisions must abort more queries."""
        costs = [40.0, 50.0, 60.0, 70.0]
        db = build_rdbms(costs, noise=[0.5] * 4)
        manager = run_adaptive_maintenance(db, deadline=60.0, check_interval=2.0)
        # The initial (deceived) plan kept too much work; revisions fired.
        later_aborts = [e for e in manager.events[1:] if e.aborted]
        assert later_aborts, "expected at least one corrective revision"
        assert manager.revision_count >= 1

    def test_drain_engaged_and_arrivals_rejected(self):
        db = build_rdbms([10])
        manager = AdaptiveMaintenanceManager(db, deadline=100.0)
        manager.start()
        with pytest.raises(RuntimeError):
            db.submit(SyntheticJob("late", 5))

    def test_past_deadline_rejected(self):
        db = build_rdbms([10])
        db.run_until(50.0)
        with pytest.raises(ValueError):
            run_adaptive_maintenance(db, deadline=10.0)

    def test_degraded_snapshot_carries_back_per_query(self):
        # One query's stats go non-finite mid-run: revisions keep
        # planning it from its last finite observation and record it as
        # degraded, instead of abandoning the whole revision.
        db = build_rdbms([10, 20, 30])
        manager = AdaptiveMaintenanceManager(
            db, deadline=200.0, check_interval=2.0
        )
        manager.start()
        db.run_until(3.0)
        db.corrupt_estimates(float("nan"), "Q3")
        db.run_to_completion(max_time=500.0)
        manager.finish()
        degraded_events = [e for e in manager.events if e.degraded]
        assert degraded_events
        assert all(e.degraded == ("Q3",) for e in degraded_events)
        # The generous deadline means the degraded query still finishes.
        assert db.record("Q3").status == "finished"
        assert manager.total_aborted == []

    def test_event_log_records_projections(self):
        db = build_rdbms([10, 20])
        manager = run_adaptive_maintenance(db, deadline=30.0, check_interval=5.0)
        assert manager.events[0].time == 0.0
        assert manager.events[0].projected_drain <= 30.0 + 1e-6
        times = [e.time for e in manager.events]
        assert times == sorted(times)
