"""Tests for the multiple-query speed-up problem (Section 3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import QuerySnapshot
from repro.core.standard_case import standard_case
from repro.wm.multi_speedup import choose_victim_for_all, improvement_of_blocking


def q(qid, cost, weight=1.0):
    return QuerySnapshot(qid, cost, weight=weight)


def brute_force(queries, rate):
    """Total response-time improvement of blocking each candidate."""
    base = standard_case(queries, rate).remaining_times
    improvements = {}
    for victim in queries:
        rest = [x for x in queries if x.query_id != victim.query_id]
        after = standard_case(rest, rate).remaining_times
        improvements[victim.query_id] = sum(
            base[x.query_id] - after[x.query_id] for x in rest
        )
    return improvements


@st.composite
def weighted_queries(draw, min_n=2, max_n=7):
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    costs = draw(
        st.lists(st.floats(min_value=0.5, max_value=300.0), min_size=n, max_size=n)
    )
    weights = draw(
        st.lists(st.sampled_from([1.0, 2.0, 4.0]), min_size=n, max_size=n)
    )
    return [q(f"q{i}", c, w) for i, (c, w) in enumerate(zip(costs, weights))]


class TestChooseVictimForAll:
    def test_simple_case(self):
        # Blocking the longest query helps the most stages.
        queries = [q("a", 10), q("b", 20), q("c", 100)]
        choice = choose_victim_for_all(queries, 1.0)
        assert choice.victim == "c"
        assert choice.improvement > 0

    def test_improvement_formula_small_example(self):
        # Two equal queries, C=1: blocking either turns a (20,20) pair into
        # a solo 10s run for the other: improvement = 20 - 10 = 10.
        queries = [q("a", 10), q("b", 10)]
        choice = choose_victim_for_all(queries, 1.0)
        assert choice.improvement == pytest.approx(10.0)

    def test_all_improvements_reported(self):
        queries = [q("a", 10), q("b", 20), q("c", 30)]
        choice = choose_victim_for_all(queries, 1.0)
        assert set(choice.all_improvements) == {"a", "b", "c"}

    def test_improvement_of_blocking_lookup(self):
        queries = [q("a", 10), q("b", 20)]
        assert improvement_of_blocking(queries, "a", 1.0) >= 0
        with pytest.raises(ValueError):
            improvement_of_blocking(queries, "zzz", 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_victim_for_all([q("a", 1)], 1.0)
        with pytest.raises(ValueError):
            choose_victim_for_all([q("a", 1), q("b", 1)], 0.0)

    @given(queries=weighted_queries())
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force(self, queries):
        choice = choose_victim_for_all(queries, 1.0)
        brute = brute_force(queries, 1.0)
        for qid, r in choice.all_improvements.items():
            assert r == pytest.approx(brute[qid], rel=1e-6, abs=1e-6)
        best = max(brute.values())
        assert choice.improvement == pytest.approx(best, rel=1e-6, abs=1e-6)

    @given(queries=weighted_queries())
    @settings(max_examples=40, deadline=None)
    def test_improvements_nonnegative(self, queries):
        choice = choose_victim_for_all(queries, 1.0)
        assert all(v >= -1e-9 for v in choice.all_improvements.values())

    @given(
        queries=weighted_queries(),
        rate=st.floats(min_value=0.5, max_value=8.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_rate_scaling(self, queries, rate):
        base = choose_victim_for_all(queries, 1.0)
        scaled = choose_victim_for_all(queries, rate)
        assert scaled.improvement * rate == pytest.approx(
            base.improvement, rel=1e-6, abs=1e-9
        )
