"""Tests for abort-overhead-aware maintenance planning (future-work ext.)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import QuerySnapshot
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.wm.maintenance import LostWorkCase
from repro.wm.overhead import (
    constant_overhead,
    exact_plan_with_overhead,
    plan_ignoring_overhead,
    plan_with_overhead,
    proportional_overhead,
)


def q(qid, remaining, done=0.0):
    return QuerySnapshot(qid, remaining, completed_work=done)


class TestOverheadFns:
    def test_proportional(self):
        fn = proportional_overhead(0.5)
        assert fn(q("a", 10, done=8)) == 4.0
        with pytest.raises(ValueError):
            proportional_overhead(-0.1)

    def test_constant(self):
        fn = constant_overhead(3.0)
        assert fn(q("a", 10)) == 3.0
        with pytest.raises(ValueError):
            constant_overhead(-1)


class TestGreedyWithOverhead:
    def test_zero_overhead_matches_base_greedy(self):
        from repro.wm.maintenance import plan_maintenance

        queries = [q("a", 30, 5), q("b", 20, 40), q("c", 50, 1)]
        base = plan_maintenance(queries, 40.0, 1.0)
        ext = plan_with_overhead(queries, 40.0, 1.0, constant_overhead(0.0))
        assert ext.aborts == base.aborts
        assert ext.projected_quiescent_time == pytest.approx(
            base.projected_quiescent_time
        )

    def test_useless_aborts_skipped(self):
        """A query whose rollback costs as much as finishing it is never
        aborted -- killing it frees no time."""
        queries = [q("cheap_kill", 50, 0), q("expensive_kill", 50, 0)]

        def overhead(query):
            return 60.0 if query.query_id == "expensive_kill" else 0.0

        plan = plan_with_overhead(queries, 50.0, 1.0, overhead)
        assert "expensive_kill" not in plan.aborts
        assert plan.aborts == ("cheap_kill",)
        assert plan.feasible

    def test_rollback_counts_toward_drain(self):
        queries = [q("a", 100, 0), q("b", 10, 0)]
        plan = plan_with_overhead(
            queries, 40.0, 1.0, constant_overhead(20.0)
        )
        # Aborting a leaves b (10) + rollback (20) = 30 <= 40.
        assert plan.aborts == ("a",)
        assert plan.projected_quiescent_time == pytest.approx(30.0)
        assert plan.rollback_work == 20.0

    def test_infeasible_deadline_reported(self):
        queries = [q("a", 100, 0)]
        plan = plan_with_overhead(queries, 10.0, 1.0, constant_overhead(50.0))
        # Aborting costs 50 > deadline; keeping costs 100: infeasible.
        assert not plan.feasible

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_with_overhead([], -1.0, 1.0, constant_overhead(0))
        with pytest.raises(ValueError):
            plan_with_overhead([], 1.0, 0.0, constant_overhead(0))
        with pytest.raises(ValueError):
            plan_with_overhead([q("a", 1)], 1.0, 1.0, lambda _: -1.0)

    @given(
        items=st.lists(
            st.tuples(
                st.floats(min_value=0.5, max_value=100.0),
                st.floats(min_value=0.0, max_value=100.0),
                st.floats(min_value=0.0, max_value=30.0),
            ),
            min_size=1,
            max_size=8,
        ),
        frac=st.floats(min_value=0.1, max_value=1.2),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_never_loses_to_greedy(self, items, frac):
        queries = [q(f"q{i}", c, d) for i, (c, d, _) in enumerate(items)]
        overheads = {f"q{i}": o for i, (_, _, o) in enumerate(items)}
        fn = lambda query: overheads[query.query_id]
        deadline = frac * sum(c for c, _, _ in items)
        greedy = plan_with_overhead(queries, deadline, 1.0, fn)
        exact = exact_plan_with_overhead(queries, deadline, 1.0, fn)
        if greedy.feasible:
            assert exact.feasible
            assert exact.lost_work <= greedy.lost_work + 1e-6

    @given(
        items=st.lists(
            st.tuples(
                st.floats(min_value=0.5, max_value=100.0),
                st.floats(min_value=0.0, max_value=100.0),
            ),
            min_size=1,
            max_size=8,
        ),
        frac=st.floats(min_value=0.0, max_value=1.2),
        fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_aware_drain_never_worse_than_blind(self, items, frac, fraction):
        queries = [q(f"q{i}", c, d) for i, (c, d) in enumerate(items)]
        fn = proportional_overhead(fraction)
        deadline = frac * sum(c for c, _ in items)
        aware = plan_with_overhead(queries, deadline, 1.0, fn)
        blind = plan_ignoring_overhead(queries, deadline, 1.0, fn)
        if blind.feasible:
            assert aware.feasible


class TestSimulatorRollback:
    def test_abort_with_overhead_extends_drain(self):
        db = SimulatedRDBMS(processing_rate=1.0)
        db.submit(SyntheticJob("a", 100))
        db.submit(SyntheticJob("b", 10))
        db.abort("a", rollback_overhead=20.0)
        db.run_to_completion()
        # b (10) + rollback (20) share capacity; drain at t=30.
        assert db.clock == pytest.approx(30.0)
        assert db.record("__rollback_a").status == "finished"

    def test_rollback_runs_even_while_draining(self):
        db = SimulatedRDBMS(processing_rate=1.0)
        db.submit(SyntheticJob("a", 100))
        db.drain(True)
        db.abort("a", rollback_overhead=15.0)
        db.run_to_completion()
        assert db.clock == pytest.approx(15.0)

    def test_negative_overhead_rejected(self):
        db = SimulatedRDBMS()
        db.submit(SyntheticJob("a", 1))
        with pytest.raises(ValueError):
            db.abort("a", rollback_overhead=-1.0)

    def test_zero_overhead_injects_nothing(self):
        db = SimulatedRDBMS()
        db.submit(SyntheticJob("a", 5))
        db.abort("a")
        assert "__rollback_a" not in db.records()
