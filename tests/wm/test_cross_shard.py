"""Tests for cross-shard straggler detection and victim selection."""

import pytest

from repro.dist import ShardedCluster, load_tpcr
from repro.wm.cross_shard import (
    ClusterWatchdog,
    detect_stragglers,
    choose_cross_shard_victim,
)
from repro.workload.tpcr import TpcrConfig

SMALL = TpcrConfig(scale=1 / 8000, seed=0)


def make_cluster(**kwargs) -> ShardedCluster:
    defaults = dict(n_shards=3, replication=2, processing_rate=10.0)
    defaults.update(kwargs)
    cluster = ShardedCluster(**defaults)
    load_tpcr(cluster, config=SMALL, part_sizes={1: 4})
    return cluster


def brownout_straggler_cluster(factor=0.1, **kwargs):
    """A cluster where one shard's node crawls: a guaranteed straggler."""
    cluster = make_cluster(**kwargs)
    cluster.submit("Q", "SELECT * FROM lineitem")
    # Slow whichever node serves shard 1's sub-query.
    dq = cluster.query("Q")
    victim_node = dq.shard_subqueries(1)[0].node_id
    cluster.nodes[victim_node].set_brownout(factor)
    return cluster, victim_node


class TestDetectStragglers:
    def test_ratio_must_exceed_one(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            detect_stragglers(cluster, ratio=1.0)

    def test_balanced_cluster_has_no_stragglers(self):
        cluster = make_cluster()
        cluster.submit("Q", "SELECT * FROM lineitem")
        cluster.run_until(2.0)
        assert detect_stragglers(cluster) == []

    def test_browned_out_shard_detected(self):
        cluster, victim_node = brownout_straggler_cluster()
        cluster.run_until(4.0)
        stragglers = detect_stragglers(cluster)
        assert stragglers
        worst = stragglers[0]
        assert worst.query_id == "Q"
        assert worst.shard == 1
        assert worst.node_id == victim_node
        assert worst.lag_ratio > 2.0

    def test_degraded_contributions_are_skipped(self):
        cluster, _ = brownout_straggler_cluster()
        cluster.run_until(4.0)
        # Force every contribution of Q degraded: no fresh numbers, no
        # straggler calls -- acting on stale data would be noise.
        dq = cluster.query("Q")
        for shard in dq.shards:
            cluster.aggregator.mark_degraded("Q", shard)
        assert detect_stragglers(cluster) == []

    def test_finished_queries_are_ignored(self):
        cluster = make_cluster()
        cluster.submit("Q", "SELECT * FROM lineitem")
        cluster.run_to_completion()
        assert detect_stragglers(cluster) == []


class TestChooseCrossShardVictim:
    def test_picks_victim_on_straggler_node(self):
        cluster, victim_node = brownout_straggler_cluster()
        # A second query gives the straggler's node something to block.
        cluster.submit("bg", "SELECT * FROM lineitem WHERE partkey > 0")
        cluster.run_until(4.0)
        straggler = detect_stragglers(cluster)[0]
        choice = choose_cross_shard_victim(cluster, straggler)
        node_jobs = {
            j.query_id for j in cluster.nodes[straggler.node_id].rdbms.running
        }
        assert set(choice.victims) <= node_jobs
        # Never blocks the straggling query's own sub-queries.
        own = {s.sub_id for s in cluster.query("Q").subqueries.values()}
        assert not (set(choice.victims) & own)

    def test_rejects_straggler_with_no_running_subquery(self):
        cluster, _ = brownout_straggler_cluster()
        cluster.run_until(4.0)
        straggler = detect_stragglers(cluster)[0]
        cluster.run_to_completion()
        with pytest.raises(ValueError):
            choose_cross_shard_victim(cluster, straggler)


class TestClusterWatchdog:
    def run_watched(self, watchdog, cluster, until=500.0):
        t = 0.0
        while not all(
            dq.terminal for dq in cluster.queries().values()
        ):
            t += 1.0
            assert t < until, "cluster failed to quiesce"
            cluster.run_until(t)
            watchdog.check()

    def test_detects_and_blocks_once_per_shard(self):
        cluster, victim_node = brownout_straggler_cluster()
        cluster.submit("bg", "SELECT * FROM lineitem WHERE partkey > 0")
        watchdog = ClusterWatchdog(cluster, ratio=2.0)
        self.run_watched(watchdog, cluster)
        acted = [(a.query_id, a.shard) for a in watchdog.actions]
        assert ("Q", 1) in acted
        assert len(acted) == len(set(acted))  # at most once per pair

    def test_blocked_victims_are_released_and_finish(self):
        cluster, _ = brownout_straggler_cluster(factor=0.2)
        cluster.submit("bg", "SELECT * FROM lineitem WHERE partkey > 0")
        watchdog = ClusterWatchdog(cluster, ratio=2.0)
        self.run_watched(watchdog, cluster)
        # Every query -- including any whose sub-query was blocked as a
        # victim -- still runs to completion.
        for dq in cluster.queries().values():
            assert dq.finished, dq.error
        blocked = [a for a in watchdog.actions if a.victims]
        if blocked:
            assert all(a.benefit > 0 for a in blocked)

    def test_detection_only_mode_never_blocks(self):
        cluster, _ = brownout_straggler_cluster()
        cluster.submit("bg", "SELECT * FROM lineitem WHERE partkey > 0")
        watchdog = ClusterWatchdog(cluster, block_victims=False)
        self.run_watched(watchdog, cluster)
        assert watchdog.actions
        assert all(a.victims == () for a in watchdog.actions)

    def test_straggler_counter_reaches_observability(self):
        from repro.obs import Observability

        obs = Observability()
        cluster, _ = brownout_straggler_cluster(obs=obs)
        watchdog = ClusterWatchdog(cluster, block_victims=False)
        self.run_watched(watchdog, cluster)
        assert obs.metrics.counter("dist.stragglers").value >= 1
