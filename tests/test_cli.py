"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "mcq"])
        assert args.name == "mcq"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "bogus"])


class TestDemo:
    def test_demo_output(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "single-query PI estimate" in out
        assert "multi-query  PI estimate" in out
        assert "actual completion" in out


class TestSql:
    def test_select(self, capsys):
        code = main(["sql", "SELECT count(*) FROM part_1", "--scale", "0.0001"])
        assert code == 0
        out = capsys.readouterr().out
        assert "(1 rows)" in out

    def test_explain(self, capsys):
        code = main(
            ["sql", "--explain", "SELECT * FROM part_1 WHERE partkey = 3",
             "--scale", "0.0001"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "estimated cost" in out

    def test_dml_row_count(self, capsys):
        code = main(
            ["sql", "DELETE FROM part_1 WHERE partkey > 0", "--scale", "0.0001"]
        )
        assert code == 0
        assert "rows affected" in capsys.readouterr().out

    def test_ddl_ok(self, capsys):
        code = main(["sql", "CREATE TABLE z (a INT)", "--scale", "0.0001"])
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_bad_sql_reports_error(self, capsys):
        code = main(["sql", "SELEC oops", "--scale", "0.0001"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestFaults:
    def test_scripted_demo(self, capsys):
        assert main(["faults"]) == 0
        out = capsys.readouterr().out
        assert "fault plan:" in out
        assert "recovery timeline:" in out
        assert "brownout-begin" in out
        assert "crash" in out
        assert "stall-begin" in out
        assert "corruption-begin" in out
        assert "resubmitted" in out
        assert "[fallback]" in out
        assert "all queries terminal: yes" in out
        assert "watchdog fallback engaged: yes" in out

    def test_seeded_random_plan(self, capsys):
        assert main(["faults", "--seed", "7", "--retries", "2"]) == 0
        out = capsys.readouterr().out
        assert "fault plan:" in out
        assert "all queries terminal: yes" in out

    def test_invalid_knobs_report_clean_errors(self, capsys):
        assert main(["faults", "--retries", "0"]) == 1
        assert "error:" in capsys.readouterr().err
        assert main(["faults", "--budget", "-5"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_budget_flag(self, capsys):
        assert main(["faults", "--budget", "1000"]) == 0
        out = capsys.readouterr().out
        # A huge budget means the watchdog never fires.
        assert "watchdog" not in out.split("final outcome:")[0].split(
            "recovery timeline:"
        )[1]


class TestShard:
    def test_scripted_crash_demo(self, capsys):
        assert main(["shard"]) == 0
        out = capsys.readouterr().out
        assert "cluster: 4 shards x 2 replicas" in out
        assert "Q1 [pushdown]" in out
        assert "Q2 [gather]" in out
        assert "fault plan:" in out
        assert "global PI" in out
        assert "fault/recovery log:" in out
        assert "identical to single-node: yes" in out
        assert "NO" not in out
        assert "failovers:" in out

    def test_no_fault_baseline(self, capsys):
        assert main(["shard", "--no-fault", "--shards", "3"]) == 0
        out = capsys.readouterr().out
        assert "(no faults injected)" in out
        assert "identical to single-node: yes" in out

    def test_seeded_node_fault_plan(self, capsys):
        assert main(["shard", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "fault plan:" in out
        assert "identical to single-node: yes" in out

    def test_invalid_knobs_report_clean_errors(self, capsys):
        assert main(["shard", "--shards", "1"]) == 1
        assert "error:" in capsys.readouterr().err
        assert main(["shard", "--replication", "9"]) == 1
        assert "error:" in capsys.readouterr().err
        assert main(["shard", "--crash-node", "node99"]) == 1
        assert "error:" in capsys.readouterr().err


class TestScale:
    def test_small_sweep(self, capsys, tmp_path):
        out_json = tmp_path / "bench.json"
        code = main([
            "scale", "--sizes", "30,60", "--rounds", "1",
            "--sample", "5", "--json", str(out_json),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "full-system PI refresh" in out
        assert "speedup" in out
        import json

        data = json.loads(out_json.read_text())
        assert [p["n"] for p in data["scale"]["points"]] == [30, 60]
        assert data["scale"]["points"][0]["max_rel_diff"] <= 1e-9

    def test_bad_flags_report_clean_errors(self, capsys):
        assert main(["scale", "--sizes", "ten,20"]) == 1
        assert "error:" in capsys.readouterr().err
        assert main(["scale", "--sizes", "10", "--rounds", "0"]) == 1
        assert "error:" in capsys.readouterr().err


class TestExperiments:
    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "lineitem" in capsys.readouterr().out

    def test_mcq(self, capsys):
        assert main(["experiment", "mcq", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "multi-query" in out and "single-query" in out

    def test_naq(self, capsys):
        assert main(["experiment", "naq"]) == 0
        assert "Q3 starts" in capsys.readouterr().out

    def test_scq_small(self, capsys):
        assert main(["experiment", "scq", "--runs", "2"]) == 0
        assert "lambda" in capsys.readouterr().out

    def test_maintenance_small(self, capsys):
        assert main(["experiment", "maintenance", "--runs", "2"]) == 0
        assert "t/t_finish" in capsys.readouterr().out

    def test_csv_export(self, capsys, tmp_path):
        out = tmp_path / "data.csv"
        assert main(["experiment", "table1", "--csv", str(out)]) == 0
        lines = out.read_text().splitlines()
        assert lines[0] == "table,tuples,pages"
        assert any(line.startswith("lineitem") for line in lines)

    def test_csv_export_sweep(self, tmp_path, capsys):
        out = tmp_path / "m.csv"
        assert main(
            ["experiment", "maintenance", "--runs", "2", "--csv", str(out)]
        ) == 0
        assert out.read_text().count("\n") >= 5


class TestObservedReport:
    def test_observe_prints_accuracy_summary(self, capsys):
        assert main(["report", "--observe", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "observed MCQ run" in out
        assert "trace events:" in out
        assert "rdbms.finished" in out
        assert "backends:" in out or "profile" in out

    def test_observe_is_deterministic(self, capsys):
        assert main(["report", "--observe", "--seed", "2"]) == 0
        first = capsys.readouterr().out
        assert main(["report", "--observe", "--seed", "2"]) == 0
        assert capsys.readouterr().out == first

    def test_observe_trace_and_metrics_outputs(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        bench = tmp_path / "BENCH_obs.json"
        code = main([
            "report", "--observe",
            "--trace", str(trace),
            "--metrics-json", str(bench),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"wrote trace to {trace}" in out
        assert f"merged 'metrics' section into {bench}" in out
        import json

        data = json.loads(bench.read_text())
        assert data["metrics"]["counters"]["rdbms.finished"] == 10.0

    def test_validate_trace_round_trip(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main(["report", "--observe", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["report", "--validate-trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "schema ok" in out

    def test_validate_trace_rejects_garbage(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["report", "--validate-trace", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_validate_trace_missing_file(self, capsys, tmp_path):
        assert main(["report", "--validate-trace", str(tmp_path / "no.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err


class TestOverload:
    def test_protected_storm(self, capsys):
        code = main([
            "overload", "--burst", "12", "--cost", "10", "--spread", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "protection ON" in out
        assert "admission" in out
        assert "ladder" in out
        assert "vip deadlines held" in out

    def test_unprotected_storm(self, capsys):
        code = main([
            "overload", "--burst", "12", "--cost", "10", "--unprotected",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "protection OFF" in out
        assert "admission" not in out

    @pytest.mark.parametrize(
        "flag, value",
        [
            ("--burst", "0"),
            ("--cost", "0"),
            ("--spread", "-1"),
            ("--rate", "0"),
            ("--mpl", "0"),
        ],
    )
    def test_bad_knob_prints_error(self, flag, value, capsys):
        code = main(["overload", flag, value])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith(f"error: {flag}")
