"""Tests for the structured event tracer, sinks and schema validators."""

import json
import math

import pytest

from repro.obs.tracer import (
    JsonlSink,
    MemorySink,
    Tracer,
    TraceSchemaError,
    validate_event,
    validate_events,
    validate_trace_file,
)


class TestTracer:
    def test_emit_records_required_fields(self):
        t = Tracer(wall_clock=lambda: 42.5)
        t.emit("query.submit", 3.0, "Q1", cost=100.0)
        (e,) = t.events
        assert e["seq"] == 0
        assert e["event"] == "query.submit"
        assert e["virtual_time"] == 3.0
        assert e["wall_time"] == 42.5
        assert e["query_id"] == "Q1"
        assert e["cost"] == 100.0

    def test_seq_increments(self):
        t = Tracer()
        for i in range(5):
            t.emit("tick", float(i))
        assert [e["seq"] for e in t.events] == [0, 1, 2, 3, 4]
        assert t.emitted == 5

    def test_none_virtual_time_allowed(self):
        t = Tracer()
        t.emit("projection.run", None, backend="incremental")
        assert t.events[0]["virtual_time"] is None
        validate_event(t.events[0])

    def test_nan_extra_field_encoded_as_string(self):
        t = Tracer()
        t.emit("corrupt", 1.0, factor=float("nan"))
        assert t.events[0]["factor"] == "nan"
        json.dumps(t.events[0])  # must be serialisable

    def test_span_emits_begin_and_end(self):
        clock = iter([1.0, 1.25, 1.25, 2.0]).__next__
        t = Tracer(wall_clock=clock)
        with t.span("step", 5.0, "Q2"):
            pass
        begin, end = t.events
        assert begin["event"] == "step.begin"
        assert end["event"] == "step.end"
        assert end["wall_elapsed"] == pytest.approx(0.25)
        assert begin["query_id"] == end["query_id"] == "Q2"

    def test_span_emits_end_on_exception(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("risky", 0.0):
                raise RuntimeError("boom")
        assert [e["event"] for e in t.events] == ["risky.begin", "risky.end"]


class TestSinks:
    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        t = Tracer(JsonlSink(path))
        t.emit("a", 0.0)
        t.emit("b", 1.0, "Q1", note="hi")
        t.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        events = [json.loads(line) for line in lines]
        assert events[0]["event"] == "a"
        assert events[1]["note"] == "hi"
        assert validate_trace_file(path) == 2

    def test_jsonl_sink_context_manager(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path) as sink:
            Tracer(sink).emit("x", 0.0)
        assert validate_trace_file(path) == 1

    def test_memory_sink_events_property(self):
        t = Tracer(MemorySink())
        t.emit("x", 0.0)
        assert len(t.events) == 1


class TestSchemaValidation:
    def _good(self, **over):
        e = {"seq": 0, "event": "x", "virtual_time": 1.0, "wall_time": 2.0}
        e.update(over)
        return e

    def test_valid_event_passes(self):
        validate_event(self._good())

    def test_missing_field_rejected(self):
        e = self._good()
        del e["wall_time"]
        with pytest.raises(TraceSchemaError):
            validate_event(e)

    def test_wrong_type_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_event(self._good(seq="0"))
        with pytest.raises(TraceSchemaError):
            validate_event(self._good(event=3))
        with pytest.raises(TraceSchemaError):
            validate_event(self._good(seq=True))  # bool is not an int here

    def test_empty_event_name_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_event(self._good(event=""))

    def test_negative_seq_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_event(self._good(seq=-1))

    def test_non_scalar_extra_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_event(self._good(payload={"nested": 1}))

    def test_non_dict_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_event([1, 2, 3])

    def test_stream_requires_increasing_seq(self):
        events = [self._good(seq=0), self._good(seq=0)]
        with pytest.raises(TraceSchemaError, match="not increasing"):
            validate_events(events)

    def test_trace_file_bad_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0, "event": "x"\nnot json\n')
        with pytest.raises(TraceSchemaError, match="invalid JSON"):
            validate_trace_file(path)

    def test_every_emitted_event_validates(self):
        t = Tracer()
        t.emit("a", 0.0)
        t.emit("b", None, "Q1", n=1, f=1.5, s="x", flag=True, none=None)
        t.emit("c", 2.0, nan=float("nan"), inf=math.inf)
        assert validate_events(t.events) == 3
