"""End-to-end tests: the instrumented seams feed the observability layer."""

import pytest

from repro.core.multi_query import MultiQueryProgressIndicator
from repro.core.projection import project
from repro.core.model import QuerySnapshot
from repro.faults.injector import FaultInjector
from repro.faults.plan import Brownout, FaultPlan, QueryCrash
from repro.obs import (
    Observability,
    current,
    install,
    observed,
    uninstall,
    validate_events,
)
from repro.obs.report import format_observed_run, run_observed_mcq
from repro.sim.jobs import SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.wm.watchdog import RunawayQueryWatchdog


@pytest.fixture(autouse=True)
def _no_global_obs():
    """Each test starts and ends with observability disabled."""
    uninstall()
    yield
    uninstall()


class TestRuntime:
    def test_disabled_by_default(self):
        assert current() is None
        assert SimulatedRDBMS().obs is None

    def test_observed_installs_and_restores(self):
        with observed() as obs:
            assert current() is obs
            assert SimulatedRDBMS().obs is obs
        assert current() is None

    def test_observed_restores_previous_bundle(self):
        outer = install(Observability())
        with observed() as inner:
            assert current() is inner
        assert current() is outer

    def test_explicit_bundle_wins_over_global(self):
        with observed():
            mine = Observability()
            assert SimulatedRDBMS(obs=mine).obs is mine


class TestRdbmsInstrumentation:
    def test_lifecycle_events_and_counters(self):
        with observed() as obs:
            rdbms = SimulatedRDBMS(processing_rate=10.0)
            rdbms.submit(SyntheticJob("A", 100.0))
            rdbms.submit(SyntheticJob("B", 50.0))
            rdbms.run_to_completion()
        names = [e["event"] for e in obs.tracer.events]
        assert names.count("query.submit") == 2
        assert names.count("query.admit") == 2
        assert names.count("query.finish") == 2
        m = obs.metrics
        assert m.counter_value("rdbms.submitted") == 2
        assert m.counter_value("rdbms.finished") == 2
        assert m.histogram("rdbms.query_lifetime").count == 2
        validate_events(obs.tracer.events)

    def test_abort_fail_resubmit_events(self):
        with observed() as obs:
            rdbms = SimulatedRDBMS(processing_rate=10.0)
            a = SyntheticJob("A", 100.0)
            rdbms.submit(a)
            rdbms.submit(SyntheticJob("B", 100.0))
            rdbms.run_until(1.0)
            rdbms.fail("A", reason="injected")
            rdbms.resubmit(a.retry_copy())
            rdbms.abort("B")
            rdbms.run_to_completion()
        names = [e["event"] for e in obs.tracer.events]
        assert "query.fail" in names
        assert "query.resubmit" in names
        assert "query.abort" in names
        assert obs.metrics.counter_value("rdbms.failed") == 1
        assert obs.metrics.counter_value("rdbms.resubmitted") == 1
        assert obs.metrics.counter_value("rdbms.aborted") == 1
        abort = next(e for e in obs.tracer.events if e["event"] == "query.abort")
        assert abort["query_id"] == "B"
        assert "reason" in abort

    def test_block_unblock_events(self):
        with observed() as obs:
            rdbms = SimulatedRDBMS(processing_rate=10.0)
            rdbms.submit(SyntheticJob("A", 100.0))
            rdbms.block("A")
            rdbms.unblock("A")
            rdbms.run_to_completion()
        names = [e["event"] for e in obs.tracer.events]
        assert "query.block" in names and "query.unblock" in names

    def test_schedule_build_and_invalidate(self):
        with observed() as obs:
            rdbms = SimulatedRDBMS(processing_rate=10.0)
            rdbms.submit(SyntheticJob("A", 100.0))
            rdbms.submit(SyntheticJob("B", 100.0))
            rdbms.remaining_times()  # builds the shared schedule
            rdbms.abort("A")         # discards within the live schedule
            rdbms.corrupt_estimates(float("nan"))
            rdbms.run_to_completion()
        assert obs.metrics.counter_value("rdbms.schedule.builds") >= 1
        assert obs.metrics.counter_value("rdbms.refresh.shared") == 1
        names = [e["event"] for e in obs.tracer.events]
        assert "schedule.build" in names

    def test_accuracy_marks_follow_lifecycle(self):
        with observed() as obs:
            rdbms = SimulatedRDBMS(processing_rate=10.0)
            rdbms.submit(SyntheticJob("A", 100.0))
            rdbms.run_to_completion()
        assert obs.accuracy.tracked_queries == ("A",)
        report = obs.accuracy.report()
        assert report.unfinished == ()
        (q,) = report.queries
        assert q.finished_at == pytest.approx(10.0)

    def test_disabled_rdbms_emits_nothing(self):
        sink_before = Observability()
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        rdbms.submit(SyntheticJob("A", 10.0))
        rdbms.run_to_completion()
        assert rdbms.obs is None
        assert sink_before.tracer.emitted == 0


class TestDecisionInstrumentation:
    def test_watchdog_decisions_traced_with_justification(self):
        with observed() as obs:
            rdbms = SimulatedRDBMS(processing_rate=1.0)
            rdbms.submit(SyntheticJob("slow", 500.0))
            wd = RunawayQueryWatchdog(
                rdbms, budget_seconds=5.0, check_interval=1.0
            )
            wd.attach()
            rdbms.run_to_completion(max_time=100.0)
        events = [
            e for e in obs.tracer.events if e["event"].startswith("watchdog.")
        ]
        assert any(e["event"] == "watchdog.deprioritize" for e in events)
        assert any(e["event"] == "watchdog.abort" for e in events)
        for e in events:
            # Snapshot that justified the decision rides on the event.
            assert "reason" in e and "used_fallback" in e and "budget" in e
        assert obs.metrics.counter_value("watchdog.abort") == len(wd.aborted)

    def test_fault_injections_traced(self):
        with observed() as obs:
            rdbms = SimulatedRDBMS(processing_rate=10.0)
            rdbms.submit(SyntheticJob("A", 200.0))
            FaultInjector(
                rdbms,
                FaultPlan.of(
                    Brownout(start=1.0, duration=2.0, factor=0.5),
                    QueryCrash("A", at_time=3.0),
                ),
            ).arm()
            rdbms.run_to_completion(max_time=100.0)
        names = [e["event"] for e in obs.tracer.events]
        assert any(n.startswith("fault.brownout") for n in names)
        assert any(n.startswith("fault.crash") for n in names)
        assert obs.metrics.counter_value("faults.injected") >= 2


class TestProjectionInstrumentation:
    def test_backend_counters_and_run_event(self):
        snaps = [QuerySnapshot("Q1", 100.0), QuerySnapshot("Q2", 50.0)]
        with observed() as obs:
            project(snaps, processing_rate=10.0, backend="incremental")
            project(snaps, processing_rate=10.0, backend="reference")
            project(snaps, processing_rate=10.0)
        m = obs.metrics
        assert m.counter_value("projection.backend.incremental") == 2
        assert m.counter_value("projection.backend.reference") == 1
        runs = [e for e in obs.tracer.events if e["event"] == "projection.run"]
        assert len(runs) == 3
        assert all(e["virtual_time"] is None for e in runs)
        assert {e["backend"] for e in runs} == {"incremental", "reference"}

    def test_indicator_estimates_counted(self):
        snaps = [QuerySnapshot("Q1", 100.0)]
        from repro.core.model import SystemSnapshot

        with observed() as obs:
            MultiQueryProgressIndicator(backend="reference").estimate(
                SystemSnapshot(running=tuple(snaps), processing_rate=10.0)
            )
        assert obs.metrics.counter_value("projection.backend.reference") == 1


class TestObservedMcq:
    def test_deterministic_summary_with_backend_agreement(self):
        run1 = run_observed_mcq(seed=3)
        run2 = run_observed_mcq(seed=3)
        assert format_observed_run(run1) == format_observed_run(run2)
        report = run1.accuracy
        assert report.unfinished == ()
        assert len(report.queries) == 10
        # Queries shorter than the sample interval finish unsampled; every
        # sampled query must carry an error profile and backend comparison.
        sampled = [q for q in report.queries if q.estimators]
        assert sampled
        for q in sampled:
            assert q.backend_agreement is not None
        # Incremental and reference backends agree to float tolerance.
        assert report.worst_backend_rel_diff() < 1e-9

    def test_trace_file_validates(self, tmp_path):
        path = tmp_path / "mcq.jsonl"
        run = run_observed_mcq(seed=1, trace_path=path)
        from repro.obs.tracer import validate_trace_file

        assert validate_trace_file(path) == run.events
        assert run.events > 0
