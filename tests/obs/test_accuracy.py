"""Tests for the PI-accuracy telemetry (Section 5.2.3 error profiles)."""

import math

import pytest

from repro.obs.accuracy import (
    BACKEND_INCREMENTAL,
    BACKEND_REFERENCE,
    AccuracyTracker,
    format_accuracy,
)


def perfect_tracker():
    """One query, exact estimates at every sample."""
    tr = AccuracyTracker()
    tr.mark_started("Q1", 0.0)
    for t in (0.0, 2.0, 4.0, 6.0, 8.0):
        tr.observe("Q1", "pi", t, 10.0 - t)
    tr.mark_finished("Q1", 10.0)
    return tr


class TestAccuracyTracker:
    def test_exact_estimates_have_zero_error(self):
        report = perfect_tracker().report()
        q = report.for_query("Q1")
        e = q.estimators["pi"]
        assert e.samples == 5
        assert e.mean_rel_error == 0.0
        assert e.max_rel_error == 0.0
        assert e.final_rel_error == 0.0
        assert e.correction_lag == 0.0
        assert q.lifetime == pytest.approx(10.0)

    def test_relative_error_profile(self):
        tr = AccuracyTracker(profile_fractions=(0.5,))
        tr.mark_started("Q1", 0.0)
        # Estimate is a flat 10s; actual remaining at t=5 is 5s: error 1.0.
        tr.observe("Q1", "flat", 0.0, 10.0)
        tr.mark_finished("Q1", 10.0)
        e = tr.report().for_query("Q1").estimators["flat"]
        assert e.profile == ((0.5, pytest.approx(1.0)),)

    def test_correction_lag_measures_settling(self):
        tr = AccuracyTracker(error_threshold=0.25)
        tr.mark_started("Q1", 0.0)
        # Bad at t=0 and t=2 (error > 25%), good from t=4 onwards.
        tr.observe("Q1", "pi", 0.0, 30.0)   # actual 10 -> error 2.0
        tr.observe("Q1", "pi", 2.0, 16.0)   # actual 8 -> error 1.0
        tr.observe("Q1", "pi", 4.0, 6.0)    # actual 6 -> error 0.0
        tr.observe("Q1", "pi", 6.0, 4.0)    # actual 4 -> error 0.0
        tr.mark_finished("Q1", 10.0)
        e = tr.report().for_query("Q1").estimators["pi"]
        assert e.correction_lag == pytest.approx(4.0)

    def test_correction_lag_inf_when_never_settles(self):
        tr = AccuracyTracker(error_threshold=0.01)
        tr.mark_started("Q1", 0.0)
        tr.observe("Q1", "pi", 0.0, 99.0)
        tr.mark_finished("Q1", 10.0)
        e = tr.report().for_query("Q1").estimators["pi"]
        assert math.isinf(e.correction_lag)

    def test_unfinished_queries_reported_separately(self):
        tr = AccuracyTracker()
        tr.mark_started("Q1", 0.0)
        tr.observe("Q1", "pi", 0.0, 5.0)
        report = tr.report()
        assert report.queries == ()
        assert report.unfinished == ("Q1",)
        with pytest.raises(KeyError):
            report.for_query("Q1")

    def test_non_finite_estimate_counts_as_infinite_error(self):
        tr = AccuracyTracker(mean_error_cap=10.0)
        tr.mark_started("Q1", 0.0)
        tr.observe("Q1", "pi", 0.0, float("inf"))
        tr.observe("Q1", "pi", 5.0, 5.0)
        tr.mark_finished("Q1", 10.0)
        e = tr.report().for_query("Q1").estimators["pi"]
        assert math.isinf(e.max_rel_error)
        # Mean caps the infinite sample at 10.
        assert e.mean_rel_error == pytest.approx((10.0 + 0.0) / 2)

    def test_backend_agreement(self):
        tr = AccuracyTracker()
        tr.mark_started("Q1", 0.0)
        for t in (0.0, 2.0, 4.0):
            tr.observe("Q1", BACKEND_INCREMENTAL, t, 10.0 - t)
            tr.observe("Q1", BACKEND_REFERENCE, t, 10.0 - t + 1e-10)
        tr.mark_finished("Q1", 10.0)
        q = tr.report().for_query("Q1")
        a = q.backend_agreement
        assert a is not None
        assert a.samples == 3
        assert a.max_abs_diff == pytest.approx(1e-10, rel=0.1)
        assert tr.report().worst_backend_rel_diff() == a.max_rel_diff

    def test_no_backend_agreement_without_both_series(self):
        tr = AccuracyTracker()
        tr.mark_started("Q1", 0.0)
        tr.observe("Q1", BACKEND_INCREMENTAL, 0.0, 10.0)
        tr.mark_finished("Q1", 10.0)
        assert tr.report().for_query("Q1").backend_agreement is None

    def test_estimates_at_or_after_finish_ignored(self):
        tr = AccuracyTracker()
        tr.mark_started("Q1", 0.0)
        tr.observe("Q1", "pi", 5.0, 5.0)
        tr.observe("Q1", "pi", 10.0, 0.0)  # at finish: no defined rel error
        tr.mark_finished("Q1", 10.0)
        assert tr.report().for_query("Q1").estimators["pi"].samples == 1

    def test_late_observer_profile_carries_first_value_back(self):
        # Estimator starts sampling at t=6 of a 10s query: profile points
        # before 6s must use the first estimate, not crash.
        tr = AccuracyTracker(profile_fractions=(0.1, 0.8))
        tr.mark_started("Q1", 0.0)
        tr.observe("Q1", "late", 6.0, 4.0)
        tr.mark_finished("Q1", 10.0)
        e = tr.report().for_query("Q1").estimators["late"]
        fracs = [f for f, _ in e.profile]
        assert fracs == [pytest.approx(0.1), pytest.approx(0.8)]
        # At t=1 the carried-back estimate 4.0 vs actual 9.0.
        assert e.profile[0][1] == pytest.approx(abs(4.0 - 9.0) / 9.0)

    def test_report_sorted_and_deterministic(self):
        tr = AccuracyTracker()
        for qid in ("Qb", "Qa"):
            tr.mark_started(qid, 0.0)
            tr.observe(qid, "pi", 0.0, 1.0)
            tr.mark_finished(qid, 1.0)
        report = tr.report()
        assert [q.query_id for q in report.queries] == ["Qa", "Qb"]
        assert format_accuracy(report) == format_accuracy(tr.report())

    def test_validation(self):
        with pytest.raises(ValueError):
            AccuracyTracker(error_threshold=0.0)
        with pytest.raises(ValueError):
            AccuracyTracker(profile_fractions=())
        with pytest.raises(ValueError):
            AccuracyTracker(profile_fractions=(1.5,))

    def test_first_start_wins_on_retry(self):
        tr = AccuracyTracker()
        tr.mark_started("Q1", 1.0)
        tr.mark_started("Q1", 5.0)  # retry: lifetime stays anchored at 1.0
        tr.observe("Q1", "pi", 6.0, 4.0)
        tr.mark_finished("Q1", 10.0)
        assert tr.report().for_query("Q1").started_at == 1.0
