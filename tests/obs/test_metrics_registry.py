"""Tests for counters, gauges, histograms and the metrics registry."""

import json
import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metrics,
)


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1.0)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        g.set(5)
        g.set(2.0)
        assert g.value == 2.0


class TestHistogram:
    def test_bucketing(self):
        h = Histogram(boundaries=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        # bisect_left(upper edges): 0.5,1.0 -> bucket 0; 5.0 -> 1; 100 -> overflow
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.min == 0.5
        assert h.max == 100.0
        assert h.mean == pytest.approx(106.5 / 4)

    def test_rejects_nan_observation(self):
        with pytest.raises(ValueError):
            Histogram().observe(float("nan"))

    def test_rejects_bad_boundaries(self):
        with pytest.raises(ValueError):
            Histogram(boundaries=())
        with pytest.raises(ValueError):
            Histogram(boundaries=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(boundaries=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(boundaries=(1.0, float("nan")))

    def test_as_dict_empty(self):
        d = Histogram(boundaries=(1.0,)).as_dict()
        assert d["count"] == 0
        assert d["min"] is None and d["max"] is None


class TestMetricsRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")

    def test_kind_collision_rejected(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            r.histogram("x")

    def test_counter_value_defaults_zero(self):
        r = MetricsRegistry()
        assert r.counter_value("never") == 0.0
        r.counter("hit").inc()
        assert r.counter_value("hit") == 1.0

    def test_as_dict_sorted_and_json_serialisable(self):
        r = MetricsRegistry()
        r.counter("b").inc()
        r.counter("a").inc(2)
        r.gauge("g").set(1.5)
        r.histogram("h", boundaries=(1.0,)).observe(0.5)
        d = r.as_dict()
        assert list(d["counters"]) == ["a", "b"]
        assert d["gauges"]["g"] == 1.5
        assert d["histograms"]["h"]["counts"] == [1, 0]
        json.dumps(d)
        assert r.names() == ("a", "b", "g", "h")

    def test_merge_into_bench_json(self, tmp_path):
        path = tmp_path / "BENCH_scale.json"
        path.write_text(json.dumps({"scale": {"keep": 1}}))
        r = MetricsRegistry()
        r.counter("c").inc()
        merged = r.merge_into(path)
        assert merged["scale"] == {"keep": 1}
        on_disk = json.loads(path.read_text())
        assert on_disk["metrics"]["counters"]["c"] == 1.0
        assert on_disk["scale"] == {"keep": 1}

    def test_format_metrics_deterministic(self):
        r = MetricsRegistry()
        r.counter("z").inc()
        r.counter("a").inc(3)
        r.gauge("g").set(2)
        r.histogram("h").observe(1.0)
        text = format_metrics(r)
        assert text.splitlines()[0] == "a 3"
        assert "z 1" in text
        assert "h count=1" in text
        only_counters = format_metrics(r, kinds=("counters",))
        assert "g " not in only_counters
        assert format_metrics(r) == format_metrics(r)
