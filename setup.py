"""Legacy setup shim.

Offline environments without the `wheel` package cannot do PEP 660
editable installs; this shim enables the legacy ``python setup.py
develop`` fallback.  Project metadata lives in pyproject.toml; the console
script is duplicated here because the legacy path does not read
``[project.scripts]``.
"""
from setuptools import setup

setup(
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
