"""Reproduction of "Multi-query SQL Progress Indicators" (EDBT 2006).

Public API re-exports the pieces a downstream user typically needs:

* progress indicators: :class:`MultiQueryProgressIndicator`,
  :class:`SingleQueryProgressIndicator`, :func:`standard_case`,
  :func:`project`, :class:`WorkloadForecast`, :class:`AdaptiveForecaster`;
* the simulated RDBMS: :class:`SimulatedRDBMS`, :class:`SyntheticJob`,
  :class:`EngineJob`;
* the SQL engine: :class:`Database`;
* workload management: :func:`choose_victim`, :func:`choose_victims`,
  :func:`choose_victim_for_all`, :func:`plan_maintenance`,
  :func:`exact_maintenance_plan`;
* resilience: :class:`FaultPlan` (with :class:`QueryCrash`,
  :class:`QueryStall`, :class:`Brownout`, :class:`StatsCorruption` and the
  node-scoped :class:`NodeCrash`, :class:`NetworkPartition`,
  :class:`NodeBrownout`), :class:`FaultInjector`, :class:`RetryPolicy`,
  :class:`RetryController`, :class:`RunawayQueryWatchdog`;
  work-preserving recovery: :class:`ExecutionCheckpoint`,
  :class:`CancellationToken`, :class:`MemoryGovernor`;
* the sharded cluster: :class:`ShardedCluster`, :class:`ShardNode`,
  :class:`ShardCatalog`, :class:`GlobalProgressAggregator`,
  :class:`ClusterFaultInjector`, :func:`load_tpcr`,
  :class:`ClusterWatchdog`, :func:`detect_stragglers`;
* observability: :class:`Observability`, :class:`AccuracyTracker`,
  :class:`MetricsRegistry`, :class:`Tracer`, :func:`observed`;
* overload protection (QoS): :class:`AdmissionController`,
  :class:`AdmissionPolicy`, :class:`CircuitBreaker`,
  :class:`DegradationLadder`, and the :class:`ArrivalBurst`
  (:data:`OverloadStorm`) fault shape.

See ``README.md`` for a tour, ``DESIGN.md`` for the system inventory,
``docs/RESILIENCE.md`` for the fault/recovery model,
``docs/SHARDING.md`` for the cluster simulation and
``docs/OBSERVABILITY.md`` for the tracing/metrics/accuracy layer.
"""

from repro.core.forecast import AdaptiveForecaster, WorkloadForecast
from repro.core.incremental import IncrementalSchedule
from repro.core.model import QuerySnapshot, SystemSnapshot
from repro.core.multi_query import MultiQueryProgressIndicator
from repro.core.projection import project, set_default_backend, use_backend
from repro.core.single_query import SingleQueryProgressIndicator
from repro.core.standard_case import standard_case
from repro.dist import (
    ClusterFaultInjector,
    GlobalProgressAggregator,
    ShardCatalog,
    ShardedCluster,
    ShardNode,
    load_tpcr,
)
from repro.engine import (
    CancellationToken,
    Database,
    ExecutionCheckpoint,
    MemoryBudgetExceeded,
    MemoryGovernor,
    QueryCancelled,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ArrivalBurst,
    Brownout,
    FaultPlan,
    NetworkPartition,
    NodeBrownout,
    NodeCrash,
    OverloadStorm,
    QueryCrash,
    QueryStall,
    StatsCorruption,
    random_fault_plan,
)
from repro.faults.retry import RetryController, RetryPolicy
from repro.qos import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
    BreakerConfig,
    CircuitBreaker,
    DegradationLadder,
    LadderConfig,
)
from repro.obs import (
    AccuracyTracker,
    MetricsRegistry,
    Observability,
    Tracer,
    observed,
)
from repro.sim.jobs import EngineJob, SyntheticJob
from repro.sim.rdbms import SimulatedRDBMS
from repro.wm.maintenance import LostWorkCase, plan_maintenance
from repro.wm.multi_speedup import choose_victim_for_all
from repro.wm.oracle import exact_maintenance_plan
from repro.wm.cross_shard import ClusterWatchdog, detect_stragglers
from repro.wm.speedup import choose_victim, choose_victims
from repro.wm.watchdog import RunawayQueryWatchdog

__version__ = "1.0.0"

__all__ = [
    "AccuracyTracker",
    "AdaptiveForecaster",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "ArrivalBurst",
    "BreakerConfig",
    "Brownout",
    "CancellationToken",
    "CircuitBreaker",
    "ClusterFaultInjector",
    "ClusterWatchdog",
    "Database",
    "DegradationLadder",
    "EngineJob",
    "ExecutionCheckpoint",
    "FaultInjector",
    "FaultPlan",
    "GlobalProgressAggregator",
    "IncrementalSchedule",
    "LadderConfig",
    "LostWorkCase",
    "MemoryBudgetExceeded",
    "MemoryGovernor",
    "MetricsRegistry",
    "MultiQueryProgressIndicator",
    "NetworkPartition",
    "NodeBrownout",
    "NodeCrash",
    "Observability",
    "OverloadStorm",
    "QueryCancelled",
    "QueryCrash",
    "QuerySnapshot",
    "QueryStall",
    "RetryController",
    "RetryPolicy",
    "RunawayQueryWatchdog",
    "ShardCatalog",
    "ShardNode",
    "ShardedCluster",
    "SimulatedRDBMS",
    "SingleQueryProgressIndicator",
    "StatsCorruption",
    "SyntheticJob",
    "SystemSnapshot",
    "Tracer",
    "WorkloadForecast",
    "__version__",
    "choose_victim",
    "choose_victim_for_all",
    "choose_victims",
    "detect_stragglers",
    "exact_maintenance_plan",
    "load_tpcr",
    "observed",
    "plan_maintenance",
    "project",
    "random_fault_plan",
    "set_default_backend",
    "standard_case",
    "use_backend",
]
