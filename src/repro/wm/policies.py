"""Executable maintenance policies (paper Sections 3.3 and 5.3).

Each policy decides, at decision time (the paper's ``rt``, time 0 here),
which running queries to abort so the system can drain by the maintenance
deadline ``t``:

* :func:`decide_no_pi` -- operations O1+O2: abort nothing now; whatever has
  not finished at the deadline is aborted then.
* :func:`decide_single_pi` -- O1+O2'+O3 with a *single-query* PI: each
  query's remaining time is judged as ``c_i / s_i`` under the **current**
  load (the single-query PI assumes the load never changes); while some
  query is predicted to miss the deadline, the query with the largest
  estimated remaining cost is aborted (the paper's stated rule).
* :func:`decide_multi_pi` -- O1+O2'+O3 with the multi-query PI: the greedy
  knapsack plan of :func:`repro.wm.maintenance.plan_maintenance`.

:func:`execute_policy` applies a decision to a
:class:`~repro.sim.rdbms.SimulatedRDBMS`, runs to the deadline, performs
operation O3 (abort stragglers) and reports the realised lost work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.model import QuerySnapshot
from repro.core.validation import finite_snapshots
from repro.sim.rdbms import SimulatedRDBMS
from repro.wm.maintenance import LostWorkCase, plan_maintenance

#: A decision function: (snapshots, deadline, processing_rate, case) -> abort ids.
DecisionFn = Callable[[Sequence[QuerySnapshot], float, float, LostWorkCase], tuple[str, ...]]


def decide_no_pi(
    queries: Sequence[QuerySnapshot],
    deadline: float,
    processing_rate: float,
    case: LostWorkCase = LostWorkCase.TOTAL_COST,
) -> tuple[str, ...]:
    """The no-PI method aborts nothing up front (operation O2 happens later)."""
    return ()


def decide_single_pi(
    queries: Sequence[QuerySnapshot],
    deadline: float,
    processing_rate: float,
    case: LostWorkCase = LostWorkCase.TOTAL_COST,
) -> tuple[str, ...]:
    """Single-query-PI method: abort largest remaining cost while anyone
    is predicted (under constant current load) to miss the deadline.

    The single-query PI estimates query ``i``'s remaining time as
    ``c_i / s_i`` where ``s_i`` is its *current* speed -- it has no idea the
    load will drop as queries finish, so its estimates are inflated and it
    aborts aggressively (the effect driving paper Figure 11's single-PI
    curve).  After each abort the current speeds are recomputed, since the
    observed load really did drop.
    """
    survivors = [q for q in queries if q.remaining_cost > 0]
    aborted: list[str] = []
    while survivors:
        total_weight = sum(q.weight for q in survivors)
        misses = False
        for q in survivors:
            speed = processing_rate * q.weight / total_weight
            if q.remaining_cost / speed > deadline + 1e-9:
                misses = True
                break
        if not misses:
            break
        victim = max(survivors, key=lambda q: (q.remaining_cost, q.query_id))
        aborted.append(victim.query_id)
        survivors = [q for q in survivors if q.query_id != victim.query_id]
    return tuple(aborted)


def decide_multi_pi(
    queries: Sequence[QuerySnapshot],
    deadline: float,
    processing_rate: float,
    case: LostWorkCase = LostWorkCase.TOTAL_COST,
) -> tuple[str, ...]:
    """Multi-query-PI method: the Section 3.3 greedy knapsack plan."""
    plan = plan_maintenance(queries, deadline, processing_rate, case)
    return plan.aborts


@dataclass(frozen=True)
class PolicyOutcome:
    """Realised result of running a maintenance policy to the deadline."""

    #: Queries aborted up front at decision time (operation O2').
    aborted_upfront: tuple[str, ...]
    #: Queries aborted at the deadline because they had not finished (O2/O3).
    aborted_at_deadline: tuple[str, ...]
    #: Queries that ran to completion before the deadline.
    finished: tuple[str, ...]
    #: Realised lost work, U's, under the chosen accounting.
    unfinished_work: float
    #: Total work of the queries considered, U's.
    total_work: float

    @property
    def unfinished_fraction(self) -> float:
        """``UW / TW`` -- the Figure 11 metric."""
        if self.total_work <= 0:
            return 0.0
        return self.unfinished_work / self.total_work


def execute_policy(
    rdbms: SimulatedRDBMS,
    decision: DecisionFn,
    deadline: float,
    case: LostWorkCase = LostWorkCase.TOTAL_COST,
    total_costs: dict[str, float] | None = None,
) -> PolicyOutcome:
    """Run a maintenance policy against a live simulated RDBMS.

    The RDBMS is drained (operation O1), the decision function picks the
    up-front aborts from the *estimated* snapshots (what a PI would see),
    the simulation runs until ``now + deadline`` and any unfinished query is
    aborted then (operations O2/O3).

    Parameters
    ----------
    total_costs:
        Ground-truth total cost per query, used for lost-work accounting.
        Defaults to each job's ``completed + estimated remaining``, correct
        for synthetic jobs.  Non-finite estimated costs degrade to the
        work completed so far, so corrupted statistics cannot turn the
        lost-work tally into NaN.
    """
    if deadline < 0:
        raise ValueError("deadline must be >= 0")
    start = rdbms.clock
    rdbms.drain(True)

    considered = list(rdbms.running) + list(rdbms.queued)
    # Decision functions see the PI's view (estimate corruption included);
    # queries whose snapshots are non-finite are excluded from the up-front
    # decision rather than poisoning it -- operation O3 still catches them.
    system = rdbms.snapshot()
    snapshots = finite_snapshots(list(system.running) + list(system.queued))
    truth = dict(total_costs) if total_costs else {}
    for job in considered:
        estimated = job.estimated_remaining_cost()
        if not math.isfinite(estimated) or estimated < 0:
            estimated = 0.0
        truth.setdefault(job.query_id, job.completed_work + estimated)
    total_work = sum(truth[j.query_id] for j in considered)

    aborts = decision(snapshots, deadline, rdbms.processing_rate, case)
    completed_at_abort: dict[str, float] = {}
    for qid in aborts:
        completed_at_abort[qid] = rdbms.record(qid).job.completed_work
        rdbms.abort(qid)

    rdbms.run_until(start + deadline)

    late: list[str] = []
    for job in list(rdbms.running) + list(rdbms.queued):
        late.append(job.query_id)
        completed_at_abort[job.query_id] = job.completed_work
        rdbms.abort(job.query_id)

    finished = tuple(
        j.query_id
        for j in considered
        if rdbms.record(j.query_id).status == "finished"
    )

    lost = 0.0
    for qid in list(aborts) + late:
        if case is LostWorkCase.COMPLETED_WORK:
            lost += completed_at_abort[qid]
        else:
            lost += truth[qid]

    return PolicyOutcome(
        aborted_upfront=tuple(aborts),
        aborted_at_deadline=tuple(late),
        finished=finished,
        unfinished_work=lost,
        total_work=total_work,
    )
