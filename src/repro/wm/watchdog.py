"""Runaway-query watchdog: deprioritize, then abort, queries over budget.

A workload manager armed with a multi-query PI can police runaway queries
*predictively*: a query is an offender when its elapsed time plus its
PI-estimated remaining time exceeds the budget -- long before it has
actually burned the whole budget.  That is the PI-driven half of this
module.

The resilience half is the fallback: under corrupted statistics the PI
(correctly) refuses to estimate -- :mod:`repro.core.validation` makes it
raise on NaN/inf inputs -- or produces a non-finite number.  The watchdog
must keep functioning anyway, and it degrades *per query*, not per tick:
when the PI refuses a snapshot, the watchdog substitutes each corrupt
query's last finite remaining-cost observation (carried back from an
earlier tick) and re-estimates, so queries with healthy statistics keep
their predictive enforcement.  Only queries that never reported a finite
cost are dropped from the estimate; those (and only those) fall to the
*observed-work heuristic* -- offender once the time observably consumed
exceeds the budget.  Cruder (it can only react, not predict), but it
needs nothing beyond the simulator clock.  Actions justified by a
carried-back or absent estimate are flagged ``used_fallback`` so every
degraded decision is auditable.

Escalation is two-step, as in production systems: a first offense demotes
the query's priority (it keeps running, slowly, and stops hurting everyone
else); a repeat offense at a later check aborts it.  Aborts land in the
trace as ``aborted_at`` -- a deliberate workload-management action, distinct
from ``failed_at`` runtime errors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.core.multi_query import MultiQueryProgressIndicator
from repro.sim.rdbms import SimulatedRDBMS


@dataclass(frozen=True)
class WatchdogAction:
    """One enforcement action taken by the watchdog."""

    time: float
    query_id: str
    #: ``"deprioritize"`` or ``"abort"``.
    action: str
    #: The PI's remaining-time estimate at decision time, if one was usable.
    estimated_remaining: float | None
    #: Whether the decision used the observed-work fallback (PI estimate
    #: unavailable or non-finite) instead of the PI.
    used_fallback: bool
    reason: str


class RunawayQueryWatchdog:
    """Polices running queries against a wall-clock budget.

    Parameters
    ----------
    rdbms:
        The simulator to police.
    budget_seconds:
        Per-query budget, in virtual seconds since the query first started
        running, or ``None`` to skip budget enforcement.  Time lost to
        failures, stalls and retries counts -- the budget is what an
        operator would set on total occupancy.
    check_interval:
        How often (virtual seconds) the watchdog wakes up.
    pi:
        The progress indicator used for predictive enforcement; defaults
        to a fresh :class:`MultiQueryProgressIndicator`.
    demote_priority:
        Priority assigned on the first offense (low priorities mean small
        scheduling weights).
    enforce_deadlines:
        Also treat a *predicted* deadline miss as an offense: a running
        query whose PI-estimated finish time exceeds its
        :attr:`~repro.sim.rdbms.QueryRecord.deadline_at` is demoted, then
        aborted -- well before the RDBMS's hard deadline enforcement
        would kill it at expiry.  Purely predictive: with no usable PI
        estimate the hard enforcement remains the only backstop.
    use_shared_schedule:
        Serve estimates from the RDBMS's shared incremental schedule
        (:meth:`SimulatedRDBMS.remaining_times`) when it is available,
        instead of re-running the PI per check -- ``O(n)`` per tick off
        one incrementally-maintained structure rather than a full
        re-solve.  Off by default: the shared schedule reads the
        engine-internal (uncorrupted) estimates, so with it on the
        watchdog never sees corrupted statistics and the observed-work
        fallback path is not exercised.  The PI remains the fallback
        whenever the schedule is unsupported.

    Call :meth:`attach` once before running the simulation.
    """

    def __init__(
        self,
        rdbms: SimulatedRDBMS,
        budget_seconds: float | None = None,
        check_interval: float = 1.0,
        pi: MultiQueryProgressIndicator | None = None,
        demote_priority: int = -2,
        enforce_deadlines: bool = False,
        use_shared_schedule: bool = False,
    ) -> None:
        if budget_seconds is not None and (
            not math.isfinite(budget_seconds) or budget_seconds <= 0
        ):
            raise ValueError(
                f"budget_seconds must be finite and > 0, got {budget_seconds}"
            )
        if budget_seconds is None and not enforce_deadlines:
            raise ValueError(
                "watchdog needs a budget_seconds and/or enforce_deadlines=True"
            )
        if check_interval <= 0:
            raise ValueError(f"check_interval must be > 0, got {check_interval}")
        self._rdbms = rdbms
        self._budget = budget_seconds
        self._check_interval = check_interval
        self._pi = pi if pi is not None else MultiQueryProgressIndicator()
        self._demote_priority = demote_priority
        self._enforce_deadlines = enforce_deadlines
        self._use_shared_schedule = use_shared_schedule
        self._demoted: set[str] = set()
        self._attached = False
        #: Last finite remaining-cost observed per live query, for
        #: carry-back when a later snapshot turns non-finite.
        self._last_finite: dict[str, float] = {}
        #: Chronological log of enforcement actions.
        self.actions: list[WatchdogAction] = []

    @property
    def budget_seconds(self) -> float | None:
        """The per-query occupancy budget being enforced, if any."""
        return self._budget

    @property
    def demoted(self) -> tuple[str, ...]:
        """Ids of queries demoted so far, in action order."""
        return tuple(a.query_id for a in self.actions if a.action == "deprioritize")

    @property
    def aborted(self) -> tuple[str, ...]:
        """Ids of queries aborted so far, in action order."""
        return tuple(a.query_id for a in self.actions if a.action == "abort")

    @property
    def fallback_engaged(self) -> bool:
        """Whether any action so far used the observed-work fallback."""
        return any(a.used_fallback for a in self.actions)

    def attach(self) -> None:
        """Arm the watchdog: register its periodic check with the RDBMS."""
        if self._attached:
            raise RuntimeError("watchdog already attached")
        self._attached = True
        self._rdbms.add_sampler(self._check_interval, self._on_tick)

    # ------------------------------------------------------------------
    # Enforcement
    # ------------------------------------------------------------------

    def _estimates(self) -> tuple[dict[str, float] | None, frozenset[str]]:
        """PI estimates plus the ids whose inputs had to be carried back.

        Returns ``(remaining_times, degraded_ids)``.  When some queries'
        snapshots are corrupt (non-finite remaining cost), the estimator
        is re-run on a *sanitized* snapshot: corrupt queries get their
        last finite observation substituted; queries with no finite
        history are dropped (they individually fall back to observed
        work).  Healthy queries keep real predictive estimates either
        way.  ``(None, ...)`` -- the whole-tick fallback -- only remains
        for snapshots the PI rejects even after sanitizing.
        """
        if (
            self._use_shared_schedule
            and self._rdbms.shared_schedule() is not None
        ):
            return self._rdbms.remaining_times(), frozenset()
        snapshot = self._rdbms.snapshot()
        live = snapshot.running + snapshot.queued
        # Refresh the carry-back memory (and drop departed queries).
        self._last_finite = {
            s.query_id: (
                s.remaining_cost
                if math.isfinite(s.remaining_cost)
                else self._last_finite.get(s.query_id)
            )
            for s in live
            if math.isfinite(s.remaining_cost)
            or s.query_id in self._last_finite
        }
        try:
            return self._pi.estimate(snapshot).remaining_seconds, frozenset()
        except ValueError:
            # Corrupted inputs: the estimator refused loudly, as designed.
            pass
        degraded = {
            s.query_id for s in live if not math.isfinite(s.remaining_cost)
        }
        sanitized = snapshot
        for name in ("running", "queued"):
            kept = []
            for snap in getattr(snapshot, name):
                if math.isfinite(snap.remaining_cost):
                    kept.append(snap)
                elif snap.query_id in self._last_finite:
                    kept.append(
                        replace(
                            snap,
                            remaining_cost=self._last_finite[snap.query_id],
                        )
                    )
                # else: never seen finite -- excluded from the estimate.
            sanitized = replace(sanitized, **{name: tuple(kept)})
        try:
            estimate = self._pi.estimate(sanitized)
        except ValueError:
            # Still unusable (e.g. corrupt completed-work counters too):
            # the whole tick falls back to observed work.
            return None, frozenset(degraded)
        return estimate.remaining_seconds, frozenset(degraded)

    def _on_tick(self, rdbms: SimulatedRDBMS) -> None:
        estimates, degraded = self._estimates()
        now = rdbms.clock
        for job in rdbms.running:
            qid = job.query_id
            record = rdbms.record(qid)
            started = record.trace.started_at
            if started is None:  # pragma: no cover - running implies started
                continue
            elapsed = now - started
            est: float | None = None
            if estimates is not None:
                est = estimates.get(qid)
                if est is not None and not math.isfinite(est):
                    est = None
            over = False
            used_fallback = False
            reason = ""
            if self._budget is not None:
                if est is not None:
                    over = elapsed + est > self._budget
                    used_fallback = qid in degraded
                    stale = " (carried-back)" if used_fallback else ""
                    reason = (
                        f"elapsed {elapsed:.1f}s + estimated{stale} "
                        f"{est:.1f}s > budget {self._budget:g}s"
                    )
                else:
                    # Observed-work heuristic: no usable estimate, so
                    # enforce only on the time the query has consumed.
                    over = elapsed > self._budget
                    used_fallback = True
                    reason = (
                        f"no usable estimate; observed {elapsed:.1f}s "
                        f"> budget {self._budget:g}s"
                    )
            if (
                not over
                and self._enforce_deadlines
                and record.deadline_at is not None
                and est is not None
                and now + est > record.deadline_at
            ):
                # Predicted deadline miss: act now rather than letting the
                # RDBMS kill the query at expiry with nothing to show.
                over = True
                used_fallback = qid in degraded
                reason = (
                    f"predicted finish at {now + est:.1f}s "
                    f"> deadline {record.deadline_at:g}s"
                )
            if not over:
                continue
            if qid not in self._demoted:
                rdbms.set_priority(qid, self._demote_priority)
                self._demoted.add(qid)
                record.trace.record_fault(now, "watchdog-demote", reason)
                self._record(now, qid, "deprioritize", est, used_fallback, reason)
            else:
                rdbms.abort(qid)
                record.trace.record_fault(now, "watchdog-abort", reason)
                self._record(now, qid, "abort", est, used_fallback, reason)

    def _record(
        self,
        time: float,
        query_id: str,
        action: str,
        est: float | None,
        used_fallback: bool,
        reason: str,
    ) -> None:
        self.actions.append(
            WatchdogAction(
                time=time,
                query_id=query_id,
                action=action,
                estimated_remaining=est,
                used_fallback=used_fallback,
                reason=reason,
            )
        )
        obs = self._rdbms.obs
        if obs is not None:
            # The decision plus the snapshot that justified it, so a trace
            # reader can audit every enforcement after the fact.
            obs.metrics.counter(f"watchdog.{action}").inc()
            obs.tracer.emit(
                f"watchdog.{action}",
                time,
                query_id,
                estimated_remaining=est,
                used_fallback=used_fallback,
                budget=self._budget,
                reason=reason,
            )
