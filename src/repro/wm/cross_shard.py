"""Cross-shard workload management: stragglers and victim selection.

A scatter-gather query finishes when its *slowest* shard does, so the
global PI's per-shard contributions directly identify the straggler --
the shard whose remaining time bounds the whole query.  This module puts
that signal to work, extending the paper's Section 3.1 speed-up problem
across a cluster:

* :func:`detect_stragglers` flags (query, shard) pairs whose remaining
  time exceeds the other shards' median by a configurable ratio --
  stragglers by *relative* lag, so uniformly slow queries are not all
  flagged at once.  Degraded (carried-back) contributions are skipped:
  acting on stale numbers would punish a shard for having crashed.
* :func:`choose_cross_shard_victim` picks, on the straggler shard's own
  node, the optimal victim to block so the straggling sub-query speeds
  up -- the paper's single-node victim selection applied to the one
  node that bounds the global finish time.  Blocking a victim on any
  *other* node would be pure loss: it cannot move the global estimate.
* :class:`ClusterWatchdog` runs the loop: each refresh it detects
  stragglers and (optionally) blocks victims on their nodes, logging
  every decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median

from repro.dist.router import ShardedCluster
from repro.wm.speedup import SpeedupChoice, choose_victims


@dataclass(frozen=True)
class Straggler:
    """One shard lagging its siblings within a distributed query."""

    query_id: str
    shard: int
    node_id: str
    remaining_seconds: float
    #: Median remaining of the query's *other* shards, seconds.
    peer_median: float

    @property
    def lag_ratio(self) -> float:
        """How many times the peer median the straggler's remaining is."""
        if self.peer_median <= 0:
            return float("inf") if self.remaining_seconds > 0 else 1.0
        return self.remaining_seconds / self.peer_median


def detect_stragglers(
    cluster: ShardedCluster, ratio: float = 2.0, min_remaining: float = 0.5
) -> list[Straggler]:
    """Shards bounding their query's finish by more than *ratio* x median.

    Only fresh (non-degraded) contributions are considered, and shards
    with less than *min_remaining* seconds left are ignored -- blocking
    a victim for a shard about to finish anyway is churn, not help.
    """
    if ratio <= 1.0:
        raise ValueError(f"ratio must be > 1, got {ratio}")
    out: list[Straggler] = []
    for query_id, estimate in cluster.estimates().items():
        dq = cluster.query(query_id)
        if dq.terminal:
            continue
        fresh = {
            shard: contrib.remaining_seconds
            for shard, contrib in estimate.shards.items()
            if not contrib.degraded
        }
        if len(fresh) < 2:
            continue
        for shard, remaining in fresh.items():
            if remaining < min_remaining:
                continue
            peers = [r for s, r in fresh.items() if s != shard]
            peer_median = median(peers)
            if remaining > ratio * peer_median:
                subs = [
                    s for s in dq.shard_subqueries(shard)
                    if s.status == "running"
                ]
                if not subs:
                    continue
                out.append(
                    Straggler(
                        query_id=query_id,
                        shard=shard,
                        node_id=subs[0].node_id,
                        remaining_seconds=remaining,
                        peer_median=peer_median,
                    )
                )
    out.sort(key=lambda s: (-s.lag_ratio, s.query_id, s.shard))
    return out


def choose_cross_shard_victim(
    cluster: ShardedCluster, straggler: Straggler, h: int = 1
) -> SpeedupChoice:
    """Optimal victim(s) to block on the straggler's node (Section 3.1).

    The candidate pool is everything running on the straggler's node
    except the straggling query's own sub-queries (blocking a sibling
    sub-query of the same distributed query would trade one straggler
    for another).

    Raises
    ------
    ValueError
        If the straggling sub-query is not running on its node, or no
        candidate victim exists there.
    """
    node = cluster.nodes[straggler.node_id]
    dq = cluster.query(straggler.query_id)
    own = {s.sub_id for s in dq.subqueries.values()}
    target = next(
        (
            s.sub_id for s in dq.shard_subqueries(straggler.shard)
            if s.status == "running" and s.node_id == straggler.node_id
        ),
        None,
    )
    if target is None:
        raise ValueError(
            f"query {straggler.query_id!r} has no running sub-query on "
            f"shard {straggler.shard}"
        )
    snapshots = [
        job.snapshot()
        for job in node.rdbms.running
        if job.query_id == target or job.query_id not in own
    ]
    return choose_victims(
        snapshots, target, node.rdbms.processing_rate, h=h
    )


@dataclass(frozen=True)
class ClusterWatchdogAction:
    """One straggler response: what was detected and what was blocked."""

    time: float
    query_id: str
    shard: int
    node_id: str
    lag_ratio: float
    victims: tuple[str, ...]
    #: Predicted reduction of the straggler's remaining time, seconds.
    benefit: float


class ClusterWatchdog:
    """Detects stragglers each epoch and blocks victims on their nodes.

    Call :meth:`check` from the driving loop after each
    ``cluster.run_until`` slice (the cluster has no sampler hook of its
    own -- epoch processing is router-driven).  A (query, shard) pair is
    acted on at most once, and victims are blocked without admitting a
    replacement, so the freed capacity goes to the straggler.
    """

    def __init__(
        self,
        cluster: ShardedCluster,
        ratio: float = 2.0,
        min_remaining: float = 0.5,
        block_victims: bool = True,
    ) -> None:
        self.cluster = cluster
        self.ratio = ratio
        self.min_remaining = min_remaining
        self.block_victims = block_victims
        self.actions: list[ClusterWatchdogAction] = []
        self._handled: set[tuple[str, int]] = set()
        #: Outstanding blocks: (node_id, victim_id) -> straggler key.
        self._blocked: dict[tuple[str, str], tuple[str, int]] = {}

    def _release_victims(self) -> None:
        """Unblock victims whose straggler has finished (or died).

        Without this a blocked victim -- possibly another distributed
        query's sub-query -- would stay suspended forever and its own
        query would never complete.
        """
        for (node_id, victim), key in list(self._blocked.items()):
            query_id, shard = key
            dq = self.cluster.query(query_id)
            done = dq.terminal or all(
                s.status == "finished" for s in dq.shard_subqueries(shard)
            )
            if not done:
                continue
            del self._blocked[(node_id, victim)]
            rdbms = self.cluster.nodes[node_id].rdbms
            record = rdbms.records().get(victim)
            if record is not None and record.status == "blocked":
                rdbms.unblock(victim)

    def check(self) -> list[ClusterWatchdogAction]:
        """One detection pass; returns the actions taken this pass."""
        self._release_victims()
        taken: list[ClusterWatchdogAction] = []
        for straggler in detect_stragglers(
            self.cluster, self.ratio, self.min_remaining
        ):
            key = (straggler.query_id, straggler.shard)
            if key in self._handled:
                continue
            self._handled.add(key)
            victims: tuple[str, ...] = ()
            benefit = 0.0
            if self.block_victims:
                try:
                    choice = choose_cross_shard_victim(self.cluster, straggler)
                except ValueError:
                    choice = None  # nothing to block on that node
                if choice is not None and choice.benefit > 0:
                    node = self.cluster.nodes[straggler.node_id]
                    for victim in choice.victims:
                        node.rdbms.block(victim)
                        self._blocked[(straggler.node_id, victim)] = key
                    victims = choice.victims
                    benefit = choice.benefit
            action = ClusterWatchdogAction(
                time=self.cluster.clock,
                query_id=straggler.query_id,
                shard=straggler.shard,
                node_id=straggler.node_id,
                lag_ratio=straggler.lag_ratio,
                victims=victims,
                benefit=benefit,
            )
            taken.append(action)
            self.actions.append(action)
            obs = self.cluster._obs
            if obs is not None:
                obs.metrics.counter("dist.stragglers").inc()
                obs.tracer.emit(
                    "shard.straggler", self.cluster.clock,
                    straggler.query_id, shard=straggler.shard,
                    node=straggler.node_id, lag_ratio=straggler.lag_ratio,
                    victims=",".join(victims), benefit=benefit,
                )
        return taken
