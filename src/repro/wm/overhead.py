"""Abort-overhead-aware maintenance planning (the paper's future work).

Section 3.3 assumes "the overhead of aborting queries is negligible
compared to the query execution cost ... In general, aborting jobs may
introduce non-negligible overhead.  How to handle this case is left as an
interesting area for future work."  This module implements that extension.

Model: aborting ``Q_i`` triggers ``o_i`` U's of rollback work that the
system must process before it is quiescent.  Aborting therefore shortens
the quiescent time by only

    ``V_i = (c_i - o_i) / C``

and queries whose rollback costs at least their remaining work (``o_i >=
c_i``) are never worth aborting.  The greedy rule generalises naturally:
abort in ascending order of ``loss_i / V_i`` over the candidates with
``V_i > 0``, until the projected quiescent time

    ``(sum_kept c_i + sum_aborted o_i) / C``

meets the deadline (or no useful candidate remains -- with overheads, a
deadline can be genuinely infeasible).  An exact oracle via subset
enumeration is provided for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Mapping, Sequence

from repro.core.model import QuerySnapshot
from repro.wm.maintenance import LostWorkCase

#: Maps a query to its abort (rollback) overhead in U's.
OverheadFn = Callable[[QuerySnapshot], float]


def proportional_overhead(fraction: float) -> OverheadFn:
    """Overhead proportional to completed work (undo-log style rollback)."""
    if fraction < 0:
        raise ValueError("fraction must be >= 0")
    return lambda q: fraction * q.completed_work


def constant_overhead(units: float) -> OverheadFn:
    """Fixed per-abort overhead in U's."""
    if units < 0:
        raise ValueError("units must be >= 0")
    return lambda q: units


@dataclass(frozen=True)
class OverheadPlan:
    """An abort plan under non-negligible abort overheads."""

    aborts: tuple[str, ...]
    #: Projected drain time including rollback work, seconds.
    projected_quiescent_time: float
    lost_work: float
    total_work: float
    deadline: float
    #: Rollback work incurred by the plan, U's.
    rollback_work: float
    #: Whether the projected drain time meets the deadline.  With
    #: overheads, some deadlines are infeasible even aborting everything
    #: useful.
    feasible: bool

    @property
    def unfinished_fraction(self) -> float:
        """``UW / TW``, as in Figure 11."""
        if self.total_work <= 0:
            return 0.0
        return self.lost_work / self.total_work


def plan_with_overhead(
    queries: Sequence[QuerySnapshot],
    deadline: float,
    processing_rate: float,
    overhead: OverheadFn,
    case: LostWorkCase = LostWorkCase.TOTAL_COST,
) -> OverheadPlan:
    """Greedy overhead-aware maintenance planning.

    Raises
    ------
    ValueError
        On invalid deadline or rate, or a negative overhead value.
    """
    if deadline < 0:
        raise ValueError("deadline must be >= 0")
    if processing_rate <= 0:
        raise ValueError("processing_rate must be > 0")

    total_work = sum(q.total_cost for q in queries)
    overheads: dict[str, float] = {}
    for q in queries:
        o = overhead(q)
        if o < 0:
            raise ValueError(f"negative overhead for {q.query_id!r}")
        overheads[q.query_id] = o

    # Only queries whose abort actually saves time are candidates.
    def saving(q: QuerySnapshot) -> float:
        return (q.remaining_cost - overheads[q.query_id]) / processing_rate

    candidates = [q for q in queries if saving(q) > 0]

    def ratio(q: QuerySnapshot) -> tuple[float, float, str]:
        loss = case.loss_of(q)
        return (loss / saving(q), -q.remaining_cost, q.query_id)

    candidates.sort(key=ratio)

    remaining_work = sum(q.remaining_cost for q in queries)
    rollback = 0.0
    lost = 0.0
    aborts: list[str] = []

    def drain() -> float:
        return (remaining_work + rollback) / processing_rate

    for q in candidates:
        if drain() <= deadline + 1e-9:
            break
        aborts.append(q.query_id)
        lost += case.loss_of(q)
        remaining_work -= q.remaining_cost
        rollback += overheads[q.query_id]

    return OverheadPlan(
        aborts=tuple(aborts),
        projected_quiescent_time=drain(),
        lost_work=lost,
        total_work=total_work,
        deadline=deadline,
        rollback_work=rollback,
        feasible=drain() <= deadline + 1e-9,
    )


def plan_ignoring_overhead(
    queries: Sequence[QuerySnapshot],
    deadline: float,
    processing_rate: float,
    overhead: OverheadFn,
    case: LostWorkCase = LostWorkCase.TOTAL_COST,
) -> OverheadPlan:
    """The naive baseline: plan as if aborts were free, then pay anyway.

    Uses the Section 3.3 greedy (overhead-blind) to choose aborts, then
    reports the *true* projected drain time including the rollback work the
    plan did not account for.  Used by the ablation bench to quantify the
    value of overhead awareness.
    """
    from repro.wm.maintenance import plan_maintenance

    blind = plan_maintenance(queries, deadline, processing_rate, case)
    by_id = {q.query_id: q for q in queries}
    rollback = sum(overhead(by_id[qid]) for qid in blind.aborts)
    remaining = sum(
        q.remaining_cost for q in queries if q.query_id not in set(blind.aborts)
    )
    drain = (remaining + rollback) / processing_rate
    return OverheadPlan(
        aborts=blind.aborts,
        projected_quiescent_time=drain,
        lost_work=blind.lost_work,
        total_work=blind.total_work,
        deadline=deadline,
        rollback_work=rollback,
        feasible=drain <= deadline + 1e-9,
    )


def exact_plan_with_overhead(
    queries: Sequence[QuerySnapshot],
    deadline: float,
    processing_rate: float,
    overhead: OverheadFn,
    case: LostWorkCase = LostWorkCase.TOTAL_COST,
    enumeration_limit: int = 18,
) -> OverheadPlan:
    """Exact overhead-aware optimum by subset enumeration (small n).

    Minimises lost work over all feasible abort sets; if no set is
    feasible, returns the set with the smallest projected drain time
    (breaking ties by lost work).

    Raises
    ------
    ValueError
        If ``len(queries)`` exceeds *enumeration_limit*.
    """
    if len(queries) > enumeration_limit:
        raise ValueError(
            f"exact enumeration limited to {enumeration_limit} queries"
        )
    if deadline < 0:
        raise ValueError("deadline must be >= 0")
    if processing_rate <= 0:
        raise ValueError("processing_rate must be > 0")

    total_work = sum(q.total_cost for q in queries)
    total_remaining = sum(q.remaining_cost for q in queries)
    best: OverheadPlan | None = None

    ids = list(range(len(queries)))
    for r in range(len(queries) + 1):
        for combo in combinations(ids, r):
            aborted = [queries[i] for i in combo]
            rollback = sum(overhead(q) for q in aborted)
            remaining = total_remaining - sum(q.remaining_cost for q in aborted)
            drain = (remaining + rollback) / processing_rate
            lost = sum(case.loss_of(q) for q in aborted)
            feasible = drain <= deadline + 1e-9
            plan = OverheadPlan(
                aborts=tuple(q.query_id for q in aborted),
                projected_quiescent_time=drain,
                lost_work=lost,
                total_work=total_work,
                deadline=deadline,
                rollback_work=rollback,
                feasible=feasible,
            )
            if best is None:
                best = plan
                continue
            if feasible and not best.feasible:
                best = plan
            elif feasible and best.feasible and lost < best.lost_work - 1e-12:
                best = plan
            elif (
                not feasible
                and not best.feasible
                and (
                    drain < best.projected_quiescent_time - 1e-12
                    or (
                        abs(drain - best.projected_quiescent_time) <= 1e-12
                        and lost < best.lost_work - 1e-12
                    )
                )
            ):
                best = plan
    assert best is not None
    return best
