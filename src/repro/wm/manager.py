"""Adaptive workload management: revise decisions as estimates change.

The paper (Sections 1 and 4) stresses that PI-driven workload management is
*dynamic*: "PIs are used to continuously monitor the system status.  If the
system status differs significantly from what was predicted, the original
workload management decisions are revised accordingly."

:class:`AdaptiveMaintenanceManager` implements that loop for the scheduled
maintenance problem: it plans an abort set at decision time, then
re-evaluates periodically from live PI estimates; if the projected drain
time has drifted past the deadline (estimates were too optimistic), it
aborts more queries -- always by the same greedy loss-per-saved-second rule.
It never "un-aborts": revisions are monotone, as in practice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.core.validation import finite_snapshots
from repro.sim.rdbms import SimulatedRDBMS
from repro.wm.maintenance import LostWorkCase, plan_maintenance


@dataclass
class RevisionEvent:
    """One manager wake-up: what it saw and what it did."""

    time: float
    projected_drain: float
    time_left: float
    aborted: tuple[str, ...]
    #: Queries planned from carried-back (stale) estimates this revision.
    degraded: tuple[str, ...] = ()


@dataclass
class AdaptiveMaintenanceManager:
    """Plan-and-revise controller for one maintenance deadline.

    Parameters
    ----------
    rdbms:
        The simulated RDBMS to manage.
    deadline:
        Absolute virtual time by which the system must be quiescent.
    check_interval:
        How often (virtual seconds) to re-check the projection.
    case:
        Lost-work accounting (Section 3.3 Case 1 or Case 2).
    slack:
        Tolerated overshoot (seconds) before a revision triggers, guarding
        against churn from tiny estimate wobbles.
    """

    rdbms: SimulatedRDBMS
    deadline: float
    check_interval: float = 5.0
    case: LostWorkCase = LostWorkCase.TOTAL_COST
    slack: float = 1e-6
    events: list[RevisionEvent] = field(default_factory=list)
    total_aborted: list[str] = field(default_factory=list)
    #: Last finite remaining-cost seen per live query, for carry-back
    #: when a later snapshot turns non-finite.
    _last_finite: dict[str, float] = field(default_factory=dict)

    def start(self) -> None:
        """Engage: drain the system, make the initial plan, arm the timer."""
        self.rdbms.drain(True)
        self._revise()  # initial decision (operation O2')
        self.rdbms.add_sampler(self.check_interval, self._on_tick)

    def _on_tick(self, rdbms: SimulatedRDBMS) -> None:
        if rdbms.clock < self.deadline:
            self._revise()

    def _revise(self) -> None:
        """Re-plan from live estimates; abort extra queries if needed.

        Estimates are read through the system snapshot (what a PI would
        see), so corrupted statistics reach the manager.  Queries whose
        snapshots turn non-finite are *not* dropped wholesale: the last
        finite remaining-cost observed for each is carried back so they
        stay in the plan (flagged in the revision event), and only
        queries that never reported a finite cost are left out of this
        revision -- they are reconsidered at the next wake-up, and
        operation O3 still catches them at the deadline.
        """
        now = self.rdbms.clock
        time_left = max(self.deadline - now, 0.0)
        system = self.rdbms.snapshot()
        live = list(system.running) + list(system.queued)
        sanitized = []
        degraded: list[str] = []
        for snap in live:
            if math.isfinite(snap.remaining_cost):
                self._last_finite[snap.query_id] = snap.remaining_cost
                sanitized.append(snap)
            elif snap.query_id in self._last_finite:
                degraded.append(snap.query_id)
                sanitized.append(
                    replace(
                        snap,
                        remaining_cost=self._last_finite[snap.query_id],
                    )
                )
        running = finite_snapshots(sanitized)
        plan = plan_maintenance(
            running, time_left + self.slack, self.rdbms.processing_rate, self.case
        )
        for qid in plan.aborts:
            self.rdbms.abort(qid)
            self.total_aborted.append(qid)
        self.events.append(
            RevisionEvent(
                time=now,
                projected_drain=plan.projected_quiescent_time,
                time_left=time_left,
                aborted=plan.aborts,
                degraded=tuple(degraded),
            )
        )
        obs = self.rdbms.obs
        if obs is not None:
            obs.metrics.counter("manager.revisions").inc()
            if plan.aborts:
                obs.metrics.counter("manager.revision_aborts").inc(
                    len(plan.aborts)
                )
            obs.tracer.emit(
                "manager.revise",
                now,
                projected_drain=plan.projected_quiescent_time,
                time_left=time_left,
                aborted=len(plan.aborts),
                aborted_ids=",".join(plan.aborts),
            )

    def finish(self) -> tuple[str, ...]:
        """Operation O3 at the deadline: abort whatever is still unfinished.

        Returns the ids aborted at the deadline.
        """
        late = []
        for job in list(self.rdbms.running) + list(self.rdbms.queued):
            late.append(job.query_id)
            self.rdbms.abort(job.query_id)
            self.total_aborted.append(job.query_id)
        return tuple(late)

    @property
    def revision_count(self) -> int:
        """Number of wake-ups that actually aborted something (after t=0)."""
        return sum(1 for e in self.events[1:] if e.aborted)


def run_adaptive_maintenance(
    rdbms: SimulatedRDBMS,
    deadline: float,
    check_interval: float = 5.0,
    case: LostWorkCase = LostWorkCase.TOTAL_COST,
) -> AdaptiveMaintenanceManager:
    """Run a full managed maintenance window and return the manager.

    Convenience wrapper: starts the manager at the current virtual time,
    runs to the (absolute) deadline, performs O3, and returns the manager
    with its revision log.
    """
    if deadline < rdbms.clock:
        raise ValueError("deadline is in the past")
    manager = AdaptiveMaintenanceManager(
        rdbms=rdbms,
        deadline=deadline,
        check_interval=check_interval,
        case=case,
    )
    manager.start()
    rdbms.run_until(deadline)
    manager.finish()
    return manager
