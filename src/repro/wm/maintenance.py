"""The scheduled maintenance problem (paper Section 3.3).

Maintenance starts at time ``t``.  Operation O1 stops new arrivals at time 0;
the question is which running queries to abort *now* (operation O2') so the
system drains by ``t`` while losing as little work as possible.

Aborting ``Q_i`` shortens the system quiescent time by ``V_i = c_i / C``
(its remaining work no longer has to be processed).  The lost work is

* **Case 1**: ``e_i`` -- the work already completed for the aborted query;
* **Case 2**: ``e_i + c_i`` -- the query's whole cost, since it must rerun.

Maximising saved time while minimising lost work is a knapsack problem; the
paper uses the classic greedy: abort queries in ascending order of
``loss_i / V_i`` until the projected quiescent time meets the deadline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.core.model import QuerySnapshot


class LostWorkCase(enum.Enum):
    """How the amount of lost work ``Lw`` is accounted (Section 3.3)."""

    #: Lost work = completed work of aborted queries.
    COMPLETED_WORK = 1
    #: Lost work = total cost of aborted queries (they must rerun).
    TOTAL_COST = 2

    def loss_of(self, query: QuerySnapshot) -> float:
        """Lost work if *query* is aborted, under this accounting."""
        if self is LostWorkCase.COMPLETED_WORK:
            return query.completed_work
        return query.completed_work + query.remaining_cost


def quiescent_time(queries: Sequence[QuerySnapshot], processing_rate: float) -> float:
    """Time until all *queries* finish with no arrivals: ``sum(c_i) / C``.

    Under any work-conserving sharing policy the system drains exactly when
    the total outstanding work has been processed.
    """
    if processing_rate <= 0:
        raise ValueError("processing_rate must be > 0")
    return sum(q.remaining_cost for q in queries) / processing_rate


@dataclass(frozen=True)
class MaintenancePlan:
    """Output of maintenance planning: which queries to abort, and why."""

    #: Ids of queries to abort at time 0, in abort order.
    aborts: tuple[str, ...]
    #: Projected time for the surviving queries to drain, seconds.
    projected_quiescent_time: float
    #: Lost work of the aborted queries under the chosen accounting, U's.
    lost_work: float
    #: Total work (sum of total costs) of all queries considered, U's.
    total_work: float
    #: The deadline the plan was built for, seconds.
    deadline: float
    case: LostWorkCase

    @property
    def unfinished_fraction(self) -> float:
        """``UW / TW`` -- the paper's normalised lost-work metric (Fig 11)."""
        if self.total_work <= 0:
            return 0.0
        return self.lost_work / self.total_work

    @property
    def meets_deadline(self) -> bool:
        """Whether the surviving queries are projected to drain in time."""
        return self.projected_quiescent_time <= self.deadline + 1e-9


def plan_maintenance(
    queries: Sequence[QuerySnapshot],
    deadline: float,
    processing_rate: float,
    case: LostWorkCase = LostWorkCase.TOTAL_COST,
) -> MaintenancePlan:
    """Greedy maintenance planning (the paper's multi-query-PI method).

    Sort queries ascending by ``loss_i / V_i`` (equivalently
    ``loss_i / c_i``) and abort until the projected quiescent time
    ``sum(c_kept) / C`` is within the deadline.  Zero-remaining-cost queries
    are never aborted (aborting them frees no time).

    Raises
    ------
    ValueError
        On a negative deadline or non-positive processing rate.
    """
    if deadline < 0:
        raise ValueError("deadline must be >= 0")
    if processing_rate <= 0:
        raise ValueError("processing_rate must be > 0")

    total_work = sum(q.total_cost for q in queries)
    remaining_sum = sum(q.remaining_cost for q in queries)

    # Abort order: ascending loss per unit of saved time.  Ties prefer the
    # larger remaining cost (more time saved per abort), then id.
    def sort_key(q: QuerySnapshot) -> tuple[float, float, str]:
        v = q.remaining_cost / processing_rate
        loss = case.loss_of(q)
        ratio = loss / v if v > 0 else float("inf")
        return (ratio, -q.remaining_cost, q.query_id)

    candidates = sorted((q for q in queries if q.remaining_cost > 0), key=sort_key)

    aborts: list[str] = []
    lost = 0.0
    for q in candidates:
        if remaining_sum / processing_rate <= deadline + 1e-9:
            break
        aborts.append(q.query_id)
        lost += case.loss_of(q)
        remaining_sum -= q.remaining_cost

    return MaintenancePlan(
        aborts=tuple(aborts),
        projected_quiescent_time=remaining_sum / processing_rate,
        lost_work=lost,
        total_work=total_work,
        deadline=deadline,
        case=case,
    )


def largest_remaining_first_plan(
    queries: Sequence[QuerySnapshot],
    deadline: float,
    processing_rate: float,
    case: LostWorkCase = LostWorkCase.TOTAL_COST,
) -> MaintenancePlan:
    """The paper's *single-query PI method* abort rule.

    "When operation O2' was performed, the query with the largest estimated
    remaining cost was first aborted", repeating until the projected drain
    time meets the deadline.  Note: with a single-query PI the remaining
    *time* estimate of each query is ``c_i / s_i`` under the *current* load,
    so this method judges "cannot finish by t" against those inflated
    estimates -- the experiment driver handles that part; this function
    implements the abort ordering given the kill set size decision.
    """
    if deadline < 0:
        raise ValueError("deadline must be >= 0")
    if processing_rate <= 0:
        raise ValueError("processing_rate must be > 0")
    total_work = sum(q.total_cost for q in queries)
    remaining_sum = sum(q.remaining_cost for q in queries)
    candidates = sorted(
        (q for q in queries if q.remaining_cost > 0),
        key=lambda q: (-q.remaining_cost, q.query_id),
    )
    aborts: list[str] = []
    lost = 0.0
    for q in candidates:
        if remaining_sum / processing_rate <= deadline + 1e-9:
            break
        aborts.append(q.query_id)
        lost += case.loss_of(q)
        remaining_sum -= q.remaining_cost
    return MaintenancePlan(
        aborts=tuple(aborts),
        projected_quiescent_time=remaining_sum / processing_rate,
        lost_work=lost,
        total_work=total_work,
        deadline=deadline,
        case=case,
    )
