"""The multiple-query speed-up problem (paper Section 3.2).

Block a single victim ``Q_m`` to minimise the *total response time* of all
other queries.  With queries sorted ascending by ``c/w`` and ``t_j`` / ``W_j``
the standard-case stage durations / suffix weights, blocking ``Q_m``
shortens stage ``j <= m`` by ``dt_j = t_j * w_m / W_j`` and each shortened
stage benefits the ``n - j`` queries still running, so the aggregate
response-time improvement is

    ``R_m = sum_{j=1..m} (n - j) * t_j * w_m / W_j``

and the optimal victim maximises ``R_m`` (O(n log n) via prefix sums).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.model import QuerySnapshot


@dataclass(frozen=True)
class MultiSpeedupChoice:
    """Result of victim selection for the multiple-query speed-up problem."""

    victim: str
    #: Predicted total response-time improvement across all other queries.
    improvement: float
    #: Per-candidate improvements ``R_m`` (query id -> seconds), for audits.
    all_improvements: dict[str, float]


def improvement_of_blocking(
    queries: Sequence[QuerySnapshot],
    victim_id: str,
    processing_rate: float,
) -> float:
    """Total response-time improvement ``R_m`` from blocking *victim_id*."""
    choice = choose_victim_for_all(queries, processing_rate)
    try:
        return choice.all_improvements[victim_id]
    except KeyError:
        raise ValueError(f"victim {victim_id!r} not among the queries") from None


def choose_victim_for_all(
    queries: Sequence[QuerySnapshot],
    processing_rate: float,
) -> MultiSpeedupChoice:
    """Pick the victim whose blocking most improves everyone else.

    Raises
    ------
    ValueError
        With fewer than two queries (there must be someone left to benefit).
    """
    if processing_rate <= 0:
        raise ValueError("processing_rate must be > 0")
    n = len(queries)
    if n < 2:
        raise ValueError("need at least two queries")

    ordered = sorted(queries, key=lambda q: (q.remaining_cost / q.weight, q.query_id))
    suffix = [0.0] * (n + 1)
    for k in range(n - 1, -1, -1):
        suffix[k] = suffix[k + 1] + ordered[k].weight
    durations = []
    prev_ratio = 0.0
    for k, q in enumerate(ordered):
        ratio = q.remaining_cost / q.weight
        durations.append((ratio - prev_ratio) * suffix[k] / processing_rate)
        prev_ratio = ratio

    # prefix[m] = sum_{j=0..m-1} (n - (j+1)) * t_j / W_j   (0-based stages)
    prefix = [0.0] * (n + 1)
    for j in range(n):
        weight_share = durations[j] / suffix[j] if suffix[j] > 0 else 0.0
        prefix[j + 1] = prefix[j] + (n - (j + 1)) * weight_share

    improvements = {
        q.query_id: q.weight * prefix[m + 1] for m, q in enumerate(ordered)
    }
    victim = max(
        improvements, key=lambda qid: (improvements[qid], qid)
    )
    return MultiSpeedupChoice(
        victim=victim,
        improvement=improvements[victim],
        all_improvements=improvements,
    )
