"""The single-query speed-up problem (paper Section 3.1).

To speed up a target query ``Q_i``, block ``h >= 1`` victim queries.  The
paper derives, for queries sorted ascending by ``c/w`` (so ``Q_i`` finishes
``i``-th in the standard case), the *benefit* of blocking ``Q_m`` -- the
amount by which the target's remaining time shrinks:

* for a victim that would finish **before** the target (``m < i``):
  ``T_m = c_m / C`` -- blocking it saves exactly its remaining work;
* for a victim that would finish **after** the target (``m > i``):
  ``T_m = w_m * sum_{j=1..i} t_j / W_j`` where ``t_j`` is the stage-``j``
  duration and ``W_j`` the weight of the queries running in stage ``j`` --
  maximised by the victim with the largest weight.

The optimal single victim is the better of the two set-wise candidates, and
benefits are additive across victims, so a greedy pass yields the optimal
``h`` victims.  The equal-priority special case admits an ``O(n)`` shortcut
(any later-finishing query; else the largest remaining cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.model import QuerySnapshot
from repro.core.standard_case import standard_case


@dataclass(frozen=True)
class SpeedupChoice:
    """Result of victim selection for the single-query speed-up problem."""

    target: str
    victims: tuple[str, ...]
    #: Predicted reduction of the target's remaining time, seconds.
    benefit: float
    #: Target's remaining time in the standard case (no blocking), seconds.
    baseline_remaining: float
    #: Predicted remaining time after blocking the victims, seconds.
    predicted_remaining: float


def _benefit_of(
    ordered: Sequence[QuerySnapshot],
    stage_durations: Sequence[float],
    suffix_weights: Sequence[float],
    target_idx: int,
    victim_idx: int,
    processing_rate: float,
) -> float:
    """Benefit ``T_m`` of blocking ``ordered[victim_idx]`` for the target."""
    if victim_idx < target_idx:
        return ordered[victim_idx].remaining_cost / processing_rate
    # Victim outlives the target: shortening spread over stages 1..i.
    w_m = ordered[victim_idx].weight
    return w_m * sum(
        stage_durations[j] / suffix_weights[j] for j in range(target_idx + 1)
    )


def choose_victim(
    queries: Sequence[QuerySnapshot],
    target_id: str,
    processing_rate: float,
) -> SpeedupChoice:
    """Pick the single optimal victim to block for *target_id*.

    Implements the three-step algorithm of Section 3.1 (O(n log n)).

    Raises
    ------
    ValueError
        If the target is unknown, or there is no other query to block.
    """
    return choose_victims(queries, target_id, processing_rate, h=1)


def choose_victims(
    queries: Sequence[QuerySnapshot],
    target_id: str,
    processing_rate: float,
    h: int = 1,
) -> SpeedupChoice:
    """Greedily pick the optimal *h* victims to block for *target_id*.

    Benefits of blocking are additive (paper Section 3.1), so the greedy
    procedure -- pick the best victim, remove it, repeat -- returns the
    optimal ``h``-victim set.  Each round re-solves victim selection on the
    reduced query set, exactly as the paper describes.
    """
    if processing_rate <= 0:
        raise ValueError("processing_rate must be > 0")
    if h < 1:
        raise ValueError("h must be >= 1")
    ids = [q.query_id for q in queries]
    if target_id not in ids:
        raise ValueError(f"target {target_id!r} not among the queries")
    if len(queries) - 1 < h:
        raise ValueError(f"cannot block h={h} victims out of {len(queries) - 1} others")

    baseline = standard_case(
        queries, processing_rate, include_stages=False
    ).remaining_times[target_id]

    remaining = list(queries)
    victims: list[str] = []
    total_benefit = 0.0
    for _ in range(h):
        victim_id, benefit = _best_single_victim(remaining, target_id, processing_rate)
        victims.append(victim_id)
        total_benefit += benefit
        remaining = [q for q in remaining if q.query_id != victim_id]

    survivors = [q for q in queries if q.query_id not in victims]
    predicted = standard_case(
        survivors, processing_rate, include_stages=False
    ).remaining_times[target_id]
    return SpeedupChoice(
        target=target_id,
        victims=tuple(victims),
        benefit=total_benefit,
        baseline_remaining=baseline,
        predicted_remaining=predicted,
    )


def _best_single_victim(
    queries: Sequence[QuerySnapshot], target_id: str, processing_rate: float
) -> tuple[str, float]:
    """One round of the three-step victim choice; returns (victim, benefit)."""
    ordered = sorted(
        queries, key=lambda q: (q.remaining_cost / q.weight, q.query_id)
    )
    target_idx = next(
        k for k, q in enumerate(ordered) if q.query_id == target_id
    )

    n = len(ordered)
    # Suffix weight sums W_j and stage durations t_j of the standard case.
    suffix = [0.0] * (n + 1)
    for k in range(n - 1, -1, -1):
        suffix[k] = suffix[k + 1] + ordered[k].weight
    durations = []
    prev_ratio = 0.0
    for k, q in enumerate(ordered):
        ratio = q.remaining_cost / q.weight
        durations.append((ratio - prev_ratio) * suffix[k] / processing_rate)
        prev_ratio = ratio

    best_id: str | None = None
    best_benefit = -1.0

    # Step 1 -- candidates that outlive the target (set S2): max weight wins.
    later = [k for k in range(target_idx + 1, n)]
    if later:
        k2 = max(later, key=lambda k: (ordered[k].weight, ordered[k].query_id))
        b2 = _benefit_of(ordered, durations, suffix, target_idx, k2, processing_rate)
        best_id, best_benefit = ordered[k2].query_id, b2

    # Step 2 -- candidates that finish before the target (set S1): max cost.
    earlier = [k for k in range(target_idx)]
    if earlier:
        k1 = max(
            earlier, key=lambda k: (ordered[k].remaining_cost, ordered[k].query_id)
        )
        b1 = _benefit_of(ordered, durations, suffix, target_idx, k1, processing_rate)
        if b1 > best_benefit:
            best_id, best_benefit = ordered[k1].query_id, b1

    # Step 3 -- the better of the two.
    if best_id is None:
        raise ValueError("no candidate victim exists")
    return best_id, best_benefit


def choose_victim_equal_priority(
    queries: Sequence[QuerySnapshot],
    target_id: str,
    processing_rate: float,
) -> SpeedupChoice:
    """The O(n) special case: all queries share one priority.

    Paper Section 3.1: scan once; any query with remaining cost at least the
    target's is optimal, otherwise the largest remaining cost wins.

    Raises
    ------
    ValueError
        If the queries do not in fact share a single weight.
    """
    if processing_rate <= 0:
        raise ValueError("processing_rate must be > 0")
    weights = {q.weight for q in queries}
    if len(weights) > 1:
        raise ValueError("queries do not all share one priority/weight")
    target = next((q for q in queries if q.query_id == target_id), None)
    if target is None:
        raise ValueError(f"target {target_id!r} not among the queries")
    others = [q for q in queries if q.query_id != target_id]
    if not others:
        raise ValueError("no candidate victim exists")

    victim: QuerySnapshot | None = None
    largest: QuerySnapshot = others[0]
    for q in others:
        if q.remaining_cost > largest.remaining_cost or (
            q.remaining_cost == largest.remaining_cost
            and q.query_id < largest.query_id
        ):
            largest = q
        if q.remaining_cost >= target.remaining_cost:
            victim = q if victim is None else victim
    if victim is None:
        victim = largest

    baseline = standard_case(
        queries, processing_rate, include_stages=False
    ).remaining_times[target_id]
    survivors = [q for q in queries if q.query_id != victim.query_id]
    predicted = standard_case(
        survivors, processing_rate, include_stages=False
    ).remaining_times[target_id]
    return SpeedupChoice(
        target=target_id,
        victims=(victim.query_id,),
        benefit=baseline - predicted,
        baseline_remaining=baseline,
        predicted_remaining=predicted,
    )
