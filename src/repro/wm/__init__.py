"""Workload management built on multi-query progress indicators (Section 3).

Three problems from the paper, each solved with the information a
multi-query PI provides:

* :mod:`repro.wm.speedup` -- the **single-query speed-up problem**
  (Section 3.1): choose ``h`` victim queries to block so that a target
  query's remaining time shrinks the most.
* :mod:`repro.wm.multi_speedup` -- the **multiple-query speed-up problem**
  (Section 3.2): choose one victim to minimise the total response time of
  all other queries.
* :mod:`repro.wm.maintenance` -- the **scheduled maintenance problem**
  (Section 3.3): choose queries to abort so the system is quiescent by the
  maintenance deadline with minimal lost work (greedy knapsack), plus
  :mod:`repro.wm.oracle` computing the exact optimum ("theoretical
  limitation" line of paper Figure 11).
* :mod:`repro.wm.policies` -- executable policies (no-PI / single-query-PI /
  multi-query-PI) that drive a :class:`~repro.sim.rdbms.SimulatedRDBMS`
  through operations O1 / O2 / O2' / O3.
* :mod:`repro.wm.watchdog` -- the runaway-query watchdog: PI-predicted
  budget enforcement (deprioritize, then abort) with per-query stale
  carry-back under partially corrupted snapshots and an observed-work
  fallback when no usable estimate exists at all.
* :mod:`repro.wm.cross_shard` -- cluster-level workload management:
  straggler detection from the global PI's per-shard contributions, and
  Section 3.1 victim selection applied on the straggler's own node.
"""

from repro.wm.cross_shard import (
    ClusterWatchdog,
    ClusterWatchdogAction,
    Straggler,
    choose_cross_shard_victim,
    detect_stragglers,
)
from repro.wm.maintenance import (
    LostWorkCase,
    MaintenancePlan,
    largest_remaining_first_plan,
    plan_maintenance,
    quiescent_time,
)
from repro.wm.manager import AdaptiveMaintenanceManager, run_adaptive_maintenance
from repro.wm.multi_speedup import MultiSpeedupChoice, choose_victim_for_all
from repro.wm.oracle import exact_maintenance_plan
from repro.wm.overhead import (
    exact_plan_with_overhead,
    plan_with_overhead,
    proportional_overhead,
)
from repro.wm.policies import (
    decide_multi_pi,
    decide_no_pi,
    decide_single_pi,
    execute_policy,
)
from repro.wm.speedup import (
    SpeedupChoice,
    choose_victim,
    choose_victim_equal_priority,
    choose_victims,
)
from repro.wm.watchdog import RunawayQueryWatchdog, WatchdogAction

__all__ = [
    "AdaptiveMaintenanceManager",
    "ClusterWatchdog",
    "ClusterWatchdogAction",
    "LostWorkCase",
    "Straggler",
    "MaintenancePlan",
    "MultiSpeedupChoice",
    "RunawayQueryWatchdog",
    "SpeedupChoice",
    "WatchdogAction",
    "choose_cross_shard_victim",
    "choose_victim",
    "choose_victim_equal_priority",
    "choose_victim_for_all",
    "choose_victims",
    "decide_multi_pi",
    "decide_no_pi",
    "decide_single_pi",
    "detect_stragglers",
    "exact_maintenance_plan",
    "exact_plan_with_overhead",
    "execute_policy",
    "largest_remaining_first_plan",
    "plan_maintenance",
    "plan_with_overhead",
    "proportional_overhead",
    "quiescent_time",
    "run_adaptive_maintenance",
]
