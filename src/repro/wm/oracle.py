"""Exact maintenance planning: the paper's "theoretical limitation".

Figure 11 includes a line computed "using the exact information that comes
from the actual run-to-completion execution" of the queries: the optimal set
of aborts.  Finding it is a 0/1 knapsack (NP-hard in general); for the
experiment sizes (``n = 10``) exhaustive subset enumeration is exact and
instant.  For larger inputs a scaled dynamic program provides the optimum to
a configurable work resolution.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from repro.core.model import QuerySnapshot
from repro.wm.maintenance import LostWorkCase, MaintenancePlan

#: Largest n for which exhaustive enumeration is used.
_ENUMERATION_LIMIT = 20


def exact_maintenance_plan(
    queries: Sequence[QuerySnapshot],
    deadline: float,
    processing_rate: float,
    case: LostWorkCase = LostWorkCase.TOTAL_COST,
    resolution: int = 10_000,
) -> MaintenancePlan:
    """Minimise lost work subject to draining by *deadline* -- exactly.

    Chooses the abort set ``A`` minimising ``sum_{i in A} loss_i`` subject to
    ``sum_{i not in A} c_i <= C * t``.  Uses exhaustive enumeration for
    ``n <= 20``, otherwise a dynamic program on work scaled to *resolution*
    buckets (optimal to within one bucket of capacity).

    Raises
    ------
    ValueError
        If even aborting everything cannot meet the deadline (impossible,
        since aborting all queries leaves zero work -- only raised for a
        negative deadline) or on invalid inputs.
    """
    if deadline < 0:
        raise ValueError("deadline must be >= 0")
    if processing_rate <= 0:
        raise ValueError("processing_rate must be > 0")

    queries = list(queries)
    capacity = deadline * processing_rate
    total_work = sum(q.total_cost for q in queries)

    if len(queries) <= _ENUMERATION_LIMIT:
        keep = _best_keep_set_enumerated(queries, capacity, case)
    else:
        keep = _best_keep_set_dp(queries, capacity, case, resolution)

    keep_ids = {q.query_id for q in keep}
    aborted = [q for q in queries if q.query_id not in keep_ids]
    lost = sum(case.loss_of(q) for q in aborted)
    drain = sum(q.remaining_cost for q in keep) / processing_rate
    return MaintenancePlan(
        aborts=tuple(q.query_id for q in aborted),
        projected_quiescent_time=drain,
        lost_work=lost,
        total_work=total_work,
        deadline=deadline,
        case=case,
    )


def _best_keep_set_enumerated(
    queries: list[QuerySnapshot], capacity: float, case: LostWorkCase
) -> list[QuerySnapshot]:
    """Exhaustive search: the keep-set with maximal kept value within capacity."""
    slack = 1e-9 * max(capacity, 1.0)
    best: list[QuerySnapshot] = []
    best_value = -1.0
    n = len(queries)
    for r in range(n, -1, -1):
        for combo in combinations(queries, r):
            if sum(q.remaining_cost for q in combo) <= capacity + slack:
                value = sum(case.loss_of(q) for q in combo)
                if value > best_value:
                    best_value = value
                    best = list(combo)
    return best


def _best_keep_set_dp(
    queries: list[QuerySnapshot],
    capacity: float,
    case: LostWorkCase,
    resolution: int,
) -> list[QuerySnapshot]:
    """Scaled 0/1-knapsack DP: weights are remaining costs in buckets."""
    if resolution < 1:
        raise ValueError("resolution must be >= 1")
    if capacity <= 0:
        return [q for q in queries if q.remaining_cost == 0]
    scale = resolution / capacity
    weights = [min(int(q.remaining_cost * scale + 0.999999), resolution + 1)
               for q in queries]
    values = [case.loss_of(q) for q in queries]

    # dp[w] = best kept value using work budget w; choice for reconstruction.
    neg = float("-inf")
    dp = [0.0] + [0.0] * resolution
    take: list[list[bool]] = []
    for i, (wt, val) in enumerate(zip(weights, values)):
        row = [False] * (resolution + 1)
        if wt <= resolution:
            for w in range(resolution, wt - 1, -1):
                cand = dp[w - wt] + val
                if cand > dp[w]:
                    dp[w] = cand
                    row[w] = True
        take.append(row)

    # Reconstruct from the full budget.
    keep: list[QuerySnapshot] = []
    w = resolution
    for i in range(len(queries) - 1, -1, -1):
        if take[i][w]:
            keep.append(queries[i])
            w -= weights[i]
    keep.reverse()
    del neg
    return keep
