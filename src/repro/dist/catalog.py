"""Cluster metadata: tables -> shards -> replica nodes, and node health.

The :class:`ShardCatalog` is the cluster's (simulated) metadata service.
It records, for every partitioned table:

* the DDL needed to recreate the table (and its indexes) anywhere -- the
  router replays it when building a merge database for gather queries;
* per shard, the *replica chain* of node ids holding that fragment (the
  first live node in the chain is the shard's primary); and
* per shard, the original global row positions of the fragment's rows,
  in fragment-local order -- the bookkeeping that lets a gather merge
  reconstruct the exact original row order no matter how the table was
  partitioned.

It also tracks node health (``up`` / ``reachable``), which is what
failover reads: when a primary dies, :meth:`primary_for` silently moves
to the next *live* replica in the chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dist.partition import Partitioner


@dataclass
class NodeStatus:
    """Health of one node as the catalog believes it."""

    node_id: str
    #: Whether the node is alive (a crashed node is not).
    up: bool = True
    #: Whether the router can talk to the node (a partitioned node is
    #: alive but unreachable).
    reachable: bool = True

    @property
    def serving(self) -> bool:
        """Whether the node can serve sub-queries right now."""
        return self.up and self.reachable


@dataclass
class TableMeta:
    """Catalog entry for one partitioned table."""

    name: str
    ddl: str
    partitioner: Partitioner
    index_ddls: tuple[str, ...] = ()
    #: shard -> replica chain (node ids, priority order).
    placement: dict[int, tuple[str, ...]] = field(default_factory=dict)
    #: shard -> original global row positions, fragment-local order.
    positions: dict[int, tuple[int, ...]] = field(default_factory=dict)

    @property
    def n_shards(self) -> int:
        """Number of shards this table is split into."""
        return len(self.placement)


class ShardCatalog:
    """Tables -> shards -> replicas mapping plus node-health registry."""

    def __init__(self) -> None:
        self._nodes: dict[str, NodeStatus] = {}
        self._tables: dict[str, TableMeta] = {}

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------

    def register_node(self, node_id: str) -> NodeStatus:
        """Add a node to the registry (idempotent for known ids)."""
        if not node_id:
            raise ValueError("node_id must not be empty")
        if node_id not in self._nodes:
            self._nodes[node_id] = NodeStatus(node_id)
        return self._nodes[node_id]

    def node(self, node_id: str) -> NodeStatus:
        """Health record of *node_id*."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"unknown node {node_id!r}") from None

    def node_ids(self) -> tuple[str, ...]:
        """All registered node ids, registration order."""
        return tuple(self._nodes)

    def serving_nodes(self) -> tuple[str, ...]:
        """Ids of nodes currently up and reachable."""
        return tuple(n.node_id for n in self._nodes.values() if n.serving)

    def mark_down(self, node_id: str) -> None:
        """Record a node crash."""
        self.node(node_id).up = False

    def mark_up(self, node_id: str) -> None:
        """Record a node recovery."""
        self.node(node_id).up = True

    def mark_unreachable(self, node_id: str) -> None:
        """Record a network partition cutting the node off."""
        self.node(node_id).reachable = False

    def mark_reachable(self, node_id: str) -> None:
        """Record a partition healing."""
        self.node(node_id).reachable = True

    # ------------------------------------------------------------------
    # Tables and placement
    # ------------------------------------------------------------------

    def register_table(
        self,
        name: str,
        ddl: str,
        partitioner: Partitioner,
        index_ddls: tuple[str, ...] = (),
    ) -> TableMeta:
        """Register a partitioned table (before placing its fragments)."""
        if name in self._tables:
            raise ValueError(f"table {name!r} already registered")
        meta = TableMeta(
            name=name, ddl=ddl, partitioner=partitioner, index_ddls=index_ddls
        )
        self._tables[name] = meta
        return meta

    def add_index(self, table: str, ddl: str) -> None:
        """Record an index DDL against a registered table."""
        meta = self.table(table)
        meta.index_ddls = meta.index_ddls + (ddl,)

    def table(self, name: str) -> TableMeta:
        """Catalog entry of *name*."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"unknown table {name!r}") from None

    def tables(self) -> tuple[TableMeta, ...]:
        """All registered tables, registration order."""
        return tuple(self._tables.values())

    def place_fragment(
        self,
        table: str,
        shard: int,
        replicas: tuple[str, ...],
        positions: tuple[int, ...],
    ) -> None:
        """Record where one fragment lives and which rows it holds."""
        if not replicas:
            raise ValueError("a fragment needs at least one replica")
        for node_id in replicas:
            self.node(node_id)  # raise for unknown nodes
        meta = self.table(table)
        meta.placement[shard] = replicas
        meta.positions[shard] = positions

    def primary_for(self, table: str, shard: int) -> str | None:
        """The shard's current primary: first *serving* node in the chain.

        Returns ``None`` when every replica of the fragment is down or
        unreachable -- the caller decides whether to wait or give up.
        """
        chain = self.replicas_for(table, shard)
        for node_id in chain:
            if self._nodes[node_id].serving:
                return node_id
        return None

    def replicas_for(self, table: str, shard: int) -> tuple[str, ...]:
        """The fragment's full replica chain, priority order."""
        meta = self.table(table)
        try:
            return meta.placement[shard]
        except KeyError:
            raise KeyError(f"table {table!r} has no shard {shard}") from None

    def positions_for(self, table: str, shard: int) -> tuple[int, ...]:
        """Original global row positions of the fragment's rows."""
        meta = self.table(table)
        try:
            return meta.positions[shard]
        except KeyError:
            raise KeyError(f"table {table!r} has no shard {shard}") from None

    def describe(self) -> str:
        """Human-readable cluster layout, one fragment per line."""
        lines = []
        for status in self._nodes.values():
            state = (
                "up" if status.serving
                else ("unreachable" if status.up else "down")
            )
            lines.append(f"node {status.node_id}: {state}")
        for meta in self._tables.values():
            lines.append(
                f"table {meta.name}: {meta.partitioner.describe()}, "
                f"{meta.n_shards} shards"
            )
            for shard in sorted(meta.placement):
                chain = " -> ".join(meta.placement[shard])
                rows = len(meta.positions.get(shard, ()))
                lines.append(f"  shard {shard}: {rows} rows on {chain}")
        return "\n".join(lines)
