"""Fault-tolerant global progress aggregation for distributed queries.

A distributed query runs one sub-query per shard; each shard's node
produces an ordinary single-node remaining-time estimate.  The global
indicator rolls them up:

* **global remaining = the slowest shard's remaining** -- a scatter-gather
  query finishes when its last sub-query does, so the max (not the sum)
  of per-shard remaining times is the honest global figure;
* **per-shard contributions stay visible** so operators can see *which*
  shard is the straggler, not just that one exists.

The robustness contract (the reason this module exists) is that the
global estimate is *always finite*:

* Every sub-query registers with a finite initial estimate before its
  first report, so there is never a gap with nothing to show.
* A report is accepted only if it is finite and >= 0; anything else
  (NaN, inf, a crashed node's garbage) leaves the last accepted value in
  place and marks the shard **degraded**.
* When a shard's node is down or unreachable, no fresh reports arrive;
  the aggregator *carries back* the last finite estimate, flags the
  shard degraded, and exposes its ``staleness`` -- how long ago the
  carried value was actually measured -- so consumers can see exactly
  how much to trust it.  The estimate degrades; it never turns NaN.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ShardEstimate:
    """One shard's contribution to a global query estimate."""

    shard: int
    #: Last accepted (finite) remaining-time estimate, seconds.
    remaining_seconds: float
    #: Virtual time at which that value was measured.
    refreshed_at: float
    #: True when the value is carried back (node down/unreachable, or the
    #: last report was non-finite) rather than freshly measured.
    degraded: bool
    #: Seconds since the value was measured (0.0 when fresh).
    staleness: float


@dataclass(frozen=True)
class GlobalQueryEstimate:
    """The rolled-up progress of one distributed query."""

    query_id: str
    #: Max over the shards' remaining estimates (finish = last shard).
    remaining_seconds: float
    #: Per-shard contributions, keyed by shard index.
    shards: dict[int, ShardEstimate]
    #: Virtual time of the rollup.
    as_of: float

    @property
    def degraded(self) -> bool:
        """True when any shard's contribution is carried back."""
        return any(s.degraded for s in self.shards.values())

    @property
    def staleness(self) -> float:
        """Worst-case staleness across shards, seconds."""
        return max((s.staleness for s in self.shards.values()), default=0.0)

    @property
    def slowest_shard(self) -> int | None:
        """The shard currently bounding the global remaining time."""
        live = {s: e for s, e in self.shards.items()}
        if not live:
            return None
        return max(live, key=lambda s: (live[s].remaining_seconds, -s))


class _ShardState:
    __slots__ = ("remaining", "refreshed_at", "degraded", "done")

    def __init__(self, remaining: float, now: float) -> None:
        self.remaining = remaining
        self.refreshed_at = now
        self.degraded = False
        self.done = False


class GlobalProgressAggregator:
    """Rolls per-shard estimates into always-finite global query PIs."""

    def __init__(self) -> None:
        self._queries: dict[str, dict[int, _ShardState]] = {}

    def register(
        self, query_id: str, shard: int, initial_remaining: float, now: float
    ) -> None:
        """Register one sub-query with its finite initial estimate.

        Must precede any report for the (query, shard) pair; the initial
        value is what carry-back falls to if the node dies before its
        first real report.
        """
        if not math.isfinite(initial_remaining) or initial_remaining < 0:
            raise ValueError(
                f"initial estimate must be finite and >= 0, "
                f"got {initial_remaining}"
            )
        shards = self._queries.setdefault(query_id, {})
        if shard in shards:
            raise ValueError(f"shard {shard} of {query_id!r} already registered")
        shards[shard] = _ShardState(float(initial_remaining), now)

    def report(
        self, query_id: str, shard: int, remaining: float, now: float
    ) -> bool:
        """Accept a fresh per-shard estimate; reject non-finite garbage.

        Returns True when the value was accepted.  A rejected report
        (NaN, inf, negative) leaves the previous finite value carried
        back and marks the shard degraded -- the global PI survives a
        shard whose estimator has gone insane.
        """
        state = self._state(query_id, shard)
        if state.done:
            return False
        if not math.isfinite(remaining) or remaining < 0:
            state.degraded = True
            return False
        state.remaining = float(remaining)
        state.refreshed_at = now
        state.degraded = False
        return True

    def mark_degraded(self, query_id: str, shard: int) -> None:
        """Flag a shard's estimate as carried-back (its node is gone)."""
        state = self._state(query_id, shard)
        if not state.done:
            state.degraded = True

    def mark_done(self, query_id: str, shard: int, now: float) -> None:
        """Record a sub-query's completion: zero remaining, fresh, final."""
        state = self._state(query_id, shard)
        state.remaining = 0.0
        state.refreshed_at = now
        state.degraded = False
        state.done = True

    def move_shard(
        self, query_id: str, shard: int, remaining: float, now: float
    ) -> None:
        """Re-anchor a shard after failover to a replica.

        The replica resumes from the last checkpoint, so the shard's
        remaining estimate changes discontinuously; the new value must be
        finite (the router computes it from the restored execution).
        The shard stays *degraded* until the replica's first real report
        confirms the estimate with a live measurement.
        """
        if not math.isfinite(remaining) or remaining < 0:
            raise ValueError(
                f"failover estimate must be finite and >= 0, got {remaining}"
            )
        state = self._state(query_id, shard)
        state.remaining = float(remaining)
        state.refreshed_at = now
        state.degraded = True

    def estimate(self, query_id: str, now: float) -> GlobalQueryEstimate:
        """The query's global estimate at virtual time *now*.

        Always finite: every contribution is either a fresh measurement
        or a carried-back finite value with its staleness exposed.
        """
        shards = self._shards(query_id)
        contributions: dict[int, ShardEstimate] = {}
        for shard, state in sorted(shards.items()):
            stale = 0.0 if not state.degraded else max(
                now - state.refreshed_at, 0.0
            )
            contributions[shard] = ShardEstimate(
                shard=shard,
                remaining_seconds=state.remaining,
                refreshed_at=state.refreshed_at,
                degraded=state.degraded,
                staleness=stale,
            )
        remaining = max(
            (c.remaining_seconds for c in contributions.values()), default=0.0
        )
        return GlobalQueryEstimate(
            query_id=query_id,
            remaining_seconds=remaining,
            shards=contributions,
            as_of=now,
        )

    def estimates(self, now: float) -> dict[str, GlobalQueryEstimate]:
        """Global estimates for every registered query."""
        return {qid: self.estimate(qid, now) for qid in self._queries}

    def degraded_count(self) -> int:
        """Number of live (query, shard) contributions carried back.

        The obs gauge ``dist.pi.degraded_shards`` publishes this every
        refresh, so overload- or outage-induced carry-back is visible in
        metrics without walking per-query snapshots.
        """
        return sum(
            1
            for shards in self._queries.values()
            for state in shards.values()
            if state.degraded and not state.done
        )

    def max_staleness(self, now: float) -> float:
        """Age of the stalest carried-back contribution, seconds.

        0.0 when nothing is degraded -- fresh values are by definition
        current.  Published as the obs gauge ``dist.pi.staleness_max``.
        """
        return max(
            (
                max(now - state.refreshed_at, 0.0)
                for shards in self._queries.values()
                for state in shards.values()
                if state.degraded and not state.done
            ),
            default=0.0,
        )

    def query_ids(self) -> tuple[str, ...]:
        """Registered distributed query ids, registration order."""
        return tuple(self._queries)

    def forget(self, query_id: str) -> None:
        """Drop a query's state entirely (after its results are consumed)."""
        self._queries.pop(query_id, None)

    def _shards(self, query_id: str) -> dict[int, _ShardState]:
        try:
            return self._queries[query_id]
        except KeyError:
            raise KeyError(f"unknown distributed query {query_id!r}") from None

    def _state(self, query_id: str, shard: int) -> _ShardState:
        shards = self._shards(query_id)
        try:
            return shards[shard]
        except KeyError:
            raise KeyError(
                f"shard {shard} of {query_id!r} was never registered"
            ) from None
