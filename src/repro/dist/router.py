"""The shard router: scatter-gather queries over a simulated cluster.

:class:`ShardedCluster` assembles N :class:`~repro.dist.node.ShardNode`
members (one shard per node, fragments replicated onto the next
``replication - 1`` nodes), a :class:`~repro.dist.catalog.ShardCatalog`
and a :class:`~repro.dist.global_pi.GlobalProgressAggregator`, and routes
distributed queries over them:

* **pushdown** -- a single-table filter/project query over an
  order-preserving (block) partitioning runs as one rewritten sub-query
  per shard; the router concatenates the per-shard results in shard
  order, which *is* the original row order.
* **gather** -- everything else (joins, aggregates, subqueries, ORDER
  BY, hash/range partitionings) runs one fragment scan per (table,
  shard); the router reassembles each table's rows into their original
  global order (the catalog kept every fragment row's position), builds
  a coordinator merge database with the original DDL/indexes/statistics,
  and executes the original SQL there.  The merge execution is
  work-for-work the single-node execution, so the distributed result is
  byte-identical to the single-node result for arbitrary SQL.

Time advances in **epoch lockstep**: every node's virtual clock moves
together in ``tick``-sized slices, and all router-side processing --
collecting finished sub-queries, failing work over, refreshing the
global PI -- happens at epoch boundaries, when all clocks agree.

Failover is the robustness core.  A node crash fails every sub-query on
it (via the node RDBMS's ``on_failure`` hooks, which the router
subscribes to); at the next epoch boundary the router re-routes each
victim to the fragment's next live replica, re-plans the sub-query
there, restores the last work-preserving checkpoint of the dead attempt
(checkpoints are detached plain data -- they survive their node), and
resubmits after a jittered backoff delay so a mass failure does not
become a retry storm.  Work-conservation is accounted per failover:
``preserved`` (checkpointed U's the replica did not redo) vs ``lost``
(U's the crashed attempt had done past its last checkpoint).  While a
shard has no fresh estimate -- its node is down, unreachable or between
failover and resume -- the global PI carries back the last finite value
and flags the shard degraded; it never reports NaN.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Sequence

from repro.dist.catalog import ShardCatalog
from repro.dist.global_pi import GlobalProgressAggregator, GlobalQueryEstimate
from repro.dist.node import ShardNode
from repro.dist.partition import Partitioner
from repro.engine.database import Database
from repro.engine.expr import expr_contains_subquery
from repro.engine.sql import ast, parse_statement
from repro.faults.retry import RetryPolicy
from repro.obs.runtime import Observability, resolve
from repro.qos.breaker import BreakerBoard, BreakerConfig
from repro.sim.jobs import EngineJob

_EPS = 1e-9


def fragment_table(table: str, shard: int) -> str:
    """The node-local name of one table fragment."""
    return f"{table}__s{shard}"


def _rewrite_table(sql: str, table: str, shard: int) -> str:
    """Point every whole-word reference to *table* at its fragment.

    Plain word-boundary substitution; table names in this codebase never
    collide with column names, which keeps the rewrite trivial.
    """
    return re.sub(rf"\b{re.escape(table)}\b", fragment_table(table, shard), sql)


def _rewrite_index_ddl(ddl: str, table: str, shard: int) -> str:
    """Fragment-localise an index DDL: table name *and* index name.

    Index names are database-global in the engine catalog, and one node
    can host several fragments of the same table, so the index name gets
    the same ``__sN`` suffix as the fragment.
    """
    ddl = _rewrite_table(ddl, table, shard)
    return re.sub(
        r"(?i)(CREATE\s+INDEX\s+)(\w+)", rf"\g<1>\g<2>__s{shard}", ddl, count=1
    )


def referenced_tables(statement) -> set[str]:
    """Every base-table name a SELECT/UNION references, subqueries included."""
    names: set[str] = set()

    def walk_stmt(stmt) -> None:
        if isinstance(stmt, ast.Union):
            for branch in stmt.branches:
                walk_stmt(branch)
            for item in stmt.order_by:
                walk_expr(item.expr)
            return
        for item in stmt.from_items:
            walk_from(item)
        for sel in stmt.items:
            walk_expr(sel.expr)
        if stmt.where is not None:
            walk_expr(stmt.where)
        for expr in stmt.group_by:
            walk_expr(expr)
        if stmt.having is not None:
            walk_expr(stmt.having)
        for item in stmt.order_by:
            walk_expr(item.expr)

    def walk_from(item) -> None:
        if isinstance(item, ast.TableRef):
            names.add(item.name)
        elif isinstance(item, ast.DerivedTable):
            walk_stmt(item.select)
        elif isinstance(item, ast.Join):
            walk_from(item.left)
            walk_from(item.right)
            if item.condition is not None:
                walk_expr(item.condition)

    def walk_expr(expr) -> None:
        if isinstance(expr, (ast.ScalarSubquery, ast.ExistsSubquery)):
            walk_stmt(expr.select)
        elif isinstance(expr, ast.InSubquery):
            walk_expr(expr.operand)
            walk_stmt(expr.select)
        elif isinstance(expr, ast.BinaryOp):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, ast.UnaryOp):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.FunctionCall):
            for arg in expr.args:
                walk_expr(arg)
        elif isinstance(expr, ast.IsNull):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.InList):
            walk_expr(expr.operand)
            for item in expr.items:
                walk_expr(item)
        elif isinstance(expr, ast.Between):
            walk_expr(expr.operand)
            walk_expr(expr.low)
            walk_expr(expr.high)
        elif isinstance(expr, ast.Like):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.Case):
            for cond, value in expr.whens:
                walk_expr(cond)
                walk_expr(value)
            if expr.else_ is not None:
                walk_expr(expr.else_)

    walk_stmt(statement)
    return names


@dataclass
class SubQuery:
    """One shard's slice of a distributed query."""

    sub_id: str
    parent_id: str
    table: str
    shard: int
    sql: str
    node_id: str
    job: EngineJob
    status: str = "running"  # running | failed | finished
    attempts: int = 1
    rows: tuple[tuple, ...] | None = None

    @property
    def execution(self):
        """The sub-query's current engine execution."""
        return self.job.execution


@dataclass
class DistributedQuery:
    """One scatter-gather query and its per-shard sub-queries."""

    query_id: str
    sql: str
    strategy: str  # "pushdown" | "gather"
    tables: tuple[str, ...]
    priority: int
    weight: float | None
    submitted_at: float
    subqueries: dict[str, SubQuery] = field(default_factory=dict)
    status: str = "running"  # running | finished | failed
    finished_at: float | None = None
    result: list[tuple] | None = None
    error: str | None = None

    @property
    def finished(self) -> bool:
        """Whether the query's results are assembled and final."""
        return self.status == "finished"

    @property
    def terminal(self) -> bool:
        """Whether the query will make no further progress."""
        return self.status in ("finished", "failed")

    def shard_subqueries(self, shard: int) -> list[SubQuery]:
        """The sub-queries contributing to one shard."""
        return [s for s in self.subqueries.values() if s.shard == shard]

    @property
    def shards(self) -> tuple[int, ...]:
        """Distinct shard indices this query touches, ascending."""
        return tuple(sorted({s.shard for s in self.subqueries.values()}))


class ShardedCluster:
    """N simulated nodes, a shard router, and a fault-tolerant global PI."""

    def __init__(
        self,
        n_shards: int,
        replication: int = 2,
        processing_rate: float = 1.0,
        multiprogramming_limit: int | None = None,
        page_capacity: int = 50,
        tick: float = 0.25,
        checkpoint_interval: float | None = 2.0,
        retry_policy: RetryPolicy | None = None,
        failover_timeout: float = 30.0,
        breaker_config: BreakerConfig | None = None,
        obs: Observability | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if not 1 <= replication <= n_shards:
            raise ValueError(
                f"replication must be in [1, n_shards={n_shards}], "
                f"got {replication}"
            )
        if tick <= 0:
            raise ValueError("tick must be > 0")
        if failover_timeout <= 0:
            raise ValueError("failover_timeout must be > 0")
        self.n_shards = n_shards
        self.replication = replication
        self.tick = tick
        self.page_capacity = page_capacity
        self.checkpoint_interval = checkpoint_interval
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=6, base_delay=0.5, multiplier=2.0, jitter=0.1
        )
        self.catalog = ShardCatalog()
        self.aggregator = GlobalProgressAggregator()
        #: Per-node circuit breakers: consecutive sub-query failures trip
        #: a node's breaker open, and routing/failover stop sending work
        #: at it until the cooldown's half-open probe succeeds.
        self.breakers = BreakerBoard(
            breaker_config if breaker_config is not None else BreakerConfig()
        )
        self.nodes: dict[str, ShardNode] = {}
        for i in range(n_shards):
            node_id = f"node{i}"
            node = ShardNode(
                node_id,
                processing_rate=processing_rate,
                multiprogramming_limit=multiprogramming_limit,
                page_capacity=page_capacity,
                quantum=tick,
            )
            self.nodes[node_id] = node
            self.catalog.register_node(node_id)
            node.rdbms.on_failure.append(
                lambda t, qid, reason, nid=node_id:
                    self._note_failure(nid, qid, reason)
            )
            node.rdbms.on_finish.append(
                lambda t, qid, nid=node_id: self._note_finish(nid, qid)
            )
        self._clock = 0.0
        self._queries: dict[str, DistributedQuery] = {}
        self._subs: dict[str, SubQuery] = {}
        self.failover_timeout = failover_timeout
        self._pending_failover: list[tuple[str, str]] = []
        #: Parked sub-queries (no serving replica) -> when parking began.
        self._parked_since: dict[str, float] = {}
        self._pending_finish: list[str] = []
        #: Cluster-wide work-conservation tally across all failovers.
        self.work_preserved = 0.0
        self.work_lost = 0.0
        self.failovers = 0
        self._obs = resolve(obs)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _emit(self, event: str, query_id: str | None = None, **fields) -> None:
        self._obs.tracer.emit(event, self._clock, query_id, **fields)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def clock(self) -> float:
        """Cluster virtual time (every node's clock at epoch boundaries)."""
        return self._clock

    def node_ids(self) -> tuple[str, ...]:
        """All node ids, shard order."""
        return tuple(self.nodes)

    def query(self, query_id: str) -> DistributedQuery:
        """The distributed-query record of *query_id*."""
        try:
            return self._queries[query_id]
        except KeyError:
            raise KeyError(f"unknown distributed query {query_id!r}") from None

    def queries(self) -> dict[str, DistributedQuery]:
        """All distributed queries, keyed by id."""
        return dict(self._queries)

    def result_rows(self, query_id: str) -> list[tuple]:
        """The final rows of a finished distributed query."""
        dq = self.query(query_id)
        if dq.result is None:
            raise ValueError(f"query {query_id!r} is {dq.status}, no result")
        return list(dq.result)

    def global_estimate(self, query_id: str) -> GlobalQueryEstimate:
        """The query's current global PI estimate (always finite)."""
        self.query(query_id)  # raise for unknown ids
        return self.aggregator.estimate(query_id, self._clock)

    def estimates(self) -> dict[str, GlobalQueryEstimate]:
        """Global PI estimates for every distributed query."""
        return self.aggregator.estimates(self._clock)

    # ------------------------------------------------------------------
    # Data loading
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        ddl: str,
        rows: Sequence[tuple],
        partitioner: Partitioner,
        index_ddls: Sequence[str] = (),
    ) -> None:
        """Partition *rows* across the shards and replicate each fragment.

        Fragment ``i`` of every table is primary on ``node i`` with
        replicas on the following ``replication - 1`` nodes (round
        robin), so losing any single node leaves every fragment with a
        live replica when ``replication >= 2``.
        """
        self.catalog.register_table(
            name, ddl, partitioner, index_ddls=tuple(index_ddls)
        )
        assignment = partitioner.assign(rows, self.n_shards)
        if len(assignment) != len(rows):
            raise ValueError(
                f"partitioner returned {len(assignment)} assignments "
                f"for {len(rows)} rows"
            )
        node_ids = list(self.nodes)
        for shard in range(self.n_shards):
            positions = tuple(
                i for i, s in enumerate(assignment) if s == shard
            )
            frag_rows = [rows[i] for i in positions]
            replicas = tuple(
                node_ids[(shard + r) % len(node_ids)]
                for r in range(self.replication)
            )
            self.catalog.place_fragment(name, shard, replicas, positions)
            frag = fragment_table(name, shard)
            for node_id in replicas:
                db = self.nodes[node_id].db
                db.execute(_rewrite_table(ddl, name, shard))
                db.insert_rows(frag, frag_rows)
                for index_ddl in index_ddls:
                    db.execute(_rewrite_index_ddl(index_ddl, name, shard))
                db.analyze(frag)
        if self._obs is not None:
            self._emit("shard.table.load", table=name, rows=len(rows),
                       shards=self.n_shards, replication=self.replication)

    # ------------------------------------------------------------------
    # Query submission
    # ------------------------------------------------------------------

    def submit(
        self,
        query_id: str,
        sql: str,
        priority: int = 0,
        weight: float | None = None,
    ) -> DistributedQuery:
        """Scatter *sql* across the shards as one distributed query."""
        if query_id in self._queries:
            raise ValueError(f"duplicate distributed query id {query_id!r}")
        statement = parse_statement(sql)
        if not isinstance(statement, (ast.Select, ast.Union)):
            raise ValueError("only SELECT/UNION statements can be distributed")
        tables = referenced_tables(statement)
        known = {m.name for m in self.catalog.tables()}
        unknown = tables - known
        if unknown:
            raise ValueError(
                f"query references unpartitioned tables: {sorted(unknown)}"
            )
        pushdown_table = self._pushdown_table(statement, tables)
        strategy = "pushdown" if pushdown_table is not None else "gather"
        # Gather scans fragments in catalog registration order so the
        # merge database replays DDL in the original creation order.
        ordered = tuple(
            m.name for m in self.catalog.tables() if m.name in tables
        )
        dq = DistributedQuery(
            query_id=query_id, sql=sql, strategy=strategy, tables=ordered,
            priority=priority, weight=weight, submitted_at=self._clock,
        )
        self._queries[query_id] = dq
        if strategy == "pushdown":
            for shard in range(self.n_shards):
                sub_sql = _rewrite_table(sql, pushdown_table, shard)
                self._launch_subquery(
                    dq, f"{query_id}#s{shard}", pushdown_table, shard, sub_sql
                )
        else:
            for table in ordered:
                for shard in range(self.n_shards):
                    sub_sql = f"SELECT * FROM {fragment_table(table, shard)}"
                    self._launch_subquery(
                        dq, f"{query_id}@{table}#s{shard}", table, shard,
                        sub_sql,
                    )
        if self._obs is not None:
            self._obs.metrics.counter("dist.queries").inc()
            self._emit("shard.query.submit", query_id, strategy=strategy,
                       subqueries=len(dq.subqueries))
        return dq

    def _pushdown_table(self, statement, tables: set[str]) -> str | None:
        """The single table a pushdown may target, or None for gather.

        Pushdown + concat is only byte-identical when the sub-results
        concatenate into exactly the single-node row stream: one base
        table, no row-order- or cross-shard-sensitive clauses, and an
        order-preserving partitioning.
        """
        if not isinstance(statement, ast.Select):
            return None
        if (
            statement.group_by or statement.having or statement.order_by
            or statement.distinct or statement.limit is not None
            or statement.offset is not None
        ):
            return None
        if len(statement.from_items) != 1:
            return None
        ref = statement.from_items[0]
        if not isinstance(ref, ast.TableRef):
            return None
        exprs = [item.expr for item in statement.items]
        if statement.where is not None:
            exprs.append(statement.where)
        if any(expr_contains_subquery(e) for e in exprs):
            return None
        if any(ast.contains_aggregate(e) for e in exprs):
            return None
        if not self.catalog.table(ref.name).partitioner.order_preserving:
            return None
        return ref.name

    def _route_target(self, table: str, shard: int) -> str | None:
        """First serving replica whose breaker admits a request, or None.

        Walks the fragment's replica chain in priority order, skipping
        nodes the catalog knows are down/unreachable *and* nodes whose
        circuit breaker is open -- nominally-serving nodes that have
        been failing every request.  An open breaker whose cooldown has
        elapsed moves to half-open here and the returned node receives
        the probe request.
        """
        for node_id in self.catalog.replicas_for(table, shard):
            if not self.catalog.node(node_id).serving:
                continue
            if self.breakers.for_node(node_id).allow(self._clock):
                return node_id
        return None

    def _launch_subquery(
        self, dq: DistributedQuery, sub_id: str, table: str, shard: int,
        sub_sql: str,
    ) -> None:
        node_id = self._route_target(table, shard)
        if node_id is None:
            # Every breaker is open (or every replica is down): fall back
            # to the catalog primary rather than refusing the submission
            # outright -- admission control, not the router, decides
            # whether to accept work under overload.
            node_id = self.catalog.primary_for(table, shard)
        if node_id is None:
            raise RuntimeError(
                f"no live replica for shard {shard} of table {table!r}"
            )
        node = self.nodes[node_id]
        execution = node.db.prepare(
            sub_sql, checkpoint_interval=self.checkpoint_interval
        )
        job = EngineJob(
            sub_id, execution, priority=dq.priority, weight=dq.weight
        )
        sub = SubQuery(
            sub_id=sub_id, parent_id=dq.query_id, table=table, shard=shard,
            sql=sub_sql, node_id=node_id, job=job,
        )
        dq.subqueries[sub_id] = sub
        self._subs[sub_id] = sub
        node.submit(job)
        if shard not in {
            s.shard for s in dq.subqueries.values() if s.sub_id != sub_id
        }:
            initial = self._finite_or(
                execution.progress.estimated_remaining_cost()
                / node.rdbms.processing_rate,
                fallback=1.0,
            )
            self.aggregator.register(dq.query_id, shard, initial, self._clock)
        if self._obs is not None:
            self._emit("shard.subquery.submit", sub_id, shard=shard,
                       table=table, node=node_id)

    @staticmethod
    def _finite_or(value: float, fallback: float) -> float:
        return value if math.isfinite(value) and value >= 0 else fallback

    # ------------------------------------------------------------------
    # Node hooks (fire mid-epoch; processed at the next boundary)
    # ------------------------------------------------------------------

    def _note_failure(self, node_id: str, sub_id: str, reason: str) -> None:
        sub = self._subs.get(sub_id)
        if sub is None or sub.node_id != node_id or sub.status == "finished":
            return
        sub.status = "failed"
        self._pending_failover.append((sub_id, reason))
        self.breakers.for_node(node_id).record_failure(
            self.nodes[node_id].rdbms.clock, reason
        )

    def _note_finish(self, node_id: str, sub_id: str) -> None:
        sub = self._subs.get(sub_id)
        if sub is None or sub.node_id != node_id or sub.status == "finished":
            return
        self._pending_finish.append(sub_id)
        self.breakers.for_node(node_id).record_success(
            self.nodes[node_id].rdbms.clock
        )

    # ------------------------------------------------------------------
    # Time advancement (epoch lockstep)
    # ------------------------------------------------------------------

    def run_until(self, target: float) -> None:
        """Advance every node in lockstep to *target*, epoch by epoch."""
        if target < self._clock - _EPS:
            raise ValueError(
                f"cannot run backwards to {target} from {self._clock}"
            )
        while self._clock < target - _EPS:
            boundary = min(self._clock + self.tick, target)
            for node in self.nodes.values():
                node.run_until(boundary)
            self._clock = boundary
            self._epoch()

    def run_to_completion(self, max_time: float = 1e6) -> None:
        """Run until every distributed query is terminal.

        Raises :class:`RuntimeError` at *max_time* -- with replicated
        fragments and a bounded fault plan this means a routing bug, not
        bad luck.
        """
        while any(not dq.terminal for dq in self._queries.values()):
            if self._clock >= max_time:
                unfinished = sorted(
                    q for q, dq in self._queries.items() if not dq.terminal
                )
                raise RuntimeError(
                    f"cluster exceeded max_time={max_time}; "
                    f"unfinished: {unfinished}"
                )
            self.run_until(self._clock + self.tick)

    def _epoch(self) -> None:
        """Router-side processing at one epoch boundary."""
        self._collect_finishes()
        self._process_failovers()
        self._refresh_pi()

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def _collect_finishes(self) -> None:
        deferred: list[str] = []
        for sub_id in self._pending_finish:
            sub = self._subs[sub_id]
            status = self.catalog.node(sub.node_id)
            if not status.up:
                # The node died with the results still on it: the finish
                # notification never made it out.  Re-run on a replica.
                sub.status = "failed"
                self._pending_failover.append(
                    (sub_id, f"node {sub.node_id} lost results in crash")
                )
                continue
            if not status.reachable:
                # Alive but partitioned: the results exist, the router
                # just cannot fetch them yet.  Collect after healing.
                deferred.append(sub_id)
                continue
            self._finish_subquery(sub)
        self._pending_finish = deferred

    def _finish_subquery(self, sub: SubQuery) -> None:
        sub.status = "finished"
        sub.rows = tuple(sub.execution.rows)
        dq = self._queries[sub.parent_id]
        if all(s.status == "finished" for s in dq.shard_subqueries(sub.shard)):
            self.aggregator.mark_done(dq.query_id, sub.shard, self._clock)
        if self._obs is not None:
            self._emit("shard.subquery.finish", sub.sub_id, shard=sub.shard,
                       node=sub.node_id, attempts=sub.attempts)
        if all(s.status == "finished" for s in dq.subqueries.values()):
            self._finalize(dq)

    def _finalize(self, dq: DistributedQuery) -> None:
        if dq.strategy == "pushdown":
            rows: list[tuple] = []
            for shard in range(self.n_shards):
                for sub in dq.shard_subqueries(shard):
                    assert sub.rows is not None
                    rows.extend(sub.rows)
            dq.result = rows
        else:
            dq.result = self._gather_merge(dq)
        dq.status = "finished"
        dq.finished_at = self._clock
        if self._obs is not None:
            self._obs.metrics.counter("dist.finished").inc()
            self._emit("shard.query.finish", dq.query_id,
                       strategy=dq.strategy, rows=len(dq.result),
                       duration=self._clock - dq.submitted_at)

    def _gather_merge(self, dq: DistributedQuery) -> list[tuple]:
        """Rebuild the referenced tables and run the original SQL.

        Fragment rows are re-slotted into their original global
        positions, the original DDL/index/statistics sequence is
        replayed, and the untouched SQL executes against the rebuilt
        database -- the same plan over the same data in the same order
        as a single-node run, hence byte-identical rows.
        """
        merge_db = Database(page_capacity=self.page_capacity)
        for table in dq.tables:
            meta = self.catalog.table(table)
            merge_db.execute(meta.ddl)
            placed: list[tuple[int, tuple]] = []
            by_shard: dict[int, list[SubQuery]] = {}
            for sub in dq.subqueries.values():
                if sub.table == table:
                    by_shard.setdefault(sub.shard, []).append(sub)
            for shard, subs in by_shard.items():
                (sub,) = subs
                assert sub.rows is not None
                positions = self.catalog.positions_for(table, shard)
                if len(positions) != len(sub.rows):
                    raise RuntimeError(
                        f"fragment {fragment_table(table, shard)} returned "
                        f"{len(sub.rows)} rows, catalog expects "
                        f"{len(positions)}"
                    )
                placed.extend(zip(positions, sub.rows))
            placed.sort(key=lambda pr: pr[0])
            merge_db.insert_rows(table, [row for _, row in placed])
            for index_ddl in meta.index_ddls:
                merge_db.execute(index_ddl)
            merge_db.analyze(table)
        return merge_db.prepare(dq.sql).run_to_completion()

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------

    def _process_failovers(self) -> None:
        pending = self._pending_failover
        self._pending_failover = []
        for sub_id, reason in pending:
            sub = self._subs[sub_id]
            if sub.status == "finished":
                continue
            dq = self._queries[sub.parent_id]
            if dq.terminal:
                continue
            if sub.attempts >= self.retry_policy.max_attempts:
                self._give_up(dq, sub, reason)
                continue
            target = self._route_target(sub.table, sub.shard)
            breaker = None
            if target is None:
                serving = [
                    n for n in self.catalog.replicas_for(sub.table, sub.shard)
                    if self.catalog.node(n).serving
                ]
                if not serving:
                    # Every replica is down/unreachable right now; keep the
                    # sub-query parked and try again next epoch -- but not
                    # forever: past the failover timeout the query fails
                    # cleanly instead of hanging on a fragment nobody holds.
                    since = self._parked_since.setdefault(sub_id, self._clock)
                    if self._clock - since >= self.failover_timeout:
                        self._parked_since.pop(sub_id, None)
                        self._give_up(
                            dq, sub,
                            f"no serving replica for shard {sub.shard} within "
                            f"{self.failover_timeout:g}s: {reason}",
                        )
                        continue
                    self._pending_failover.append((sub_id, reason))
                    self.aggregator.mark_degraded(dq.query_id, sub.shard)
                    continue
                # Replicas are nominally serving but every breaker is
                # open: schedule the retry for the soonest half-open
                # window instead of hammering a failing node with the
                # plain backoff ladder.
                target = min(
                    serving,
                    key=lambda n: self.breakers.for_node(n).retry_after(
                        self._clock
                    ),
                )
                breaker = self.breakers.for_node(target)
            self._parked_since.pop(sub_id, None)
            delay = self.retry_policy.delay(
                sub.attempts, sub_id, breaker=breaker, now=self._clock
            )
            self.nodes[target].rdbms.add_event(
                self._clock + delay,
                lambda _rdbms, sid=sub_id, nid=target, why=reason:
                    self._execute_failover(sid, nid, why),
            )
            self.aggregator.mark_degraded(dq.query_id, sub.shard)
            if self._obs is not None:
                self._emit("shard.failover.schedule", sub_id,
                           shard=sub.shard, target=target, delay=delay,
                           reason=reason)

    def _execute_failover(self, sub_id: str, target: str, reason: str) -> None:
        """Resume a failed sub-query on *target* (fires as a node event)."""
        sub = self._subs[sub_id]
        if sub.status == "finished":
            return
        dq = self._queries[sub.parent_id]
        if dq.terminal:
            return
        node = self.nodes[target]
        if not node.up or not self.catalog.node(target).serving:
            # The replica died between scheduling and firing; re-park.
            self._pending_failover.append((sub_id, reason))
            return
        if self.breakers.for_node(target).state == "open":
            # The target's breaker tripped (again) between scheduling and
            # firing; re-park rather than hammering it.
            self._pending_failover.append((sub_id, reason))
            return
        old_exec = sub.execution
        ckpt = old_exec.last_checkpoint
        execution = node.db.prepare(
            sub.sql, checkpoint_interval=self.checkpoint_interval
        )
        if ckpt is not None:
            execution.restore(ckpt)
        preserved = execution.paid_work
        lost = max(old_exec.paid_work - preserved, 0.0)
        self.work_preserved += preserved
        self.work_lost += lost
        self.failovers += 1
        job = EngineJob(
            sub_id, execution, priority=dq.priority, weight=dq.weight
        )
        sub.job = job
        sub.node_id = target
        sub.attempts += 1
        sub.status = "running"
        rdbms = node.rdbms
        if sub_id in rdbms.records():
            record = rdbms.resubmit(job)
        else:
            record = rdbms.submit(job)
        record.trace.record_attempt_work(preserved, lost)
        remaining = self._finite_or(
            execution.progress.estimated_remaining_cost()
            / rdbms.processing_rate,
            fallback=1.0,
        )
        self.aggregator.move_shard(
            dq.query_id, sub.shard, remaining, self._clock
        )
        if self._obs is not None:
            self._obs.metrics.counter("dist.failovers").inc()
            self._obs.metrics.gauge("dist.work_preserved").set(
                self.work_preserved
            )
            self._obs.metrics.gauge("dist.work_lost").set(self.work_lost)
            self._emit("shard.failover", sub_id, shard=sub.shard,
                       node=target, attempt=sub.attempts,
                       preserved=preserved, lost=lost, reason=reason)

    def _give_up(self, dq: DistributedQuery, sub: SubQuery, reason: str) -> None:
        lost = sub.execution.paid_work
        self.work_lost += lost
        dq.status = "failed"
        dq.finished_at = self._clock
        dq.error = (
            f"sub-query {sub.sub_id} exhausted "
            f"{self.retry_policy.max_attempts} attempts: {reason}"
        )
        # Cancel the doomed query's surviving siblings so they stop
        # consuming capacity other queries could use.
        for sibling in dq.subqueries.values():
            if sibling.status != "running":
                continue
            rdbms = self.nodes[sibling.node_id].rdbms
            record = rdbms.records().get(sibling.sub_id)
            if record is not None and not record.terminal:
                rdbms.abort(sibling.sub_id, reason="distributed query gave up")
        if self._obs is not None:
            self._obs.metrics.counter("dist.gave_up").inc()
            self._emit("shard.query.give_up", dq.query_id, sub=sub.sub_id,
                       reason=reason)

    # ------------------------------------------------------------------
    # Global PI refresh
    # ------------------------------------------------------------------

    def _refresh_pi(self) -> None:
        """Roll fresh per-node estimates into the global aggregator.

        One ``remaining_times`` sweep per serving node covers all its
        running sub-queries; queued sub-queries fall back to their
        optimizer estimate over the node's full rate.  A shard whose
        sub-queries cannot all be freshly measured (node down or
        unreachable, sub-query parked between failover and resume) is
        marked degraded and its last finite value carries back.
        """
        node_rts: dict[str, dict[str, float]] = {}
        for node_id, node in self.nodes.items():
            if self.catalog.node(node_id).serving:
                node_rts[node_id] = node.rdbms.remaining_times()
        for dq in self._queries.values():
            if dq.terminal:
                continue
            for shard in dq.shards:
                subs = dq.shard_subqueries(shard)
                open_subs = [s for s in subs if s.status != "finished"]
                if not open_subs:
                    continue  # mark_done already recorded it
                values: list[float] = []
                fresh = True
                for sub in open_subs:
                    value = self._subquery_estimate(sub, node_rts)
                    if value is None:
                        fresh = False
                    else:
                        values.append(value)
                if fresh and values:
                    self.aggregator.report(
                        dq.query_id, shard, max(values), self._clock
                    )
                else:
                    self.aggregator.mark_degraded(dq.query_id, shard)
        if self._obs is not None:
            m = self._obs.metrics
            m.counter("dist.pi_refreshes").inc()
            # Overload/outage visibility: how stale the worst carried-back
            # shard estimate is, and how many shard contributions are
            # degraded right now -- in metrics, not just snapshots.
            m.gauge("dist.pi.staleness_max").set(
                self.aggregator.max_staleness(self._clock)
            )
            m.gauge("dist.pi.degraded_shards").set(
                self.aggregator.degraded_count()
            )

    def _subquery_estimate(
        self, sub: SubQuery, node_rts: dict[str, dict[str, float]]
    ) -> float | None:
        """One sub-query's fresh remaining-time estimate, or None."""
        if sub.status == "failed":
            return None
        rts = node_rts.get(sub.node_id)
        if rts is None:
            return None  # node down or unreachable
        value = rts.get(sub.sub_id)
        if value is None:
            # Queued behind the node's multiprogramming limit: estimate
            # from the optimizer's remaining cost at the node's full rate.
            rate = self.nodes[sub.node_id].rdbms.processing_rate
            value = sub.job.estimated_remaining_cost() / rate
        return value if math.isfinite(value) and value >= 0 else None

    def describe(self) -> str:
        """Human-readable cluster state: layout plus live queries."""
        lines = [self.catalog.describe()]
        for dq in self._queries.values():
            done = sum(
                1 for s in dq.subqueries.values() if s.status == "finished"
            )
            lines.append(
                f"query {dq.query_id}: {dq.status} ({dq.strategy}, "
                f"{done}/{len(dq.subqueries)} sub-queries done)"
            )
        return "\n".join(lines)
