"""Sharded TPC-R loading, byte-identical to the single-node dataset.

:func:`load_tpcr` draws the *exact* row streams of
:func:`repro.workload.tpcr.generate` -- same RNG, same draw order -- and
partitions them across a :class:`~repro.dist.router.ShardedCluster`.
Because the rows (including their float values) are bit-for-bit the
rows a single-node build would hold, the differential tests can compare
distributed results against ``tpcr.generate(...)`` directly.
"""

from __future__ import annotations

import random

from repro.dist.partition import BlockPartitioner, Partitioner
from repro.dist.router import ShardedCluster
from repro.workload.tpcr import (
    LINEITEM_DDL,
    LINEITEM_INDEX_DDL,
    TpcrConfig,
    lineitem_rows,
    part_rows,
    part_table_ddl,
)


def load_tpcr(
    cluster: ShardedCluster,
    config: TpcrConfig = TpcrConfig(),
    part_sizes: dict[int, int] | None = None,
    partitioner: Partitioner | None = None,
) -> dict[str, int]:
    """Load the TPC-R tables into *cluster*; returns table -> row count.

    ``partitioner`` applies to every table and defaults to contiguous
    block partitioning (order preserving, so single-table queries can
    push down).  The RNG draw order matches
    :func:`repro.workload.tpcr.generate` exactly: lineitem first, then
    the part tables in ascending index order.
    """
    scheme = partitioner if partitioner is not None else BlockPartitioner()
    rng = random.Random(config.seed)
    counts: dict[str, int] = {}
    rows = lineitem_rows(config, rng)
    cluster.create_table(
        "lineitem", LINEITEM_DDL, rows, scheme,
        index_ddls=(LINEITEM_INDEX_DDL,),
    )
    counts["lineitem"] = len(rows)
    sizes = part_sizes if part_sizes is not None else {1: 5, 2: 2, 3: 3}
    for i, n in sorted(sizes.items()):
        prows = part_rows(i, n, config, rng)
        cluster.create_table(f"part_{i}", part_table_ddl(i), prows, scheme)
        counts[f"part_{i}"] = len(prows)
    return counts
