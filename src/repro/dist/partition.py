"""Table partitioners: how a table's rows split across shards.

A partitioner maps a row stream to shard indices.  Three schemes cover
the classic trade-offs:

* :class:`BlockPartitioner` -- contiguous blocks by row *position*.  The
  only scheme that is *order preserving*: concatenating the shard
  fragments in shard order reproduces the original row order exactly,
  which is what lets the router merge pushed-down sub-query results by
  simple concatenation and still return byte-identical rows.
* :class:`HashPartitioner` -- by a key column's hash (CRC32, never
  Python's salted ``hash``), the scheme that spreads skewed keys.
* :class:`RangePartitioner` -- by a key column against sorted split
  points, the scheme that keeps key locality for range predicates.

All three are deterministic: the same rows always land on the same
shards, which is what makes replicas byte-identical and chaos runs
reproducible.  Regardless of scheme, the cluster catalog remembers each
fragment row's original global position, so gather-style merges can
reconstruct the exact original row order.
"""

from __future__ import annotations

import abc
import zlib
from typing import Sequence


class Partitioner(abc.ABC):
    """Maps each row of a table to one of ``n_shards`` shards."""

    #: Whether concatenating fragments in shard order preserves the
    #: original row order (only true for contiguous block partitioning).
    order_preserving: bool = False

    @abc.abstractmethod
    def assign(self, rows: Sequence[tuple], n_shards: int) -> list[int]:
        """Shard index for every row, parallel to *rows*."""

    def describe(self) -> str:
        """One-line human-readable description."""
        return type(self).__name__

    @staticmethod
    def _check(n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")


class BlockPartitioner(Partitioner):
    """Contiguous row-position blocks: shard 0 gets the first chunk, etc.

    Block sizes differ by at most one row (the first ``len % n`` shards
    get the extra row), so load stays balanced for uniform tables.
    """

    order_preserving = True

    def assign(self, rows: Sequence[tuple], n_shards: int) -> list[int]:
        self._check(n_shards)
        n = len(rows)
        base, extra = divmod(n, n_shards)
        out: list[int] = []
        for shard in range(n_shards):
            size = base + (1 if shard < extra else 0)
            out.extend([shard] * size)
        return out

    def describe(self) -> str:
        return "block(contiguous row ranges)"


class HashPartitioner(Partitioner):
    """Hash of one key column, modulo the shard count.

    Uses CRC32 of the key's string form: stable across processes (unlike
    ``hash()``, which is salted for strings) and insensitive to int/float
    representation as long as ``str`` agrees.
    """

    def __init__(self, column_index: int) -> None:
        if column_index < 0:
            raise ValueError(f"column_index must be >= 0, got {column_index}")
        self.column_index = column_index

    def assign(self, rows: Sequence[tuple], n_shards: int) -> list[int]:
        self._check(n_shards)
        idx = self.column_index
        out = []
        for row in rows:
            if idx >= len(row):
                raise ValueError(
                    f"row has {len(row)} columns, no index {idx}: {row!r}"
                )
            key = str(row[idx]).encode()
            out.append(zlib.crc32(key) % n_shards)
        return out

    def describe(self) -> str:
        return f"hash(column {self.column_index})"


class RangePartitioner(Partitioner):
    """Key ranges against sorted split points.

    ``boundaries`` holds ``n_shards - 1`` ascending split values; a row
    with key ``k`` goes to the first shard whose boundary exceeds it
    (``k < boundaries[0]`` -> shard 0, ..., else the last shard).
    """

    def __init__(self, column_index: int, boundaries: Sequence[float]) -> None:
        if column_index < 0:
            raise ValueError(f"column_index must be >= 0, got {column_index}")
        bounds = list(boundaries)
        if not bounds:
            raise ValueError("boundaries must not be empty")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"boundaries must be strictly ascending: {bounds}")
        self.column_index = column_index
        self.boundaries = tuple(bounds)

    def assign(self, rows: Sequence[tuple], n_shards: int) -> list[int]:
        self._check(n_shards)
        if len(self.boundaries) != n_shards - 1:
            raise ValueError(
                f"{len(self.boundaries)} boundaries partition into "
                f"{len(self.boundaries) + 1} shards, cluster has {n_shards}"
            )
        idx = self.column_index
        out = []
        for row in rows:
            if idx >= len(row):
                raise ValueError(
                    f"row has {len(row)} columns, no index {idx}: {row!r}"
                )
            key = row[idx]
            shard = len(self.boundaries)
            for i, bound in enumerate(self.boundaries):
                if key < bound:
                    shard = i
                    break
            out.append(shard)
        return out

    def describe(self) -> str:
        return (
            f"range(column {self.column_index}, "
            f"splits {list(self.boundaries)})"
        )
