"""One simulated cluster node: its own engine database and RDBMS.

A :class:`ShardNode` is a full single-node stack -- an engine
:class:`~repro.engine.database.Database` holding the table fragments
placed on the node, timeshared by the node's own
:class:`~repro.sim.rdbms.SimulatedRDBMS` -- plus the health state and
degradation hooks the cluster's fault layer scripts against:

* :meth:`crash` kills the node: every in-flight sub-query fails at once
  (firing the RDBMS ``on_failure`` hooks, which is how the router
  notices and starts failover) and the node stops accepting work.
* :meth:`recover` brings it back, empty-handed: crashed sub-queries do
  not resume here -- the router has already moved them to a replica.
* :meth:`set_brownout` scales the node's capacity through a
  :class:`~repro.sim.scheduler.ScaledSpeedModel` overlay, the same
  mechanism single-node brownouts use.

Reachability (network partitions) is deliberately *not* state on the
node: a partitioned node keeps executing -- that is what distinguishes
a partition from a crash -- while the catalog marks it unreachable so
the router stops routing to it and its PI reports go stale.
"""

from __future__ import annotations

from repro.engine.database import Database
from repro.sim.rdbms import QueryRecord, SimulatedRDBMS
from repro.sim.jobs import Job
from repro.sim.scheduler import ScaledSpeedModel


class ShardNode:
    """A cluster member: engine database + simulated RDBMS + health."""

    def __init__(
        self,
        node_id: str,
        processing_rate: float = 1.0,
        multiprogramming_limit: int | None = None,
        page_capacity: int = 50,
        quantum: float = 0.25,
    ) -> None:
        if not node_id:
            raise ValueError("node_id must not be empty")
        self.node_id = node_id
        self.db = Database(page_capacity=page_capacity)
        self.rdbms = SimulatedRDBMS(
            processing_rate=processing_rate,
            multiprogramming_limit=multiprogramming_limit,
            quantum=quantum,
        )
        # Wrap the speed model once, up front, so brownouts can be applied
        # and lifted at any time without swapping models mid-run.
        self._speed = ScaledSpeedModel(self.rdbms.speed_model)
        self.rdbms.speed_model = self._speed
        self.up = True

    @property
    def clock(self) -> float:
        """The node's virtual time (cluster lockstep keeps nodes equal)."""
        return self.rdbms.clock

    @property
    def brownout_factor(self) -> float:
        """Current capacity factor (1.0 = nominal, 0.0 = full outage)."""
        return self._speed.rate_factor

    def set_brownout(self, factor: float) -> None:
        """Scale the node's total capacity by *factor*."""
        self._speed.set_rate_factor(factor)

    def clear_brownout(self) -> None:
        """Restore nominal capacity."""
        self._speed.set_rate_factor(1.0)

    def submit(self, job: Job) -> QueryRecord:
        """Run *job* on this node (rejected while the node is down)."""
        if not self.up:
            raise RuntimeError(f"node {self.node_id} is down")
        return self.rdbms.submit(job)

    def crash(self) -> tuple[str, ...]:
        """Kill the node; every live sub-query fails.  Returns their ids."""
        if not self.up:
            return ()
        self.up = False
        return self.rdbms.fail_everything(f"node {self.node_id} crashed")

    def recover(self) -> None:
        """Bring a crashed node back (empty: failed work moved elsewhere)."""
        self.up = True

    def run_until(self, target: float) -> None:
        """Advance the node's clock to *target* (skips time while down).

        A down node's clock still moves -- virtual time is global -- but
        nothing executes: there are no live jobs (the crash failed them
        all) and new submissions are rejected until :meth:`recover`.
        """
        self.rdbms.run_until(target)

    def quiescent(self) -> bool:
        """True when the node has no runnable or pending work."""
        return self.rdbms.quiescent()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "down"
        return (
            f"<ShardNode {self.node_id} {state} "
            f"t={self.clock:.2f} running={len(self.rdbms.running)}>"
        )
