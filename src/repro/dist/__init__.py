"""Sharded multi-node simulation with fault-tolerant global progress.

This package scales the single-system simulation out to a cluster:

* :mod:`repro.dist.partition` -- block / hash / range partitioners;
* :mod:`repro.dist.catalog` -- the metadata service: tables -> shards ->
  replica nodes, plus node health (up / reachable);
* :mod:`repro.dist.node` -- one cluster member: its own engine database
  and simulated RDBMS, with crash / recover / brownout hooks;
* :mod:`repro.dist.router` -- :class:`ShardedCluster`: scatter-gather
  distributed queries (pushdown or gather-merge strategies, both
  byte-identical to single-node execution), epoch-lockstep virtual
  time, and checkpoint-restoring replica failover with
  work-conservation accounting;
* :mod:`repro.dist.global_pi` -- the global progress indicator: per
  query, remaining = the slowest shard's remaining, per-shard
  contributions visible, and *always finite* -- a dead shard's estimate
  carries back its last finite value flagged degraded with explicit
  staleness, never NaN;
* :mod:`repro.dist.chaos` -- :class:`ClusterFaultInjector`, arming
  node-scoped fault plans (crash, partition, brownout) against the
  cluster;
* :mod:`repro.dist.dataset` -- sharded TPC-R loading, byte-identical to
  the single-node generator.

See ``docs/SHARDING.md`` for the design.
"""

from repro.dist.catalog import NodeStatus, ShardCatalog, TableMeta
from repro.dist.chaos import ClusterFaultInjector, ClusterInjectionEvent
from repro.dist.dataset import load_tpcr
from repro.dist.global_pi import (
    GlobalProgressAggregator,
    GlobalQueryEstimate,
    ShardEstimate,
)
from repro.dist.node import ShardNode
from repro.dist.partition import (
    BlockPartitioner,
    HashPartitioner,
    Partitioner,
    RangePartitioner,
)
from repro.dist.router import (
    DistributedQuery,
    ShardedCluster,
    SubQuery,
    fragment_table,
    referenced_tables,
)

__all__ = [
    "BlockPartitioner",
    "ClusterFaultInjector",
    "ClusterInjectionEvent",
    "DistributedQuery",
    "GlobalProgressAggregator",
    "GlobalQueryEstimate",
    "HashPartitioner",
    "NodeStatus",
    "Partitioner",
    "RangePartitioner",
    "ShardCatalog",
    "ShardEstimate",
    "ShardNode",
    "ShardedCluster",
    "SubQuery",
    "TableMeta",
    "fragment_table",
    "load_tpcr",
    "referenced_tables",
]
