"""Node-scoped fault injection against a sharded cluster.

:class:`ClusterFaultInjector` is the cluster counterpart of
:class:`~repro.faults.injector.FaultInjector`: it arms a
:class:`~repro.faults.plan.FaultPlan` whose faults target *nodes* --
:class:`~repro.faults.plan.NodeCrash`,
:class:`~repro.faults.plan.NetworkPartition` and
:class:`~repro.faults.plan.NodeBrownout` -- by scheduling virtual-time
events on the target node's own RDBMS:

* a **crash** kills the node (every sub-query on it fails at once, which
  the router observes and fails over) and marks it down in the catalog;
  with ``down_for`` set, a recovery event brings the node back later --
  empty, since its work has moved to replicas;
* a **partition** flips the catalog's reachability bit: the node keeps
  executing, but the router neither routes to it nor hears from it, so
  its shards' PI contributions go stale-but-finite until healing;
* a **brownout** scales the node's capacity for a window, the per-node
  analogue of the single-system :class:`~repro.faults.plan.Brownout`.

Query-scoped faults are rejected at :meth:`arm` time with a pointer to
:class:`~repro.faults.injector.FaultInjector`, mirroring how that class
rejects node faults -- each injector owns exactly one fault vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dist.router import ShardedCluster
from repro.faults.plan import (
    FaultPlan,
    NetworkPartition,
    NodeBrownout,
    NodeCrash,
    NodeFault,
)


@dataclass(frozen=True)
class ClusterInjectionEvent:
    """One node fault as it actually fired."""

    time: float
    kind: str
    node_id: str
    description: str


class ClusterFaultInjector:
    """Arms node-scoped fault plans against a :class:`ShardedCluster`."""

    def __init__(self, cluster: ShardedCluster, plan: FaultPlan) -> None:
        self.cluster = cluster
        self.plan = plan
        self.log: list[ClusterInjectionEvent] = []
        self._armed = False

    def arm(self) -> None:
        """Schedule every fault in the plan (idempotence not supported)."""
        if self._armed:
            raise RuntimeError("plan already armed")
        for fault in self.plan.faults:
            if not isinstance(fault, (NodeCrash, NetworkPartition, NodeBrownout)):
                raise ValueError(
                    f"{type(fault).__name__} targets a single query; arm it "
                    "with repro.faults.FaultInjector against that node's "
                    "RDBMS, not with ClusterFaultInjector"
                )
            if fault.node_id not in self.cluster.nodes:
                raise ValueError(
                    f"plan targets unknown node {fault.node_id!r}; cluster "
                    f"has {list(self.cluster.nodes)}"
                )
        self._armed = True
        for fault in self.plan.faults:
            self._arm_one(fault)

    def _record(self, time: float, kind: str, node_id: str, text: str) -> None:
        self.log.append(ClusterInjectionEvent(time, kind, node_id, text))
        obs = self.cluster._obs
        if obs is not None:
            obs.metrics.counter("dist.faults_injected").inc()
            obs.tracer.emit(f"fault.{kind}", time, None, node=node_id)

    def _arm_one(self, fault: NodeFault) -> None:
        cluster = self.cluster
        node = cluster.nodes[fault.node_id]
        rdbms = node.rdbms
        if isinstance(fault, NodeCrash):
            def crash(_r, f=fault) -> None:
                cluster.catalog.mark_down(f.node_id)
                victims = node.crash()
                self._record(
                    rdbms.clock, "node-crash", f.node_id,
                    f"crashed, {len(victims)} sub-queries failed",
                )
            rdbms.add_event(fault.at, crash)
            if fault.down_for is not None:
                def recover(_r, f=fault) -> None:
                    node.recover()
                    cluster.catalog.mark_up(f.node_id)
                    self._record(
                        rdbms.clock, "node-recover", f.node_id, "recovered"
                    )
                rdbms.add_event(fault.at + fault.down_for, recover)
        elif isinstance(fault, NetworkPartition):
            def cut(_r, f=fault) -> None:
                cluster.catalog.mark_unreachable(f.node_id)
                self._record(
                    rdbms.clock, "partition-start", f.node_id,
                    f"unreachable for {f.duration:g}s",
                )
            def heal(_r, f=fault) -> None:
                cluster.catalog.mark_reachable(f.node_id)
                self._record(rdbms.clock, "partition-heal", f.node_id, "healed")
            rdbms.add_event(fault.at, cut)
            rdbms.add_event(fault.at + fault.duration, heal)
        else:
            assert isinstance(fault, NodeBrownout)
            def dim(_r, f=fault) -> None:
                node.set_brownout(f.factor)
                self._record(
                    rdbms.clock, "node-brownout", f.node_id,
                    f"capacity x{f.factor:g} for {f.duration:g}s",
                )
            def restore(_r, f=fault) -> None:
                node.clear_brownout()
                self._record(
                    rdbms.clock, "node-brownout-end", f.node_id,
                    "capacity restored",
                )
            rdbms.add_event(fault.at, dim)
            rdbms.add_event(fault.at + fault.duration, restore)
