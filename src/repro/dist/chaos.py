"""Node-scoped fault injection against a sharded cluster.

:class:`ClusterFaultInjector` is the cluster counterpart of
:class:`~repro.faults.injector.FaultInjector`: it arms a
:class:`~repro.faults.plan.FaultPlan` whose faults target *nodes* --
:class:`~repro.faults.plan.NodeCrash`,
:class:`~repro.faults.plan.NetworkPartition` and
:class:`~repro.faults.plan.NodeBrownout` -- by scheduling virtual-time
events on the target node's own RDBMS:

* a **crash** kills the node (every sub-query on it fails at once, which
  the router observes and fails over) and marks it down in the catalog;
  with ``down_for`` set, a recovery event brings the node back later --
  empty, since its work has moved to replicas;
* a **partition** flips the catalog's reachability bit: the node keeps
  executing, but the router neither routes to it nor hears from it, so
  its shards' PI contributions go stale-but-finite until healing;
* a **brownout** scales the node's capacity for a window, the per-node
  analogue of the single-system :class:`~repro.faults.plan.Brownout`.

An :class:`~repro.faults.plan.ArrivalBurst` with ``sql`` set is also
accepted: each burst arrival submits that distributed query through the
normal router path, turning offered load itself into an injectable
fault (the combined NodeCrash + ArrivalBurst scenario is the overload
acceptance test).

Other query-scoped faults are rejected at :meth:`arm` time with a
pointer to :class:`~repro.faults.injector.FaultInjector`, mirroring how
that class rejects node faults -- each injector owns exactly one fault
vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dist.router import ShardedCluster
from repro.faults.plan import (
    ArrivalBurst,
    FaultPlan,
    NetworkPartition,
    NodeBrownout,
    NodeCrash,
    NodeFault,
)
from repro.sim.arrivals import burst_arrival_times


@dataclass(frozen=True)
class ClusterInjectionEvent:
    """One node fault as it actually fired."""

    time: float
    kind: str
    node_id: str
    description: str


class ClusterFaultInjector:
    """Arms node-scoped fault plans against a :class:`ShardedCluster`."""

    def __init__(self, cluster: ShardedCluster, plan: FaultPlan) -> None:
        self.cluster = cluster
        self.plan = plan
        self.log: list[ClusterInjectionEvent] = []
        self._armed = False

    def arm(self) -> None:
        """Schedule every fault in the plan (idempotence not supported)."""
        if self._armed:
            raise RuntimeError("plan already armed")
        for fault in self.plan.faults:
            if isinstance(fault, ArrivalBurst):
                if fault.sql is None:
                    raise ValueError(
                        "ArrivalBurst against a cluster needs sql= (the "
                        "distributed query each burst arrival submits); "
                        "synthetic-cost bursts target a single RDBMS via "
                        "repro.faults.FaultInjector"
                    )
                continue
            if not isinstance(fault, (NodeCrash, NetworkPartition, NodeBrownout)):
                raise ValueError(
                    f"{type(fault).__name__} targets a single query; arm it "
                    "with repro.faults.FaultInjector against that node's "
                    "RDBMS, not with ClusterFaultInjector"
                )
            if fault.node_id not in self.cluster.nodes:
                raise ValueError(
                    f"plan targets unknown node {fault.node_id!r}; cluster "
                    f"has {list(self.cluster.nodes)}"
                )
        self._armed = True
        for fault in self.plan.faults:
            self._arm_one(fault)

    def _record(self, time: float, kind: str, node_id: str, text: str) -> None:
        self.log.append(ClusterInjectionEvent(time, kind, node_id, text))
        obs = self.cluster._obs
        if obs is not None:
            obs.metrics.counter("dist.faults_injected").inc()
            obs.tracer.emit(f"fault.{kind}", time, None, node=node_id)

    def _arm_one(self, fault: NodeFault | ArrivalBurst) -> None:
        cluster = self.cluster
        if isinstance(fault, ArrivalBurst):
            self._arm_burst(fault)
            return
        node = cluster.nodes[fault.node_id]
        rdbms = node.rdbms
        if isinstance(fault, NodeCrash):
            def crash(_r, f=fault) -> None:
                cluster.catalog.mark_down(f.node_id)
                victims = node.crash()
                self._record(
                    rdbms.clock, "node-crash", f.node_id,
                    f"crashed, {len(victims)} sub-queries failed",
                )
            rdbms.add_event(fault.at, crash)
            if fault.down_for is not None:
                def recover(_r, f=fault) -> None:
                    node.recover()
                    cluster.catalog.mark_up(f.node_id)
                    self._record(
                        rdbms.clock, "node-recover", f.node_id, "recovered"
                    )
                rdbms.add_event(fault.at + fault.down_for, recover)
        elif isinstance(fault, NetworkPartition):
            def cut(_r, f=fault) -> None:
                cluster.catalog.mark_unreachable(f.node_id)
                self._record(
                    rdbms.clock, "partition-start", f.node_id,
                    f"unreachable for {f.duration:g}s",
                )
            def heal(_r, f=fault) -> None:
                cluster.catalog.mark_reachable(f.node_id)
                self._record(rdbms.clock, "partition-heal", f.node_id, "healed")
            rdbms.add_event(fault.at, cut)
            rdbms.add_event(fault.at + fault.duration, heal)
        else:
            assert isinstance(fault, NodeBrownout)
            def dim(_r, f=fault) -> None:
                node.set_brownout(f.factor)
                self._record(
                    rdbms.clock, "node-brownout", f.node_id,
                    f"capacity x{f.factor:g} for {f.duration:g}s",
                )
            def restore(_r, f=fault) -> None:
                node.clear_brownout()
                self._record(
                    rdbms.clock, "node-brownout-end", f.node_id,
                    "capacity restored",
                )
            rdbms.add_event(fault.at, dim)
            rdbms.add_event(fault.at + fault.duration, restore)

    def _arm_burst(self, fault: ArrivalBurst) -> None:
        """Schedule a distributed arrival storm: ``sql`` submitted n times.

        Timer events ride on the first node's RDBMS (any clock works --
        the cluster advances them in lockstep); each firing submits one
        fresh distributed query through the normal router path, so the
        storm contends for every node like real traffic.
        """
        cluster = self.cluster
        timer_node = next(iter(cluster.nodes))
        rdbms = cluster.nodes[timer_node].rdbms
        times = burst_arrival_times(fault.at, fault.n, fault.spread, fault.seed)

        def fire(_r, i: int, f: ArrivalBurst = fault) -> None:
            qid = f"{f.prefix}{i}"
            assert f.sql is not None
            cluster.submit(qid, f.sql, priority=f.priority)
            if i == 0:
                window = f" over {f.spread:g}s" if f.spread > 0 else ""
                self._record(
                    cluster.clock, "burst-begin", timer_node,
                    f"{f.n} x {f.sql!r}{window} ({f.prefix}*)",
                )

        for i, t in enumerate(times):
            rdbms.add_event(t, lambda r, i=i: fire(r, i))
