"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    The quickstart comparison: single- vs multi-query estimate on one
    concurrent workload.
``sql``
    Run a SQL statement against a freshly generated TPC-R-style database
    (``--explain`` shows the plan and cost estimate instead).
``experiment``
    Run one of the paper's experiments (``mcq``, ``naq``, ``scq``,
    ``lambda``, ``maintenance``, ``table1``) and print the reproduced
    series/rows (``--csv`` also exports the data).
``report``
    Run the full evaluation and write a Markdown report.  With
    ``--observe``, instead run one observed seeded MCQ experiment and
    print its deterministic trace/metrics/accuracy summary (optionally
    writing the JSONL event trace); ``--validate-trace`` checks an
    existing trace file against the event schema.
``faults``
    Chaos/recovery demo: inject crashes, stalls, brownouts and corrupted
    statistics into a workload protected by retries and the runaway-query
    watchdog, then print the merged recovery timeline.
``scale``
    Concurrency-scalability demo: time a full-system PI refresh served
    from the shared incremental schedule against per-query recomputation
    across a sweep of concurrency levels (``--json`` persists the report).
``shard``
    Sharded-cluster demo: scatter-gather queries over an N-node cluster
    with a mid-flight node crash, checkpoint-restoring replica failover,
    and the fault-tolerant global progress indicator -- results are
    checked byte-for-byte against single-node execution.
``shell``
    Interactive SQL shell over a generated TPC-R database.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Multi-query SQL Progress Indicators' "
            "(Luo, Naughton, Yu; EDBT 2006)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="quick single- vs multi-query PI comparison")

    sql = sub.add_parser("sql", help="run SQL against a generated TPC-R database")
    sql.add_argument("statement", help="the SQL statement to run")
    sql.add_argument(
        "--scale", type=float, default=1 / 2000,
        help="dataset scale relative to the paper's 24M-row lineitem",
    )
    sql.add_argument(
        "--parts", type=int, default=3, help="number of part_i tables"
    )
    sql.add_argument(
        "--explain", action="store_true",
        help="show the plan and cost estimate instead of executing",
    )
    sql.add_argument("--seed", type=int, default=0)

    exp = sub.add_parser("experiment", help="run one of the paper's experiments")
    exp.add_argument(
        "name",
        choices=[
            "mcq", "naq", "scq", "lambda", "adaptive", "maintenance", "table1",
        ],
        help="which experiment to run",
    )
    exp.add_argument("--runs", type=int, default=8, help="runs to average over")
    exp.add_argument("--seed", type=int, default=42)
    exp.add_argument(
        "--csv", default=None,
        help="also write the experiment's data to this CSV file",
    )

    rep = sub.add_parser(
        "report", help="run the full evaluation and write a Markdown report"
    )
    rep.add_argument("--out", default="REPORT.md", help="output file path")
    rep.add_argument("--runs", type=int, default=8, help="runs to average over")
    rep.add_argument("--seed", type=int, default=42)
    rep.add_argument(
        "--observe", action="store_true",
        help="instead run one observed seeded MCQ and print its "
             "trace/metrics/accuracy summary (deterministic)",
    )
    rep.add_argument(
        "--trace", default=None, metavar="PATH",
        help="with --observe: also write the run's JSONL event trace here",
    )
    rep.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="with --observe: merge the run's metrics into this bench "
             "JSON file (e.g. BENCH_scale.json)",
    )
    rep.add_argument(
        "--validate-trace", default=None, metavar="PATH",
        help="validate an existing JSONL trace file against the event "
             "schema and exit (no run)",
    )

    faults = sub.add_parser(
        "faults",
        help="chaos/recovery demo: fault injection + retries + watchdog",
    )
    faults.add_argument(
        "--seed", type=int, default=None,
        help="use a seeded random fault plan instead of the scripted one",
    )
    faults.add_argument(
        "--budget", type=float, default=60.0,
        help="watchdog per-query budget in virtual seconds",
    )
    faults.add_argument(
        "--retries", type=int, default=3,
        help="max execution attempts per query (1 disables retries)",
    )
    faults.add_argument(
        "--engine", action="store_true",
        help="work-preserving recovery demo: crash a real SQL execution "
             "mid-flight and resume it from its last checkpoint",
    )
    faults.add_argument(
        "--checkpoint-interval", type=float, default=25.0,
        help="checkpoint cadence in work units for the --engine demo",
    )
    faults.add_argument(
        "--execution-mode", choices=("batch", "row"), default=None,
        help="engine execution mode for the --engine demo: vectorized "
             "batches (default) or row-at-a-time",
    )

    scale = sub.add_parser(
        "scale",
        help="shared-schedule vs per-query recomputation scalability sweep",
    )
    scale.add_argument(
        "--sizes", default=None,
        help="comma-separated concurrency levels (default: 100,500,1000,5000,10000)",
    )
    scale.add_argument(
        "--rounds", type=int, default=3,
        help="full-system refreshes timed per concurrency level",
    )
    scale.add_argument(
        "--sample", type=int, default=32,
        help="queries measured for the per-query recompute baseline",
    )
    scale.add_argument("--seed", type=int, default=0)
    scale.add_argument(
        "--json", default=None,
        help="also merge the report into this JSON file (e.g. BENCH_scale.json)",
    )

    shard = sub.add_parser(
        "shard",
        help="sharded-cluster demo: node crash, failover, global PI",
    )
    shard.add_argument(
        "--shards", type=int, default=4, help="number of shards (= nodes)"
    )
    shard.add_argument(
        "--replication", type=int, default=2,
        help="replicas per fragment (1 disables failover)",
    )
    shard.add_argument(
        "--crash-node", default="node1", metavar="NODE",
        help="node to crash mid-flight (ignored with --seed / --no-fault)",
    )
    shard.add_argument(
        "--crash-at", type=float, default=3.0,
        help="virtual time of the scripted crash",
    )
    shard.add_argument(
        "--seed", type=int, default=None,
        help="use the node-scoped faults of a seeded random plan instead "
             "of the scripted crash",
    )
    shard.add_argument(
        "--no-fault", action="store_true",
        help="run the cluster without any fault (baseline)",
    )
    shard.add_argument(
        "--checkpoint-interval", type=float, default=0.5,
        help="sub-query checkpoint cadence in work units",
    )

    over = sub.add_parser(
        "overload",
        help="overload-protection demo: admission gate + degradation "
             "ladder riding out an arrival storm",
    )
    over.add_argument(
        "--burst", type=int, default=40,
        help="queries in the arrival storm",
    )
    over.add_argument(
        "--cost", type=float, default=20.0,
        help="work per storm query, U's",
    )
    over.add_argument(
        "--spread", type=float, default=4.0,
        help="seconds the storm's arrivals are jittered over",
    )
    over.add_argument(
        "--rate", type=float, default=10.0, help="system capacity, U/s"
    )
    over.add_argument(
        "--mpl", type=int, default=4, help="multiprogramming limit"
    )
    over.add_argument(
        "--unprotected", action="store_true",
        help="run the same storm without admission control or ladder "
             "(the cliff the QoS layer prevents)",
    )
    over.add_argument("--seed", type=int, default=0)

    shell = sub.add_parser(
        "shell", help="interactive SQL shell over a generated TPC-R database"
    )
    shell.add_argument("--scale", type=float, default=1 / 2000)
    shell.add_argument("--parts", type=int, default=3)
    shell.add_argument("--seed", type=int, default=0)

    return parser


def cmd_demo() -> int:
    """The quickstart single- vs multi-query comparison."""
    from repro.core.multi_query import MultiQueryProgressIndicator
    from repro.sim.jobs import SyntheticJob
    from repro.sim.rdbms import SimulatedRDBMS

    rdbms = SimulatedRDBMS(processing_rate=10.0)
    for qid, cost in (("small-1", 100), ("small-2", 200), ("big", 900)):
        rdbms.submit(SyntheticJob(qid, cost))
    snapshot = rdbms.snapshot()
    single = snapshot.find("big").remaining_cost / rdbms.current_speeds()["big"]
    multi = MultiQueryProgressIndicator().estimate(snapshot).for_query("big")
    rdbms.run_to_completion()
    actual = rdbms.traces["big"].finished_at
    print(f"single-query PI estimate : {single:7.1f} s")
    print(f"multi-query  PI estimate : {multi:7.1f} s")
    print(f"actual completion        : {actual:7.1f} s")
    return 0


def cmd_sql(args: argparse.Namespace) -> int:
    """Run (or EXPLAIN) one SQL statement against generated TPC-R data."""
    from repro.engine.errors import EngineError
    from repro.workload.tpcr import TpcrConfig, generate

    sizes = {i: 2 + i for i in range(1, args.parts + 1)}
    dataset = generate(
        TpcrConfig(scale=args.scale, seed=args.seed), part_sizes=sizes
    )
    db = dataset.db
    print("tables:", ", ".join(
        f"{name}({rows} rows)" for name, rows, _ in dataset.table_summary()
    ))
    try:
        if args.explain:
            print(db.explain(args.statement))
            print(f"estimated cost: {db.estimated_cost(args.statement):.1f} U")
        else:
            result = db.execute(args.statement)
            if isinstance(result, list):
                for row in result[:50]:
                    print(row)
                if len(result) > 50:
                    print(f"... {len(result) - 50} more rows")
                print(f"({len(result)} rows)")
            elif result is not None:
                print(f"ok ({result} rows affected)")
            else:
                print("ok")
    except EngineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """Run one of the paper's experiments and print (optionally CSV) data."""
    from repro.experiments.reporting import format_series, format_table, write_csv

    csv_headers: list = []
    csv_rows: list = []

    if args.name == "mcq":
        from repro.experiments.harness import MULTI_QUERY, SINGLE_QUERY
        from repro.experiments.mcq import MCQConfig, run_mcq

        result = run_mcq(MCQConfig(seed=args.seed))
        print(f"focus query {result.focus_query}, finishes at "
              f"t={result.finish_time:.1f}s")
        print(format_series("actual", result.actual))
        print(format_series("single-query", result.estimates[SINGLE_QUERY]))
        print(format_series("multi-query", result.estimates[MULTI_QUERY]))
        csv_headers = ["series", "time", "value"]
        csv_rows = (
            [("actual", t, v) for t, v in result.actual]
            + [("single-query", t, v) for t, v in result.estimates[SINGLE_QUERY]]
            + [("multi-query", t, v) for t, v in result.estimates[MULTI_QUERY]]
        )
    elif args.name == "naq":
        from repro.experiments.naq import run_naq

        result = run_naq()
        print(f"Q3 starts t={result.q3_start:.0f}s, finishes "
              f"t={result.q3_finish:.0f}s; Q1 finishes t={result.q1_finish:.0f}s")
        for name, series in result.estimates.items():
            print(format_series(name, series))
        csv_headers = ["series", "time", "value"]
        csv_rows = [
            (name, t, v)
            for name, series in result.estimates.items()
            for t, v in series
        ]
    elif args.name == "scq":
        from repro.experiments.scq import SCQConfig, run_scq_sweep

        sweep = run_scq_sweep(SCQConfig(runs=args.runs, seed=args.seed))
        csv_headers = [
            "lambda", "single last", "multi last", "single avg", "multi avg"
        ]
        csv_rows = sweep.as_rows()
        print(format_table(csv_headers, csv_rows))
    elif args.name == "lambda":
        from repro.experiments.scq import SCQConfig, run_lambda_sensitivity

        sweep = run_lambda_sensitivity(SCQConfig(runs=args.runs, seed=args.seed))
        csv_headers = [
            "lambda'", "single last", "multi last", "single avg", "multi avg"
        ]
        csv_rows = sweep.as_rows()
        print(format_table(csv_headers, csv_rows))
    elif args.name == "adaptive":
        from repro.experiments.scq import SCQConfig, run_adaptive_trace

        trace = run_adaptive_trace(SCQConfig(runs=1, seed=args.seed))
        print(
            f"focus {trace.focus_query}, finishes at t={trace.finish_time:.1f}s "
            "(true lambda = 0.03)"
        )
        for lp, series in trace.series.items():
            print(format_series(f"lambda' = {lp}", series))
        csv_headers = ["lambda_prime", "time", "estimate"]
        csv_rows = [
            (lp, t, v) for lp, series in trace.series.items() for t, v in series
        ]
    elif args.name == "maintenance":
        from repro.experiments.maintenance import (
            MaintenanceConfig,
            run_maintenance_sweep,
        )

        sweep = run_maintenance_sweep(
            MaintenanceConfig(runs=args.runs, seed=args.seed)
        )
        csv_headers = ["t/t_finish"] + list(sweep.curves)
        csv_rows = [
            [frac] + [sweep.curves[m][i] for m in sweep.curves]
            for i, frac in enumerate(sweep.fractions)
        ]
        print(format_table(csv_headers, csv_rows))
    elif args.name == "table1":
        from repro.experiments.tables import build_table1

        result = build_table1()
        print(result.render())
        csv_headers = ["table", "tuples", "pages"]
        csv_rows = [(r.table, r.tuples, r.pages) for r in result.rows]

    if args.csv and csv_rows:
        n = write_csv(args.csv, csv_headers, csv_rows)
        print(f"wrote {n} rows to {args.csv}")
    return 0


def cmd_faults_engine(args: argparse.Namespace) -> int:
    """Work-preserving recovery demo on a real SQL execution.

    Runs the paper's ``Q_1`` through the engine twice under the same
    crash-at-50% fault plan: once without checkpoints (the retry starts
    over) and once with a checkpoint cadence (the retry resumes).  Prints
    the per-attempt preserved/lost accounting and the headline
    preserved-work percentage.
    """
    import random

    from repro.engine.database import Database
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan, QueryCrash
    from repro.faults.retry import RetryController, RetryPolicy
    from repro.sim.rdbms import SimulatedRDBMS
    from repro.workload.queries import engine_job, paper_query
    from repro.workload.tpcr import TpcrConfig, add_part_table, build_lineitem

    if not args.checkpoint_interval > 0:  # also catches NaN
        print(
            f"error: --checkpoint-interval must be > 0, "
            f"got {args.checkpoint_interval}",
            file=sys.stderr,
        )
        return 1
    if args.retries < 2:
        print(
            "error: the --engine demo needs --retries >= 2 "
            "(the crashed attempt plus the resumed one)",
            file=sys.stderr,
        )
        return 1

    tpcr = TpcrConfig(scale=1 / 4000, seed=7)
    rng = random.Random(7)
    db = Database(
        page_capacity=tpcr.page_capacity,
        execution_mode=getattr(args, "execution_mode", None),
    )
    build_lineitem(db, tpcr, rng)
    add_part_table(db, 1, 12, tpcr, rng)
    db.analyze()
    print(f"query: {paper_query(1)}")

    runs = [
        ("no checkpoints", None),
        (f"checkpoint every {args.checkpoint_interval:g} U",
         args.checkpoint_interval),
    ]
    results = []
    for label, interval in runs:
        rdbms = SimulatedRDBMS(processing_rate=10.0)
        RetryController(
            rdbms, RetryPolicy(max_attempts=args.retries, base_delay=1.0)
        )
        FaultInjector(
            rdbms, FaultPlan.of(QueryCrash("Q1", at_fraction=0.5))
        ).arm()
        job = engine_job(db, "Q1", 1, checkpoint_interval=interval)
        rdbms.submit(job)
        rdbms.run_to_completion(max_time=1000.0)

        record = rdbms.record("Q1")
        trace = record.trace
        preserved = trace.preserved_work
        lost = trace.wasted_work
        gross = record.job.completed_work + lost
        print(f"\n[{label}]")
        print(f"  status: {record.status} after {record.attempts} attempts; "
              f"{len(record.job.execution.rows)} result rows")
        for attempt, (p, l) in enumerate(
            zip(trace.work_preserved, trace.work_lost), start=1
        ):
            print(f"  attempt {attempt} ended: preserved {p:7.1f} U, "
                  f"lost {l:7.1f} U")
        print(f"  useful work {record.job.completed_work:.1f} U, "
              f"wasted {lost:.1f} U, gross {gross:.1f} U")
        if preserved + lost > 0:
            pct = 100.0 * preserved / (preserved + lost)
            print(f"  work preserved across the crash: {pct:.0f}%")
        results.append((label, record, preserved, lost))

    (_, rec_a, _, lost_a), (_, rec_b, _, lost_b) = results
    if rec_a.status == rec_b.status == "finished":
        saved = lost_a - lost_b
        print(f"\ncheckpointing saved {saved:.1f} U of redone work "
              f"({100.0 * saved / lost_a if lost_a else 0.0:.0f}% of the "
              "non-checkpointed waste) for identical results: "
              f"{'yes' if rec_a.job.execution.rows == rec_b.job.execution.rows else 'NO'}")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Chaos/recovery demo: scripted (or seeded random) faults vs resilience.

    Builds a small workload, arms a fault plan covering all four fault
    shapes, protects the run with a retry controller and the runaway-query
    watchdog, then prints the plan, the merged recovery timeline and the
    final per-query outcome table.  With ``--engine`` it instead runs the
    work-preserving recovery demo on a real SQL execution.
    """
    if args.engine:
        return cmd_faults_engine(args)
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import (
        Brownout,
        FaultPlan,
        QueryCrash,
        QueryStall,
        StatsCorruption,
        random_fault_plan,
    )
    from repro.faults.retry import RetryController, RetryPolicy
    from repro.sim.jobs import SyntheticJob
    from repro.sim.rdbms import SimulatedRDBMS
    from repro.wm.watchdog import RunawayQueryWatchdog

    rdbms = SimulatedRDBMS(processing_rate=10.0)
    costs = {"q1": 120.0, "q2": 80.0, "q3": 900.0, "q4": 60.0}
    for qid, cost in costs.items():
        rdbms.submit(SyntheticJob(qid, cost))

    if args.seed is not None:
        plan = random_fault_plan(args.seed, list(costs), horizon=60.0)
    else:
        # One of everything: a brownout, a mid-flight crash (retried), a
        # stall, and permanently destroyed statistics for the runaway q3 --
        # which disables the PI and forces the watchdog onto its
        # observed-work fallback.
        plan = FaultPlan.of(
            Brownout(start=5.0, duration=10.0, factor=0.5),
            QueryCrash("q2", at_fraction=0.5),
            QueryStall("q1", at=8.0, duration=4.0),
            StatsCorruption(
                start=0.0, duration=None, factor=float("nan"), query_id="q3"
            ),
        )
    print("fault plan:")
    for line in plan.describe().splitlines():
        print(f"  {line}")

    try:
        policy = RetryPolicy(max_attempts=args.retries, base_delay=2.0)
        watchdog = RunawayQueryWatchdog(rdbms, budget_seconds=args.budget)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    injector = FaultInjector(rdbms, plan)
    injector.arm()
    retries = RetryController(rdbms, policy)
    watchdog.attach()
    rdbms.run_to_completion(max_time=1000.0)

    print("\nrecovery timeline:")
    timeline = (
        [(e.time, f"inject   {e.kind:<17} {e.query_id or 'system'}")
         for e in injector.events]
        + [(e.time, f"retry    {e.action:<17} {e.query_id} (attempt {e.attempt})")
           for e in retries.events]
        + [(a.time,
            f"watchdog {a.action:<17} {a.query_id}"
            f"{' [fallback]' if a.used_fallback else ''}")
           for a in watchdog.actions]
    )
    for t, line in sorted(timeline, key=lambda x: x[0]):
        print(f"  t={t:7.2f}s  {line}")

    print("\nfinal outcome:")
    print(f"  {'query':<6} {'status':<9} {'attempts':>8} "
          f"{'faults':>6} {'done U':>8}")
    for qid in costs:
        record = rdbms.record(qid)
        trace = record.trace
        print(
            f"  {qid:<6} {record.status:<9} {record.attempts:>8} "
            f"{len(trace.fault_events):>6} {record.job.completed_work:>8.1f}"
        )
    unfinished = [
        qid for qid in costs if not rdbms.record(qid).terminal
    ]
    print(
        f"\nall queries terminal: {'yes' if not unfinished else unfinished}; "
        f"watchdog fallback engaged: {'yes' if watchdog.fallback_engaged else 'no'}"
    )
    return 0


def cmd_scale(args: argparse.Namespace) -> int:
    """Time shared-schedule refreshes against per-query recomputation."""
    from repro.experiments.reporting import format_table
    from repro.sim.scale import DEFAULT_SIZES, merge_bench_json, run_scale

    if args.sizes:
        try:
            sizes = tuple(int(p) for p in args.sizes.split(",") if p.strip())
        except ValueError:
            print(f"error: bad --sizes {args.sizes!r}", file=sys.stderr)
            return 1
    else:
        sizes = DEFAULT_SIZES
    try:
        report = run_scale(
            sizes, seed=args.seed, rounds=args.rounds, sample=args.sample
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(f"full-system PI refresh, totals over {report.rounds} refreshes:")
    print(
        format_table(
            ["n", "incremental (ms)", "per-query est (ms)",
             "one recompute (ms)", "speedup", "max rel diff"],
            [
                (
                    p.n,
                    f"{p.incremental_seconds * 1e3:.3f}",
                    f"{p.per_query_seconds_estimated * 1e3:.1f}",
                    f"{p.shared_recompute_seconds * 1e3:.3f}",
                    f"{p.speedup_vs_per_query:.0f}x",
                    f"{p.max_rel_diff:.2e}",
                )
                for p in report.points
            ],
        )
    )
    print(
        "(per-query baseline measured on "
        f"{report.sample} sampled queries, extrapolated to n)"
    )
    if args.json:
        merge_bench_json(args.json, "scale", report.as_dict())
        print(f"merged 'scale' section into {args.json}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Generate the Markdown report, or (``--observe``) an observed-run
    trace/metrics/accuracy summary, or validate an existing trace file."""
    if args.validate_trace is not None:
        from repro.obs.tracer import TraceSchemaError, validate_trace_file

        try:
            count = validate_trace_file(args.validate_trace)
        except (OSError, TraceSchemaError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"{args.validate_trace}: {count} events, schema ok")
        return 0

    if args.observe:
        from repro.obs.report import format_observed_run, run_observed_mcq

        run = run_observed_mcq(seed=args.seed, trace_path=args.trace)
        print(format_observed_run(run))
        if args.trace:
            print(f"\nwrote trace to {args.trace} ({run.events} events)")
        if args.metrics_json:
            run.obs.metrics.merge_into(args.metrics_json)
            print(f"merged 'metrics' section into {args.metrics_json}")
        return 0

    from repro.experiments.full_report import ReportConfig, generate_report

    text = generate_report(ReportConfig(runs=args.runs, seed=args.seed))
    with open(args.out, "w") as f:
        f.write(text)
    print(f"wrote {args.out} ({len(text.splitlines())} lines)")
    return 0


def cmd_shard(args: argparse.Namespace) -> int:
    """Sharded-cluster demo: crash a node mid-flight, watch the failover.

    Loads the TPC-R tables across an N-node cluster, runs one pushdown
    scan and one gather join, injects a node crash (or a seeded random
    node-fault plan), prints sampled global-PI snapshots with per-shard
    contributions, and finally checks every result byte-for-byte against
    single-node execution of the same SQL.
    """
    from repro.dist import ClusterFaultInjector, ShardedCluster, load_tpcr
    from repro.faults.plan import FaultPlan, NodeCrash, random_fault_plan
    from repro.workload.tpcr import TpcrConfig, generate

    if args.shards < 2:
        print(f"error: --shards must be >= 2, got {args.shards}",
              file=sys.stderr)
        return 1
    if not 1 <= args.replication <= args.shards:
        print(f"error: --replication must be in [1, {args.shards}], "
              f"got {args.replication}", file=sys.stderr)
        return 1

    cluster = ShardedCluster(
        n_shards=args.shards,
        replication=args.replication,
        processing_rate=4.0,
        checkpoint_interval=args.checkpoint_interval,
    )
    counts = load_tpcr(cluster)
    print(f"cluster: {args.shards} shards x {args.replication} replicas; "
          + ", ".join(f"{t}({n} rows)" for t, n in counts.items()))

    queries = {
        "Q1": "SELECT * FROM lineitem WHERE partkey > 0",
        "Q2": ("SELECT p.partkey, SUM(l.extendedprice) FROM part_1 p, "
               "lineitem l WHERE p.partkey = l.partkey "
               "GROUP BY p.partkey ORDER BY p.partkey"),
    }
    for qid, sql in queries.items():
        dq = cluster.submit(qid, sql)
        print(f"  {qid} [{dq.strategy}] {sql}")

    injector = None
    if not args.no_fault:
        if args.seed is not None:
            plan = FaultPlan(
                faults=random_fault_plan(
                    args.seed, list(queries), horizon=10.0,
                    node_ids=cluster.node_ids(),
                ).node_faults()
            )
        else:
            if args.crash_node not in cluster.node_ids():
                print(f"error: unknown node {args.crash_node!r} "
                      f"(have {', '.join(cluster.node_ids())})",
                      file=sys.stderr)
                return 1
            plan = FaultPlan.of(NodeCrash(args.crash_node, at=args.crash_at))
        print("fault plan:")
        for line in plan.describe().splitlines() or ["  (empty)"]:
            print(f"  {line}")
        injector = ClusterFaultInjector(cluster, plan)
        injector.arm()

    print("\nglobal PI (remaining s; * = degraded/carried-back):")
    t = 0.0
    while not all(dq.terminal for dq in cluster.queries().values()):
        t += 2.0
        if t > 1e5:
            print("error: cluster did not quiesce", file=sys.stderr)
            return 1
        cluster.run_until(t)
        if round(t) % 10:  # sample the PI every virtual 10s
            continue
        parts = []
        for qid in queries:
            est = cluster.global_estimate(qid)
            shards = " ".join(
                f"s{shard}:{c.remaining_seconds:.1f}"
                + ("*" if c.degraded else "")
                for shard, c in sorted(est.shards.items())
            )
            parts.append(f"{qid}={est.remaining_seconds:6.1f} [{shards}]")
        print(f"  t={t:6.1f}s  " + "  ".join(parts))

    print("\nfault/recovery log:")
    if injector is not None and injector.log:
        for event in injector.log:
            print(f"  t={event.time:6.2f}s  {event.kind:<18} "
                  f"{event.node_id}  {event.description}")
    else:
        print("  (no faults injected)")

    single = generate(TpcrConfig()).db
    print("\noutcome:")
    all_ok = True
    for qid, sql in queries.items():
        dq = cluster.query(qid)
        if not dq.finished:
            print(f"  {qid}: {dq.status} ({dq.error})")
            all_ok = False
            continue
        expected = single.query(sql)
        identical = list(cluster.result_rows(qid)) == list(expected)
        all_ok &= identical
        print(f"  {qid}: finished t={dq.finished_at:.1f}s, "
              f"{len(dq.result)} rows, identical to single-node: "
              f"{'yes' if identical else 'NO'}")
    preserved, lost = cluster.work_preserved, cluster.work_lost
    if preserved + lost > 0:
        pct = 100.0 * preserved / (preserved + lost)
        print(f"  failovers: {cluster.failovers}; work preserved across "
              f"failover: {preserved:.2f} U ({pct:.0f}%), lost {lost:.2f} U")
    else:
        print(f"  failovers: {cluster.failovers}")
    return 0 if all_ok else 1


def cmd_overload(args: argparse.Namespace) -> int:
    """Ride out an arrival storm behind the QoS layer (or without it)."""
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import ArrivalBurst, FaultPlan
    from repro.qos import (
        AdmissionController,
        AdmissionPolicy,
        DegradationLadder,
        LadderConfig,
    )
    from repro.sim.jobs import SyntheticJob
    from repro.sim.rdbms import SimulatedRDBMS

    for name, value, floor in (
        ("--burst", args.burst, 1),
        ("--mpl", args.mpl, 1),
    ):
        if value < floor:
            print(f"error: {name} must be >= {floor}, got {value}",
                  file=sys.stderr)
            return 1
    for name, value in (("--cost", args.cost), ("--rate", args.rate)):
        if not value > 0.0:
            print(f"error: {name} must be > 0, got {value:g}",
                  file=sys.stderr)
            return 1
    if args.spread < 0.0:
        print(f"error: --spread must be >= 0, got {args.spread:g}",
              file=sys.stderr)
        return 1

    rdbms = SimulatedRDBMS(
        processing_rate=args.rate, multiprogramming_limit=args.mpl
    )
    gate = ladder = None
    if not args.unprotected:
        gate = AdmissionController(
            rdbms,
            AdmissionPolicy(
                max_in_flight=4 * args.mpl,
                work_budget=8.0 * args.rate,
            ),
        ).attach()
        ladder = DegradationLadder(
            rdbms, LadderConfig(), admission=gate
        ).attach()

    # A protected baseline workload: deadline queries the storm threatens.
    for i in range(4):
        rdbms.submit(
            SyntheticJob(f"vip{i}", cost=30.0, priority=1, deadline=60.0)
        )
    plan = FaultPlan.of(
        ArrivalBurst(
            at=2.0, n=args.burst, cost=args.cost, spread=args.spread,
            priority=0, seed=args.seed,
        )
    )
    FaultInjector(rdbms, plan).arm()
    print(f"storm: {plan.describe().strip()}")
    print(f"capacity {args.rate:g} U/s, mpl {args.mpl}, "
          f"protection {'OFF' if args.unprotected else 'ON'}")
    rdbms.run_to_completion(max_time=100000.0)

    records = rdbms.records().values()
    finished = [r for r in records if r.status == "finished"]
    makespan = rdbms.clock
    goodput = sum(r.job.completed_work for r in finished) / makespan
    vips = [rdbms.record(f"vip{i}") for i in range(4)]
    hits = sum(1 for r in vips if r.status == "finished")
    print()
    print(f"makespan            {makespan:8.1f} s")
    print(f"finished            {len(finished):5d} / {len(records)} queries")
    print(f"goodput             {goodput:8.2f} U/s")
    print(f"vip deadlines held  {hits:5d} / {len(vips)}")
    if gate is not None:
        counts = gate.counts()
        print(f"admission           "
              + "  ".join(f"{k}={v}" for k, v in counts.items()))
    if ladder is not None:
        peak = max((e.rung for e in ladder.events), default=0)
        print(f"ladder              peak rung {peak} "
              f"({len(ladder.shed_ids)} shed, "
              f"{len(ladder.events)} actions)")
    return 0


def cmd_shell(args: argparse.Namespace, input_fn=input) -> int:
    """A minimal interactive SQL shell (``\\q`` to quit)."""
    from repro.engine.errors import EngineError
    from repro.workload.tpcr import TpcrConfig, generate

    sizes = {i: 2 + i for i in range(1, args.parts + 1)}
    dataset = generate(
        TpcrConfig(scale=args.scale, seed=args.seed), part_sizes=sizes
    )
    db = dataset.db
    print("tables:", ", ".join(
        f"{name}({rows} rows)" for name, rows, _ in dataset.table_summary()
    ))
    print("enter SQL statements; \\q quits, \\d lists tables")
    while True:
        try:
            line = input_fn("sql> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if not line:
            continue
        if line in ("\\q", "quit", "exit"):
            return 0
        if line == "\\d":
            for table in db.catalog.tables():
                cols = ", ".join(
                    f"{c.name} {c.sql_type.value}" for c in table.schema.columns
                )
                print(f"  {table.name}({cols}) -- {table.heap.row_count} rows")
            continue
        try:
            result = db.execute(line.rstrip(";"))
        except EngineError as exc:
            print(f"error: {exc}")
            continue
        if isinstance(result, list):
            for row in result[:40]:
                print(row)
            print(f"({len(result)} rows)")
        elif isinstance(result, str):
            print(result)
        elif result is not None:
            print(f"ok ({result} rows affected)")
        else:
            print("ok")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return cmd_demo()
    if args.command == "sql":
        return cmd_sql(args)
    if args.command == "experiment":
        return cmd_experiment(args)
    if args.command == "report":
        return cmd_report(args)
    if args.command == "faults":
        return cmd_faults(args)
    if args.command == "scale":
        return cmd_scale(args)
    if args.command == "shard":
        return cmd_shard(args)
    if args.command == "overload":
        return cmd_overload(args)
    if args.command == "shell":
        return cmd_shell(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
