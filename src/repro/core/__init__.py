"""Core multi-query progress-indicator algorithms (paper Section 2).

This package contains the paper's primary contribution in pure,
substrate-independent form:

* :mod:`repro.core.model` -- snapshots of queries and of the whole system.
* :mod:`repro.core.standard_case` -- the Section 2.2 closed-form stage
  algorithm for ``n`` concurrent queries under weighted fair sharing.
* :mod:`repro.core.incremental` -- the shared, incrementally-maintained
  stage schedule: amortized ``O(log n)`` updates serve all concurrent PIs
  from one structure (see ``docs/PERFORMANCE.md``).
* :mod:`repro.core.projection` -- an event-driven forward projection that
  generalises the standard case to non-empty admission queues (Section 2.3)
  and predicted future arrivals (Section 2.4), with interchangeable
  incremental / reference backends.
* :mod:`repro.core.single_query` -- the single-query baseline PI
  (``t = c / s``) the paper compares against.
* :mod:`repro.core.multi_query` -- the multi-query progress indicator.
* :mod:`repro.core.forecast` -- workload forecasts and online estimators of
  arrival rate / average cost (the adaptive-lambda machinery of Section 5.2.3).
* :mod:`repro.core.metrics` -- relative error and time-series helpers.
* :mod:`repro.core.validation` -- shared input guards: estimators reject
  NaN / infinite / negative costs instead of silently propagating garbage.
"""

from repro.core.forecast import (
    AdaptiveForecaster,
    OnlineArrivalRateEstimator,
    OnlineMeanEstimator,
    WorkloadForecast,
)
from repro.core.incremental import IncrementalSchedule, incremental_schedule_of
from repro.core.metrics import relative_error
from repro.core.model import QuerySnapshot, SystemSnapshot
from repro.core.multi_query import MultiQueryEstimate, MultiQueryProgressIndicator
from repro.core.projection import (
    ProjectedQuery,
    ProjectionResult,
    default_backend,
    project,
    set_default_backend,
    use_backend,
)
from repro.core.single_query import SingleQueryProgressIndicator, SpeedMonitor
from repro.core.standard_case import Stage, StandardCaseResult, standard_case
from repro.core.validation import finite_snapshots, validate_finite, validate_snapshots

__all__ = [
    "AdaptiveForecaster",
    "IncrementalSchedule",
    "MultiQueryEstimate",
    "MultiQueryProgressIndicator",
    "OnlineArrivalRateEstimator",
    "OnlineMeanEstimator",
    "ProjectedQuery",
    "ProjectionResult",
    "QuerySnapshot",
    "SingleQueryProgressIndicator",
    "SpeedMonitor",
    "Stage",
    "StandardCaseResult",
    "SystemSnapshot",
    "WorkloadForecast",
    "default_backend",
    "finite_snapshots",
    "incremental_schedule_of",
    "project",
    "relative_error",
    "set_default_backend",
    "standard_case",
    "use_backend",
    "validate_finite",
    "validate_snapshots",
]
