"""Workload forecasts and online estimators (paper Sections 2.4 and 5.2.3).

The multi-query PI's visibility into the future rests on three aggregate
numbers: the average arrival rate ``lambda``, the average query cost ``c̄``
and the average priority ``p̄`` (represented here directly by its weight
``w̄``).  The paper stresses that these need only be *approximate*: the PI
re-estimates continuously and corrects bad initial guesses.

This module provides:

* :class:`WorkloadForecast` -- an immutable forecast triple.
* :class:`OnlineArrivalRateEstimator` -- sliding-window arrival-rate
  estimation from observed arrival timestamps.
* :class:`OnlineMeanEstimator` -- running (optionally exponentially decayed)
  mean, used for average cost and average weight.
* :class:`AdaptiveForecaster` -- blends a prior forecast (possibly wrong,
  like the ``lambda' != lambda`` experiments in Section 5.2.3) with live
  observations, converging to the truth as evidence accumulates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class WorkloadForecast:
    """Prediction about queries that will arrive in the future.

    Attributes
    ----------
    arrival_rate:
        Expected arrivals per second (``lambda``).  ``0`` disables
        forecasting.
    average_cost:
        Expected cost ``c̄`` of a future query, in U's.
    average_weight:
        Expected priority weight ``w̄`` of a future query.
    horizon:
        Optional absolute cut-off (seconds from the snapshot) beyond which no
        arrivals are predicted; ``None`` means unbounded.
    """

    arrival_rate: float
    average_cost: float
    average_weight: float = 1.0
    horizon: float | None = None

    def __post_init__(self) -> None:
        from repro.core.validation import validate_finite

        validate_finite(self.arrival_rate, "arrival_rate", minimum=0.0)
        validate_finite(self.average_cost, "average_cost", minimum=0.0)
        validate_finite(self.average_weight, "average_weight", minimum=0.0, exclusive=True)
        if self.horizon is not None:
            validate_finite(self.horizon, "horizon", minimum=0.0)

    @property
    def mean_interarrival(self) -> float:
        """Average inter-arrival time ``t̄ = 1 / lambda`` (``inf`` if idle)."""
        return 1.0 / self.arrival_rate if self.arrival_rate > 0 else float("inf")

    def scaled(self, rate_factor: float) -> "WorkloadForecast":
        """Return a copy with the arrival rate scaled by *rate_factor*.

        Used by the Section 5.2.3 experiments to feed the PI a deliberately
        wrong ``lambda' = rate_factor * lambda``.
        """
        if rate_factor < 0:
            raise ValueError("rate_factor must be >= 0")
        return replace(self, arrival_rate=self.arrival_rate * rate_factor)


#: A forecast that predicts no future queries at all.
NO_FORECAST = WorkloadForecast(arrival_rate=0.0, average_cost=0.0)


#: Upper bound on the estimated arrival rate (arrivals/second).  A window
#: whose arrivals all share one timestamp has zero span, and the naive
#: ``(n - 1) / span`` estimate diverges; capping keeps the burst reading
#: finite *and* small enough that projections stay tractable (the virtual
#: arrival interval ``1 / rate`` never drops below a microsecond).
BURST_RATE_CAP = 1e6


class OnlineArrivalRateEstimator:
    """Estimate the arrival rate from observed arrival timestamps.

    Uses a sliding window of the most recent ``window`` arrivals: the rate is
    the number of observed inter-arrival gaps divided by the observation
    span.  With fewer than two observations the estimate is ``None``.

    A burst of simultaneous arrivals (all windowed timestamps equal, so the
    span is zero) reports the capped rate :data:`BURST_RATE_CAP` rather than
    ``None``: the rate is at its *highest* in that moment, and returning
    ``None`` would silently disable forecasting exactly when it matters.
    """

    def __init__(self, window: int = 50) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        self._times: deque[float] = deque(maxlen=window)

    def observe(self, arrival_time: float) -> None:
        """Record one arrival at *arrival_time* (non-decreasing)."""
        if self._times and arrival_time < self._times[-1]:
            raise ValueError("arrival times must be non-decreasing")
        self._times.append(arrival_time)

    @property
    def count(self) -> int:
        """Number of arrivals currently inside the window."""
        return len(self._times)

    def rate(self) -> float | None:
        """Current arrival-rate estimate in arrivals/second, or ``None``."""
        if len(self._times) < 2:
            return None
        span = self._times[-1] - self._times[0]
        gaps = len(self._times) - 1
        if span <= 0 or gaps / span > BURST_RATE_CAP:
            return BURST_RATE_CAP
        return gaps / span


class OnlineMeanEstimator:
    """Running mean with optional exponential decay.

    With ``decay=None`` this is the plain arithmetic mean of all
    observations.  With ``decay = d`` in ``(0, 1)``, older observations are
    discounted by ``d`` per observation (recent workload shifts dominate).
    """

    def __init__(self, decay: float | None = None) -> None:
        if decay is not None and not (0.0 < decay < 1.0):
            raise ValueError("decay must be in (0, 1) or None")
        self._decay = decay
        self._weighted_sum = 0.0
        self._weight = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        if self._decay is not None:
            self._weighted_sum *= self._decay
            self._weight *= self._decay
        self._weighted_sum += value
        self._weight += 1.0
        self._count += 1

    @property
    def count(self) -> int:
        """Total number of observations ever recorded."""
        return self._count

    def mean(self) -> float | None:
        """Current mean, or ``None`` if nothing was observed."""
        if self._weight <= 0:
            return None
        return self._weighted_sum / self._weight


class AdaptiveForecaster:
    """Blend a prior forecast with live observations of the arrival stream.

    The blend treats the prior as ``prior_strength`` pseudo-observations:

        ``lambda_hat = (k0 * lambda' + k * lambda_obs) / (k0 + k)``

    where ``k`` is the number of real observations backing ``lambda_obs``.
    The same scheme applies to the average cost and weight.  As observations
    accumulate the estimate converges to the measured workload regardless of
    how wrong the prior was -- the adaptivity demonstrated in Figures 8-10.
    """

    def __init__(
        self,
        prior: WorkloadForecast,
        prior_strength: float = 10.0,
        rate_window: int = 50,
    ) -> None:
        if prior_strength < 0:
            raise ValueError("prior_strength must be >= 0")
        self._prior = prior
        self._prior_strength = prior_strength
        self._rate = OnlineArrivalRateEstimator(window=rate_window)
        self._cost = OnlineMeanEstimator()
        self._weight = OnlineMeanEstimator()

    @property
    def prior(self) -> WorkloadForecast:
        """The (possibly wrong) prior forecast this forecaster started from."""
        return self._prior

    def observe_arrival(self, time: float, cost: float, weight: float = 1.0) -> None:
        """Record one real arrival: its time, initial cost and weight.

        Corrupted observations (NaN / infinite / negative cost or weight)
        are rejected with :class:`ValueError` rather than silently poisoning
        the running means every later forecast would be built from.
        """
        from repro.core.validation import validate_finite

        validate_finite(time, "arrival time", minimum=0.0)
        validate_finite(cost, "arrival cost", minimum=0.0)
        validate_finite(weight, "arrival weight", minimum=0.0, exclusive=True)
        self._rate.observe(time)
        self._cost.observe(cost)
        self._weight.observe(weight)

    def _blend(self, prior_value: float, observed: float | None, k: float) -> float:
        if observed is None or k <= 0:
            return prior_value
        k0 = self._prior_strength
        return (k0 * prior_value + k * observed) / (k0 + k)

    def current(self) -> WorkloadForecast:
        """The blended forecast given the evidence so far."""
        rate_obs = self._rate.rate()
        k_rate = max(self._rate.count - 1, 0)
        cost_obs = self._cost.mean()
        weight_obs = self._weight.mean()
        return WorkloadForecast(
            arrival_rate=self._blend(self._prior.arrival_rate, rate_obs, k_rate),
            average_cost=self._blend(self._prior.average_cost, cost_obs, self._cost.count),
            average_weight=max(
                self._blend(self._prior.average_weight, weight_obs, self._weight.count),
                1e-9,
            ),
            horizon=self._prior.horizon,
        )
