"""The single-query progress indicator baseline (paper Section 2).

The single-query PIs of [11, 12] estimate the remaining execution time of a
query ``Q`` as ``t = c / s`` where ``c`` is the refined remaining cost in U's
and ``s`` is the *currently observed* execution speed in U/s.  The observed
speed implicitly reflects concurrent load, but the estimator has no idea how
long that load will last -- which is exactly the failure mode the multi-query
PI fixes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


class SpeedMonitor:
    """Measure a query's recent execution speed from work observations.

    The monitor receives ``(time, completed_work)`` samples and reports the
    average speed over a sliding time window (default 10 simulated seconds),
    mirroring how a real PI samples executor counters.  A window keeps the
    estimate responsive to load shifts without being dominated by a single
    scheduling quantum.
    """

    def __init__(self, window_seconds: float = 10.0) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")
        self._window = window_seconds
        self._samples: deque[tuple[float, float]] = deque()

    def observe(self, time: float, completed_work: float) -> None:
        """Record cumulative *completed_work* (U's) at *time* (seconds)."""
        from repro.core.validation import validate_finite

        validate_finite(time, "observation time")
        validate_finite(completed_work, "completed_work", minimum=0.0)
        if self._samples and time < self._samples[-1][0]:
            raise ValueError("observation times must be non-decreasing")
        if self._samples and completed_work < self._samples[-1][1] - 1e-9:
            raise ValueError("completed_work must be non-decreasing")
        self._samples.append((time, completed_work))
        cutoff = time - self._window
        # Keep one sample at or before the cutoff so the window stays full.
        while len(self._samples) > 2 and self._samples[1][0] <= cutoff:
            self._samples.popleft()

    def speed(self) -> float | None:
        """Average speed over the window, U/s, or ``None`` if undetermined."""
        if len(self._samples) < 2:
            return None
        t0, w0 = self._samples[0]
        t1, w1 = self._samples[-1]
        if t1 <= t0:
            return None
        return (w1 - w0) / (t1 - t0)


@dataclass(frozen=True)
class SingleQueryEstimate:
    """One output of the single-query PI."""

    time: float
    remaining_cost: float
    speed: float
    remaining_seconds: float


class SingleQueryProgressIndicator:
    """Single-query PI: ``t = c / s`` with monitored current speed.

    Parameters
    ----------
    window_seconds:
        Width of the speed-monitoring window.
    """

    name = "single-query"

    def __init__(self, window_seconds: float = 10.0) -> None:
        self._monitor = SpeedMonitor(window_seconds)
        self._last: SingleQueryEstimate | None = None

    def observe(self, time: float, completed_work: float) -> None:
        """Feed one executor progress sample into the speed monitor."""
        self._monitor.observe(time, completed_work)

    def estimate(self, time: float, remaining_cost: float) -> SingleQueryEstimate | None:
        """Estimate the remaining execution time at *time*.

        Returns ``None`` until the monitor has seen enough samples to
        determine a speed, or if the observed speed is zero while work
        remains (the estimate would be infinite).

        Raises :class:`ValueError` on NaN / infinite / negative
        ``remaining_cost`` -- a corrupted cost input must not silently
        become an estimate.
        """
        from repro.core.validation import validate_finite

        validate_finite(remaining_cost, "remaining_cost", minimum=0.0)
        speed = self._monitor.speed()
        if speed is None:
            return None
        if remaining_cost == 0:
            est = SingleQueryEstimate(time, 0.0, speed, 0.0)
        elif speed <= 0:
            return None
        else:
            est = SingleQueryEstimate(time, remaining_cost, speed, remaining_cost / speed)
        self._last = est
        return est

    @property
    def last_estimate(self) -> SingleQueryEstimate | None:
        """The most recent successful estimate, if any."""
        return self._last
