"""The multi-query progress indicator (paper Sections 2.2-2.4).

Given a :class:`~repro.core.model.SystemSnapshot`, the multi-query PI
predicts the remaining execution time of every query by explicitly modelling:

* the other running queries and their remaining costs (Section 2.2),
* queries waiting in the admission queue (Section 2.3, optional), and
* forecast future arrivals (Section 2.4, optional).

The estimator itself is stateless between calls -- adaptivity comes from
calling it again with fresh snapshots (and, when a forecaster is attached,
with an updated blended forecast), exactly the paper's "monitor continuously
and adjust" loop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core import projection
from repro.core.forecast import AdaptiveForecaster, WorkloadForecast
from repro.core.model import SystemSnapshot
from repro.core.projection import ProjectionResult, project
from repro.core.validation import validate_finite, validate_snapshots


@dataclass(frozen=True)
class MultiQueryEstimate:
    """Remaining-time estimates for every query in a snapshot."""

    time: float
    remaining_seconds: dict[str, float]
    queue_waits: dict[str, float]
    quiescent_time: float
    forecast_used: WorkloadForecast | None

    def for_query(self, query_id: str) -> float:
        """Remaining time of one query, in seconds."""
        try:
            return self.remaining_seconds[query_id]
        except KeyError:
            raise KeyError(f"query {query_id!r} not in estimate") from None


class MultiQueryProgressIndicator:
    """Multi-query PI with optional queue visibility and arrival forecasting.

    Parameters
    ----------
    consider_queue:
        If ``True`` (default), queries in the admission queue are modelled
        (Section 2.3).  Setting it to ``False`` reproduces the weaker
        "multi-query estimate without considering admission queue" line of
        paper Figure 5.
    forecast:
        Static prediction of future arrivals (Section 2.4), or ``None`` for
        no forecasting.
    forecaster:
        Optional :class:`AdaptiveForecaster`.  When attached, each call to
        :meth:`estimate` uses the forecaster's *current* blended forecast,
        and callers should feed real arrivals in via
        :meth:`observe_arrival`.  Overrides ``forecast``.
    horizon_drain_factor:
        How far into the future arrivals are forecast, as a multiple of the
        current workload's no-arrival drain time (total remaining work over
        ``C``).  Only applies when the forecast itself has no explicit
        horizon.  A finite horizon keeps estimates bounded even when the
        forecast rate exceeds capacity -- beyond the horizon the PI relies
        on its continuous re-estimation rather than speculation (the
        behaviour the paper's Figures 8-10 exhibit).  ``None`` forecasts
        arrivals indefinitely.
    backend:
        Projection backend: ``"incremental"`` (shared-schedule engine),
        ``"reference"`` (the original full-recompute loop), or ``None``
        to follow the process default
        (:func:`repro.core.projection.set_default_backend`).
    """

    name = "multi-query"

    def __init__(
        self,
        consider_queue: bool = True,
        forecast: WorkloadForecast | None = None,
        forecaster: AdaptiveForecaster | None = None,
        horizon_drain_factor: float | None = 3.0,
        backend: str | None = None,
    ) -> None:
        if horizon_drain_factor is not None:
            validate_finite(
                horizon_drain_factor, "horizon_drain_factor",
                minimum=0.0, exclusive=True,
            )
        if backend is not None and backend not in projection.BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; "
                f"expected one of {projection.BACKENDS}"
            )
        self._consider_queue = consider_queue
        self._forecast = forecast
        self._forecaster = forecaster
        self._horizon_drain_factor = horizon_drain_factor
        self._backend = backend

    @property
    def consider_queue(self) -> bool:
        """Whether admission-queue contents are modelled."""
        return self._consider_queue

    @property
    def backend(self) -> str:
        """The projection backend this indicator estimates with."""
        return self._backend or projection.default_backend()

    def current_forecast(self) -> WorkloadForecast | None:
        """The forecast the next :meth:`estimate` call will use."""
        if self._forecaster is not None:
            return self._forecaster.current()
        return self._forecast

    def observe_arrival(self, time: float, cost: float, weight: float = 1.0) -> None:
        """Report a real arrival to the attached adaptive forecaster."""
        if self._forecaster is not None:
            self._forecaster.observe_arrival(time, cost, weight)

    def estimate(self, snapshot: SystemSnapshot) -> MultiQueryEstimate:
        """Estimate remaining times for every query in *snapshot*.

        All returned times are relative to ``snapshot.time``.

        Raises
        ------
        ValueError
            If any modelled query carries a NaN / infinite / negative cost
            or weight (corrupted statistics must not silently become
            estimates; callers wanting graceful degradation catch this and
            fall back -- see :mod:`repro.core.validation`).
        """
        validate_snapshots(snapshot.running, where="running")
        if self._consider_queue:
            validate_snapshots(snapshot.queued, where="queued")
        forecast = self.current_forecast()
        if (
            forecast is not None
            and forecast.horizon is None
            and self._horizon_drain_factor is not None
        ):
            drain = snapshot.total_remaining_cost / snapshot.processing_rate
            forecast = replace(
                forecast, horizon=self._horizon_drain_factor * drain
            )
        result: ProjectionResult = project(
            running=snapshot.running,
            queued=snapshot.queued if self._consider_queue else (),
            processing_rate=snapshot.processing_rate,
            multiprogramming_limit=snapshot.multiprogramming_limit,
            forecast=forecast,
            backend=self._backend,
        )
        remaining = dict(result.remaining_times)
        waits = {qid: p.queue_wait for qid, p in result.queries.items()}

        if not self._consider_queue and snapshot.queued:
            # Queue-blind estimator: pretend each queued query will start
            # the moment a slot frees and run alone at full weight share --
            # i.e. it simply has no estimate for queued queries.  We report
            # +inf so callers can distinguish "not modelled".
            for q in snapshot.queued:
                remaining.setdefault(q.query_id, float("inf"))
                waits.setdefault(q.query_id, float("inf"))

        return MultiQueryEstimate(
            time=snapshot.time,
            remaining_seconds=remaining,
            queue_waits=waits,
            quiescent_time=result.quiescent_time,
            forecast_used=forecast,
        )

    def estimate_for(self, snapshot: SystemSnapshot, query_id: str) -> float:
        """Remaining time of a single query, in seconds from the snapshot."""
        return self.estimate(snapshot).for_query(query_id)
