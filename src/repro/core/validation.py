"""Shared input-validation guards for the progress-indicator estimators.

The estimators consume numbers that, in a real system, come from noisy and
occasionally corrupted sources: optimizer cost estimates, executor counters,
workload statistics.  A NaN or infinite remaining cost silently propagates
through arithmetic (``nan < 0`` is ``False``, so naive range checks pass)
and turns every downstream estimate into garbage without any error being
raised.  The related robust-progress-estimation literature is explicit that
estimators must *fail loudly or degrade gracefully* on such inputs.

This module is the single place that policy lives:

* :func:`validate_finite` -- one scalar must be finite (and optionally
  bounded below).
* :func:`validate_snapshots` -- every cost/weight in a batch of
  :class:`~repro.core.model.QuerySnapshot` objects must be sane.

The :class:`~repro.core.model.QuerySnapshot` data carrier itself stays
permissive about NaN/inf (a snapshot may legitimately *record* a corrupted
runtime signal -- that is what the fault-injection layer produces); the
guards fire at estimator entry, where acting on garbage would begin.
Callers that want graceful degradation instead of an exception (e.g. the
:class:`~repro.wm.watchdog.RunawayQueryWatchdog`) catch the
:class:`ValueError` and fall back to an observed-work heuristic.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.core.model import QuerySnapshot


def validate_finite(
    value: float,
    name: str,
    minimum: float | None = None,
    exclusive: bool = False,
) -> float:
    """Require *value* to be a finite number, optionally bounded below.

    Parameters
    ----------
    value:
        The number to check.
    name:
        How to refer to the value in the error message
        (e.g. ``"processing_rate"`` or ``"remaining_cost of query 'Q1'"``).
    minimum:
        Optional lower bound.
    exclusive:
        If ``True`` the bound is strict (``value > minimum``); otherwise
        ``value >= minimum``.

    Returns
    -------
    float
        The validated value, for convenient inline use.

    Raises
    ------
    ValueError
        If the value is NaN, infinite, or violates the bound.
    """
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if minimum is not None:
        if exclusive and not value > minimum:
            raise ValueError(f"{name} must be > {minimum}, got {value}")
        if not exclusive and not value >= minimum:
            raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def validate_snapshots(
    queries: Iterable[QuerySnapshot] | Sequence[QuerySnapshot],
    where: str = "queries",
) -> None:
    """Require every cost and weight in *queries* to be finite and in range.

    Checks, per query: ``remaining_cost`` finite and >= 0,
    ``completed_work`` finite and >= 0, ``weight`` finite and > 0.

    Raises
    ------
    ValueError
        Naming the offending query and field, e.g.
        ``remaining_cost of query 'Q3' (in running) must be finite, got nan``.
    """
    for q in queries:
        validate_finite(
            q.remaining_cost,
            f"remaining_cost of query {q.query_id!r} (in {where})",
            minimum=0.0,
        )
        validate_finite(
            q.completed_work,
            f"completed_work of query {q.query_id!r} (in {where})",
            minimum=0.0,
        )
        validate_finite(
            q.weight,
            f"weight of query {q.query_id!r} (in {where})",
            minimum=0.0,
            exclusive=True,
        )


def finite_snapshots(
    queries: Sequence[QuerySnapshot],
) -> tuple[QuerySnapshot, ...]:
    """Drop snapshots whose remaining cost or weight is not finite/sane.

    The graceful-degradation counterpart of :func:`validate_snapshots`:
    workload managers that must keep operating under corrupted statistics
    filter their inputs with this instead of raising, and handle the
    filtered-out queries by cruder means (observed work, deadline aborts).
    """
    return tuple(
        q
        for q in queries
        if math.isfinite(q.remaining_cost)
        and q.remaining_cost >= 0
        and math.isfinite(q.completed_work)
        and q.completed_work >= 0
        and math.isfinite(q.weight)
        and q.weight > 0
    )
