"""Error metrics and time-series helpers used across the experiments.

The paper's headline accuracy metric (Section 5.2.3) is the *relative error*

    ``|t_est - t_actual| / t_actual * 100%``

of an estimated remaining execution time against the measured one.  This
module provides that metric plus small utilities for working with the
(time, value) series the simulator traces produce.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterable, Sequence


def relative_error(estimated: float, actual: float) -> float:
    """Relative error ``|est - actual| / actual`` as a fraction (not %).

    ``actual`` must be positive; an actual of zero has no defined relative
    error and raises :class:`ValueError`.  Infinite or NaN estimates yield
    ``inf`` (the estimator produced no usable answer).
    """
    if actual <= 0:
        raise ValueError(f"actual must be > 0, got {actual}")
    if math.isnan(estimated) or math.isinf(estimated):
        return float("inf")
    return abs(estimated - actual) / actual


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on an empty iterable."""
    vals = list(values)
    if not vals:
        raise ValueError("mean of empty sequence")
    return sum(vals) / len(vals)


def mean_finite(values: Iterable[float], cap: float | None = None) -> float:
    """Mean after replacing non-finite values with *cap* (or dropping them).

    Experiment runs occasionally produce an infinite relative error (the
    estimator declined to answer); averaging across runs needs a policy.
    With ``cap=None`` non-finite values are dropped; otherwise they are
    clamped to ``cap``.
    """
    vals = []
    for v in values:
        if math.isfinite(v):
            vals.append(v)
        elif cap is not None:
            vals.append(cap)
    if not vals:
        raise ValueError("no finite values to average")
    return sum(vals) / len(vals)


class StepSeries:
    """A piecewise-constant time series (last observation carried forward).

    Traces record a value whenever it changes; :meth:`at` answers "what was
    the value at time t" and :meth:`sample` resamples onto a uniform grid --
    how the figure benches align estimator outputs with ground truth.
    """

    def __init__(self, points: Sequence[tuple[float, float]] = ()) -> None:
        self._times: list[float] = []
        self._values: list[float] = []
        for t, v in points:
            self.append(t, v)

    def append(self, time: float, value: float) -> None:
        """Record *value* observed at *time* (non-decreasing times)."""
        if self._times and time < self._times[-1]:
            raise ValueError("times must be non-decreasing")
        if self._times and time == self._times[-1]:
            self._values[-1] = value
            return
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self):
        return iter(zip(self._times, self._values))

    @property
    def times(self) -> list[float]:
        """Observation times."""
        return list(self._times)

    @property
    def values(self) -> list[float]:
        """Observed values."""
        return list(self._values)

    def at(self, time: float, carry_back: bool = False) -> float:
        """Value in effect at *time* (last observation carried forward).

        A *time* before the first observation raises by default; with
        ``carry_back=True`` the first observed value is extended backwards
        instead -- the right reading for queries observed mid-run.
        """
        if not self._times:
            raise ValueError("empty series")
        idx = bisect_right(self._times, time) - 1
        if idx < 0:
            if carry_back:
                return self._values[0]
            raise ValueError(f"time {time} precedes first observation")
        return self._values[idx]

    def sample(self, times: Iterable[float], carry_back: bool = True) -> list[float]:
        """Resample the series at each of *times*.

        Grid points before the first observation take the first observed
        value (queries arriving mid-run start their series late); pass
        ``carry_back=False`` to get the strict pre-fix behaviour that
        raises instead.
        """
        return [self.at(t, carry_back=carry_back) for t in times]

    def first_time(self) -> float:
        """Time of the first observation."""
        if not self._times:
            raise ValueError("empty series")
        return self._times[0]

    def last_time(self) -> float:
        """Time of the last observation."""
        if not self._times:
            raise ValueError("empty series")
        return self._times[-1]


def uniform_grid(start: float, stop: float, points: int) -> list[float]:
    """*points* evenly spaced times from *start* to *stop* inclusive."""
    if points < 2:
        raise ValueError("points must be >= 2")
    if stop < start:
        raise ValueError("stop must be >= start")
    step = (stop - start) / (points - 1)
    return [start + i * step for i in range(points)]
