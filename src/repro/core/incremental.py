"""Shared, incrementally-maintained standard-case schedule.

The Section 2.2 stage algorithm costs ``O(n log n)`` per call.  That is
cheap for one progress indicator, but a system serving *n* concurrent PIs
that recomputes the schedule from scratch for every query pays
``O(n^2 log n)`` per refresh -- the opposite of the paper's observation
that one schedule computation can serve *all* running queries at once.

:class:`IncrementalSchedule` keeps the weighted-fair-sharing schedule
*alive between refreshes* so that every PI reads from one shared
structure:

* ``add(query)``, ``remove(query_id)``, ``reweight(query_id, w)`` and
  ``set_remaining(query_id, c)`` are amortized ``O(log n)``;
* ``advance(dt)`` moves virtual time forward in ``O((1 + finished)
  log n)`` -- each query is popped exactly once over its lifetime;
* ``remaining_time_of(query_id)`` answers one PI in ``O(log n)``;
* ``remaining_times()`` serves every PI in one ``O(n)`` sweep.

The trick is the *virtual-time* formulation of weighted fair sharing.
Let ``V`` be a fair-share clock that grows at rate ``dV/dt = C / W``
(``C`` the total processing rate, ``W`` the live weight sum).  Every
query consumes work at speed ``C * w_i / W``, i.e. exactly ``w_i`` units
of work per unit of ``V``.  Tagging each query at insertion with the
*finish tag*

    ``f_i = V + c_i / w_i``

makes its remaining cost at any later instant ``c_i = w_i * (f_i - V)``
and its completion the moment ``V`` reaches ``f_i`` -- so the tags are
**static** between structural changes and queries finish in ascending
``(f_i, query_id)`` order, the standard case's ``c/w`` order.

Remaining *real* time needs the stage structure.  With queries indexed
in ascending tag order, ``P_i`` the prefix weight sum before query ``i``
and ``S_i`` the prefix sum of ``f_k * w_k`` before it, telescoping the
per-stage durations ``(f_k - f_{k-1}) * W_k / C`` gives the closed form

    ``r_i = (f_i * (W - P_i) - V * W + S_i) / C``

so one balanced-tree descent maintaining subtree sums of ``w`` and
``f * w`` answers any single PI in ``O(log n)``.  The tree here is a
treap with deterministic (seeded) priorities, keeping runs reproducible.

:func:`repro.core.standard_case.standard_case` remains the reference
oracle: the differential suite in ``tests/core`` asserts the two agree
on every live query after every operation.  See ``docs/PERFORMANCE.md``
for the amortized-complexity argument and the scalability benchmarks.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Iterator, Sequence

from repro.core.model import QuerySnapshot
from repro.core.validation import validate_finite, validate_snapshots

#: Relative slack used when deciding whether a tag has been reached.
_EPS = 1e-12

#: Virtual time beyond which :meth:`IncrementalSchedule.advance`
#: automatically rebases tags to protect ``f - V`` differences from
#: catastrophic cancellation.  Generous: virtual time grows roughly as
#: processed-work / weight, so ordinary runs never get near it.
_AUTO_REBASE_AT = 1e15


class _Node:
    """One treap node: key ``(tag, query_id)`` plus subtree aggregates."""

    __slots__ = ("tag", "query_id", "weight", "prio", "left", "right",
                 "sum_w", "sum_fw")

    def __init__(self, tag: float, query_id: str, weight: float, prio: float):
        self.tag = tag
        self.query_id = query_id
        self.weight = weight
        self.prio = prio
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.sum_w = weight
        self.sum_fw = tag * weight

    @property
    def key(self) -> tuple[float, str]:
        return (self.tag, self.query_id)


def _pull(node: _Node) -> None:
    """Recompute *node*'s subtree aggregates from its children."""
    w = node.weight
    fw = node.tag * node.weight
    left, right = node.left, node.right
    if left is not None:
        w += left.sum_w
        fw += left.sum_fw
    if right is not None:
        w += right.sum_w
        fw += right.sum_fw
    node.sum_w = w
    node.sum_fw = fw


def _rotate_right(node: _Node) -> _Node:
    pivot = node.left
    assert pivot is not None
    node.left = pivot.right
    pivot.right = node
    _pull(node)
    _pull(pivot)
    return pivot


def _rotate_left(node: _Node) -> _Node:
    pivot = node.right
    assert pivot is not None
    node.right = pivot.left
    pivot.left = node
    _pull(node)
    _pull(pivot)
    return pivot


def _insert(node: _Node | None, new: _Node) -> _Node:
    if node is None:
        return new
    if new.key < node.key:
        node.left = _insert(node.left, new)
        if node.left.prio < node.prio:
            node = _rotate_right(node)
    else:
        node.right = _insert(node.right, new)
        if node.right.prio < node.prio:
            node = _rotate_left(node)
    _pull(node)
    return node


def _merge(a: _Node | None, b: _Node | None) -> _Node | None:
    """Merge two treaps; every key in *a* precedes every key in *b*."""
    if a is None:
        return b
    if b is None:
        return a
    if a.prio < b.prio:
        a.right = _merge(a.right, b)
        _pull(a)
        return a
    b.left = _merge(a, b.left)
    _pull(b)
    return b


def _delete(node: _Node | None, key: tuple[float, str]) -> _Node | None:
    if node is None:  # pragma: no cover - callers check membership first
        raise KeyError(key)
    if key < node.key:
        node.left = _delete(node.left, key)
    elif key > node.key:
        node.right = _delete(node.right, key)
    else:
        return _merge(node.left, node.right)
    _pull(node)
    return node


def _leftmost(node: _Node) -> _Node:
    while node.left is not None:
        node = node.left
    return node


def _inorder(node: _Node | None) -> Iterator[_Node]:
    """Iterative in-order traversal (ascending ``(tag, query_id)``)."""
    stack: list[_Node] = []
    while stack or node is not None:
        while node is not None:
            stack.append(node)
            node = node.left
        node = stack.pop()
        yield node
        node = node.right


class IncrementalSchedule:
    """A live standard-case schedule shared by all progress indicators.

    Parameters
    ----------
    processing_rate:
        Total work rate ``C`` in U/s (the paper's Assumption 1).
    queries:
        Optional initial queries (any order).

    Notes
    -----
    The schedule models exactly the paper's standard case: weighted fair
    sharing at constant total rate with no arrivals between operations.
    Arrivals, departures and priority changes are *operations*
    (:meth:`add`, :meth:`remove`, :meth:`reweight`), after which the
    schedule is again exact.  Completed work is not tracked -- snapshots
    produced by :meth:`snapshots` report only remaining cost and weight.
    """

    def __init__(
        self,
        processing_rate: float = 1.0,
        queries: Iterable[QuerySnapshot] = (),
    ) -> None:
        validate_finite(
            processing_rate, "processing_rate", minimum=0.0, exclusive=True
        )
        self._rate = float(processing_rate)
        self._root: _Node | None = None
        #: query id -> (tag, weight); the authoritative membership index.
        self._entries: dict[str, tuple[float, float]] = {}
        self._virtual = 0.0
        self._time = 0.0
        #: Deterministic treap priorities: identical operation sequences
        #: produce identical tree shapes (and therefore identical floats).
        self._rng = random.Random(0x51ED)
        for q in queries:
            self.add(q)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def processing_rate(self) -> float:
        """Total work rate ``C`` in U/s."""
        return self._rate

    @property
    def time(self) -> float:
        """Real time accumulated by :meth:`advance`, in seconds."""
        return self._time

    @property
    def virtual_time(self) -> float:
        """The fair-share clock ``V`` (units of work per unit weight)."""
        return self._virtual

    @property
    def total_weight(self) -> float:
        """Sum ``W`` of the live queries' weights."""
        return self._root.sum_w if self._root is not None else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, query_id: str) -> bool:
        return query_id in self._entries

    def query_ids(self) -> tuple[str, ...]:
        """Live query ids in predicted finish order."""
        return tuple(n.query_id for n in _inorder(self._root))

    finish_order = query_ids

    def remaining_cost_of(self, query_id: str) -> float:
        """Remaining work of *query_id* under the model, in U's."""
        tag, weight = self._lookup(query_id)
        return max(weight * (tag - self._virtual), 0.0)

    def weight_of(self, query_id: str) -> float:
        """Scheduling weight of *query_id*."""
        return self._lookup(query_id)[1]

    def snapshots(self) -> tuple[QuerySnapshot, ...]:
        """The live queries as :class:`QuerySnapshot`\\ s, finish order.

        Completed work is reported as 0 (the schedule does not track it).
        """
        v = self._virtual
        return tuple(
            QuerySnapshot(
                query_id=n.query_id,
                remaining_cost=max(n.weight * (n.tag - v), 0.0),
                weight=n.weight,
            )
            for n in _inorder(self._root)
        )

    def quiescent_time(self) -> float:
        """Seconds until the last live query finishes (0 when empty)."""
        if self._root is None:
            return 0.0
        work = self._root.sum_fw - self._virtual * self._root.sum_w
        return max(work / self._rate, 0.0)

    def next_finish(self) -> tuple[float, str] | None:
        """``(seconds_until, query_id)`` of the next completion, or None."""
        if self._root is None:
            return None
        head = _leftmost(self._root)
        dt = (head.tag - self._virtual) * self._root.sum_w / self._rate
        return (max(dt, 0.0), head.query_id)

    # ------------------------------------------------------------------
    # The PI read path
    # ------------------------------------------------------------------

    def remaining_time_of(self, query_id: str) -> float:
        """Predicted remaining execution time of *query_id*, in seconds.

        ``O(log n)``: one tree descent accumulating the prefix sums
        ``P`` (weight) and ``S`` (``tag * weight``) of the queries that
        finish earlier, then the closed form
        ``r = (f * (W - P) - V * W + S) / C``.
        """
        tag, weight = self._lookup(query_id)
        del weight
        key = (tag, query_id)
        prefix_w = 0.0
        prefix_fw = 0.0
        node = self._root
        while node is not None:
            if key <= node.key:
                node = node.left
            else:
                left = node.left
                if left is not None:
                    prefix_w += left.sum_w
                    prefix_fw += left.sum_fw
                prefix_w += node.weight
                prefix_fw += node.tag * node.weight
                node = node.right
        assert self._root is not None
        total_w = self._root.sum_w
        r = (tag * (total_w - prefix_w) - self._virtual * total_w + prefix_fw)
        return max(r / self._rate, 0.0)

    def remaining_times(self) -> dict[str, float]:
        """Remaining time of every live query in one ``O(n)`` sweep.

        This is the full-system refresh path: one traversal serves all
        ``n`` concurrent PIs from the shared schedule.
        """
        times: dict[str, float] = {}
        clock = 0.0
        prev_tag = self._virtual
        live_w = self.total_weight
        for node in _inorder(self._root):
            clock += max(node.tag - prev_tag, 0.0) * live_w / self._rate
            times[node.query_id] = clock
            live_w -= node.weight
            prev_tag = node.tag
        return times

    # ------------------------------------------------------------------
    # Structural updates
    # ------------------------------------------------------------------

    def add(self, query: QuerySnapshot) -> None:
        """Admit *query* into the schedule (``O(log n)``).

        Raises
        ------
        ValueError
            If the id is already scheduled, or the snapshot carries a
            NaN / infinite / negative cost or weight.
        """
        if query.query_id in self._entries:
            raise ValueError(f"duplicate query id {query.query_id!r}")
        validate_snapshots((query,))
        tag = self._virtual + query.remaining_cost / query.weight
        node = _Node(tag, query.query_id, query.weight, self._rng.random())
        self._root = _insert(self._root, node)
        self._entries[query.query_id] = (tag, query.weight)

    def remove(self, query_id: str) -> None:
        """Withdraw *query_id* (finished elsewhere, aborted, blocked...).

        Raises
        ------
        KeyError
            If the id is not scheduled.
        """
        tag, _ = self._lookup(query_id)
        self._root = _delete(self._root, (tag, query_id))
        del self._entries[query_id]

    def discard(self, query_id: str) -> bool:
        """Like :meth:`remove`, but a no-op returning False when absent."""
        if query_id not in self._entries:
            return False
        self.remove(query_id)
        return True

    def reweight(self, query_id: str, weight: float) -> None:
        """Change *query_id*'s scheduling weight, keeping its cost."""
        validate_finite(weight, "weight", minimum=0.0, exclusive=True)
        cost = self.remaining_cost_of(query_id)
        self.remove(query_id)
        self.add(QuerySnapshot(query_id, cost, weight=weight))

    def set_remaining(self, query_id: str, remaining_cost: float) -> None:
        """Re-pin *query_id*'s remaining cost (estimate revisions)."""
        validate_finite(remaining_cost, "remaining_cost", minimum=0.0)
        weight = self.weight_of(query_id)
        self.remove(query_id)
        self.add(QuerySnapshot(query_id, remaining_cost, weight=weight))

    # ------------------------------------------------------------------
    # Time advancement
    # ------------------------------------------------------------------

    def advance(self, dt: float) -> list[tuple[float, str]]:
        """Advance real time by *dt* seconds; return the completions.

        Completions are ``(time, query_id)`` pairs relative to the
        schedule's :attr:`time` origin, in finish order.  Each query is
        popped exactly once over its lifetime, so a sequence of advances
        costs ``O((advances + n) log n)`` overall.
        """
        validate_finite(dt, "dt", minimum=0.0)
        finished: list[tuple[float, str]] = []
        remaining = dt
        while self._root is not None:
            total_w = self._root.sum_w
            head = _leftmost(self._root)
            target = self._virtual + remaining * self._rate / total_w
            slack = _EPS * max(1.0, abs(head.tag))
            if head.tag > target + slack:
                self._virtual = target
                self._time += remaining
                remaining = 0.0
                break
            used = max(
                (head.tag - self._virtual) * total_w / self._rate, 0.0
            )
            used = min(used, remaining)
            remaining -= used
            self._time += used
            self._virtual = max(self._virtual, head.tag)
            finished.append((self._time, head.query_id))
            self._root = _delete(self._root, head.key)
            del self._entries[head.query_id]
        else:
            # Drained mid-advance: idle time passes, clock rebases free.
            self._time += remaining
            self._virtual = 0.0
        if self._virtual > _AUTO_REBASE_AT:
            self.rebase()
        return finished

    def rebase(self) -> None:
        """Shift all tags by ``-V`` and reset ``V`` to 0 (``O(n)``).

        Long-running schedules accumulate virtual time; since only the
        differences ``f - V`` matter, rebasing restores full floating-
        point resolution.  Ordering is preserved exactly (a uniform
        shift), so the tree structure is reused in place.
        """
        shift = self._virtual
        if shift == 0.0:
            return
        for node in _inorder(self._root):
            node.tag -= shift
        # Aggregates depend on tags: recompute bottom-up.
        self._repull(self._root)
        self._entries = {
            qid: (tag - shift, w) for qid, (tag, w) in self._entries.items()
        }
        self._virtual = 0.0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _lookup(self, query_id: str) -> tuple[float, float]:
        try:
            return self._entries[query_id]
        except KeyError:
            raise KeyError(f"query {query_id!r} is not scheduled") from None

    def _repull(self, node: _Node | None) -> None:
        """Recompute aggregates of a whole subtree (post-order, iterative)."""
        if node is None:
            return
        stack: list[tuple[_Node, bool]] = [(node, False)]
        while stack:
            current, expanded = stack.pop()
            if expanded:
                _pull(current)
                continue
            stack.append((current, True))
            if current.left is not None:
                stack.append((current.left, False))
            if current.right is not None:
                stack.append((current.right, False))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<IncrementalSchedule n={len(self)} W={self.total_weight:g} "
            f"V={self._virtual:g} t={self._time:g}>"
        )


def incremental_schedule_of(
    queries: Sequence[QuerySnapshot], processing_rate: float
) -> IncrementalSchedule:
    """Build a schedule over *queries* (convenience constructor)."""
    return IncrementalSchedule(processing_rate, queries)
