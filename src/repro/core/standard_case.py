"""The "standard case" stage algorithm of paper Section 2.2.

Given ``n`` queries running concurrently under weighted fair sharing, with no
new arrivals, the execution divides into ``n`` stages: at the end of stage
``i`` exactly one query (the one with the ``i``-th smallest ``c/w`` ratio)
finishes.  The paper derives the closed form

    ``c_i^(k) = c_i - c_k * w_i / w_k``        (remaining cost after stage k)

which collapses to a per-stage duration of

    ``t_k = (c_k / w_k - c_{k-1} / w_{k-1}) * W_k / C``

where ``W_k`` is the total weight of the queries still running during stage
``k`` and queries are indexed in ascending ``c/w`` order (``c_0/w_0 = 0`` by
convention).  The remaining execution time of query ``i`` is
``r_i = t_1 + ... + t_i``.

The algorithm is ``O(n log n)`` time and ``O(n)`` space, matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.model import QuerySnapshot
from repro.core.validation import validate_finite, validate_snapshots


@dataclass(frozen=True)
class Stage:
    """One stage of the standard-case execution.

    Attributes
    ----------
    index:
        1-based stage number.
    duration:
        Stage duration ``t_k`` in seconds.
    start, end:
        Stage boundaries, relative to the snapshot time.
    finishing_query:
        Id of the query that completes at the end of this stage.
    running_query_ids:
        Ids of the queries executing during the stage (ascending ``c/w``).
    speeds:
        Per-query execution speed during the stage, U/s, keyed by query id.
    """

    index: int
    duration: float
    start: float
    end: float
    finishing_query: str
    running_query_ids: tuple[str, ...]
    speeds: dict[str, float]

    def work_done(self, query_id: str) -> float:
        """Work completed by *query_id* during this stage, in U's."""
        return self.speeds.get(query_id, 0.0) * self.duration


@dataclass(frozen=True)
class StandardCaseResult:
    """Output of :func:`standard_case`.

    ``remaining_times`` maps each query id to its remaining execution time
    ``r_i`` in seconds; ``finish_order`` lists query ids in completion
    order; ``stages`` carries the full schedule (useful for rendering paper
    Figure 1) and is empty when the algorithm ran with
    ``include_stages=False``.
    """

    remaining_times: dict[str, float]
    finish_order: tuple[str, ...]
    stages: tuple[Stage, ...]
    quiescent_time: float = 0.0


def standard_case(
    queries: Sequence[QuerySnapshot],
    processing_rate: float,
    include_stages: bool = True,
) -> StandardCaseResult:
    """Run the Section 2.2 stage algorithm.

    Parameters
    ----------
    queries:
        The running queries (any order; zero-remaining-cost queries are
        allowed and simply finish at time 0).
    processing_rate:
        The constant total processing rate ``C`` in U/s (Assumption 1).
    include_stages:
        Whether to materialise the full per-stage schedule (speeds and
        running sets).  With stages the output is ``Theta(n^2)`` in size;
        without them the algorithm is the paper's ``O(n log n)`` time /
        ``O(n)`` space and only remaining times are produced.

    Returns
    -------
    StandardCaseResult
        Per-query remaining times, the completion order, and (optionally)
        the stage schedule.

    Raises
    ------
    ValueError
        If ``processing_rate`` is not a positive finite number, or any
        query carries a NaN / infinite / negative cost or weight.
    """
    validate_finite(processing_rate, "processing_rate", minimum=0.0, exclusive=True)
    validate_snapshots(queries)
    n = len(queries)
    if n == 0:
        return StandardCaseResult(
            remaining_times={}, finish_order=(), stages=(), quiescent_time=0.0
        )

    # Sort ascending by the c/w ratio; ties broken by query id for determinism.
    order = sorted(queries, key=lambda q: (q.remaining_cost / q.weight, q.query_id))

    # Suffix weight sums: weight_after[k] = sum of weights of order[k:].
    weight_after = [0.0] * (n + 1)
    for k in range(n - 1, -1, -1):
        weight_after[k] = weight_after[k + 1] + order[k].weight

    stages: list[Stage] = []
    remaining_times: dict[str, float] = {}
    prev_ratio = 0.0
    clock = 0.0
    for k, q in enumerate(order):
        ratio = q.remaining_cost / q.weight
        w_k = weight_after[k]
        duration = (ratio - prev_ratio) * w_k / processing_rate
        if include_stages:
            running = order[k:]
            speeds = {
                other.query_id: processing_rate * other.weight / w_k
                for other in running
            }
            stages.append(
                Stage(
                    index=k + 1,
                    duration=duration,
                    start=clock,
                    end=clock + duration,
                    finishing_query=q.query_id,
                    running_query_ids=tuple(o.query_id for o in running),
                    speeds=speeds,
                )
            )
        clock += duration
        remaining_times[q.query_id] = clock
        prev_ratio = ratio

    return StandardCaseResult(
        remaining_times=remaining_times,
        finish_order=tuple(q.query_id for q in order),
        stages=tuple(stages),
        quiescent_time=clock,
    )


def remaining_time_of(
    queries: Sequence[QuerySnapshot],
    processing_rate: float,
    query_id: str,
) -> float:
    """Convenience wrapper: remaining time of one query in the standard case."""
    result = standard_case(queries, processing_rate)
    try:
        return result.remaining_times[query_id]
    except KeyError:
        raise KeyError(f"query {query_id!r} not among the running queries") from None
