"""Data model shared by the progress-indicator algorithms.

The paper measures query work in abstract units called *U*'s, where one U is
"the amount of work required to process one page of bytes" (Section 2).  All
costs and speeds in this package are expressed in U's and U's per second.

The model encodes the paper's three simplifying assumptions (Section 2.1):

1. the RDBMS processes work at a constant total rate ``C`` (U/s),
2. the remaining cost ``c_i`` of each running query is known,
3. each query runs at speed ``s_i = C * w_i / W`` where ``w_i`` is the weight
   of its priority and ``W`` is the sum of the weights of all running queries.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

#: Default priority-to-weight mapping.  Priorities are small integers; the
#: weight doubles per priority level so that a priority-``p+1`` query runs
#: twice as fast as a priority-``p`` query sharing the system with it.
DEFAULT_PRIORITY_WEIGHTS: Mapping[int, float] = {p: float(2**p) for p in range(0, 10)}


def weight_for_priority(priority: int, weights: Mapping[int, float] | None = None) -> float:
    """Return the scheduling weight associated with *priority*.

    Unknown priorities fall back to ``2 ** priority`` so that the default map
    extends naturally.
    """
    table = DEFAULT_PRIORITY_WEIGHTS if weights is None else weights
    if priority in table:
        return table[priority]
    return float(2**priority)


@dataclass(frozen=True)
class QuerySnapshot:
    """Point-in-time view of one query, as seen by a progress indicator.

    Attributes
    ----------
    query_id:
        Stable identifier of the query.
    remaining_cost:
        Estimated remaining work ``c_i`` in U's.
    completed_work:
        Work ``e_i`` already completed, in U's (used by the scheduled
        maintenance problem, Section 3.3).
    weight:
        Scheduling weight ``w_i`` of the query's priority (Assumption 3).
    priority:
        Raw priority level (informational; the algorithms use ``weight``).
    memory_pressure:
        Memory-governance incidents observed so far (0 when the query
        runs without a memory budget).  Informational: lets observers
        attribute estimate inflation to degraded operators.
    """

    query_id: str
    remaining_cost: float
    completed_work: float = 0.0
    weight: float = 1.0
    priority: int = 0
    memory_pressure: int = 0

    def __post_init__(self) -> None:
        if self.remaining_cost < 0:
            raise ValueError(f"remaining_cost must be >= 0, got {self.remaining_cost}")
        if self.completed_work < 0:
            raise ValueError(f"completed_work must be >= 0, got {self.completed_work}")
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")

    @property
    def total_cost(self) -> float:
        """Total cost of the query: completed plus remaining work."""
        return self.completed_work + self.remaining_cost

    def with_remaining(self, remaining_cost: float) -> "QuerySnapshot":
        """Return a copy with a new remaining cost (completed work follows)."""
        done = self.total_cost - remaining_cost
        return replace(self, remaining_cost=remaining_cost, completed_work=max(done, 0.0))


@dataclass(frozen=True)
class SystemSnapshot:
    """Point-in-time view of the whole RDBMS, input to the multi-query PI.

    Attributes
    ----------
    running:
        Queries currently executing, in arbitrary order.
    queued:
        Queries waiting in the admission queue, *in FIFO admission order*
        (Section 2.3).  They consume no capacity until admitted.
    processing_rate:
        The constant total work rate ``C`` in U/s (Assumption 1).
    multiprogramming_limit:
        Maximum number of concurrently running queries; ``None`` means
        unlimited.  When a running query finishes, the head of ``queued`` is
        admitted.
    time:
        The wall-clock (or virtual) time the snapshot was taken at, in
        seconds.  Estimates produced from the snapshot are relative to it.
    """

    running: tuple[QuerySnapshot, ...]
    queued: tuple[QuerySnapshot, ...] = ()
    processing_rate: float = 1.0
    multiprogramming_limit: int | None = None
    time: float = 0.0

    def __post_init__(self) -> None:
        if self.processing_rate <= 0:
            raise ValueError(f"processing_rate must be > 0, got {self.processing_rate}")
        if self.multiprogramming_limit is not None and self.multiprogramming_limit < 1:
            raise ValueError("multiprogramming_limit must be >= 1 or None")
        ids = [q.query_id for q in self.running] + [q.query_id for q in self.queued]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate query_id in snapshot")

    @classmethod
    def of(
        cls,
        running: Sequence[QuerySnapshot],
        queued: Sequence[QuerySnapshot] = (),
        processing_rate: float = 1.0,
        multiprogramming_limit: int | None = None,
        time: float = 0.0,
    ) -> "SystemSnapshot":
        """Build a snapshot from any sequences (convenience constructor)."""
        return cls(
            running=tuple(running),
            queued=tuple(queued),
            processing_rate=processing_rate,
            multiprogramming_limit=multiprogramming_limit,
            time=time,
        )

    @property
    def total_weight(self) -> float:
        """Sum ``W`` of the weights of all running queries."""
        return sum(q.weight for q in self.running)

    @property
    def total_remaining_cost(self) -> float:
        """Total outstanding work of running plus queued queries, in U's."""
        return sum(q.remaining_cost for q in self.running) + sum(
            q.remaining_cost for q in self.queued
        )

    def speed_of(self, query_id: str) -> float:
        """Current execution speed ``s_i = C * w_i / W`` of a running query."""
        w = self.total_weight
        for q in self.running:
            if q.query_id == query_id:
                return self.processing_rate * q.weight / w
        raise KeyError(f"query {query_id!r} is not running")

    def find(self, query_id: str) -> QuerySnapshot:
        """Return the snapshot of *query_id*, whether running or queued."""
        for q in self.running:
            if q.query_id == query_id:
                return q
        for q in self.queued:
            if q.query_id == query_id:
                return q
        raise KeyError(f"query {query_id!r} not in snapshot")

    def without(self, query_id: str) -> "SystemSnapshot":
        """Return a snapshot with *query_id* removed (used by what-if tools)."""
        self.find(query_id)  # raise KeyError for unknown ids
        return replace(
            self,
            running=tuple(q for q in self.running if q.query_id != query_id),
            queued=tuple(q for q in self.queued if q.query_id != query_id),
        )


