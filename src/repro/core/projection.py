"""Event-driven forward projection of system execution.

This generalises the Section 2.2 stage algorithm in two directions the paper
needs:

* **Non-empty admission queues** (Section 2.3): queries waiting in the
  admission queue are "known" future work.  When a running query finishes and
  a multiprogramming slot frees up, the head of the queue is admitted.
* **Predicted future arrivals** (Section 2.4): every ``1 / lambda`` seconds a
  virtual query with the average cost ``c̄`` and average priority weight
  ``w̄`` is assumed to arrive, and it competes for capacity like any real
  query.

The projection simulates forward under the paper's three assumptions
(constant total rate ``C``, known remaining costs, speed proportional to
weight) and records the predicted finish time of every *real* query.  It
terminates once all real queries have finished; virtual queries beyond that
point are irrelevant.

With an empty queue and no forecast the projection is equivalent to
:func:`repro.core.standard_case.standard_case` (a property the test suite
verifies).

Two interchangeable *backends* drive the active set:

* ``"incremental"`` (the default) keeps the running queries in a shared
  :class:`~repro.core.incremental.IncrementalSchedule`: each event costs
  ``O(log n)`` instead of the reference engine's ``O(n)``, so a whole
  projection is ``O((n + events) log n)``.
* ``"reference"`` is the direct event loop matching the paper's
  derivation step for step -- ``O(n)`` per event.  It is kept verbatim
  as the oracle for the differential test suite.

Both produce the same estimates (within floating-point slack; the
differential suite asserts agreement to 1e-9) and each is individually
deterministic: same inputs, same backend, bit-identical outputs.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.forecast import WorkloadForecast
from repro.core.incremental import IncrementalSchedule
from repro.core.model import QuerySnapshot
from repro.core.validation import validate_finite, validate_snapshots

#: Recognised projection backends.
BACKENDS = ("incremental", "reference")

_default_backend = "incremental"


def default_backend() -> str:
    """The backend used when :func:`project` is called without one."""
    return _default_backend


def set_default_backend(backend: str) -> None:
    """Set the process-wide default projection backend.

    The incremental backend is the default; switching to ``"reference"``
    routes every PI in the process through the original full-recompute
    event loop (useful for differential debugging and A/B timing).
    """
    global _default_backend
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    _default_backend = backend


@contextmanager
def use_backend(backend: str):
    """Context manager form of :func:`set_default_backend`."""
    previous = _default_backend
    set_default_backend(backend)
    try:
        yield
    finally:
        set_default_backend(previous)

#: Numerical slack used when comparing event times.
_EPS = 1e-12

#: Hard caps protecting against unstable forecasts (``lambda * c̄ > C``):
#: beyond this many concurrently active virtual queries, further virtual
#: arrivals are dropped (the projection degrades gracefully instead of
#: livelocking).
_MAX_VIRTUAL_ACTIVE = 512
_MAX_EVENTS = 1_000_000


class ProjectionError(RuntimeError):
    """Raised when a projection exceeds its event budget or stalls."""


@dataclass
class _Job:
    query_id: str
    remaining: float
    weight: float
    virtual: bool


@dataclass
class _Waiting:
    query_id: str
    cost: float
    weight: float
    virtual: bool
    arrived_at: float


class _ReferenceEngine:
    """Active set as a flat job list: ``O(n)`` per event (the oracle).

    This is the paper-faithful loop kept verbatim for differential
    testing: every event recomputes the minimum ``c/w`` ratio and charges
    work to every active job individually.
    """

    def __init__(self, processing_rate: float) -> None:
        self._rate = processing_rate
        self._jobs: list[_Job] = []

    def __len__(self) -> int:
        return len(self._jobs)

    def virtual_count(self) -> int:
        return sum(1 for j in self._jobs if j.virtual)

    def add(self, query_id: str, cost: float, weight: float, virtual: bool) -> None:
        self._jobs.append(_Job(query_id, cost, weight, virtual))

    def finish_dt(self) -> float:
        """Time until the earliest active completion, or ``inf``."""
        if not self._jobs:
            return float("inf")
        total = sum(j.weight for j in self._jobs)
        if total <= 0:  # pragma: no cover - weights are validated > 0
            return float("inf")
        min_ratio = min(j.remaining / j.weight for j in self._jobs)
        return max(min_ratio * total / self._rate, 0.0)

    def advance(self, dt: float, clock_after: float) -> list[tuple[str, bool]]:
        """Charge *dt* seconds of work; retire and return finished jobs."""
        total = sum(j.weight for j in self._jobs)
        if dt > 0 and self._jobs and total > 0:
            for j in self._jobs:
                j.remaining -= self._rate * (j.weight / total) * dt
        slack = _EPS * max(1.0, clock_after)
        done = [j for j in self._jobs if j.remaining <= slack]
        if done:
            done_ids = {id(j) for j in done}
            self._jobs = [j for j in self._jobs if id(j) not in done_ids]
        return [(j.query_id, j.virtual) for j in done]


class _IncrementalEngine:
    """Active set as a shared schedule: ``O(log n)`` per event."""

    def __init__(self, processing_rate: float) -> None:
        self._schedule = IncrementalSchedule(processing_rate)
        self._virtual_ids: set[str] = set()

    def __len__(self) -> int:
        return len(self._schedule)

    def virtual_count(self) -> int:
        return len(self._virtual_ids)

    def add(self, query_id: str, cost: float, weight: float, virtual: bool) -> None:
        self._schedule.add(QuerySnapshot(query_id, cost, weight=weight))
        if virtual:
            self._virtual_ids.add(query_id)

    def finish_dt(self) -> float:
        head = self._schedule.next_finish()
        return head[0] if head is not None else float("inf")

    def advance(self, dt: float, clock_after: float) -> list[tuple[str, bool]]:
        del clock_after  # completion slack is the schedule's concern
        out = []
        for _, qid in self._schedule.advance(dt):
            virtual = qid in self._virtual_ids
            self._virtual_ids.discard(qid)
            out.append((qid, virtual))
        return out


_ENGINES = {
    "incremental": _IncrementalEngine,
    "reference": _ReferenceEngine,
}


@dataclass(frozen=True)
class ProjectedQuery:
    """Projection output for one real query."""

    query_id: str
    #: Predicted time until the query finishes, seconds from the snapshot.
    finish_time: float
    #: Predicted time the query spends waiting in the admission queue
    #: (from its arrival -- or the snapshot, for already-queued queries --
    #: until it starts running).
    queue_wait: float


@dataclass(frozen=True)
class ProjectionResult:
    """Output of :func:`project`."""

    queries: dict[str, ProjectedQuery]
    #: Time at which the last real query finishes.
    quiescent_time: float

    def remaining_time(self, query_id: str) -> float:
        """Predicted remaining execution time of *query_id*, in seconds."""
        try:
            return self.queries[query_id].finish_time
        except KeyError:
            raise KeyError(f"query {query_id!r} not in projection") from None

    @property
    def remaining_times(self) -> dict[str, float]:
        """Mapping of query id to predicted remaining time, in seconds."""
        return {qid: p.finish_time for qid, p in self.queries.items()}


def _forecast_arrivals(
    forecast: WorkloadForecast | None, start: float
) -> Iterator[tuple[float, float, float]]:
    """Yield ``(arrival_time, cost, weight)`` for predicted future queries.

    Per Section 2.4, one virtual query of cost ``c̄`` and weight ``w̄``
    arrives every ``1 / lambda`` seconds, starting one inter-arrival time
    after the snapshot.
    """
    if forecast is None or forecast.arrival_rate <= 0 or forecast.average_cost <= 0:
        return
    interval = 1.0 / forecast.arrival_rate
    t = start + interval
    while forecast.horizon is None or t <= forecast.horizon:
        yield (t, forecast.average_cost, forecast.average_weight)
        t += interval


def project(
    running: Sequence[QuerySnapshot],
    queued: Sequence[QuerySnapshot] = (),
    processing_rate: float = 1.0,
    multiprogramming_limit: int | None = None,
    forecast: WorkloadForecast | None = None,
    extra_arrivals: Iterable[tuple[float, QuerySnapshot]] = (),
    backend: str | None = None,
) -> ProjectionResult:
    """Project the execution of the current workload forward in time.

    Parameters
    ----------
    running:
        Queries currently executing.
    queued:
        Queries in the admission queue, FIFO order (Section 2.3).
    processing_rate:
        Total work rate ``C`` in U/s.
    multiprogramming_limit:
        Maximum number of concurrent queries, or ``None`` for unlimited.  If
        the system is transiently over the limit no admissions occur until
        enough queries finish.
    forecast:
        Optional prediction of future arrivals (Section 2.4).
    extra_arrivals:
        Known one-off future arrivals as ``(time, snapshot)`` pairs -- used
        by workload-management what-if analyses.
    backend:
        ``"incremental"`` (shared-schedule engine, ``O(log n)`` per
        event), ``"reference"`` (the original ``O(n)``-per-event loop),
        or ``None`` to use the process default (see
        :func:`set_default_backend`).

    Returns
    -------
    ProjectionResult
        Predicted finish time (and queue wait) of every real query: every
        query in ``running``, ``queued`` or ``extra_arrivals``.

    Raises
    ------
    ValueError
        If ``processing_rate`` is not a positive finite number, or any
        query (running, queued or in ``extra_arrivals``) carries a NaN /
        infinite / negative cost or weight.
    """
    validate_finite(processing_rate, "processing_rate", minimum=0.0, exclusive=True)
    validate_snapshots(running, where="running")
    validate_snapshots(queued, where="queued")
    extra_arrivals = tuple(extra_arrivals)
    for t, q in extra_arrivals:
        validate_finite(
            t, f"arrival time of query {q.query_id!r} (in extra_arrivals)",
            minimum=0.0,
        )
    validate_snapshots((q for _, q in extra_arrivals), where="extra_arrivals")
    mpl = multiprogramming_limit
    if backend is None:
        backend = _default_backend
    try:
        engine = _ENGINES[backend](processing_rate)
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        ) from None

    from repro.obs.runtime import current as _current_obs

    obs = _current_obs()
    if obs is not None:
        obs.metrics.counter(f"projection.backend.{backend}").inc()

    for q in running:
        engine.add(q.query_id, q.remaining_cost, q.weight, virtual=False)
    waiting: list[_Waiting] = [
        _Waiting(q.query_id, q.remaining_cost, q.weight, virtual=False, arrived_at=0.0)
        for q in queued
    ]

    pending = sorted(
        ((t, q.query_id, q.remaining_cost, q.weight) for t, q in extra_arrivals),
        key=lambda item: item[0],
    )
    pending_idx = 0
    virtual_stream = _forecast_arrivals(forecast, start=0.0)
    next_virtual = next(virtual_stream, None)
    virtual_seq = 0

    real_outstanding = len(running) + len(waiting) + len(pending)
    finish_times: dict[str, float] = {}
    started_at: dict[str, float] = {q.query_id: 0.0 for q in running}
    arrived_at: dict[str, float] = {q.query_id: 0.0 for q in running}
    arrived_at.update({w.query_id: 0.0 for w in waiting})

    clock = 0.0
    events = 0

    def admit() -> None:
        """Move queued jobs into the active set while slots are available."""
        while waiting and (mpl is None or len(engine) < mpl):
            w = waiting.pop(0)
            engine.add(w.query_id, w.cost, w.weight, w.virtual)
            if not w.virtual:
                started_at[w.query_id] = clock

    admit()

    while real_outstanding > 0:
        events += 1
        if events > _MAX_EVENTS:
            raise ProjectionError(
                f"projection exceeded {_MAX_EVENTS} events; "
                "forecast load is likely far above capacity"
            )

        # Earliest completion among active jobs.
        finish_dt = engine.finish_dt()

        # Next arrival (known one-off or virtual forecast).
        arrival_t = float("inf")
        if pending_idx < len(pending):
            arrival_t = pending[pending_idx][0]
        if next_virtual is not None:
            arrival_t = min(arrival_t, next_virtual[0])
        arrival_dt = arrival_t - clock if arrival_t < float("inf") else float("inf")

        if finish_dt == float("inf") and arrival_dt == float("inf"):
            raise ProjectionError("projection stalled: outstanding work cannot run")

        dt = min(finish_dt, arrival_dt)
        clock += dt
        for qid, virtual in engine.advance(dt, clock):
            if not virtual:
                finish_times[qid] = clock
                real_outstanding -= 1

        if arrival_dt <= dt:
            # Arrival event: enqueue the arriving query, then try to admit.
            if pending_idx < len(pending) and pending[pending_idx][0] <= arrival_t:
                _, qid, cost, weight = pending[pending_idx]
                pending_idx += 1
                waiting.append(_Waiting(qid, cost, weight, False, arrived_at=clock))
                arrived_at[qid] = clock
            elif next_virtual is not None:
                _, cost, weight = next_virtual
                n_virtual = engine.virtual_count() + sum(
                    1 for w in waiting if w.virtual
                )
                if n_virtual < _MAX_VIRTUAL_ACTIVE:
                    virtual_seq += 1
                    waiting.append(
                        _Waiting(f"__virtual_{virtual_seq}", cost, weight, True, clock)
                    )
                next_virtual = next(virtual_stream, None)
        admit()

    projected = {
        qid: ProjectedQuery(
            query_id=qid,
            finish_time=t_fin,
            queue_wait=max(started_at.get(qid, 0.0) - arrived_at.get(qid, 0.0), 0.0),
        )
        for qid, t_fin in finish_times.items()
    }
    quiescent = max(finish_times.values(), default=0.0)
    if obs is not None:
        # virtual_time is None: a projection is a pure algorithm call with
        # no simulation clock of its own (it starts at a relative t=0).
        obs.metrics.histogram("projection.events").observe(events)
        obs.tracer.emit(
            "projection.run",
            None,
            backend=backend,
            events=events,
            queries=len(projected),
            quiescent_time=quiescent,
        )
    return ProjectionResult(queries=projected, quiescent_time=quiescent)
