"""Synthetic TPC-R-style data matching the paper's Table 1 (scaled).

The paper's schema (Section 5.1):

* ``lineitem (partkey, quantity, extendedprice, ...)`` -- 24 M tuples in
  the paper; scaled here by ``scale`` (default 1/1000 => 24 K tuples).
* ``part_i (partkey, retailprice, ...)`` for ``i >= 1`` -- ``10 * N_i``
  tuples each, with distinct ``partkey`` values drawn uniformly from the
  lineitem key range; on average each part tuple matches ~30 lineitem
  tuples on ``partkey``.

An index is built on ``lineitem.partkey``, exactly as in the paper, so the
planner picks an index scan for the correlated subquery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.engine.database import Database

#: Paper-scale constants (Table 1).
PAPER_LINEITEM_TUPLES = 24_000_000
MATCHES_PER_PART = 30
PART_TUPLES_PER_N = 10


@dataclass(frozen=True)
class TpcrConfig:
    """Generator parameters.

    ``scale = 1.0`` reproduces the paper's 24 M-row lineitem; the default
    keeps experiments laptop-sized while preserving every ratio that
    matters (matches per part tuple, part size ``10 * N_i``).
    """

    scale: float = 1 / 1000
    matches_per_part: int = MATCHES_PER_PART
    page_capacity: int = 50
    seed: int = 0

    @property
    def lineitem_tuples(self) -> int:
        """Scaled lineitem row count."""
        return max(int(PAPER_LINEITEM_TUPLES * self.scale), self.matches_per_part)

    @property
    def distinct_partkeys(self) -> int:
        """Number of distinct partkey values in lineitem."""
        return max(self.lineitem_tuples // self.matches_per_part, 1)


@dataclass
class TpcrDataset:
    """A generated database plus its summary (the Table 1 reproduction)."""

    db: Database
    config: TpcrConfig
    part_sizes: dict[str, int]

    def table_summary(self) -> list[tuple[str, int, int]]:
        """Rows of (table, tuple count, page count) -- paper Table 1."""
        rows = []
        for table in self.db.catalog.tables():
            rows.append(
                (table.name, table.heap.row_count, table.heap.page_count)
            )
        return rows


#: DDL of the ``lineitem`` table (shared with the sharded loader, which
#: must replay the exact same statements on every node).
LINEITEM_DDL = (
    "CREATE TABLE lineitem ("
    "partkey INT NOT NULL, quantity FLOAT NOT NULL, "
    "extendedprice FLOAT NOT NULL)"
)
LINEITEM_INDEX_DDL = "CREATE INDEX lineitem_partkey ON lineitem (partkey)"


def part_table_ddl(i: int) -> str:
    """DDL of the ``part_i`` table."""
    return (
        f"CREATE TABLE part_{i} "
        "(partkey INT NOT NULL, retailprice FLOAT NOT NULL)"
    )


def lineitem_rows(config: TpcrConfig, rng: random.Random) -> list[tuple]:
    """The generated ``lineitem`` rows, in insertion order.

    Factored out of :func:`build_lineitem` so single-node and sharded
    builds draw the identical row stream from the same RNG state.
    """
    rows = []
    keys = config.distinct_partkeys
    per_key = config.matches_per_part
    for pk in range(1, keys + 1):
        for _ in range(per_key):
            quantity = rng.uniform(1.0, 50.0)
            unit_price = rng.uniform(900.0, 1100.0)
            rows.append((pk, quantity, quantity * unit_price))
    return rows


def part_rows(
    i: int, n_i: int, config: TpcrConfig, rng: random.Random
) -> list[tuple]:
    """The generated ``part_i`` rows, in insertion order."""
    count = min(PART_TUPLES_PER_N * n_i, config.distinct_partkeys)
    keys = rng.sample(range(1, config.distinct_partkeys + 1), count)
    return [(pk, rng.uniform(900.0, 1900.0)) for pk in keys]


def build_lineitem(db: Database, config: TpcrConfig, rng: random.Random) -> None:
    """Create and populate the ``lineitem`` table plus its partkey index."""
    db.execute(LINEITEM_DDL)
    db.insert_rows("lineitem", lineitem_rows(config, rng))
    db.execute(LINEITEM_INDEX_DDL)


def add_part_table(
    db: Database,
    i: int,
    n_i: int,
    config: TpcrConfig,
    rng: random.Random,
) -> str:
    """Create ``part_i`` with ``10 * N_i`` distinct-partkey tuples.

    ``retailprice`` is drawn around the per-unit lineitem price so the
    paper's query ("selling for 25% below suggested retail price") selects
    a nontrivial, size-independent fraction of parts.
    """
    name = f"part_{i}"
    db.execute(part_table_ddl(i))
    db.insert_rows(name, part_rows(i, n_i, config, rng))
    return name


def generate(
    config: TpcrConfig = TpcrConfig(),
    part_sizes: dict[int, int] | None = None,
) -> TpcrDataset:
    """Build a full dataset: lineitem plus one ``part_i`` per entry.

    ``part_sizes`` maps the part-table index ``i`` to its ``N_i``; the
    default builds three small tables.
    """
    rng = random.Random(config.seed)
    db = Database(page_capacity=config.page_capacity)
    build_lineitem(db, config, rng)
    sizes = part_sizes if part_sizes is not None else {1: 5, 2: 2, 3: 3}
    created: dict[str, int] = {}
    for i, n in sorted(sizes.items()):
        name = add_part_table(db, i, n, config, rng)
        created[name] = n
    db.analyze()
    return TpcrDataset(db=db, config=config, part_sizes=created)
