"""The paper's query templates (Section 5.1).

``Q_i`` finds parts selling on average 25% below suggested retail price --
a nested query whose correlated subquery plans to an index scan on
``lineitem``, the exact shape the paper instruments:

    select * from part_i p where p.retailprice * 0.75 >
        (select sum(l.extendedprice) / sum(l.quantity)
         from lineitem l where l.partkey = p.partkey);

A few extra templates exercise other plan shapes (join, aggregate, sort)
for the engine-mode experiments.
"""

from __future__ import annotations

from repro.engine.database import Database
from repro.engine.executor import QueryExecution
from repro.sim.jobs import EngineJob


def paper_query(i: int) -> str:
    """The paper's ``Q_i`` against ``part_i``."""
    if i < 1:
        raise ValueError("part table index starts at 1")
    return (
        f"select * from part_{i} p where p.retailprice * 0.75 > "
        "(select sum(l.extendedprice) / sum(l.quantity) "
        "from lineitem l where l.partkey = p.partkey)"
    )


def join_query(i: int) -> str:
    """An equi-join between ``part_i`` and lineitem with an aggregate."""
    if i < 1:
        raise ValueError("part table index starts at 1")
    return (
        f"select p.partkey, sum(l.extendedprice) revenue "
        f"from part_{i} p join lineitem l on l.partkey = p.partkey "
        "group by p.partkey order by revenue desc limit 10"
    )


def scan_query(i: int) -> str:
    """A filtered scan with a sort."""
    if i < 1:
        raise ValueError("part table index starts at 1")
    return (
        f"select partkey, retailprice from part_{i} "
        "where retailprice > 1200 order by retailprice desc"
    )


def prepare_paper_query(
    db: Database, i: int, checkpoint_interval: float | None = None
) -> QueryExecution:
    """Plan ``Q_i`` for cooperative execution."""
    return db.prepare(paper_query(i), checkpoint_interval=checkpoint_interval)


def engine_job(
    db: Database,
    query_id: str,
    i: int,
    priority: int = 0,
    checkpoint_interval: float | None = None,
    deadline: float | None = None,
) -> EngineJob:
    """Wrap ``Q_i`` as a simulator job (estimated costs, real execution).

    The job carries a prepare factory, so the retry layer can replan the
    same SQL after a crash -- resuming from the last work-preserving
    checkpoint when ``checkpoint_interval`` is set.
    """

    def prepare() -> QueryExecution:
        return prepare_paper_query(db, i, checkpoint_interval)

    return EngineJob(
        query_id=query_id,
        execution=prepare(),
        priority=priority,
        deadline=deadline,
        prepare=prepare,
    )
