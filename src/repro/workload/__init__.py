"""Workload generation: data, query templates and experiment workloads.

* :mod:`repro.workload.zipf` -- the Zipf(a) size distribution all the
  paper's experiments draw query costs from.
* :mod:`repro.workload.tpcr` -- synthetic TPC-R-style ``lineitem`` /
  ``part_i`` data matching paper Table 1 (scaled).
* :mod:`repro.workload.queries` -- the paper's correlated-subquery template
  ``Q_i`` and friends, as SQL against :mod:`repro.engine`.
* :mod:`repro.workload.suite` -- builders for the MCQ / NAQ / SCQ /
  maintenance experiment workloads.
"""

from repro.workload.zipf import ZipfSampler, zipf_probabilities

__all__ = [
    "ZipfSampler",
    "zipf_probabilities",
]
