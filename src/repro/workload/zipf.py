"""Zipfian size distributions (paper Sections 5.2 and 5.3).

Every experiment in the paper draws the part-table sizes ``N_i`` from a
Zipf distribution: rank ``k`` (of ``K`` possible sizes) has probability
proportional to ``1 / k^a``.  The MCQ experiment uses ``a = 1.2``; the SCQ
and maintenance experiments use ``a = 2.2``.

The maintenance experiment additionally relies on the paper's observation
that the queries *running* at a random inspection time are size-biased:
``P(N = m) ∝ (1/m^a) * m = 1/m^(a-1)`` -- i.e. Zipf with parameter ``a - 1``.
:meth:`ZipfSampler.size_biased` provides that variant directly.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Sequence


def zipf_probabilities(a: float, ranks: int) -> list[float]:
    """Normalised Zipf(a) probabilities for ranks ``1..ranks``.

    Raises
    ------
    ValueError
        For a non-positive number of ranks.  (Any real ``a`` is allowed;
        ``a <= 0`` simply biases towards larger ranks.)
    """
    if ranks < 1:
        raise ValueError("ranks must be >= 1")
    weights = [1.0 / (k**a) for k in range(1, ranks + 1)]
    total = sum(weights)
    return [w / total for w in weights]


class ZipfSampler:
    """Seeded sampler of Zipf-distributed values over a rank->value mapping.

    Parameters
    ----------
    a:
        Zipf exponent.
    values:
        The value attached to each rank; rank 1 (most probable) maps to
        ``values[0]``.  For the paper's workloads these are the candidate
        part-table sizes ``N``, typically ``1..K``.
    seed:
        Seed or shared :class:`random.Random`.
    """

    def __init__(
        self,
        a: float,
        values: Sequence[float],
        seed: int | random.Random = 0,
    ) -> None:
        if not values:
            raise ValueError("values must be non-empty")
        self.a = a
        self.values = list(values)
        probs = zipf_probabilities(a, len(self.values))
        self._cdf = list(itertools.accumulate(probs))
        self._cdf[-1] = 1.0  # guard against float drift
        self._rng = seed if isinstance(seed, random.Random) else random.Random(seed)

    @classmethod
    def over_range(
        cls, a: float, max_rank: int, seed: int | random.Random = 0
    ) -> "ZipfSampler":
        """Sampler over the integer sizes ``1..max_rank``."""
        return cls(a, list(range(1, max_rank + 1)), seed)

    def probabilities(self) -> list[float]:
        """Per-rank probabilities, in ``values`` order."""
        probs = [self._cdf[0]]
        probs.extend(
            self._cdf[k] - self._cdf[k - 1] for k in range(1, len(self._cdf))
        )
        return probs

    def sample(self) -> float:
        """Draw one value."""
        u = self._rng.random()
        idx = bisect.bisect_left(self._cdf, u)
        return self.values[min(idx, len(self.values) - 1)]

    def sample_many(self, n: int) -> list[float]:
        """Draw *n* values."""
        if n < 0:
            raise ValueError("n must be >= 0")
        return [self.sample() for _ in range(n)]

    def size_biased(self) -> "ZipfSampler":
        """The size-biased variant: Zipf with exponent ``a - 1``.

        This is the distribution of the sizes of queries *observed running*
        at a random time (paper Section 5.3.1): larger queries run longer
        and are proportionally more likely to be caught in flight.
        """
        return ZipfSampler(self.a - 1.0, self.values, self._rng)

    def mean(self) -> float:
        """Expected value of one draw."""
        return sum(p * v for p, v in zip(self.probabilities(), self.values))
