"""Column vectors and late-materialized chunks.

The columnar storage layer (:mod:`repro.engine.storage`) keeps one
:class:`ColumnVector` per column per page; the batch execution path moves
:class:`Chunk` objects -- a set of column vectors plus a *selection* that
names which positions are live -- instead of lists of row tuples.  Filters
narrow the selection without touching the data; row tuples are built only
where an operator genuinely needs whole rows (pipeline breakers and the
query output), via :meth:`Chunk.tuples`.

A :class:`ColumnVector` is a plain ``list`` subclass carrying two pieces of
metadata maintained incrementally on append: a type *kind* (``"int"``,
``"float"``, ``"num"`` for a mix of the two, ``"other"``, or ``"empty"``)
and a null flag.  Aggregates use the metadata to take C-speed fast paths
over provably-clean columns while keeping results bit-identical to row
mode (see :meth:`_AggState.update_batch`).

numpy is a **soft, optional** dependency used only to accelerate gathers
(``take``) on clean int/float columns.  It can never change results: int64
and float64 round-trip Python ints/floats exactly, values outside int64
range make the conversion raise and permanently disable the mirror for
that vector, and setting ``REPRO_ENGINE_NUMPY=0`` (or numpy being absent)
forces the pure-python path, which runs the identical differential suite.
"""

from __future__ import annotations

import os
from typing import Iterator, Optional, Sequence, Union


def _load_numpy():
    """Import numpy unless disabled via ``REPRO_ENGINE_NUMPY=0``."""
    if os.environ.get("REPRO_ENGINE_NUMPY", "1").lower() in (
        "0", "false", "no", "off",
    ):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - depends on environment
        return None
    return numpy


_np = _load_numpy()

#: Minimum selection size before a numpy gather beats a list comprehension.
_NP_GATHER_MIN = 64


def numpy_enabled() -> bool:
    """Whether the optional numpy acceleration is active."""
    return _np is not None


# Kind lattice: merging two observations.  bool is deliberately "other"
# (it is not numeric to the engine's type rules despite being an int
# subclass), and int+float widens to "num".
_KIND_MERGE = {
    ("int", "float"): "num",
    ("float", "int"): "num",
    ("int", "num"): "num",
    ("num", "int"): "num",
    ("float", "num"): "num",
    ("num", "float"): "num",
}


class ColumnVector(list):
    """One column's values with incrementally-maintained type metadata."""

    __slots__ = ("kind", "has_null", "_np_mirror")

    def __init__(self, values: Sequence = ()) -> None:
        super().__init__(values)
        self.kind = "empty"
        self.has_null = False
        self._np_mirror = None
        for value in self:
            self._classify(value)

    @classmethod
    def with_meta(
        cls, data: Sequence, kind: str, has_null: bool
    ) -> "ColumnVector":
        """Build a vector from *data* with metadata already known.

        Used for subsets of an existing vector: the parent's metadata is a
        sound (conservative) description of any subset.
        """
        out = cls.__new__(cls)
        list.__init__(out, data)
        out.kind = kind
        out.has_null = has_null
        out._np_mirror = None
        return out

    def _classify(self, value) -> None:
        if value is None:
            self.has_null = True
            return
        tp = type(value)
        if tp is int:
            new = "int"
        elif tp is float:
            new = "float"
        else:
            new = "other"
        kind = self.kind
        if kind == new:
            return
        if kind == "empty":
            self.kind = new
        elif kind == "other" or new == "other":
            self.kind = "other"
        else:
            self.kind = _KIND_MERGE.get((kind, new), "other")

    @property
    def is_clean_numeric(self) -> bool:
        """All values are non-null ints/floats (aggregate fast paths)."""
        return not self.has_null and self.kind in ("int", "float", "num")

    def push(self, value) -> None:
        """Append one value, maintaining metadata."""
        self.append(value)
        self._np_mirror = None
        self._classify(value)

    def _mirror(self):
        """A cached numpy mirror of this vector, or ``None``.

        The conversion is attempted once: values a C int64 cannot hold (or
        a vector numpy rejects for any reason) permanently disable the
        mirror so results can never silently change.
        """
        mirror = self._np_mirror
        if mirror is None:
            if _np is None or self.kind not in ("int", "float"):
                self._np_mirror = False
                return None
            try:
                dtype = _np.int64 if self.kind == "int" else _np.float64
                mirror = self._np_mirror = _np.asarray(self, dtype=dtype)
            except (OverflowError, ValueError, TypeError):
                self._np_mirror = False
                return None
        elif mirror is False:
            return None
        return mirror

    def take(self, sel: Union[range, Sequence[int]]) -> "ColumnVector":
        """Gather the positions in *sel* into a new vector.

        Metadata carries over (a subset of a clean column is clean).
        Contiguous range selections use a C-level slice; large list
        selections on clean int/float columns use the numpy mirror when
        available; everything else falls back to a list comprehension.
        """
        if type(sel) is range:
            if sel.step == 1:
                data = list.__getitem__(self, slice(sel.start, sel.stop))
            else:  # pragma: no cover - ranges here are always step 1
                data = [self[i] for i in sel]
        else:
            data = None
            if (
                len(sel) >= _NP_GATHER_MIN
                and not self.has_null
                and self.kind in ("int", "float")
            ):
                mirror = self._mirror()
                if mirror is not None:
                    data = mirror[sel].tolist()
            if data is None:
                data = [self[i] for i in sel]
        return ColumnVector.with_meta(data, self.kind, self.has_null)


def take_values(column: list, idxs: Union[range, Sequence[int]]) -> list:
    """Gather *idxs* from any column-like list, preserving metadata."""
    if type(column) is ColumnVector:
        return column.take(idxs)
    return [column[i] for i in idxs]


class Chunk:
    """A batch of rows in columnar form: column vectors plus a selection.

    ``sel`` is ``None`` (every position of the columns is live, in order),
    a ``range`` (a contiguous slice -- how scans split oversized pages), or
    a list of positions (how filters narrow a chunk).  Chunks behave as a
    sequence of row tuples (``len``, iteration, indexing, slicing), but the
    tuples are only built on first demand (:meth:`tuples`) and the result
    is cached, so operators that never look at whole rows never pay for
    them.

    A chunk must have at least one column; zero-arity rows stay on the
    plain ``list[tuple]`` batch representation.
    """

    __slots__ = ("columns", "sel", "_tuples", "source")

    def __init__(
        self,
        columns: Sequence[list],
        sel: Optional[Union[range, list]] = None,
        source=None,
    ) -> None:
        if not columns:
            raise ValueError("a Chunk requires at least one column")
        self.columns = columns
        self.sel = sel
        self._tuples: Optional[list] = None
        #: For whole-page chunks: the storage page, whose lazily-cached
        #: ``rows`` materialization is shared instead of re-zipping the
        #: columns on every scan (row mode shares the same cache).
        self.source = source

    def __len__(self) -> int:
        sel = self.sel
        return len(self.columns[0]) if sel is None else len(sel)

    def column(self, idx: int) -> list:
        """Column *idx* restricted to the selection.

        With no selection this is the stored column itself (zero copy);
        callers must not mutate it.
        """
        col = self.columns[idx]
        sel = self.sel
        if sel is None:
            return col
        return take_values(col, sel)

    def take(self, positions: Sequence[int]) -> "Chunk":
        """A sub-chunk of the given *relative* positions (filter narrowing).

        Selections compose without touching the column data.
        """
        sel = self.sel
        if sel is None:
            return Chunk(self.columns, list(positions))
        return Chunk(self.columns, [sel[i] for i in positions])

    def tuples(self) -> list:
        """The selected rows as tuples (cached after the first call)."""
        out = self._tuples
        if out is None:
            sel = self.sel
            if sel is None:
                if self.source is not None:
                    out = self._tuples = self.source.rows
                    return out
                cols = self.columns
            else:
                cols = [take_values(col, sel) for col in self.columns]
            out = self._tuples = list(zip(*cols))
        return out

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.tuples())

    def __getitem__(self, item):
        if isinstance(item, slice):
            sel = self.sel
            if sel is None:
                sel = range(len(self.columns[0]))
            return Chunk(self.columns, sel[item])
        return self.tuples()[item]
