"""Per-query progress tracking: the single-query machinery of [11, 12].

A query starts with the optimizer's cost estimate (in U's).  As execution
proceeds the tracker *refines* the total-cost estimate by extrapolating
from the plan's **driver scan** -- the outermost sequential scan, whose
page progress tells us which fraction of the input has been consumed.
Because the work counter includes everything charged downstream (index
probes of a correlated subquery, spills, ...), the extrapolation

    ``refined_total = work_done / driver_fraction``

automatically corrects both cardinality and per-probe cost errors, exactly
the kind of mid-flight refinement the paper's PIs rely on.  Early in the
run (driver fraction below ``blend_until``) the optimizer estimate and the
extrapolation are blended linearly to avoid wild small-sample swings.

Plans without a sequential scan (pure index lookups) fall back to the
optimizer estimate, floored at the work already done.

**Batch (vectorized) execution.**  In batch mode work is charged in
batch-sized spikes: a single root pull can consume many driver pages at
once, and the executor banks the overshoot as *debt* that later budgets
repay.  Charged-but-unpaid work is still remaining work from the
scheduler's point of view, so the tracker accepts an
``outstanding_debt`` supplier and adds it to the remaining-cost
estimate (and subtracts it from the completed fraction).  Row-mode
executions carry near-zero debt, so their estimates are unchanged;
batch-mode estimates stay accurate to within one batch of the driver
scan instead of collapsing to zero the moment the driver's pages have
been pre-charged.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.engine.operators.base import Operator, WorkAccount
from repro.engine.operators.scans import SeqScan


def find_driver_scan(root: Operator) -> Optional[SeqScan]:
    """The plan's driver: the first sequential scan in DFS order."""
    if isinstance(root, SeqScan):
        return root
    for child in root.children():
        found = find_driver_scan(child)
        if found is not None:
            return found
    return None


class ProgressTracker:
    """Refined remaining-cost estimation for one running query."""

    def __init__(
        self,
        root: Operator,
        account: WorkAccount,
        optimizer_estimate: float,
        blend_until: float = 0.05,
        outstanding_debt: Optional[Callable[[], float]] = None,
    ) -> None:
        if optimizer_estimate < 0:
            raise ValueError("optimizer_estimate must be >= 0")
        if not 0 < blend_until <= 1:
            raise ValueError("blend_until must be in (0, 1]")
        self._root = root
        self._account = account
        self.optimizer_estimate = optimizer_estimate
        self._blend_until = blend_until
        self._driver = find_driver_scan(root)
        self._finished = False
        self._restored_work = 0.0
        self._outstanding_debt = outstanding_debt

    def _debt(self) -> float:
        """Charged-but-unpaid work banked by the executor (0 without one)."""
        if self._outstanding_debt is None:
            return 0.0
        return max(self._outstanding_debt(), 0.0)

    @property
    def work_done(self) -> float:
        """Work charged so far, in U's."""
        return self._account.total

    def driver_fraction(self) -> Optional[float]:
        """Input fraction consumed by the driver scan, or None if no driver."""
        if self._driver is None:
            return None
        return self._driver.progress_fraction()

    def mark_finished(self) -> None:
        """Record that the query has completed (remaining cost is 0)."""
        self._finished = True

    def note_restore(self, work_done: float) -> None:
        """Record that the execution resumed from a checkpoint.

        The checkpointed work becomes a floor on the total-cost estimate:
        an index-only plan (no driver scan) would otherwise fall back to
        the bare optimizer estimate and report a total *below* the work
        provably already performed.
        """
        if work_done < 0:
            raise ValueError("work_done must be >= 0")
        self._restored_work = max(self._restored_work, work_done)

    def memory_pressure_events(self) -> int:
        """Memory-governance incidents so far (0 without a governor).

        Surfaced in progress snapshots so observers can tell a query that
        slowed down because it degraded under memory pressure from one
        whose inputs were simply mis-estimated.
        """
        governor = self._account.memory
        return governor.pressure_events if governor is not None else 0

    def estimated_total_cost(self) -> float:
        """Current refined estimate of the query's total cost, in U's."""
        done = self.work_done
        if self._finished:
            return done
        fraction = self.driver_fraction()
        if fraction is None or fraction <= 0:
            return max(self.optimizer_estimate, done, self._restored_work)
        extrapolated = done / fraction
        if fraction < self._blend_until:
            weight = fraction / self._blend_until
            blended = (
                weight * extrapolated + (1.0 - weight) * self.optimizer_estimate
            )
        else:
            blended = extrapolated
        return max(blended, done)

    def estimated_remaining_cost(self) -> float:
        """Refined remaining cost in U's (the PI's ``c``).

        Includes the executor's outstanding work debt: in batch mode a
        pull can pre-charge a whole batch of work that the scheduler has
        not yet paid for, and that work is still ahead of the query.
        """
        if self._finished:
            return 0.0
        remaining = max(self.estimated_total_cost() - self.work_done, 0.0)
        return remaining + self._debt()

    def completed_fraction(self) -> float:
        """Fraction of the (refined) total completed so far."""
        if self._finished:
            return 1.0
        total = self.estimated_total_cost()
        if total <= 0:
            return 0.0
        paid = max(self.work_done - self._debt(), 0.0)
        return min(paid / total, 1.0)
