"""Simulated B-tree indexes.

The index maps a single column's values to row RIDs.  It is "simulated" in
the sense that lookups are served from an in-memory sorted structure, but
the *cost model* mirrors a disk B-tree: a lookup pays the tree height in
page reads plus one page per ``entries_per_leaf`` matching entries, and each
matching row costs a heap-page fetch (operators account that part).
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Iterator

from repro.engine.errors import ExecutionError
from repro.engine.storage import RID
from repro.engine.types import sort_key

#: Modeled fan-out of interior B-tree nodes.
DEFAULT_FANOUT = 128
#: Modeled entries per leaf page.
DEFAULT_LEAF_CAPACITY = 128


class BTreeIndex:
    """A single-column index with a B-tree cost model."""

    def __init__(
        self,
        name: str,
        table: str,
        column: str,
        fanout: int = DEFAULT_FANOUT,
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    ) -> None:
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        if leaf_capacity < 1:
            raise ValueError("leaf_capacity must be >= 1")
        self.name = name
        self.table = table
        self.column = column
        self.fanout = fanout
        self.leaf_capacity = leaf_capacity
        self._entries: dict[Any, list[RID]] = {}
        self._sorted_keys: list = []
        self._sorted_dirty = False
        self._size = 0

    @property
    def entry_count(self) -> int:
        """Total number of (key, RID) entries."""
        return self._size

    @property
    def key_count(self) -> int:
        """Number of distinct keys."""
        return len(self._entries)

    def height(self) -> int:
        """Modeled tree height in pages (root..leaf), at least 1."""
        leaves = max(math.ceil(self.key_count / self.leaf_capacity), 1)
        levels = 1
        width = leaves
        while width > 1:
            width = math.ceil(width / self.fanout)
            levels += 1
        return levels

    def insert(self, key: Any, rid: RID) -> None:
        """Add one entry.  NULL keys are not indexed (SQL convention)."""
        if key is None:
            return
        if key not in self._entries:
            self._entries[key] = []
            self._sorted_dirty = True
        self._entries[key].append(rid)
        self._size += 1

    def lookup_cost(self, matches: int) -> float:
        """Cost in U's of an equality probe returning *matches* entries."""
        leaf_pages = max(math.ceil(matches / self.leaf_capacity), 1)
        return float(self.height() + leaf_pages - 1)

    def search(self, key: Any) -> list[RID]:
        """RIDs of rows whose indexed column equals *key* (NULL matches none)."""
        if key is None:
            return []
        try:
            return list(self._entries.get(key, ()))
        except TypeError as exc:
            raise ExecutionError(f"unhashable index probe value {key!r}") from exc

    def _keys(self) -> list:
        if self._sorted_dirty:
            self._sorted_keys = sorted(self._entries.keys(), key=sort_key)
            self._sorted_dirty = False
        return self._sorted_keys

    def search_range(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[Any, list[RID]]]:
        """Iterate ``(key, rids)`` for keys within the given bounds."""
        keys = self._keys()
        if low is None:
            start = 0
        else:
            probe = sort_key(low)
            if low_inclusive:
                start = bisect.bisect_left(keys, probe, key=sort_key)
            else:
                start = bisect.bisect_right(keys, probe, key=sort_key)
        for key in keys[start:]:
            if high is not None:
                cmp = sort_key(key) > sort_key(high)
                edge = sort_key(key) == sort_key(high)
                if cmp or (edge and not high_inclusive):
                    break
            yield key, list(self._entries[key])

    def min_key(self) -> Any:
        """Smallest indexed key, or None if empty."""
        keys = self._keys()
        return keys[0] if keys else None

    def max_key(self) -> Any:
        """Largest indexed key, or None if empty."""
        keys = self._keys()
        return keys[-1] if keys else None
