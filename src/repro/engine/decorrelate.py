"""Plan-time subquery decorrelation: correlated subqueries become joins.

Correlated subquery expressions are the one thing the vectorized engine
cannot batch: ``bind_expr`` gives any subquery-containing expression a
row-loop ``.batch`` fallback, so the paper's own workload query (a
correlated scalar aggregate over ``lineitem``) sees no batch speedup at
all.  This pass rewrites the three correlated forms into plain joins at
the AST level -- before planning -- so the result rides the ordinary
vectorized scan/hash-join/aggregate path:

* **Scalar aggregate subquery** (``expr OP (SELECT agg(..) FROM i WHERE
  i.k = o.k AND ..)``): the inner query becomes a derived table grouped
  by its correlation keys, LEFT-joined to the outer query on those keys;
  the subquery expression is replaced by the derived table's aggregate
  columns (``COUNT`` slots wrapped in ``COALESCE(.., 0)`` so an absent
  group counts 0, matching the aggregate-over-empty-input row).

* **[NOT] EXISTS**: the inner query becomes a derived table of distinct
  correlation keys LEFT-joined on those keys; the subquery is replaced by
  ``key IS [NOT] NULL`` over the (never-NULL) join marker.

* **x [NOT] IN**: two derived tables -- the distinct ``(keys, value)``
  pairs with ``value IS NOT NULL`` (the match table, LEFT-joined on the
  keys *and* ``value = x``) and the per-key ``COUNT(*)`` / ``COUNT(value)``
  pair (the emptiness/NULL-presence flags) -- feed a CASE expression that
  reproduces the engine's three-valued IN semantics exactly, including
  ``NULL IN (anything)`` -> NULL and ``x NOT IN (.. NULL ..)`` -> NULL.

Safety first: the rewrite only fires when it can *prove* equivalence from
the catalog -- all FROM leaves are known base tables, every inner
predicate is either purely inner or an ``inner_col = outer_col`` equality
whose sides share a comparison type family (hash equality must agree with
``compare_values``), and the subquery body has no nesting, grouping,
ordering or limits beyond what each rule tolerates.  Anything unprovable
falls back to the original row-loop path unchanged, and the row engine
remains the byte-identical differential oracle for the rewritten plans.

Known (accepted) deviation: the decorrelated form computes the inner
aggregates for *all* key groups, while the naive path only evaluates
groups that are actually probed -- so a data-dependent error inside a
never-probed group can surface under decorrelation that the row-loop
would miss.  This matches how production optimizers behave and is
documented in docs/ALGORITHMS.md.

The pass is switchable (differential tests build the naive oracle with
``use_decorrelation(False)``), mirroring :mod:`repro.engine.mode`:

>>> from repro.engine.decorrelate import use_decorrelation, default_decorrelation
>>> default_decorrelation()
True
>>> with use_decorrelation(False):
...     default_decorrelation()
False
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.engine.catalog import Catalog
from repro.engine.errors import EngineError
from repro.engine.expr import expr_contains_subquery
from repro.engine.sql import ast
from repro.engine.types import SqlType

#: Synthesized derived-table aliases and column names start with ``#`` --
#: the lexer cannot produce that character, so they can never collide
#: with (or capture) user references.  Mirrors the planner's ``#agg``.
DERIVED_ALIAS_PREFIX = "#dc"

_SUBQUERY_NODES = (ast.ScalarSubquery, ast.ExistsSubquery, ast.InSubquery)

#: Comparison type families: hash-join key equality and ``compare_values``
#: agree within a family and are rejected across families.
_TYPE_FAMILY = {
    SqlType.INTEGER: "num",
    SqlType.FLOAT: "num",
    SqlType.TEXT: "str",
    SqlType.BOOLEAN: "bool",
}

_default_enabled = True


# ---------------------------------------------------------------------------
# The switch (mirrors repro.engine.mode)
# ---------------------------------------------------------------------------


def default_decorrelation() -> bool:
    """Whether the decorrelation pass runs when not overridden per call."""
    return _default_enabled


def set_default_decorrelation(enabled: bool) -> None:
    """Set the process-wide default for the decorrelation pass."""
    global _default_enabled
    _default_enabled = bool(enabled)


@contextmanager
def use_decorrelation(enabled: bool) -> Iterator[None]:
    """Temporarily enable/disable the decorrelation pass."""
    previous = default_decorrelation()
    set_default_decorrelation(enabled)
    try:
        yield
    finally:
        set_default_decorrelation(previous)


def resolve_decorrelation(enabled: Optional[bool]) -> bool:
    """An explicit setting, or the module default when ``None``."""
    return _default_enabled if enabled is None else bool(enabled)


# ---------------------------------------------------------------------------
# Catalog-derived name scopes
# ---------------------------------------------------------------------------


class _Scope:
    """Column bindings of one SELECT's FROM clause, from the catalog."""

    def __init__(self) -> None:
        #: (binding, column names) in FROM order -- star-expansion order.
        self.order: list[tuple[str, list[str]]] = []
        self._columns: dict[str, dict[str, str]] = {}

    def add(self, binding: str, columns: list[str], families: list[str]) -> bool:
        key = binding.lower()
        if key in self._columns:
            return False  # duplicate binding: the planner's error to raise
        self.order.append((binding, list(columns)))
        self._columns[key] = {
            c.lower(): f for c, f in zip(columns, families)
        }
        return True

    def lookup(self, ref: ast.ColumnRef) -> tuple[str, Optional[str]]:
        """Resolve *ref* here: ``("yes", family) | ("no"|"ambiguous", None)``."""
        name = ref.name.lower()
        if ref.qualifier is not None:
            cols = self._columns.get(ref.qualifier.lower())
            if cols is not None and name in cols:
                return "yes", cols[name]
            return "no", None
        hits = [cols[name] for cols in self._columns.values() if name in cols]
        if len(hits) == 1:
            return "yes", hits[0]
        return ("no", None) if not hits else ("ambiguous", None)

    def resolves(self, ref: ast.ColumnRef) -> str:
        return self.lookup(ref)[0]


def _scope_of(
    from_items, catalog: Catalog
) -> Optional[tuple[_Scope, list[ast.Expr]]]:
    """Build the scope of a FROM clause; None when any leaf is unprovable.

    Also returns the explicit join ON conditions found along the way.
    """
    scope = _Scope()
    conditions: list[ast.Expr] = []

    def walk(item) -> bool:
        if isinstance(item, ast.TableRef):
            try:
                table = catalog.table(item.name)
            except EngineError:
                return False
            columns = list(table.schema.column_names)
            families = [
                _TYPE_FAMILY[col.sql_type] for col in table.schema.columns
            ]
            return scope.add(item.binding, columns, families)
        if isinstance(item, ast.Join):
            if not walk(item.left) or not walk(item.right):
                return False
            if item.condition is not None:
                conditions.append(item.condition)
            return True
        return False  # derived tables etc.: skip the rewrite

    for item in from_items:
        if not walk(item):
            return None
    return scope, conditions


def _literal_family(value) -> Optional[str]:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "num"
    if isinstance(value, str):
        return "str"
    return None  # NULL literal: compatible with anything (never matches)


# ---------------------------------------------------------------------------
# The rewriter
# ---------------------------------------------------------------------------


class _SelectRewriter:
    """Rewrites the subquery expressions of one SELECT.

    Collects the LEFT joins to graft onto the FROM clause; identical
    subquery nodes (e.g. repeated in ORDER BY) share one join.
    """

    def __init__(
        self, select: ast.Select, catalog: Catalog, outer_scope: _Scope
    ) -> None:
        self.select = select
        self.catalog = catalog
        self.outer_scope = outer_scope
        self.joins: list[tuple[ast.DerivedTable, ast.Expr]] = []
        self.fired: list[str] = []
        self._cache: dict[ast.Expr, Optional[ast.Expr]] = {}
        self._counter = 0

    # -- entry ----------------------------------------------------------

    def transform(self, expr: ast.Expr) -> ast.Expr:
        return ast.transform_expr(expr, self._visit)

    def _visit(self, node: ast.Expr) -> Optional[ast.Expr]:
        # The parser spells ``NOT EXISTS`` as a NOT over EXISTS; fold the
        # negation into the subquery node so it becomes an anti-join
        # marker instead of a NOT over a semi-join marker.
        if (
            isinstance(node, ast.UnaryOp)
            and node.op.upper() == "NOT"
            and isinstance(node.operand, ast.ExistsSubquery)
        ):
            node = ast.ExistsSubquery(
                select=node.operand.select, negated=not node.operand.negated
            )
        if not isinstance(node, _SUBQUERY_NODES):
            return None
        if node not in self._cache:
            if isinstance(node, ast.ScalarSubquery):
                result = self._rewrite_scalar(node)
            elif isinstance(node, ast.ExistsSubquery):
                result = self._rewrite_exists(node)
            else:
                result = self._rewrite_in(node)
            self._cache[node] = result
        return self._cache[node]

    # -- shared analysis ------------------------------------------------

    def _analyze_inner(self, sub: ast.Select):
        """Split the inner WHERE into pure-inner conjuncts and key pairs.

        Returns ``(inner scope, inner conjuncts, [(inner_ref, outer_ref)])``
        or None when any conjunct is neither provably inner-only nor an
        ``inner_col = outer_col`` equality on a shared type family.
        """
        info = _scope_of(sub.from_items, self.catalog)
        if info is None:
            return None
        scope, join_conds = info
        for cond in join_conds:
            if expr_contains_subquery(cond) or not _all_inner(cond, scope):
                return None
        inner_conjuncts: list[ast.Expr] = []
        keys: list[tuple[ast.ColumnRef, ast.ColumnRef]] = []
        for conj in ast.split_conjuncts(sub.where):
            verdict = self._classify(conj, scope)
            if verdict is None:
                return None
            kind, payload = verdict
            if kind == "inner":
                inner_conjuncts.append(conj)
            else:
                keys.append(payload)
        return scope, inner_conjuncts, keys

    def _classify(self, conj: ast.Expr, inner: _Scope):
        """One inner conjunct -> ``("inner", None)`` / ``("key", pair)`` / None."""
        if expr_contains_subquery(conj):
            return None
        has_outer = False
        for ref in ast.collect_column_refs(conj):
            kind = inner.resolves(ref)
            if kind == "ambiguous":
                return None
            if kind == "yes":
                continue
            if self.outer_scope.resolves(ref) == "yes":
                has_outer = True
            else:
                return None  # unknown, ambiguous, or a deeper scope
        if not has_outer:
            return ("inner", None)
        if (
            isinstance(conj, ast.BinaryOp)
            and conj.op == "="
            and isinstance(conj.left, ast.ColumnRef)
            and isinstance(conj.right, ast.ColumnRef)
        ):
            # Inner resolution takes scoping precedence, exactly as the
            # binder walks scopes innermost-first.
            left_in, left_fam = inner.lookup(conj.left)
            right_in, right_fam = inner.lookup(conj.right)
            if left_in == "yes" and right_in != "yes":
                pair, in_fam = (conj.left, conj.right), left_fam
                _, out_fam = self.outer_scope.lookup(conj.right)
            elif right_in == "yes" and left_in != "yes":
                pair, in_fam = (conj.right, conj.left), right_fam
                _, out_fam = self.outer_scope.lookup(conj.left)
            else:
                return None
            if in_fam != out_fam:
                return None  # hash equality would not match compare_values
            return ("key", pair)
        return None

    def _next_alias(self) -> str:
        alias = f"{DERIVED_ALIAS_PREFIX}{self._counter}"
        self._counter += 1
        return alias

    def _key_parts(
        self, alias: str, keys: list[tuple[ast.ColumnRef, ast.ColumnRef]]
    ) -> tuple[list[ast.SelectItem], list[ast.Expr], list[ast.Expr]]:
        """Key select items, join equalities, and the GROUP BY exprs."""
        items, equalities, group_by = [], [], []
        for i, (inner_ref, outer_ref) in enumerate(keys):
            items.append(ast.SelectItem(expr=inner_ref, alias=f"#k{i}"))
            equalities.append(
                ast.BinaryOp(
                    "=",
                    ast.ColumnRef(name=f"#k{i}", qualifier=alias),
                    outer_ref,
                )
            )
            group_by.append(inner_ref)
        return items, equalities, group_by

    # -- the three rules ------------------------------------------------

    def _rewrite_scalar(self, node: ast.ScalarSubquery) -> Optional[ast.Expr]:
        sub = node.select
        if not isinstance(sub, ast.Select):
            return None
        if (
            sub.group_by
            or sub.having is not None
            or sub.order_by
            or sub.distinct
            or sub.limit is not None
            or sub.offset is not None
            or len(sub.items) != 1
        ):
            return None
        expr0 = sub.items[0].expr
        if isinstance(expr0, ast.Star) or expr_contains_subquery(expr0):
            return None
        if not ast.contains_aggregate(expr0):
            return None
        analysis = self._analyze_inner(sub)
        if analysis is None:
            return None
        inner_scope, inner_conjuncts, keys = analysis
        if not keys:
            return None  # uncorrelated: the init-plan path already runs once

        aggregates = ast.collect_aggregates(expr0)
        for call in aggregates:
            if call.star:
                continue
            if len(call.args) != 1:
                return None
            arg = call.args[0]
            if ast.contains_aggregate(arg) or not _all_inner(arg, inner_scope):
                return None
        # Outside the aggregates the select expression must be closed
        # (no free column references).
        agg_set = set(aggregates)
        stripped = ast.transform_expr(
            expr0, lambda e: ast.Literal(None) if e in agg_set else None
        )
        if ast.collect_column_refs(stripped):
            return None

        alias = self._next_alias()
        key_items, equalities, group_by = self._key_parts(alias, keys)
        agg_items: list[ast.SelectItem] = []
        replacements: dict[ast.Expr, ast.Expr] = {}
        for j, call in enumerate(aggregates):
            name = f"#a{j}"
            agg_items.append(ast.SelectItem(expr=call, alias=name))
            ref: ast.Expr = ast.ColumnRef(name=name, qualifier=alias)
            if call.name.upper() == "COUNT":
                # An absent group must count 0, like COUNT over no input.
                ref = ast.FunctionCall(name="COALESCE", args=(ref, ast.Literal(0)))
            replacements[call] = ref

        derived = ast.DerivedTable(
            select=ast.Select(
                items=tuple(key_items + agg_items),
                from_items=sub.from_items,
                where=ast.conjoin(inner_conjuncts),
                group_by=tuple(group_by),
            ),
            alias=alias,
        )
        self.joins.append((derived, ast.conjoin(equalities)))
        self.fired.append("scalar-agg")
        return ast.transform_expr(expr0, lambda e: replacements.get(e))

    def _rewrite_exists(self, node: ast.ExistsSubquery) -> Optional[ast.Expr]:
        sub = node.select
        if not isinstance(sub, ast.Select):
            return None
        if (
            sub.group_by
            or sub.having is not None
            or sub.order_by
            or sub.distinct
            or sub.offset not in (None, 0)
        ):
            return None
        if sub.limit is not None and sub.limit < 1:
            return None  # LIMIT 0: always empty, not worth a rule
        for item in sub.items:
            e = item.expr
            if isinstance(e, ast.Literal):
                continue
            if isinstance(e, ast.Star):
                # A qualified star must name an inner binding or the
                # original would raise -- keep that error path.
                if e.qualifier is not None:
                    return None
                continue
            if isinstance(e, ast.ColumnRef):
                continue  # resolvability is checked against the scopes below
            return None  # anything computed could raise; keep the original
        analysis = self._analyze_inner(sub)
        if analysis is None:
            return None
        inner_scope, inner_conjuncts, keys = analysis
        if not keys:
            return None
        for item in sub.items:
            e = item.expr
            if isinstance(e, ast.ColumnRef):
                kind = inner_scope.resolves(e)
                if kind == "ambiguous":
                    return None
                if kind == "no" and self.outer_scope.resolves(e) != "yes":
                    return None

        alias = self._next_alias()
        key_items, equalities, group_by = self._key_parts(alias, keys)
        derived = ast.DerivedTable(
            select=ast.Select(
                items=tuple(key_items),
                from_items=sub.from_items,
                where=ast.conjoin(inner_conjuncts),
                group_by=tuple(group_by),
            ),
            alias=alias,
        )
        self.joins.append((derived, ast.conjoin(equalities)))
        self.fired.append("anti-join" if node.negated else "semi-join")
        # The marker key is a grouped join key: NULL keys never join, so
        # a matched row always has it non-NULL -- IS [NOT] NULL is exact.
        return ast.IsNull(
            ast.ColumnRef(name="#k0", qualifier=alias), negated=not node.negated
        )

    def _rewrite_in(self, node: ast.InSubquery) -> Optional[ast.Expr]:
        sub = node.select
        if not isinstance(sub, ast.Select):
            return None
        operand = node.operand
        if isinstance(operand, ast.Literal):
            operand_family = _literal_family(operand.value)
        elif isinstance(operand, ast.ColumnRef):
            kind, operand_family = self.outer_scope.lookup(operand)
            if kind != "yes":
                return None
        else:
            return None  # a computed probe key could raise where the
            #              short-circuiting original would not
        if (
            sub.group_by
            or sub.having is not None
            or sub.order_by
            or sub.limit is not None
            or sub.offset is not None
            or len(sub.items) != 1
        ):
            return None
        value = sub.items[0].expr
        if not isinstance(value, ast.ColumnRef):
            return None
        analysis = self._analyze_inner(sub)
        if analysis is None:
            return None
        inner_scope, inner_conjuncts, keys = analysis
        if not keys:
            return None  # uncorrelated IN is memoized at execution instead
        kind, value_family = inner_scope.lookup(value)
        if kind != "yes":
            return None
        if operand_family is not None and operand_family != value_family:
            return None  # cross-family compare must keep raising

        # D1: distinct (keys, value) pairs with value IS NOT NULL -- the
        # match table.  Joined on the keys AND value = x; ``value = x``
        # leads the ON clause so it becomes the hash pair (NULL-safe,
        # never raises) and the key equalities stay residual.
        match_alias = self._next_alias()
        m_items, m_equalities, m_group = self._key_parts(match_alias, keys)
        m_items.append(ast.SelectItem(expr=value, alias="#m"))
        marker = ast.ColumnRef(name="#m", qualifier=match_alias)
        match_derived = ast.DerivedTable(
            select=ast.Select(
                items=tuple(m_items),
                from_items=sub.from_items,
                where=ast.conjoin(
                    inner_conjuncts + [ast.IsNull(value, negated=True)]
                ),
                group_by=tuple(m_group + [value]),
            ),
            alias=match_alias,
        )
        match_cond = ast.conjoin(
            [ast.BinaryOp("=", marker, operand)] + m_equalities
        )

        # D2: per-key COUNT(*) / COUNT(value) -- the emptiness and
        # NULL-presence flags for the non-matching branches.
        count_alias = self._next_alias()
        c_items, c_equalities, c_group = self._key_parts(count_alias, keys)
        c_items.append(
            ast.SelectItem(
                expr=ast.FunctionCall(name="COUNT", args=(), star=True),
                alias="#c",
            )
        )
        c_items.append(
            ast.SelectItem(
                expr=ast.FunctionCall(name="COUNT", args=(value,)), alias="#cn"
            )
        )
        count_derived = ast.DerivedTable(
            select=ast.Select(
                items=tuple(c_items),
                from_items=sub.from_items,
                where=ast.conjoin(inner_conjuncts),
                group_by=tuple(c_group),
            ),
            alias=count_alias,
        )

        self.joins.append((count_derived, ast.conjoin(c_equalities)))
        self.joins.append((match_derived, match_cond))
        self.fired.append("anti-in" if node.negated else "semi-in")

        total = ast.FunctionCall(
            name="COALESCE",
            args=(ast.ColumnRef(name="#c", qualifier=count_alias), ast.Literal(0)),
        )
        membership = ast.Case(
            whens=(
                # Matched: x joined some inner value.
                (ast.IsNull(marker, negated=True), ast.Literal(True)),
                # The engine's NULL probe is NULL even over an empty inner.
                (ast.IsNull(operand), ast.Literal(None)),
                # Empty group: IN is FALSE, NOT IN is TRUE.
                (ast.BinaryOp("=", total, ast.Literal(0)), ast.Literal(False)),
                # No match but the group contains NULLs: unknown.
                (
                    ast.BinaryOp(
                        ">",
                        ast.ColumnRef(name="#c", qualifier=count_alias),
                        ast.ColumnRef(name="#cn", qualifier=count_alias),
                    ),
                    ast.Literal(None),
                ),
            ),
            else_=ast.Literal(False),
        )
        if node.negated:
            return ast.UnaryOp("NOT", membership)
        return membership


def _all_inner(expr: ast.Expr, scope: _Scope) -> bool:
    return all(
        scope.resolves(ref) == "yes" for ref in ast.collect_column_refs(expr)
    )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def _select_has_subquery(select: ast.Select) -> bool:
    exprs: list[ast.Expr] = [
        it.expr for it in select.items if not isinstance(it.expr, ast.Star)
    ]
    if select.where is not None:
        exprs.append(select.where)
    if select.having is not None:
        exprs.append(select.having)
    exprs.extend(select.group_by)
    exprs.extend(o.expr for o in select.order_by)
    return any(expr_contains_subquery(e) for e in exprs)


def _outer_is_aggregated(select: ast.Select) -> bool:
    if select.group_by or select.having is not None:
        return True
    return any(
        not isinstance(it.expr, ast.Star) and ast.contains_aggregate(it.expr)
        for it in select.items
    )


def _expand_star_items(
    items: tuple[ast.SelectItem, ...], scope: _Scope
) -> Optional[tuple[ast.SelectItem, ...]]:
    """Expand ``*`` against the *original* FROM bindings.

    Must happen before the rewrite joins are grafted on, or ``SELECT *``
    would pick up the synthesized derived-table columns.  Mirrors the
    planner's expansion (FROM order, schema column order, qualified refs).
    """
    if not any(isinstance(it.expr, ast.Star) for it in items):
        return items
    out: list[ast.SelectItem] = []
    for item in items:
        if not isinstance(item.expr, ast.Star):
            out.append(item)
            continue
        qualifier = item.expr.qualifier
        matched = False
        for binding, columns in scope.order:
            if qualifier is None or binding.lower() == qualifier.lower():
                out.extend(
                    ast.SelectItem(
                        expr=ast.ColumnRef(name=c, qualifier=binding)
                    )
                    for c in columns
                )
                matched = True
        if not matched:
            return None  # unknown qualifier: keep the original's error
    return tuple(out)


def decorrelate_select(
    select: ast.Select, catalog: Catalog
) -> tuple[ast.Select, tuple[str, ...]]:
    """Rewrite one SELECT; returns ``(select, fired rule tags)``.

    The input is returned unchanged (and no tags fire) whenever any part
    of the rewrite cannot be proven safe.
    """
    if not isinstance(select, ast.Select) or not select.from_items:
        return select, ()
    if not _select_has_subquery(select):
        return select, ()
    info = _scope_of(select.from_items, catalog)
    if info is None:
        return select, ()
    outer_scope, _ = info

    rewriter = _SelectRewriter(select, catalog, outer_scope)
    where = (
        rewriter.transform(select.where) if select.where is not None else None
    )
    items = select.items
    order_by = select.order_by
    if not _outer_is_aggregated(select):
        # Rewriting select-list/ORDER BY subqueries is only safe when the
        # outer query does not aggregate (the joins must not feed new
        # columns into grouping).  WHERE is always safe: the grouped
        # derived tables join at most one row per outer row.
        items = tuple(
            ast.SelectItem(
                expr=(
                    it.expr
                    if isinstance(it.expr, ast.Star)
                    else rewriter.transform(it.expr)
                ),
                alias=it.alias,
            )
            for it in items
        )
        order_by = tuple(
            ast.OrderItem(
                expr=rewriter.transform(o.expr), descending=o.descending
            )
            for o in order_by
        )
    if not rewriter.joins:
        return select, ()

    expanded = _expand_star_items(items, outer_scope)
    if expanded is None:
        return select, ()
    from_items = list(select.from_items)
    tail = from_items[-1]
    for derived, condition in rewriter.joins:
        tail = ast.Join(left=tail, right=derived, condition=condition, kind="LEFT")
    from_items[-1] = tail
    rewritten = ast.Select(
        items=expanded,
        from_items=tuple(from_items),
        where=where,
        group_by=select.group_by,
        having=select.having,
        order_by=order_by,
        limit=select.limit,
        offset=select.offset,
        distinct=select.distinct,
    )
    return rewritten, tuple(rewriter.fired)


def decorrelate_statement(
    statement, catalog: Catalog
) -> tuple[object, tuple[str, ...]]:
    """Decorrelate a parsed SELECT or UNION; other statements pass through."""
    if isinstance(statement, ast.Union):
        branches: list[ast.Select] = []
        fired: list[str] = []
        for branch in statement.branches:
            new_branch, tags = decorrelate_select(branch, catalog)
            branches.append(new_branch)
            fired.extend(tags)
        if not fired:
            return statement, ()
        return (
            ast.Union(
                branches=tuple(branches),
                all_flags=statement.all_flags,
                order_by=statement.order_by,
                limit=statement.limit,
                offset=statement.offset,
            ),
            tuple(fired),
        )
    if isinstance(statement, ast.Select):
        return decorrelate_select(statement, catalog)
    return statement, ()
