"""Row-transforming operators: filter, project, limit, distinct, materialize.

All of these are checkpointable.  Streaming transforms (filter, project)
delegate entirely to the child; counting transforms (limit, concat) add
their cursors; buffering transforms (distinct, materialize) snapshot their
buffers.  Distinct and Materialize also reserve their buffered rows against
the memory governor -- they have no graceful fallback, so they are the
operators that can walk a query up to the hard memory limit.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional, Sequence

from repro.engine.errors import SqlTypeError
from repro.engine.expr import BoundExpr, Env, Layout, batch_eval
from repro.engine.operators.base import Operator, WorkAccount, checkpoint_child
from repro.engine.vector import Chunk

__all__ = [
    "Concat",
    "Distinct",
    "Filter",
    "Limit",
    "Materialize",
    "Project",
    "SingleRow",
]


class SingleRow(Operator):
    """Produces exactly one empty row (``SELECT 1`` without FROM)."""

    def __init__(self, account: WorkAccount) -> None:
        super().__init__(Layout([]), account)
        self._done = False
        self._resume: dict | None = None

    def checkpoint(self) -> dict | None:
        return {"done": self._done}

    def restore(self, state: dict) -> None:
        self._resume = dict(state)

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        resume = self._resume
        self._resume = None
        if resume is not None and resume["done"]:
            return
        self._done = True
        yield ()

    def batches(self, outer_env: Optional[Env] = None) -> Iterator[list]:
        resume = self._resume
        self._resume = None
        if resume is not None and resume["done"]:
            return
        self._done = True
        yield [()]

    def describe(self) -> str:
        return "SingleRow"


class Filter(Operator):
    """Keep rows whose predicate evaluates to TRUE (not FALSE, not NULL)."""

    def __init__(self, child: Operator, predicate: BoundExpr, label: str = "") -> None:
        super().__init__(child.layout, child.account)
        self.child = child
        self.predicate = predicate
        self.label = label

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def checkpoint(self) -> dict | None:
        # Stateless stream: the child's position is the whole state.
        return checkpoint_child(self.child)

    def restore(self, state: dict) -> None:
        self.child.restore(state["child"])

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        predicate = self.predicate
        for row in self.child.rows(outer_env):
            verdict = predicate(Env(row, outer_env))
            if verdict is True:
                yield row
            elif verdict is not False and verdict is not None:
                raise SqlTypeError(
                    f"WHERE/ON predicate returned {type(verdict).__name__}, "
                    "expected boolean"
                )

    def batches(self, outer_env: Optional[Env] = None) -> Iterator[list]:
        # One output batch per input batch, never coalescing across input
        # batches: this operator never pulls input row mode would not have
        # touched, so charge totals match under early exit (LIMIT).
        predicate = self.predicate
        for batch in self.child.batches(outer_env):
            verdicts = batch_eval(predicate, batch, outer_env)
            if type(batch) is Chunk:
                # Late materialization: keep the batch columnar and only
                # narrow its selection -- no row tuples are built here.
                kept = []
                keep = kept.append
                for i, verdict in enumerate(verdicts):
                    if verdict is True:
                        keep(i)
                    elif verdict is not False and verdict is not None:
                        raise SqlTypeError(
                            f"WHERE/ON predicate returned "
                            f"{type(verdict).__name__}, expected boolean"
                        )
                if kept:
                    if len(kept) == len(verdicts):
                        yield batch
                    else:
                        yield batch.take(kept)
                continue
            out = []
            keep = out.append
            for row, verdict in zip(batch, verdicts):
                if verdict is True:
                    keep(row)
                elif verdict is not False and verdict is not None:
                    raise SqlTypeError(
                        f"WHERE/ON predicate returned {type(verdict).__name__}, "
                        "expected boolean"
                    )
            if out:
                yield out

    def describe(self) -> str:
        return f"Filter {self.label}".rstrip()


class Project(Operator):
    """Evaluate a list of expressions per row."""

    def __init__(
        self,
        child: Operator,
        exprs: Sequence[BoundExpr],
        layout: Layout,
    ) -> None:
        if len(exprs) != len(layout):
            raise ValueError("projection arity mismatch")
        super().__init__(layout, child.account)
        self.child = child
        self.exprs = list(exprs)

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def checkpoint(self) -> dict | None:
        # Stateless stream: the child's position is the whole state.
        return checkpoint_child(self.child)

    def restore(self, state: dict) -> None:
        self.child.restore(state["child"])

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        exprs = self.exprs
        for row in self.child.rows(outer_env):
            env = Env(row, outer_env)
            yield tuple(e(env) for e in exprs)

    def batches(self, outer_env: Optional[Env] = None) -> Iterator[list]:
        exprs = self.exprs
        for batch in self.child.batches(outer_env):
            if not exprs:
                yield [()] * len(batch)
                continue
            # Stay columnar: downstream operators (aggregates, sorts,
            # joins, the output collector) materialize tuples only where
            # they genuinely need whole rows.
            yield Chunk([batch_eval(e, batch, outer_env) for e in exprs])

    def describe(self) -> str:
        names = ", ".join(s.name for s in self.layout.slots)
        return f"Project [{names}]"


class Limit(Operator):
    """LIMIT / OFFSET."""

    def __init__(
        self, child: Operator, limit: Optional[int], offset: int = 0
    ) -> None:
        if limit is not None and limit < 0:
            raise ValueError("limit must be >= 0")
        if offset < 0:
            raise ValueError("offset must be >= 0")
        super().__init__(child.layout, child.account)
        self.child = child
        self.limit = limit
        self.offset = offset
        self._produced = 0
        self._skipped = 0
        self._resume: dict | None = None

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def checkpoint(self) -> dict | None:
        child_state = self.child.checkpoint()
        if child_state is None:
            return None
        return {
            "produced": self._produced,
            "skipped": self._skipped,
            "child": child_state,
        }

    def restore(self, state: dict) -> None:
        self._resume = state
        self.child.restore(state["child"])

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        resume = self._resume
        self._resume = None
        self._produced = int(resume["produced"]) if resume else 0
        self._skipped = int(resume["skipped"]) if resume else 0
        if (
            resume is not None
            and self.limit is not None
            and self._produced >= self.limit
        ):
            # Checkpointed with the limit already satisfied: pulling the
            # child again could charge a page the uninterrupted run never
            # touched.
            return
        for row in self.child.rows(outer_env):
            if self._skipped < self.offset:
                self._skipped += 1
                continue
            if self.limit is not None and self._produced >= self.limit:
                return
            self._produced += 1
            yield row

    def batches(self, outer_env: Optional[Env] = None) -> Iterator[list]:
        # Mirrors rows(): the stop check runs after pulling a batch, so a
        # LIMIT that is already satisfied still touches exactly the input
        # (and charges exactly the pages) the row loop would have.
        resume = self._resume
        self._resume = None
        self._produced = int(resume["produced"]) if resume else 0
        self._skipped = int(resume["skipped"]) if resume else 0
        if (
            resume is not None
            and self.limit is not None
            and self._produced >= self.limit
        ):
            return
        for batch in self.child.batches(outer_env):
            out = batch
            if self._skipped < self.offset:
                drop = min(self.offset - self._skipped, len(out))
                self._skipped += drop
                out = out[drop:]
            if self.limit is not None:
                room = self.limit - self._produced
                if room <= 0:
                    return
                if len(out) > room:
                    out = out[:room]
            if out:
                self._produced += len(out)
                yield out
            if self.limit is not None and self._produced >= self.limit:
                return

    def describe(self) -> str:
        return f"Limit {self.limit} offset {self.offset}"


class Distinct(Operator):
    """Hash-based duplicate elimination (row-wise)."""

    def __init__(self, child: Operator) -> None:
        super().__init__(child.layout, child.account)
        self.child = child
        self._seen: set = set()
        self._resume: dict | None = None

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def checkpoint(self) -> dict | None:
        child_state = self.child.checkpoint()
        if child_state is None:
            return None
        return {"seen": set(self._seen), "child": child_state}

    def restore(self, state: dict) -> None:
        self._resume = state
        self.child.restore(state["child"])

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        resume = self._resume
        self._resume = None
        gov = self.account.memory
        # Restored rows are not re-reserved: the crashed attempt's
        # reservation died with it, and there is nothing to shed anyway.
        self._seen = set(resume["seen"]) if resume else set()
        seen = self._seen
        reserved = 0
        for row in self.child.rows(outer_env):
            if row not in seen:
                if gov is not None:
                    # No graceful fallback: ignore the soft budget and let
                    # the hard limit be the backstop.
                    gov.reserve("Distinct")
                    reserved += 1
                seen.add(row)
                yield row
        if gov is not None and reserved:
            gov.release(reserved)

    def batches(self, outer_env: Optional[Env] = None) -> Iterator[list]:
        resume = self._resume
        self._resume = None
        gov = self.account.memory
        self._seen = set(resume["seen"]) if resume else set()
        seen = self._seen
        reserved = 0
        for batch in self.child.batches(outer_env):
            out = []
            for row in batch:
                if row not in seen:
                    if gov is not None:
                        gov.reserve("Distinct")
                        reserved += 1
                    seen.add(row)
                    out.append(row)
            if out:
                yield out
        if gov is not None and reserved:
            gov.release(reserved)

    def describe(self) -> str:
        return "Distinct"


class Concat(Operator):
    """Concatenate the outputs of several children (UNION ALL).

    All children must share the first child's arity; the output layout is
    the first child's with qualifiers stripped (a union result is a fresh
    relation).
    """

    def __init__(self, children: Sequence[Operator], layout: Layout) -> None:
        if not children:
            raise ValueError("Concat requires at least one child")
        arity = len(children[0].layout)
        for child in children[1:]:
            if len(child.layout) != arity:
                raise ValueError(
                    "UNION branches must have the same number of columns"
                )
        super().__init__(layout, children[0].account)
        self._children = tuple(children)
        self._active = 0
        self._resume: dict | None = None

    def children(self) -> tuple[Operator, ...]:
        return self._children

    def checkpoint(self) -> dict | None:
        # Earlier branches are fully consumed and later ones untouched,
        # so the active branch's position is the whole state.
        child_state = self._children[self._active].checkpoint()
        if child_state is None:
            return None
        return {"active": self._active, "child": child_state}

    def restore(self, state: dict) -> None:
        self._resume = state
        self._children[state["active"]].restore(state["child"])

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        resume = self._resume
        self._resume = None
        start = resume["active"] if resume else 0
        for i in range(start, len(self._children)):
            self._active = i
            yield from self._children[i].rows(outer_env)

    def batches(self, outer_env: Optional[Env] = None) -> Iterator[list]:
        resume = self._resume
        self._resume = None
        start = resume["active"] if resume else 0
        for i in range(start, len(self._children)):
            self._active = i
            yield from self._children[i].batches(outer_env)

    def describe(self) -> str:
        return f"Concat ({len(self._children)} branches)"


class Materialize(Operator):
    """Run the child once, cache its rows, and replay them for free.

    Charges the spill cost once: ``ceil(rows / rows_per_page)`` U to write
    plus the same to re-read on the first replay (an in-memory-friendly but
    not free model).  Used as the inner side of nested-loop joins.

    A materialization is only valid for a fixed outer environment; callers
    must not reuse it across different correlation bindings (the planner
    only materializes uncorrelated subtrees).
    """

    def __init__(self, child: Operator, rows_per_page: int = 50) -> None:
        if rows_per_page < 1:
            raise ValueError("rows_per_page must be >= 1")
        super().__init__(child.layout, child.account)
        self.child = child
        self.rows_per_page = rows_per_page
        self._cache: list[tuple] | None = None
        self._handed = 0
        self._resume: dict | None = None

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def spill_pages(self, row_count: int) -> int:
        """Modeled pages needed to hold *row_count* rows."""
        return math.ceil(row_count / self.rows_per_page) if row_count else 0

    def checkpoint(self) -> dict | None:
        # The cache is built in one atomic pull, so a checkpoint lands
        # either before the build (child untouched) or with the cache
        # complete -- never mid-build.
        if self._cache is None:
            return {"cache": None, "handed": 0}
        return {"cache": list(self._cache), "handed": self._handed}

    def restore(self, state: dict) -> None:
        self._resume = state

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        resume = self._resume
        self._resume = None
        start = 0
        if resume is not None and resume["cache"] is not None:
            # Cache (and its spill charge) carried over from the checkpoint.
            self._cache = list(resume["cache"])
            start = int(resume["handed"])
        if self._cache is None:
            cache = list(self.child.rows(outer_env))
            # Write + one read of the spill file.
            self.account.charge(2.0 * self.spill_pages(len(cache)))
            gov = self.account.memory
            if gov is not None and cache:
                # The cache is pinned for the query's lifetime and has no
                # graceful fallback, so this is the path that can reach
                # the hard memory limit.
                gov.reserve("Materialize", len(cache))
            self._cache = cache
        self._handed = start
        for row in self._cache[start:]:
            self._handed += 1
            yield row

    def batches(self, outer_env: Optional[Env] = None) -> Iterator[list]:
        resume = self._resume
        self._resume = None
        start = 0
        if resume is not None and resume["cache"] is not None:
            self._cache = list(resume["cache"])
            start = int(resume["handed"])
        if self._cache is None:
            cache: list[tuple] = []
            for batch in self.child.batches(outer_env):
                cache.extend(batch)
            self.account.charge(2.0 * self.spill_pages(len(cache)))
            gov = self.account.memory
            if gov is not None and cache:
                gov.reserve("Materialize", len(cache))
            self._cache = cache
        self._handed = start
        cap = max(self.batch_size, 1)
        cache = self._cache
        total = len(cache)
        position = start
        while position < total:
            end = min(position + cap, total)
            chunk = cache[position:end]
            self._handed = end
            yield chunk
            position = end

    def describe(self) -> str:
        return "Materialize"
