"""Row-transforming operators: filter, project, limit, distinct, materialize."""

from __future__ import annotations

import math
from typing import Iterator, Optional, Sequence

from repro.engine.errors import SqlTypeError
from repro.engine.expr import BoundExpr, Env, Layout
from repro.engine.operators.base import Operator, WorkAccount

__all__ = [
    "Concat",
    "Distinct",
    "Filter",
    "Limit",
    "Materialize",
    "Project",
    "SingleRow",
]


class SingleRow(Operator):
    """Produces exactly one empty row (``SELECT 1`` without FROM)."""

    def __init__(self, account: WorkAccount) -> None:
        super().__init__(Layout([]), account)

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        yield ()

    def describe(self) -> str:
        return "SingleRow"


class Filter(Operator):
    """Keep rows whose predicate evaluates to TRUE (not FALSE, not NULL)."""

    def __init__(self, child: Operator, predicate: BoundExpr, label: str = "") -> None:
        super().__init__(child.layout, child.account)
        self.child = child
        self.predicate = predicate
        self.label = label

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        predicate = self.predicate
        for row in self.child.rows(outer_env):
            verdict = predicate(Env(row, outer_env))
            if verdict is True:
                yield row
            elif verdict is not False and verdict is not None:
                raise SqlTypeError(
                    f"WHERE/ON predicate returned {type(verdict).__name__}, "
                    "expected boolean"
                )

    def describe(self) -> str:
        return f"Filter {self.label}".rstrip()


class Project(Operator):
    """Evaluate a list of expressions per row."""

    def __init__(
        self,
        child: Operator,
        exprs: Sequence[BoundExpr],
        layout: Layout,
    ) -> None:
        if len(exprs) != len(layout):
            raise ValueError("projection arity mismatch")
        super().__init__(layout, child.account)
        self.child = child
        self.exprs = list(exprs)

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        exprs = self.exprs
        for row in self.child.rows(outer_env):
            env = Env(row, outer_env)
            yield tuple(e(env) for e in exprs)

    def describe(self) -> str:
        names = ", ".join(s.name for s in self.layout.slots)
        return f"Project [{names}]"


class Limit(Operator):
    """LIMIT / OFFSET."""

    def __init__(
        self, child: Operator, limit: Optional[int], offset: int = 0
    ) -> None:
        if limit is not None and limit < 0:
            raise ValueError("limit must be >= 0")
        if offset < 0:
            raise ValueError("offset must be >= 0")
        super().__init__(child.layout, child.account)
        self.child = child
        self.limit = limit
        self.offset = offset

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        produced = 0
        skipped = 0
        for row in self.child.rows(outer_env):
            if skipped < self.offset:
                skipped += 1
                continue
            if self.limit is not None and produced >= self.limit:
                return
            produced += 1
            yield row

    def describe(self) -> str:
        return f"Limit {self.limit} offset {self.offset}"


class Distinct(Operator):
    """Hash-based duplicate elimination (row-wise)."""

    def __init__(self, child: Operator) -> None:
        super().__init__(child.layout, child.account)
        self.child = child

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        seen: set = set()
        for row in self.child.rows(outer_env):
            if row not in seen:
                seen.add(row)
                yield row

    def describe(self) -> str:
        return "Distinct"


class Concat(Operator):
    """Concatenate the outputs of several children (UNION ALL).

    All children must share the first child's arity; the output layout is
    the first child's with qualifiers stripped (a union result is a fresh
    relation).
    """

    def __init__(self, children: Sequence[Operator], layout: Layout) -> None:
        if not children:
            raise ValueError("Concat requires at least one child")
        arity = len(children[0].layout)
        for child in children[1:]:
            if len(child.layout) != arity:
                raise ValueError(
                    "UNION branches must have the same number of columns"
                )
        super().__init__(layout, children[0].account)
        self._children = tuple(children)

    def children(self) -> tuple[Operator, ...]:
        return self._children

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        for child in self._children:
            yield from child.rows(outer_env)

    def describe(self) -> str:
        return f"Concat ({len(self._children)} branches)"


class Materialize(Operator):
    """Run the child once, cache its rows, and replay them for free.

    Charges the spill cost once: ``ceil(rows / rows_per_page)`` U to write
    plus the same to re-read on the first replay (an in-memory-friendly but
    not free model).  Used as the inner side of nested-loop joins.

    A materialization is only valid for a fixed outer environment; callers
    must not reuse it across different correlation bindings (the planner
    only materializes uncorrelated subtrees).
    """

    def __init__(self, child: Operator, rows_per_page: int = 50) -> None:
        if rows_per_page < 1:
            raise ValueError("rows_per_page must be >= 1")
        super().__init__(child.layout, child.account)
        self.child = child
        self.rows_per_page = rows_per_page
        self._cache: list[tuple] | None = None

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def spill_pages(self, row_count: int) -> int:
        """Modeled pages needed to hold *row_count* rows."""
        return math.ceil(row_count / self.rows_per_page) if row_count else 0

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        if self._cache is None:
            cache = list(self.child.rows(outer_env))
            # Write + one read of the spill file.
            self.account.charge(2.0 * self.spill_pages(len(cache)))
            self._cache = cache
        yield from self._cache

    def describe(self) -> str:
        return "Materialize"
