"""Physical operators: pull-based iterators with page-level work accounting."""

from repro.engine.operators.base import Operator, WorkAccount
from repro.engine.operators.scans import IndexScan, SeqScan
from repro.engine.operators.transforms import (
    Distinct,
    Filter,
    Limit,
    Materialize,
    Project,
)
from repro.engine.operators.joins import HashJoin, NestedLoopJoin
from repro.engine.operators.agg import AggSpec, HashAggregate
from repro.engine.operators.sort import Sort

__all__ = [
    "AggSpec",
    "Distinct",
    "Filter",
    "HashAggregate",
    "HashJoin",
    "IndexScan",
    "Limit",
    "Materialize",
    "NestedLoopJoin",
    "Operator",
    "Project",
    "SeqScan",
    "Sort",
    "WorkAccount",
]
