"""Sort operator (blocking, with modeled external-sort cost).

The sort keeps its run-time state (input buffer, spilled runs, sorted
output, emit position) on the instance rather than in generator locals,
which buys two capabilities:

* **Checkpoint/resume** -- mid-build the buffered rows plus the child's
  position form a consistent snapshot; mid-emit the sorted output and the
  emit cursor do.  A restored sort re-emits exactly the rows a crashed
  attempt had not produced yet, without re-sorting.
* **Memory governance** -- when a :class:`~repro.engine.memory.MemoryGovernor`
  is attached and the buffer crosses the budget, the sort degrades to
  bounded external-merge behaviour: budget-sized sorted runs are spilled
  (releasing their memory, charging the extra write+read pass) and merged
  at emit time.  Output order is identical to the in-memory path because
  every entry is decorated with a total-order key that ends in the input
  sequence number -- exactly the stable multi-key semantics of repeated
  stable sorts.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Iterator, Optional, Sequence

from repro.engine.expr import BoundExpr, Env, batch_eval
from repro.engine.operators.base import Operator
from repro.engine.types import sort_key


class _Desc:
    """Order-inverting wrapper so DESC keys compose inside one tuple key."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_Desc") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Desc) and self.value == other.value


#: A decorated sort entry: (composite key ending in seq, row).
_Entry = tuple[tuple, tuple]


class Sort(Operator):
    """ORDER BY: materialize, sort, emit.

    Charges ``2 * ceil(rows / rows_per_page)`` U, modeling one write and one
    read pass of an external sort.  NULLs sort first (ascending).  Under
    memory pressure, extra spill passes are charged per run.
    """

    def __init__(
        self,
        child: Operator,
        keys: Sequence[tuple[BoundExpr, bool]],  # (expr, descending)
        rows_per_page: int = 50,
    ) -> None:
        if not keys:
            raise ValueError("sort requires at least one key")
        if rows_per_page < 1:
            raise ValueError("rows_per_page must be >= 1")
        super().__init__(child.layout, child.account)
        self.child = child
        self.keys = list(keys)
        self.rows_per_page = rows_per_page
        #: ``"idle"`` / ``"build"`` / ``"emit"`` -- the current phase.
        self._phase = "idle"
        self._buffer: list[_Entry] = []
        self._runs: list[list[_Entry]] = []
        self._seq = 0
        self._sorted: list[tuple] = []
        self._emitted = 0
        self._degraded = False
        self._resume: dict | None = None

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def _entry(self, row: tuple, outer_env) -> _Entry:
        """Decorate *row* with its composite, stable, total-order key."""
        env = Env(row, outer_env)
        key = tuple(
            _Desc(sort_key(expr(env))) if descending else sort_key(expr(env))
            for expr, descending in self.keys
        ) + (self._seq,)
        self._seq += 1
        return (key, row)

    # ------------------------------------------------------------------
    # Checkpoint/restore
    # ------------------------------------------------------------------

    def checkpoint(self) -> dict | None:
        if self._phase == "emit":
            # Child fully consumed: the sorted output and cursor suffice.
            return {
                "phase": "emit",
                "sorted": list(self._sorted),
                "emitted": self._emitted,
            }
        child_state = self.child.checkpoint()
        if child_state is None:
            return None
        if self._phase == "idle":
            return {"phase": "idle", "child": child_state}
        return {
            "phase": "build",
            "buffer": list(self._buffer),
            "runs": [list(r) for r in self._runs],
            "seq": self._seq,
            "degraded": self._degraded,
            "child": child_state,
        }

    def restore(self, state: dict) -> None:
        self._resume = state
        if state["phase"] in ("idle", "build"):
            self.child.restore(state["child"])

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _spill_current_buffer(self) -> None:
        """Degrade: sort the buffer into a run and shed its memory."""
        gov = self.account.memory
        run = sorted(self._buffer)
        self._runs.append(run)
        # One extra write+read pass for the spilled run.
        self.account.charge(2.0 * math.ceil(len(run) / self.rows_per_page))
        if gov is not None:
            gov.release(len(run))
            gov.record(
                "Sort", "spill",
                f"spilled run of {len(run)} rows ({len(self._runs)} runs)",
            )
        self._buffer = []

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        resume = self._resume
        self._resume = None
        gov = self.account.memory

        if resume is not None and resume["phase"] == "emit":
            self._phase = "emit"
            self._sorted = list(resume["sorted"])
            self._emitted = resume["emitted"]
            for row in self._sorted[self._emitted:]:
                self._emitted += 1
                yield row
            return

        # Build phase (possibly resumed mid-build).
        self._phase = "build"
        if resume is not None and resume["phase"] == "build":
            self._buffer = list(resume["buffer"])
            self._runs = [list(r) for r in resume["runs"]]
            self._seq = resume["seq"]
            self._degraded = resume["degraded"]
        else:
            self._buffer = []
            self._runs = []
            self._seq = 0
            self._degraded = False
        self._sorted = []
        self._emitted = 0

        for row in self.child.rows(outer_env):
            self._buffer.append(self._entry(row, outer_env))
            if gov is not None and not gov.reserve("Sort"):
                if not self._degraded:
                    self._degraded = True
                    gov.record(
                        "Sort", "degrade",
                        "buffer over budget: external-merge fallback",
                    )
                self._spill_current_buffer()

        total_rows = self._seq
        self.account.charge(2.0 * math.ceil(total_rows / self.rows_per_page))

        if self._runs:
            if self._buffer:
                self._spill_current_buffer()
            self._sorted = [row for _, row in heapq.merge(*self._runs)]
            self._runs = []
        else:
            self._sorted = [row for _, row in sorted(self._buffer)]
            if gov is not None:
                gov.release(len(self._buffer))
            self._buffer = []

        self._phase = "emit"
        for row in self._sorted:
            self._emitted += 1
            yield row

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------

    def _entries_batch(self, batch: list, outer_env) -> list[_Entry]:
        """Decorate a whole batch of rows with their sort keys."""
        key_columns = []
        for expr, descending in self.keys:
            values = batch_eval(expr, batch, outer_env)
            if descending:
                key_columns.append([_Desc(sort_key(v)) for v in values])
            else:
                key_columns.append([sort_key(v) for v in values])
        seq = self._seq
        entries = []
        if len(key_columns) == 1:
            for k, row in zip(key_columns[0], batch):
                entries.append(((k, seq), row))
                seq += 1
        else:
            for i, row in enumerate(batch):
                entries.append(
                    (tuple(kc[i] for kc in key_columns) + (seq,), row)
                )
                seq += 1
        self._seq = seq
        return entries

    def batches(self, outer_env: Optional[Env] = None) -> Iterator[list]:
        resume = self._resume
        self._resume = None
        gov = self.account.memory

        if resume is not None and resume["phase"] == "emit":
            self._phase = "emit"
            self._sorted = list(resume["sorted"])
            self._emitted = resume["emitted"]
            yield from self._emit_batches(self._emitted)
            return

        self._phase = "build"
        if resume is not None and resume["phase"] == "build":
            self._buffer = list(resume["buffer"])
            self._runs = [list(r) for r in resume["runs"]]
            self._seq = resume["seq"]
            self._degraded = resume["degraded"]
        else:
            self._buffer = []
            self._runs = []
            self._seq = 0
            self._degraded = False
        self._sorted = []
        self._emitted = 0

        for batch in self.child.batches(outer_env):
            entries = self._entries_batch(batch, outer_env)
            if gov is None:
                self._buffer.extend(entries)
                continue
            # Same per-row reserve/spill cadence as row mode.
            for entry in entries:
                self._buffer.append(entry)
                if not gov.reserve("Sort"):
                    if not self._degraded:
                        self._degraded = True
                        gov.record(
                            "Sort", "degrade",
                            "buffer over budget: external-merge fallback",
                        )
                    self._spill_current_buffer()

        total_rows = self._seq
        self.account.charge(2.0 * math.ceil(total_rows / self.rows_per_page))

        if self._runs:
            if self._buffer:
                self._spill_current_buffer()
            self._sorted = [row for _, row in heapq.merge(*self._runs)]
            self._runs = []
        else:
            self._sorted = [row for _, row in sorted(self._buffer)]
            if gov is not None:
                gov.release(len(self._buffer))
            self._buffer = []

        self._phase = "emit"
        yield from self._emit_batches(0)

    def _emit_batches(self, start: int) -> Iterator[list]:
        cap = max(self.batch_size, 1)
        sorted_rows = self._sorted
        total = len(sorted_rows)
        position = start
        while position < total:
            end = min(position + cap, total)
            chunk = sorted_rows[position:end]
            self._emitted = end
            yield chunk
            position = end

    def describe(self) -> str:
        directions = ", ".join("DESC" if d else "ASC" for _, d in self.keys)
        suffix = " (external merge)" if self._degraded else ""
        return f"Sort [{directions}]{suffix}"
