"""Sort operator (blocking, with modeled external-sort cost)."""

from __future__ import annotations

import math
from typing import Iterator, Optional, Sequence

from repro.engine.expr import BoundExpr, Env
from repro.engine.operators.base import Operator
from repro.engine.types import sort_key


class Sort(Operator):
    """ORDER BY: materialize, sort, emit.

    Charges ``2 * ceil(rows / rows_per_page)`` U, modeling one write and one
    read pass of an external sort.  NULLs sort first (ascending).
    """

    def __init__(
        self,
        child: Operator,
        keys: Sequence[tuple[BoundExpr, bool]],  # (expr, descending)
        rows_per_page: int = 50,
    ) -> None:
        if not keys:
            raise ValueError("sort requires at least one key")
        if rows_per_page < 1:
            raise ValueError("rows_per_page must be >= 1")
        super().__init__(child.layout, child.account)
        self.child = child
        self.keys = list(keys)
        self.rows_per_page = rows_per_page

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        data = list(self.child.rows(outer_env))
        self.account.charge(2.0 * math.ceil(len(data) / self.rows_per_page))

        # Stable multi-key sort: apply keys right-to-left.
        for expr, descending in reversed(self.keys):
            data.sort(
                key=lambda row, e=expr: sort_key(e(Env(row, outer_env))),
                reverse=descending,
            )
        yield from data

    def describe(self) -> str:
        directions = ", ".join("DESC" if d else "ASC" for _, d in self.keys)
        return f"Sort [{directions}]"
