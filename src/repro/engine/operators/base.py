"""Operator base class and the work account.

Every operator produces an iterator of row tuples via :meth:`Operator.rows`.
Operators that touch storage charge the shared :class:`WorkAccount` as they
go -- **one page of I/O = one U** -- which is what makes executions steppable
in work units and gives progress indicators their counters.

``rows(outer_env)`` takes the evaluation environment of the *enclosing*
query (or ``None`` at the top level) so the same operator tree can serve as
a correlated subplan, re-executed per outer row.
"""

from __future__ import annotations

import abc
from typing import Iterator, Optional

from repro.engine.expr import Env, Layout


class WorkAccount:
    """Accumulates work (in U's) charged by operators during execution."""

    __slots__ = ("total",)

    def __init__(self) -> None:
        self.total = 0.0

    def charge(self, units: float) -> None:
        """Add *units* U's of work."""
        if units < 0:
            raise ValueError("cannot charge negative work")
        self.total += units


class Operator(abc.ABC):
    """Base class of all physical operators."""

    def __init__(self, layout: Layout, account: WorkAccount) -> None:
        self.layout = layout
        self.account = account
        #: Optimizer estimates, annotated by the planner.
        self.est_cost: float = 0.0
        self.est_rows: float = 0.0

    @abc.abstractmethod
    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        """Iterate output rows, charging work as pages are touched."""

    def children(self) -> tuple["Operator", ...]:
        """Child operators (for plan inspection and explain output)."""
        return ()

    def explain(self, indent: int = 0) -> str:
        """A human-readable plan tree with cost annotations."""
        pad = "  " * indent
        line = (
            f"{pad}{self.describe()}  "
            f"(cost={self.est_cost:.1f} rows={self.est_rows:.0f})"
        )
        parts = [line]
        parts.extend(child.explain(indent + 1) for child in self.children())
        return "\n".join(parts)

    def describe(self) -> str:
        """One-line operator description (overridden by subclasses)."""
        return type(self).__name__
