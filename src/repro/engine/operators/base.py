"""Operator base class and the work account.

Every operator produces an iterator of row tuples via :meth:`Operator.rows`.
Operators that touch storage charge the shared :class:`WorkAccount` as they
go -- **one page of I/O = one U** -- which is what makes executions steppable
in work units and gives progress indicators their counters.

``rows(outer_env)`` takes the evaluation environment of the *enclosing*
query (or ``None`` at the top level) so the same operator tree can serve as
a correlated subplan, re-executed per outer row.

The account is also the rendezvous point for two cross-cutting concerns:

* **Cancellation** -- an optional
  :class:`~repro.engine.cancel.CancellationToken` is checked on every
  charge, so a cancel lands promptly even inside one long pull.
* **Memory governance** -- an optional
  :class:`~repro.engine.memory.MemoryGovernor` that buffering operators
  (sort, hash join, aggregate, materialize) reserve rows against.

Operators may additionally support **work-preserving checkpoints**:
:meth:`Operator.checkpoint` captures a detached, resumable snapshot of the
subtree's consumption state, and :meth:`Operator.restore` primes a *fresh*
plan (same SQL, same data) so iteration continues where the snapshot left
off without redoing the work.  Operators without cheap state return
``None`` -- their whole subtree restarts, which is always correct, just not
work-preserving.
"""

from __future__ import annotations

import abc
from typing import Any, Iterator, Optional, TYPE_CHECKING

from repro.engine.expr import Env, Layout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.cancel import CancellationToken
    from repro.engine.memory import MemoryGovernor

#: A detached operator checkpoint: plain containers only, safe to hold
#: across the death of the execution that produced it.
PlanState = dict


class WorkAccount:
    """Accumulates work (in U's) charged by operators during execution."""

    __slots__ = ("total", "cancel_token", "memory")

    def __init__(
        self,
        cancel_token: Optional["CancellationToken"] = None,
        memory: Optional["MemoryGovernor"] = None,
    ) -> None:
        self.total = 0.0
        self.cancel_token = cancel_token
        self.memory = memory

    def charge(self, units: float) -> None:
        """Add *units* U's of work (honouring the cancellation token)."""
        if self.cancel_token is not None:
            self.cancel_token.raise_if_cancelled()
        if units < 0:
            raise ValueError("cannot charge negative work")
        self.total += units

    def credit(self, units: float) -> None:
        """Credit *units* U's of already-performed (checkpointed) work.

        Used when restoring an execution from a checkpoint: the preserved
        work re-enters the counter without a cancellation check, because
        it is bookkeeping, not new execution.
        """
        if units < 0:
            raise ValueError("cannot credit negative work")
        self.total += units


class Operator(abc.ABC):
    """Base class of all physical operators."""

    def __init__(self, layout: Layout, account: WorkAccount) -> None:
        self.layout = layout
        self.account = account
        #: Optimizer estimates, annotated by the planner.
        self.est_cost: float = 0.0
        self.est_rows: float = 0.0

    #: Maximum rows per output batch in vectorized execution.  Configured
    #: tree-wide by :func:`configure_batch_size` before iteration starts.
    batch_size: int = 1024

    @abc.abstractmethod
    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        """Iterate output rows, charging work as pages are touched."""

    def batches(self, outer_env: Optional[Env] = None) -> Iterator[list]:
        """Iterate output rows in batches (lists of row tuples).

        Operators with a vectorized path override this.  The base
        implementation wraps :meth:`rows` one row per batch, which keeps
        *exact* work-charge parity with row mode for operators whose
        charges are interleaved with their yields (index scans): a
        consumer that stops early never triggers charges row mode would
        not have made.
        """
        for row in self.rows(outer_env):
            yield [row]

    def children(self) -> tuple["Operator", ...]:
        """Child operators (for plan inspection and explain output)."""
        return ()

    # ------------------------------------------------------------------
    # Work-preserving checkpoints
    # ------------------------------------------------------------------

    def checkpoint(self) -> Optional[PlanState]:
        """A detached, resumable snapshot of this subtree, or ``None``.

        Called only while the pipeline is suspended between root pulls, so
        instance counters are consistent.  ``None`` means the subtree has
        no cheap resumable state *right now* (the default); a non-``None``
        state must be complete -- restoring it into a fresh plan and
        iterating must yield exactly the rows not yet emitted, charging
        only the work not yet done.  Implementations must copy any mutable
        containers they capture.
        """
        return None

    def restore(self, state: PlanState) -> None:
        """Prime a fresh operator with *state* before its first ``rows()``.

        Only meaningful on operators whose :meth:`checkpoint` can return a
        state; the base implementation rejects the call to fail loudly on
        plan-shape mismatches.
        """
        raise ValueError(
            f"{type(self).__name__} cannot restore checkpoint state"
        )

    def explain(self, indent: int = 0) -> str:
        """A human-readable plan tree with cost annotations."""
        pad = "  " * indent
        line = (
            f"{pad}{self.describe()}  "
            f"(cost={self.est_cost:.1f} rows={self.est_rows:.0f})"
        )
        parts = [line]
        parts.extend(child.explain(indent + 1) for child in self.children())
        return "\n".join(parts)

    def describe(self) -> str:
        """One-line operator description (overridden by subclasses)."""
        return type(self).__name__


def checkpoint_child(child: Operator) -> Optional[dict[str, Any]]:
    """Helper: a child's checkpoint wrapped for embedding, or ``None``."""
    state = child.checkpoint()
    if state is None:
        return None
    return {"child": state}


def configure_batch_size(root: Operator, batch_size: int) -> None:
    """Set the output batch size on every operator of a plan tree."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    root.batch_size = batch_size
    for child in root.children():
        configure_batch_size(child, batch_size)
