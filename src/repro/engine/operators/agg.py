"""Aggregation: hash aggregate with SQL NULL semantics.

Supports SUM / COUNT / AVG / MIN / MAX, ``COUNT(*)`` and ``DISTINCT``
arguments.  With no GROUP BY the aggregate produces exactly one row even on
empty input (``COUNT`` = 0, other aggregates = NULL), matching SQL.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterator, Optional, Sequence

from repro.engine.errors import PlanError, SqlTypeError
from repro.engine.expr import BoundExpr, Env, Layout
from repro.engine.operators.base import Operator
from repro.engine.types import compare_values, is_numeric
from repro.engine.vector import ColumnVector, take_values


@dataclass
class AggSpec:
    """One aggregate to compute: function, argument, DISTINCT flag."""

    func: str  # SUM / COUNT / AVG / MIN / MAX
    arg: Optional[BoundExpr]  # None only for COUNT(*)
    distinct: bool = False

    def __post_init__(self) -> None:
        self.func = self.func.upper()
        if self.func not in ("SUM", "COUNT", "AVG", "MIN", "MAX"):
            raise PlanError(f"unknown aggregate {self.func!r}")
        if self.arg is None and self.func != "COUNT":
            raise PlanError(f"{self.func} requires an argument")


class _AggState:
    """Accumulator for one aggregate within one group."""

    __slots__ = ("spec", "count", "total", "extreme", "seen")

    def __init__(self, spec: AggSpec) -> None:
        self.spec = spec
        self.count = 0
        self.total: Any = None
        self.extreme: Any = None
        self.seen: set | None = set() if spec.distinct else None

    def update(self, value: Any) -> None:
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        func = self.spec.func
        self.count += 1
        if func in ("SUM", "AVG"):
            if not is_numeric(value):
                raise SqlTypeError(f"{func} requires numeric input, got {value!r}")
            self.total = value if self.total is None else self.total + value
        elif func == "MIN":
            if self.extreme is None or compare_values(value, self.extreme) < 0:
                self.extreme = value
        elif func == "MAX":
            if self.extreme is None or compare_values(value, self.extreme) > 0:
                self.extreme = value

    def update_batch(self, values: list) -> None:
        """Fold a whole column of values at once.

        Equivalent to calling :meth:`update` per value, but non-DISTINCT
        aggregates take C-level fast paths over columns whose
        :class:`ColumnVector` metadata proves them clean:

        * COUNT of a no-null column is just ``len``.
        * SUM/AVG of a clean numeric column use ``sum(values[1:],
          values[0])`` -- the *same* left-to-right chain of additions as
          the scalar path (never starting from ``0.0``, which would turn
          a leading ``-0.0`` into ``+0.0``), so float totals stay
          bit-identical to row mode.  A per-batch ``sum()`` folded into
          the running total afterwards would re-associate the additions
          and drift in the last ulps.
        * MIN/MAX use the builtins only on pure-int columns, where ``<``
          agrees exactly with ``compare_values`` (no NaN, no cross-type
          surprises).
        """
        columnar = type(values) is ColumnVector
        func = self.spec.func
        if self.seen is not None or func in ("MIN", "MAX"):
            if (
                self.seen is None
                and columnar
                and values.kind == "int"
                and not values.has_null
                and values
            ):
                extreme = min(values) if func == "MIN" else max(values)
                self.count += len(values)
                if self.extreme is None:
                    self.extreme = extreme
                elif func == "MIN":
                    if compare_values(extreme, self.extreme) < 0:
                        self.extreme = extreme
                elif compare_values(extreme, self.extreme) > 0:
                    self.extreme = extreme
                return
            for value in values:
                self.update(value)
            return
        if func == "COUNT":
            if columnar and not values.has_null:
                self.count += len(values)
            else:
                self.count += len(values) - values.count(None)
            return
        # SUM / AVG.
        if columnar and values.is_clean_numeric:
            if not values:
                return
            self.count += len(values)
            total = self.total
            if total is None:
                self.total = sum(values[1:], values[0]) if len(values) > 1 else values[0]
            else:
                self.total = sum(values, total)
            return
        # Generic path: same accumulation order, per-value checks.
        count = self.count
        total = self.total
        for value in values:
            if value is None:
                continue
            if not is_numeric(value):
                raise SqlTypeError(f"{func} requires numeric input, got {value!r}")
            count += 1
            total = value if total is None else total + value
        self.count = count
        self.total = total

    def update_count_star(self, n: int) -> None:
        """Fold *n* COUNT(*) rows (each row contributes the constant 1)."""
        if self.seen is not None:
            for _ in range(n):
                self.update(1)
            return
        self.count += n

    def result(self) -> Any:
        func = self.spec.func
        if func == "COUNT":
            return self.count
        if func == "SUM":
            return self.total
        if func == "AVG":
            return None if self.count == 0 else self.total / self.count
        return self.extreme

    def copy(self) -> "_AggState":
        """Detached copy for checkpoints (shares the immutable spec)."""
        dup = _AggState.__new__(_AggState)
        dup.spec = self.spec
        dup.count = self.count
        dup.total = self.total
        dup.extreme = self.extreme
        dup.seen = set(self.seen) if self.seen is not None else None
        return dup


class HashAggregate(Operator):
    """Group rows by key expressions and fold aggregates per group.

    Output rows are ``group values + aggregate values`` in declaration
    order; *layout* must match.

    Group partials live on the instance, which makes the aggregate
    checkpointable: mid-build the partial states plus the child's position
    form the snapshot, mid-emit the computed result rows and the emit
    cursor do.  Under memory pressure the partials are treated as spilled
    and the extra re-aggregation passes are charged as work at build end.
    """

    def __init__(
        self,
        child: Operator,
        group_exprs: Sequence[BoundExpr],
        aggregates: Sequence[AggSpec],
        layout: Layout,
        rows_per_page: int = 50,
    ) -> None:
        if len(layout) != len(group_exprs) + len(aggregates):
            raise ValueError("aggregate layout arity mismatch")
        super().__init__(layout, child.account)
        self.child = child
        self.group_exprs = list(group_exprs)
        self.aggregates = list(aggregates)
        self.rows_per_page = rows_per_page
        #: ``"idle"`` / ``"build"`` / ``"emit"`` -- the current phase.
        self._phase = "idle"
        self._groups: dict[tuple, list[_AggState]] = {}
        self._order: list[tuple] = []
        self._pending: list[tuple] = []
        self._emitted = 0
        self._reserved = 0
        self._degraded = False
        self._resume: dict | None = None

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    # ------------------------------------------------------------------
    # Checkpoint/restore
    # ------------------------------------------------------------------

    def _groups_copy(self) -> dict[tuple, list[_AggState]]:
        return {k: [s.copy() for s in v] for k, v in self._groups.items()}

    def checkpoint(self) -> dict | None:
        if self._phase == "emit":
            # Child fully consumed: the result rows and cursor suffice.
            return {
                "phase": "emit",
                "pending": list(self._pending),
                "emitted": self._emitted,
            }
        child_state = self.child.checkpoint()
        if child_state is None:
            return None
        if self._phase == "idle":
            return {"phase": "idle", "child": child_state}
        return {
            "phase": "build",
            "groups": self._groups_copy(),
            "order": list(self._order),
            "degraded": self._degraded,
            "child": child_state,
        }

    def restore(self, state: dict) -> None:
        self._resume = state
        if state["phase"] in ("idle", "build"):
            self.child.restore(state["child"])

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        resume = self._resume
        self._resume = None
        gov = self.account.memory

        if resume is not None and resume["phase"] == "emit":
            self._phase = "emit"
            self._pending = list(resume["pending"])
            self._emitted = resume["emitted"]
            for row in self._pending[self._emitted:]:
                self._emitted += 1
                yield row
            return

        self._phase = "build"
        if resume is not None and resume["phase"] == "build":
            # Copy so restoring the same checkpoint twice stays safe.
            self._groups = {
                k: [s.copy() for s in v] for k, v in resume["groups"].items()
            }
            self._order = list(resume["order"])
            self._degraded = resume["degraded"]
        else:
            self._groups = {}
            self._order = []
            self._degraded = False
        self._reserved = 0

        for row in self.child.rows(outer_env):
            env = Env(row, outer_env)
            key = tuple(g(env) for g in self.group_exprs)
            states = self._groups.get(key)
            if states is None:
                states = [_AggState(spec) for spec in self.aggregates]
                self._groups[key] = states
                self._order.append(key)
                if gov is not None and not self._degraded:
                    self._reserved += 1
                    if not gov.reserve("HashAggregate"):
                        # Degrade: treat the partials as spilled from here
                        # on; the re-aggregation passes are charged at
                        # build end.
                        self._degraded = True
                        gov.release(self._reserved)
                        self._reserved = 0
                        gov.record(
                            "HashAggregate", "degrade",
                            "group partials over budget: spill fallback",
                        )
            for state in states:
                value = state.spec.arg(env) if state.spec.arg is not None else 1
                state.update(value)

        if self._degraded and gov is not None:
            group_count = len(self._order)
            passes = math.ceil(group_count / gov.budget_rows)
            extra = (passes - 1) * 2.0 * math.ceil(
                group_count / self.rows_per_page
            )
            if extra > 0:
                self.account.charge(extra)
                gov.record(
                    "HashAggregate", "spill",
                    f"{passes} re-aggregation passes over {group_count} "
                    f"groups (+{extra:g} U)",
                )

        if not self._groups and not self.group_exprs:
            # Global aggregate over empty input: one row of identities.
            self._pending = [
                tuple(_AggState(spec).result() for spec in self.aggregates)
            ]
        else:
            self._pending = [
                key + tuple(state.result() for state in self._groups[key])
                for key in self._order
            ]
        if gov is not None and self._reserved:
            gov.release(self._reserved)
            self._reserved = 0

        self._phase = "emit"
        self._emitted = 0
        for row in self._pending:
            self._emitted += 1
            yield row

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------

    def batches(self, outer_env: Optional[Env] = None) -> Iterator[list]:
        from repro.engine.expr import batch_eval

        resume = self._resume
        self._resume = None
        gov = self.account.memory

        if resume is not None and resume["phase"] == "emit":
            self._phase = "emit"
            self._pending = list(resume["pending"])
            self._emitted = resume["emitted"]
            yield from self._emit_batches(self._emitted)
            return

        self._phase = "build"
        if resume is not None and resume["phase"] == "build":
            self._groups = {
                k: [s.copy() for s in v] for k, v in resume["groups"].items()
            }
            self._order = list(resume["order"])
            self._degraded = resume["degraded"]
        else:
            self._groups = {}
            self._order = []
            self._degraded = False
        self._reserved = 0

        group_exprs = self.group_exprs
        aggregates = self.aggregates
        groups = self._groups
        global_agg = not group_exprs
        for batch in self.child.batches(outer_env):
            n = len(batch)
            arg_columns = [
                batch_eval(spec.arg, batch, outer_env)
                if spec.arg is not None else None
                for spec in aggregates
            ]
            if global_agg:
                states = groups.get(())
                if states is None:
                    states = [_AggState(spec) for spec in aggregates]
                    groups[()] = states
                    self._order.append(())
                    if gov is not None and not self._degraded:
                        self._reserved += 1
                        if not gov.reserve("HashAggregate"):
                            self._degraded = True
                            gov.release(self._reserved)
                            self._reserved = 0
                            gov.record(
                                "HashAggregate", "degrade",
                                "group partials over budget: spill fallback",
                            )
                for state, column in zip(states, arg_columns):
                    if column is None:
                        state.update_count_star(n)
                    else:
                        state.update_batch(column)
                continue
            key_columns = [
                batch_eval(g, batch, outer_env) for g in group_exprs
            ]
            if len(key_columns) == 1:
                keys = [(v,) for v in key_columns[0]]
            else:
                keys = list(zip(*key_columns))
            # Bucket row indices by key first (insertion order = first
            # appearance, matching row mode's group creation order), then
            # fold each group's slice in one update_batch call.  Within a
            # group the stream order is preserved, so float totals stay
            # identical to per-row accumulation.
            buckets: dict[tuple, list[int]] = {}
            for i, key in enumerate(keys):
                idxs = buckets.get(key)
                if idxs is None:
                    buckets[key] = [i]
                else:
                    idxs.append(i)
            for key, idxs in buckets.items():
                states = groups.get(key)
                if states is None:
                    states = [_AggState(spec) for spec in aggregates]
                    groups[key] = states
                    self._order.append(key)
                    if gov is not None and not self._degraded:
                        self._reserved += 1
                        if not gov.reserve("HashAggregate"):
                            self._degraded = True
                            gov.release(self._reserved)
                            self._reserved = 0
                            gov.record(
                                "HashAggregate", "degrade",
                                "group partials over budget: spill fallback",
                            )
                for state, column in zip(states, arg_columns):
                    if column is None:
                        state.update_count_star(len(idxs))
                    elif len(idxs) == len(keys):
                        state.update_batch(column)
                    else:
                        # Gather the group's slice; ColumnVector metadata
                        # carries over so the fast paths stay live.
                        state.update_batch(take_values(column, idxs))

        if self._degraded and gov is not None:
            group_count = len(self._order)
            passes = math.ceil(group_count / gov.budget_rows)
            extra = (passes - 1) * 2.0 * math.ceil(
                group_count / self.rows_per_page
            )
            if extra > 0:
                self.account.charge(extra)
                gov.record(
                    "HashAggregate", "spill",
                    f"{passes} re-aggregation passes over {group_count} "
                    f"groups (+{extra:g} U)",
                )

        if not self._groups and not self.group_exprs:
            self._pending = [
                tuple(_AggState(spec).result() for spec in self.aggregates)
            ]
        else:
            self._pending = [
                key + tuple(state.result() for state in self._groups[key])
                for key in self._order
            ]
        if gov is not None and self._reserved:
            gov.release(self._reserved)
            self._reserved = 0

        self._phase = "emit"
        self._emitted = 0
        yield from self._emit_batches(0)

    def _emit_batches(self, start: int) -> Iterator[list]:
        cap = max(self.batch_size, 1)
        pending = self._pending
        total = len(pending)
        position = start
        while position < total:
            end = min(position + cap, total)
            chunk = pending[position:end]
            self._emitted = end
            yield chunk
            position = end

    def describe(self) -> str:
        aggs = ", ".join(s.func for s in self.aggregates)
        suffix = " (spilled partials)" if self._degraded else ""
        return f"HashAggregate groups={len(self.group_exprs)} aggs=[{aggs}]{suffix}"
