"""Aggregation: hash aggregate with SQL NULL semantics.

Supports SUM / COUNT / AVG / MIN / MAX, ``COUNT(*)`` and ``DISTINCT``
arguments.  With no GROUP BY the aggregate produces exactly one row even on
empty input (``COUNT`` = 0, other aggregates = NULL), matching SQL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional, Sequence

from repro.engine.errors import PlanError, SqlTypeError
from repro.engine.expr import BoundExpr, Env, Layout
from repro.engine.operators.base import Operator
from repro.engine.types import compare_values, is_numeric


@dataclass
class AggSpec:
    """One aggregate to compute: function, argument, DISTINCT flag."""

    func: str  # SUM / COUNT / AVG / MIN / MAX
    arg: Optional[BoundExpr]  # None only for COUNT(*)
    distinct: bool = False

    def __post_init__(self) -> None:
        self.func = self.func.upper()
        if self.func not in ("SUM", "COUNT", "AVG", "MIN", "MAX"):
            raise PlanError(f"unknown aggregate {self.func!r}")
        if self.arg is None and self.func != "COUNT":
            raise PlanError(f"{self.func} requires an argument")


class _AggState:
    """Accumulator for one aggregate within one group."""

    __slots__ = ("spec", "count", "total", "extreme", "seen")

    def __init__(self, spec: AggSpec) -> None:
        self.spec = spec
        self.count = 0
        self.total: Any = None
        self.extreme: Any = None
        self.seen: set | None = set() if spec.distinct else None

    def update(self, value: Any) -> None:
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        func = self.spec.func
        self.count += 1
        if func in ("SUM", "AVG"):
            if not is_numeric(value):
                raise SqlTypeError(f"{func} requires numeric input, got {value!r}")
            self.total = value if self.total is None else self.total + value
        elif func == "MIN":
            if self.extreme is None or compare_values(value, self.extreme) < 0:
                self.extreme = value
        elif func == "MAX":
            if self.extreme is None or compare_values(value, self.extreme) > 0:
                self.extreme = value

    def result(self) -> Any:
        func = self.spec.func
        if func == "COUNT":
            return self.count
        if func == "SUM":
            return self.total
        if func == "AVG":
            return None if self.count == 0 else self.total / self.count
        return self.extreme


class HashAggregate(Operator):
    """Group rows by key expressions and fold aggregates per group.

    Output rows are ``group values + aggregate values`` in declaration
    order; *layout* must match.
    """

    def __init__(
        self,
        child: Operator,
        group_exprs: Sequence[BoundExpr],
        aggregates: Sequence[AggSpec],
        layout: Layout,
    ) -> None:
        if len(layout) != len(group_exprs) + len(aggregates):
            raise ValueError("aggregate layout arity mismatch")
        super().__init__(layout, child.account)
        self.child = child
        self.group_exprs = list(group_exprs)
        self.aggregates = list(aggregates)

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        groups: dict[tuple, list[_AggState]] = {}
        order: list[tuple] = []
        for row in self.child.rows(outer_env):
            env = Env(row, outer_env)
            key = tuple(g(env) for g in self.group_exprs)
            states = groups.get(key)
            if states is None:
                states = [_AggState(spec) for spec in self.aggregates]
                groups[key] = states
                order.append(key)
            for state in states:
                value = state.spec.arg(env) if state.spec.arg is not None else 1
                state.update(value)

        if not groups and not self.group_exprs:
            # Global aggregate over empty input: one row of identities.
            yield tuple(_AggState(spec).result() for spec in self.aggregates)
            return
        for key in order:
            yield key + tuple(state.result() for state in groups[key])

    def describe(self) -> str:
        aggs = ", ".join(s.func for s in self.aggregates)
        return f"HashAggregate groups={len(self.group_exprs)} aggs=[{aggs}]"
