"""Table access operators: sequential scan and index scan.

Scans are also where progress tracking hooks in: each scan knows its total
page (or probe) budget and how much it has consumed, so the executor's
progress tracker can extrapolate remaining work from the *driver* scan.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.engine.catalog import Table
from repro.engine.expr import BoundExpr, Env, Layout
from repro.engine.index import BTreeIndex
from repro.engine.operators.base import Operator, WorkAccount
from repro.engine.vector import Chunk


class SeqScan(Operator):
    """Full-table scan: charges one U per heap page.

    The scan is the engine's checkpoint anchor: its consumption state is
    two integers (rows handed out, pages already paid for), so a restored
    scan can skip straight back to where a crashed attempt stopped without
    re-reading -- or re-charging -- the pages it already consumed.
    """

    def __init__(
        self,
        table: Table,
        binding: str,
        account: WorkAccount,
    ) -> None:
        layout = Layout.for_table(binding, table.schema.column_names)
        super().__init__(layout, account)
        self.table = table
        self.binding = binding
        #: Pages read during the current (or last) iteration.
        self.pages_read = 0
        #: Rows yielded from the page currently being consumed.
        self._rows_in_page = 0
        self._page_size = 0
        #: Rows handed out during the current iteration.
        self._rows_out = 0
        #: Restore state, consumed by the first ``rows()`` call after it.
        self._resume: dict | None = None

    @property
    def total_pages(self) -> int:
        """Heap pages this scan will read in one full pass."""
        return self.table.heap.page_count

    def progress_fraction(self) -> float:
        """Fraction of the current pass completed (for the driver tracker).

        Row-granular: a page counts fractionally while its rows are still
        being consumed downstream, which keeps driver-based extrapolation
        accurate even when per-row work (e.g. a correlated subquery probe)
        dominates the page read itself.
        """
        total = self.total_pages
        if total == 0:
            return 1.0
        done = self.pages_read - 1 if self.pages_read > 0 else 0
        if self._page_size > 0 and self.pages_read > 0:
            done += self._rows_in_page / self._page_size
        return min(done / total, 1.0)

    def checkpoint(self) -> dict | None:
        return {"rows_out": self._rows_out, "pages_paid": self.pages_read}

    def restore(self, state: dict) -> None:
        self._resume = {
            "rows_out": int(state["rows_out"]),
            "pages_paid": int(state["pages_paid"]),
        }

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        resume = self._resume
        self._resume = None
        skip = resume["rows_out"] if resume else 0
        paid = resume["pages_paid"] if resume else 0
        self.pages_read = 0
        self._rows_out = skip
        for _, page in self.table.heap.scan_pages():
            if paid > 0:
                # A page the checkpointed attempt already paid for.
                paid -= 1
            else:
                self.account.charge(1.0)
            self.pages_read += 1
            self._rows_in_page = 0
            self._page_size = max(len(page.rows), 1)
            for row in page.rows:
                # Count the row as it is handed out: downstream per-row work
                # (e.g. a correlated probe) is charged while the row is
                # "current", so attributing it to this row keeps the driver
                # fraction aligned with the work counter.
                self._rows_in_page += 1
                if skip > 0:
                    skip -= 1
                    continue
                self._rows_out += 1
                yield row

    def batches(self, outer_env: Optional[Env] = None) -> Iterator[list]:
        """Page-aligned columnar batch scan.

        Batches never span pages: a page is charged exactly when its first
        row enters a batch, so a consumer that stops early (LIMIT) charges
        the same pages row mode would have.  ``batch_size`` only splits
        pages that are larger than it.

        Each batch is a :class:`Chunk` sharing the page's column vectors
        (zero copy for a whole page; a ``range`` selection for partial
        pages, including resume offsets that land mid-page).  Zero-column
        pages fall back to plain row lists.
        """
        resume = self._resume
        self._resume = None
        skip = resume["rows_out"] if resume else 0
        paid = resume["pages_paid"] if resume else 0
        self.pages_read = 0
        self._rows_out = skip
        cap = max(self.batch_size, 1)
        for _, page in self.table.heap.scan_pages():
            if paid > 0:
                paid -= 1
            else:
                self.account.charge(1.0)
            self.pages_read += 1
            columns = page.columns
            n = len(page)
            self._page_size = max(n, 1)
            self._rows_in_page = 0
            start = 0
            if skip > 0:
                start = min(skip, n)
                skip -= start
                self._rows_in_page = start
            while start < n:
                end = min(start + cap, n)
                if not columns:
                    batch = page.rows[start:end]
                elif start == 0 and end == n:
                    batch = Chunk(columns, source=page)
                else:
                    batch = Chunk(columns, range(start, end))
                # Attribute downstream work on this batch to its last row,
                # keeping the driver fraction within one batch of truth.
                self._rows_in_page = end
                self._rows_out += end - start
                yield batch
                start = end

    def describe(self) -> str:
        heap = self.table.heap
        return (
            f"SeqScan {self.table.name} as {self.binding} "
            f"[pages={heap.page_count} cap={heap.page_capacity}]"
        )


class IndexScan(Operator):
    """Equality index probe, followed by heap fetches.

    The probe value is a bound expression evaluated in the *enclosing*
    environment -- a constant for plain queries, an outer-column reference
    for correlated subqueries (the paper's workload).  Charges the B-tree
    descent plus one U per distinct heap page fetched.
    """

    def __init__(
        self,
        table: Table,
        binding: str,
        index: BTreeIndex,
        probe: BoundExpr,
        account: WorkAccount,
        probe_description: str = "?",
    ) -> None:
        layout = Layout.for_table(binding, table.schema.column_names)
        super().__init__(layout, account)
        self.table = table
        self.binding = binding
        self.index = index
        self.probe = probe
        self.probe_description = probe_description
        #: Completed probes (one per execution of this scan).
        self.probes_done = 0

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        env = outer_env if outer_env is not None else Env(())
        key = self.probe(env)
        rids = self.index.search(key)
        self.account.charge(self.index.lookup_cost(len(rids)))
        pages_seen: set[int] = set()
        for rid in rids:
            if rid.page_no not in pages_seen:
                pages_seen.add(rid.page_no)
                self.account.charge(1.0)
            yield self.table.heap.fetch(rid)
        self.probes_done += 1

    def describe(self) -> str:
        return (
            f"IndexScan {self.table.name} as {self.binding} "
            f"using {self.index.name} ({self.index.column} = {self.probe_description})"
        )


class RangeIndexScan(Operator):
    """Range scan over a B-tree index: ``low <op> col <op> high``.

    Bounds are bound expressions evaluated in the enclosing environment
    (``None`` for an open end).  Charges the descent, one leaf page per
    ``leaf_capacity`` keys traversed, and one U per distinct heap page
    fetched.  Rows come out in index-key order.
    """

    def __init__(
        self,
        table: Table,
        binding: str,
        index: BTreeIndex,
        account: WorkAccount,
        low: Optional[BoundExpr] = None,
        high: Optional[BoundExpr] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        bounds_description: str = "?",
    ) -> None:
        layout = Layout.for_table(binding, table.schema.column_names)
        super().__init__(layout, account)
        self.table = table
        self.binding = binding
        self.index = index
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.bounds_description = bounds_description

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        env = outer_env if outer_env is not None else Env(())
        low = self.low(env) if self.low is not None else None
        high = self.high(env) if self.high is not None else None
        self.account.charge(float(self.index.height()))
        keys_seen = 0
        pages_seen: set[int] = set()
        for _, rids in self.index.search_range(
            low, high, self.low_inclusive, self.high_inclusive
        ):
            keys_seen += 1
            if keys_seen % self.index.leaf_capacity == 1 and keys_seen > 1:
                self.account.charge(1.0)  # next leaf page
            for rid in rids:
                if rid.page_no not in pages_seen:
                    pages_seen.add(rid.page_no)
                    self.account.charge(1.0)
                yield self.table.heap.fetch(rid)

    def describe(self) -> str:
        return (
            f"RangeIndexScan {self.table.name} as {self.binding} "
            f"using {self.index.name} ({self.bounds_description})"
        )
