"""Join operators: nested loop and hash join."""

from __future__ import annotations

import math
from typing import Iterator, Optional

from repro.engine.errors import SqlTypeError
from repro.engine.expr import BoundExpr, Env
from repro.engine.operators.base import Operator


class NestedLoopJoin(Operator):
    """Inner join by rescanning the (usually materialized) inner side.

    The optional condition is evaluated over the concatenated row; a missing
    condition makes this a cross join.
    """

    def __init__(
        self,
        outer: Operator,
        inner: Operator,
        condition: Optional[BoundExpr] = None,
        label: str = "",
        left_outer: bool = False,
    ) -> None:
        super().__init__(outer.layout.merge(inner.layout), outer.account)
        self.outer = outer
        self.inner = inner
        self.condition = condition
        self.label = label
        self.left_outer = left_outer

    def children(self) -> tuple[Operator, ...]:
        return (self.outer, self.inner)

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        condition = self.condition
        pad = (None,) * len(self.inner.layout)
        for left in self.outer.rows(outer_env):
            matched = False
            for right in self.inner.rows(outer_env):
                combined = left + right
                if condition is None:
                    matched = True
                    yield combined
                    continue
                verdict = condition(Env(combined, outer_env))
                if verdict is True:
                    matched = True
                    yield combined
                elif verdict is not False and verdict is not None:
                    raise SqlTypeError("join condition must be boolean")
            if self.left_outer and not matched:
                yield left + pad

    def describe(self) -> str:
        if self.left_outer:
            kind = "NestedLoopLeftJoin"
        elif self.condition:
            kind = "NestedLoopJoin"
        else:
            kind = "CrossJoin"
        return f"{kind} {self.label}".rstrip()


class HashJoin(Operator):
    """Equi-join: build a hash table on the right side, probe with the left.

    Charges a modeled partition spill of the build side
    (``2 * ceil(rows / rows_per_page)`` U) on top of the children's own
    costs, mirroring a grace hash join that writes and rereads build
    partitions.  Residual (non-equi) predicates can be attached by wrapping
    the join in a Filter.
    """

    def __init__(
        self,
        probe_side: Operator,
        build_side: Operator,
        probe_key: BoundExpr,
        build_key: BoundExpr,
        rows_per_page: int = 50,
        label: str = "",
        left_outer: bool = False,
        residual: Optional[BoundExpr] = None,
    ) -> None:
        super().__init__(probe_side.layout.merge(build_side.layout), probe_side.account)
        self.probe_side = probe_side
        self.build_side = build_side
        self.probe_key = probe_key
        self.build_key = build_key
        self.rows_per_page = rows_per_page
        self.label = label
        self.left_outer = left_outer
        self.residual = residual

    def children(self) -> tuple[Operator, ...]:
        return (self.probe_side, self.build_side)

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        table: dict = {}
        count = 0
        for row in self.build_side.rows(outer_env):
            key = self.build_key(Env(row, outer_env))
            if key is None:
                continue  # NULL never joins
            table.setdefault(key, []).append(row)
            count += 1
        self.account.charge(2.0 * math.ceil(count / self.rows_per_page))

        pad = (None,) * len(self.build_side.layout)
        for left in self.probe_side.rows(outer_env):
            key = self.probe_key(Env(left, outer_env))
            matched = False
            if key is not None:
                for right in table.get(key, ()):
                    combined = left + right
                    if self.residual is not None:
                        verdict = self.residual(Env(combined, outer_env))
                        if verdict is not True:
                            if verdict not in (False, None):
                                raise SqlTypeError(
                                    "join condition must be boolean"
                                )
                            continue
                    matched = True
                    yield combined
            if self.left_outer and not matched:
                yield left + pad

    def describe(self) -> str:
        kind = "HashLeftJoin" if self.left_outer else "HashJoin"
        return f"{kind} {self.label}".rstrip()
