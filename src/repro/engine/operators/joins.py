"""Join operators: nested loop and hash join."""

from __future__ import annotations

import math
from typing import Iterator, Optional

from repro.engine.errors import SqlTypeError
from repro.engine.expr import BoundExpr, Env, batch_eval
from repro.engine.operators.base import Operator


class NestedLoopJoin(Operator):
    """Inner join by rescanning the (usually materialized) inner side.

    The optional condition is evaluated over the concatenated row; a missing
    condition makes this a cross join.
    """

    def __init__(
        self,
        outer: Operator,
        inner: Operator,
        condition: Optional[BoundExpr] = None,
        label: str = "",
        left_outer: bool = False,
    ) -> None:
        super().__init__(outer.layout.merge(inner.layout), outer.account)
        self.outer = outer
        self.inner = inner
        self.condition = condition
        self.label = label
        self.left_outer = left_outer

    def children(self) -> tuple[Operator, ...]:
        return (self.outer, self.inner)

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        condition = self.condition
        pad = (None,) * len(self.inner.layout)
        for left in self.outer.rows(outer_env):
            matched = False
            for right in self.inner.rows(outer_env):
                combined = left + right
                if condition is None:
                    matched = True
                    yield combined
                    continue
                verdict = condition(Env(combined, outer_env))
                if verdict is True:
                    matched = True
                    yield combined
                elif verdict is not False and verdict is not None:
                    raise SqlTypeError("join condition must be boolean")
            if self.left_outer and not matched:
                yield left + pad

    def batches(self, outer_env: Optional[Env] = None) -> Iterator[list]:
        # One output batch per *outer* input batch.  The inner side is
        # rescanned per outer row exactly as in row mode (its materialized
        # cache makes the rescans free after the first).
        condition = self.condition
        pad = (None,) * len(self.inner.layout)
        for outer_batch in self.outer.batches(outer_env):
            out = []
            for left in outer_batch:
                matched = False
                for inner_batch in self.inner.batches(outer_env):
                    combined = [left + right for right in inner_batch]
                    if condition is None:
                        if combined:
                            matched = True
                            out.extend(combined)
                        continue
                    verdicts = batch_eval(condition, combined, outer_env)
                    for row, verdict in zip(combined, verdicts):
                        if verdict is True:
                            matched = True
                            out.append(row)
                        elif verdict is not False and verdict is not None:
                            raise SqlTypeError("join condition must be boolean")
                if self.left_outer and not matched:
                    out.append(left + pad)
            if out:
                yield out

    def describe(self) -> str:
        if self.left_outer:
            kind = "NestedLoopLeftJoin"
        elif self.condition:
            kind = "NestedLoopJoin"
        else:
            kind = "CrossJoin"
        return f"{kind} {self.label}".rstrip()


class HashJoin(Operator):
    """Equi-join: build a hash table on the right side, probe with the left.

    Charges a modeled partition spill of the build side
    (``2 * ceil(rows / rows_per_page)`` U) on top of the children's own
    costs, mirroring a grace hash join that writes and rereads build
    partitions.  Residual (non-equi) predicates can be attached by wrapping
    the join in a Filter.

    Run-time state (the build table, the in-flight probe row) lives on the
    instance, which makes the join checkpointable in both phases: mid-build
    the partial table plus the build child's position is the snapshot;
    mid-probe the finished table, the probe child's position and the
    current probe row (with how many of its matches were already emitted)
    are.  Under memory pressure the join degrades to a modeled
    block-partitioned join: the build table is treated as spilled (its rows
    stop counting against the budget) and the extra partition passes are
    charged as work at build end.
    """

    def __init__(
        self,
        probe_side: Operator,
        build_side: Operator,
        probe_key: BoundExpr,
        build_key: BoundExpr,
        rows_per_page: int = 50,
        label: str = "",
        left_outer: bool = False,
        residual: Optional[BoundExpr] = None,
    ) -> None:
        super().__init__(probe_side.layout.merge(build_side.layout), probe_side.account)
        self.probe_side = probe_side
        self.build_side = build_side
        self.probe_key = probe_key
        self.build_key = build_key
        self.rows_per_page = rows_per_page
        self.label = label
        self.left_outer = left_outer
        self.residual = residual
        #: ``"idle"`` / ``"build"`` / ``"probe"`` -- the current phase.
        self._phase = "idle"
        self._table: dict = {}
        self._build_count = 0
        self._reserved = 0
        self._degraded = False
        self._current: tuple | None = None
        self._current_emitted = 0
        self._current_matched = False
        self._current_padded = False
        self._resume: dict | None = None

    def children(self) -> tuple[Operator, ...]:
        return (self.probe_side, self.build_side)

    # ------------------------------------------------------------------
    # Checkpoint/restore
    # ------------------------------------------------------------------

    def _table_copy(self) -> dict:
        return {k: list(v) for k, v in self._table.items()}

    def checkpoint(self) -> dict | None:
        if self._phase == "probe":
            probe_state = self.probe_side.checkpoint()
            if probe_state is None:
                return None
            return {
                "phase": "probe",
                "table": self._table_copy(),
                "count": self._build_count,
                "degraded": self._degraded,
                "probe": probe_state,
                "current": self._current,
                "current_emitted": self._current_emitted,
                "current_matched": self._current_matched,
                "current_padded": self._current_padded,
            }
        build_state = self.build_side.checkpoint()
        if build_state is None:
            return None
        if self._phase == "idle":
            return {"phase": "idle", "build": build_state}
        return {
            "phase": "build",
            "table": self._table_copy(),
            "count": self._build_count,
            "degraded": self._degraded,
            "build": build_state,
        }

    def restore(self, state: dict) -> None:
        self._resume = state
        if state["phase"] == "probe":
            self.probe_side.restore(state["probe"])
        else:
            self.build_side.restore(state["build"])

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _matches(self, left: tuple, outer_env, skip: int = 0) -> Iterator[tuple]:
        """Matches of probe row *left*, skipping the first *skip* emits."""
        key = self.probe_key(Env(left, outer_env))
        if key is None:
            return
        for right in self._table.get(key, ()):
            combined = left + right
            if self.residual is not None:
                verdict = self.residual(Env(combined, outer_env))
                if verdict is not True:
                    if verdict not in (False, None):
                        raise SqlTypeError("join condition must be boolean")
                    continue
            self._current_matched = True
            if skip > 0:
                skip -= 1
                continue
            self._current_emitted += 1
            yield combined

    def _probe_one(
        self, left: tuple, outer_env, skip: int = 0, resuming: bool = False
    ) -> Iterator[tuple]:
        """Process one probe row: its matches, then the outer pad if due.

        State flags are flipped *before* the corresponding yield: a
        checkpoint is only ever taken after a yielded row was delivered,
        so flipped-flag state always means "this row reached the output".
        """
        self._current = left
        if not resuming:
            self._current_emitted = 0
            self._current_matched = False
            self._current_padded = False
        yield from self._matches(left, outer_env, skip)
        if self.left_outer and not self._current_matched and not self._current_padded:
            self._current_padded = True
            yield left + (None,) * len(self.build_side.layout)

    def rows(self, outer_env: Optional[Env] = None) -> Iterator[tuple]:
        resume = self._resume
        self._resume = None
        gov = self.account.memory

        if resume is not None and resume["phase"] == "probe":
            self._phase = "probe"
            self._table = resume["table"]
            self._build_count = resume["count"]
            self._degraded = resume["degraded"]
            self._reserved = 0
            if resume["current"] is not None:
                # Finish the in-flight probe row: its child-side position is
                # already past it, so replay from the stored row, skipping
                # the matches the crashed attempt had emitted.
                self._current_emitted = resume["current_emitted"]
                self._current_matched = resume["current_matched"]
                self._current_padded = resume["current_padded"]
                yield from self._probe_one(
                    resume["current"], outer_env,
                    skip=resume["current_emitted"], resuming=True,
                )
            for left in self.probe_side.rows(outer_env):
                yield from self._probe_one(left, outer_env)
            return

        self._phase = "build"
        if resume is not None and resume["phase"] == "build":
            # Copy so restoring the same checkpoint twice stays safe.
            self._table = {k: list(v) for k, v in resume["table"].items()}
            self._build_count = resume["count"]
            self._degraded = resume["degraded"]
            self._reserved = 0
        else:
            self._table = {}
            self._build_count = 0
            self._degraded = False
            self._reserved = 0

        for row in self.build_side.rows(outer_env):
            key = self.build_key(Env(row, outer_env))
            if key is None:
                continue  # NULL never joins
            self._table.setdefault(key, []).append(row)
            self._build_count += 1
            if gov is not None and not self._degraded:
                self._reserved += 1
                if not gov.reserve("HashJoin"):
                    # Degrade to a block-partitioned join: the build side is
                    # treated as spilled from here on -- its rows stop
                    # counting against the budget and the extra partition
                    # passes are charged at build end.
                    self._degraded = True
                    gov.release(self._reserved)
                    self._reserved = 0
                    gov.record(
                        "HashJoin", "degrade",
                        "build side over budget: block-partitioned fallback",
                    )

        self.account.charge(2.0 * math.ceil(self._build_count / self.rows_per_page))
        if self._degraded and gov is not None:
            # (passes - 1) extra write+read sweeps over the spilled build
            # partitions, the block-nested-loop cost of not fitting.
            passes = math.ceil(self._build_count / gov.budget_rows)
            extra = (passes - 1) * 2.0 * math.ceil(
                self._build_count / self.rows_per_page
            )
            if extra > 0:
                self.account.charge(extra)
                gov.record(
                    "HashJoin", "spill",
                    f"{passes} partition passes over {self._build_count} "
                    f"build rows (+{extra:g} U)",
                )

        self._phase = "probe"
        for left in self.probe_side.rows(outer_env):
            yield from self._probe_one(left, outer_env)
        if gov is not None and self._reserved:
            gov.release(self._reserved)
            self._reserved = 0

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------

    def _clear_current(self) -> None:
        """Reset in-flight-probe-row state at a batch boundary.

        In batch mode every probe input batch is fully processed before
        its output batch is yielded, so a checkpoint between batches has
        no current row -- the shape row-mode restore already handles.
        """
        self._current = None
        self._current_emitted = 0
        self._current_matched = False
        self._current_padded = False

    def batches(self, outer_env: Optional[Env] = None) -> Iterator[list]:
        resume = self._resume
        self._resume = None
        gov = self.account.memory

        if resume is not None and resume["phase"] == "probe":
            self._phase = "probe"
            self._table = resume["table"]
            self._build_count = resume["count"]
            self._degraded = resume["degraded"]
            self._reserved = 0
            if resume["current"] is not None:
                # Finish the in-flight probe row of a row-mode checkpoint.
                self._current_emitted = resume["current_emitted"]
                self._current_matched = resume["current_matched"]
                self._current_padded = resume["current_padded"]
                pending = list(self._probe_one(
                    resume["current"], outer_env,
                    skip=resume["current_emitted"], resuming=True,
                ))
                self._clear_current()
                if pending:
                    yield pending
            yield from self._probe_batches(outer_env)
            if gov is not None and self._reserved:
                gov.release(self._reserved)
                self._reserved = 0
            return

        self._phase = "build"
        if resume is not None and resume["phase"] == "build":
            self._table = {k: list(v) for k, v in resume["table"].items()}
            self._build_count = resume["count"]
            self._degraded = resume["degraded"]
            self._reserved = 0
        else:
            self._table = {}
            self._build_count = 0
            self._degraded = False
            self._reserved = 0

        build_key = self.build_key
        key_slot = getattr(build_key, "slot", None)
        table = self._table
        table_get = table.get
        for batch in self.build_side.batches(outer_env):
            if gov is None and key_slot is not None:
                # Tightest path: bare-column key, no memory governance --
                # index the tuple directly, skip the key column entirely.
                # This loop carries the whole build side.
                inserted = 0
                for row in batch:
                    key = row[key_slot]
                    if key is None:
                        continue  # NULL never joins
                    bucket = table_get(key)
                    if bucket is None:
                        table[key] = [row]
                    else:
                        bucket.append(row)
                    inserted += 1
                self._build_count += inserted
                continue
            keys = batch_eval(build_key, batch, outer_env)
            if gov is None:
                inserted = 0
                for key, row in zip(keys, batch):
                    if key is None:
                        continue  # NULL never joins
                    bucket = table_get(key)
                    if bucket is None:
                        table[key] = [row]
                    else:
                        bucket.append(row)
                    inserted += 1
                self._build_count += inserted
                continue
            for key, row in zip(keys, batch):
                if key is None:
                    continue  # NULL never joins
                bucket = table.get(key)
                if bucket is None:
                    table[key] = [row]
                else:
                    bucket.append(row)
                self._build_count += 1
                if not self._degraded:
                    self._reserved += 1
                    if not gov.reserve("HashJoin"):
                        self._degraded = True
                        gov.release(self._reserved)
                        self._reserved = 0
                        gov.record(
                            "HashJoin", "degrade",
                            "build side over budget: block-partitioned fallback",
                        )

        self.account.charge(2.0 * math.ceil(self._build_count / self.rows_per_page))
        if self._degraded and gov is not None:
            passes = math.ceil(self._build_count / gov.budget_rows)
            extra = (passes - 1) * 2.0 * math.ceil(
                self._build_count / self.rows_per_page
            )
            if extra > 0:
                self.account.charge(extra)
                gov.record(
                    "HashJoin", "spill",
                    f"{passes} partition passes over {self._build_count} "
                    f"build rows (+{extra:g} U)",
                )

        self._phase = "probe"
        yield from self._probe_batches(outer_env)
        if gov is not None and self._reserved:
            gov.release(self._reserved)
            self._reserved = 0

    def _probe_batches(self, outer_env: Optional[Env]) -> Iterator[list]:
        """Probe in bulk: one output batch per probe input batch."""
        probe_key = self.probe_key
        residual = self.residual
        table = self._table
        left_outer = self.left_outer
        pad = (None,) * len(self.build_side.layout)
        for batch in self.probe_side.batches(outer_env):
            keys = batch_eval(probe_key, batch, outer_env)
            out = []
            if residual is None:
                emit = out.append
                for key, left in zip(keys, batch):
                    bucket = table.get(key) if key is not None else None
                    if bucket:
                        for right in bucket:
                            emit(left + right)
                    elif left_outer:
                        emit(left + pad)
            else:
                for key, left in zip(keys, batch):
                    matched = False
                    if key is not None:
                        combined = [left + right for right in table.get(key, ())]
                        if combined:
                            verdicts = batch_eval(residual, combined, outer_env)
                            for row, verdict in zip(combined, verdicts):
                                if verdict is True:
                                    matched = True
                                    out.append(row)
                                elif verdict not in (False, None):
                                    raise SqlTypeError(
                                        "join condition must be boolean"
                                    )
                    if left_outer and not matched:
                        out.append(left + pad)
            self._clear_current()
            if out:
                yield out

    def describe(self) -> str:
        kind = "HashLeftJoin" if self.left_outer else "HashJoin"
        suffix = " (block partitioned)" if self._degraded else ""
        return f"{kind} {self.label}{suffix}".rstrip()
