"""Execution-mode switch: vectorized batches vs. row-at-a-time.

Mirrors the backend-switch pattern of :mod:`repro.core.projection`: the
engine ships two execution modes with identical semantics -- ``"batch"``
(MonetDB/X100-style batch-at-a-time, the default) and ``"row"`` (the
original Volcano pull loop, kept as the differential oracle).  Both charge
the same work units, produce the same rows and interoperate on the same
checkpoints; see ``docs/PERFORMANCE.md``.

>>> from repro.engine.mode import use_execution_mode, default_execution_mode
>>> default_execution_mode()
'batch'
>>> with use_execution_mode("row"):
...     default_execution_mode()
'row'
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

#: The available execution modes, fastest first.
EXECUTION_MODES = ("batch", "row")

#: Rows per operator output batch in vectorized execution.
DEFAULT_BATCH_SIZE = 1024

_default_mode = "batch"


def default_execution_mode() -> str:
    """The execution mode used when none is passed explicitly."""
    return _default_mode


def set_default_execution_mode(mode: str) -> None:
    """Set the process-wide default execution mode.

    Raises
    ------
    ValueError
        On an unknown mode name.
    """
    global _default_mode
    if mode not in EXECUTION_MODES:
        raise ValueError(
            f"unknown execution mode {mode!r}; expected one of {EXECUTION_MODES}"
        )
    _default_mode = mode


@contextmanager
def use_execution_mode(mode: str) -> Iterator[None]:
    """Temporarily switch the default execution mode."""
    previous = default_execution_mode()
    set_default_execution_mode(mode)
    try:
        yield
    finally:
        set_default_execution_mode(previous)


def resolve_execution_mode(mode: str | None) -> str:
    """Validate an explicit *mode*, or fall back to the default."""
    if mode is None:
        return _default_mode
    if mode not in EXECUTION_MODES:
        raise ValueError(
            f"unknown execution mode {mode!r}; expected one of {EXECUTION_MODES}"
        )
    return mode
