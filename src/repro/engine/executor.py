"""Cooperative query execution in work-unit budgets.

:class:`QueryExecution` wraps a planned operator tree and advances it with
``step(budget_units)``: the root iterator is pulled until at least that much
work has been charged (or the query finishes).  A single pull can overshoot
its budget -- e.g. one outer tuple of the paper's query triggers a whole
correlated index probe -- so the execution keeps a *work debt* and repays it
from subsequent budgets, preserving long-run conservation when a simulator
timeshares many queries.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.engine.errors import ExecutionError
from repro.engine.operators.base import Operator, WorkAccount
from repro.engine.progress import ProgressTracker

_SENTINEL = object()


class QueryExecution:
    """One query's cooperative execution state."""

    def __init__(
        self,
        root: Operator,
        account: WorkAccount,
        sql: str = "",
    ) -> None:
        self.root = root
        self.account = account
        self.sql = sql
        self.progress = ProgressTracker(
            root, account, optimizer_estimate=root.est_cost
        )
        self.rows: list[tuple] = []
        self._iterator: Optional[Iterator[tuple]] = None
        self._finished = False
        self._debt = 0.0

    @property
    def finished(self) -> bool:
        """Whether the query has produced all of its rows."""
        return self._finished

    @property
    def work_done(self) -> float:
        """Total work charged so far, in U's."""
        return self.account.total

    @property
    def column_names(self) -> tuple[str, ...]:
        """Output column names."""
        return tuple(slot.name for slot in self.root.layout.slots)

    def step(self, budget: float) -> float:
        """Run until roughly *budget* more U's are consumed.

        Returns the budget consumed: exactly *budget* while running (debt
        smooths overshoot), possibly less on the step that finishes the
        query.

        Raises
        ------
        ExecutionError
            If called with a negative budget.
        """
        if budget < 0:
            raise ExecutionError("budget must be >= 0")
        if self._finished:
            return 0.0
        if self._iterator is None:
            self._iterator = self.root.rows(None)

        if self._debt >= budget:
            # Still paying off a previous overshoot.
            self._debt -= budget
            return budget

        effective = budget - self._debt
        start = self.account.total
        consumed_at_finish: Optional[float] = None
        while self.account.total - start < effective:
            row = next(self._iterator, _SENTINEL)
            if row is _SENTINEL:
                self._finished = True
                self.progress.mark_finished()
                consumed_at_finish = self.account.total - start
                break
            self.rows.append(row)

        actual = self.account.total - start
        if self._finished:
            # Pay down debt with the work actually performed this step.
            used = self._debt + (consumed_at_finish or actual)
            self._debt = 0.0
            return min(used, budget)
        # Ran past the budget: bank the overshoot as debt.
        self._debt = max(actual - effective, 0.0)
        return budget

    def run_to_completion(self, chunk: float = 1000.0) -> list[tuple]:
        """Run the query to completion and return its rows."""
        while not self._finished:
            self.step(chunk)
        return self.rows

    def explain(self) -> str:
        """The annotated physical plan."""
        return self.root.explain()
